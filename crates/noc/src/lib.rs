//! # ni-noc — on-chip interconnect models for the rackni simulator
//!
//! Implements the two NOC organizations evaluated in the paper:
//!
//! * a 2D **mesh** ([`mesh::MeshNoc`]) with 16-byte links, 3-cycle routers,
//!   per-class virtual networks and the routing policies of §4.3
//!   (XY, YX, O1Turn, CDR, and the paper's modified CDR with a
//!   directory-sourced class), and
//! * **NOC-Out** ([`nocout::NocOutNoc`]), the latency-optimized scale-out
//!   topology of §6.3: a flattened butterfly connecting a row of LLC tiles,
//!   with per-column reduction/dispersion trees chaining the cores.
//!
//! Packets are modeled at virtual-cut-through granularity: per-hop router
//! latency plus link occupancy equal to the packet's flit count, which
//! preserves both zero-load latency and saturation bandwidth (the mesh
//! bisection works out to 8 links x 16 B x 2 GHz = 256 GBps per direction,
//! matching the 512 GBps bidirectional figure of §6.2).
//!
//! The payload type is generic: upper layers (coherence, RMC) define their
//! own message enums and the chip maps them onto [`MessageClass`] virtual
//! networks at injection time.

#![warn(missing_docs)]

pub mod mesh;
pub mod nocout;
pub mod packet;
pub mod router;
pub mod routing;
pub mod stats;

pub use mesh::{MeshConfig, MeshNoc};
pub use nocout::{NocOutConfig, NocOutNoc};
pub use packet::{flits_for_payload, Coord, MessageClass, NocNode, Packet, FLIT_BYTES};
pub use router::RouterConfig;
pub use routing::{RouteKind, RoutingPolicy};
pub use stats::NocStats;

use ni_engine::Cycle;

/// Common interface implemented by both NOC organizations so the SoC layer
/// can be topology-agnostic.
pub trait Interconnect<P> {
    /// Attempt to inject a packet at its source node. Returns the packet in
    /// `Err` when the injection port has no buffer space (backpressure).
    fn try_inject(&mut self, now: Cycle, pkt: Packet<P>) -> Result<(), Packet<P>>;

    /// Remove the next delivered packet at `node`, if any.
    fn eject(&mut self, node: NocNode) -> Option<Packet<P>>;

    /// Advance the interconnect by one cycle.
    fn tick(&mut self, now: Cycle);

    /// Aggregate traffic statistics.
    fn stats(&self) -> &NocStats;

    /// True when no packet is buffered or in flight anywhere.
    fn is_idle(&self) -> bool;
}
