//! Packets, node addressing, and virtual-network message classes.

use ni_engine::Cycle;
use std::fmt;

/// Link width in bytes (Table 2: 16-byte links).
pub const FLIT_BYTES: u32 = 16;

/// Number of flits needed to carry `payload_bytes` of payload plus
/// `header_bytes` of header, minimum one flit.
///
/// ```
/// use ni_noc::flits_for_payload;
/// assert_eq!(flits_for_payload(0, 8), 1);    // control message
/// assert_eq!(flits_for_payload(64, 8), 5);   // cache-block data message
/// assert_eq!(flits_for_payload(16, 16), 2);  // soNUMA request in a NOC packet
/// ```
pub fn flits_for_payload(payload_bytes: u32, header_bytes: u32) -> u8 {
    let total = payload_bytes + header_bytes;
    (total.div_ceil(FLIT_BYTES)).max(1) as u8
}

/// Position of a tile in the mesh (column `x`, row `y`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Column, 0 at the NI edge.
    pub x: u8,
    /// Row.
    pub y: u8,
}

impl Coord {
    /// Construct a coordinate.
    pub fn new(x: u8, y: u8) -> Coord {
        Coord { x, y }
    }

    /// Manhattan distance between two coordinates.
    pub fn manhattan(self, other: Coord) -> u32 {
        (self.x.abs_diff(other.x) + self.y.abs_diff(other.y)) as u32
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// An addressable endpoint of the on-chip interconnect.
///
/// In the mesh organization, every core tile also hosts an LLC/directory
/// bank; the NI blocks (RRPPs and RGP/RCP backends) extend the mesh on the
/// west edge and memory controllers on the east edge, each with a dedicated
/// router port (Fig. 2 of the paper). In NOC-Out, the LLC tiles are separate
/// [`NocNode::Llc`] nodes on the flattened butterfly (§6.3, Fig. 8).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum NocNode {
    /// A core tile.
    Tile(Coord),
    /// A NOC-Out LLC tile (column index). Mesh chips do not use this.
    Llc(u8),
    /// An NI block attached west of mesh row `r` (RRPP + backends).
    NiBlock(u8),
    /// A memory controller attached east of row `r` (mesh) or on the
    /// flattened butterfly (NOC-Out).
    Mc(u8),
}

impl NocNode {
    /// Convenience constructor for a tile node.
    pub fn tile(x: u8, y: u8) -> NocNode {
        NocNode::Tile(Coord::new(x, y))
    }
}

/// Virtual-network classes. Each class gets its own buffers end to end so
/// protocol messages of different kinds can never block one another
/// (protocol-deadlock avoidance), and so routing policies can be assigned
/// per class (§4.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MessageClass {
    /// Coherence requests from L1/NI caches to a directory (GetS/GetX/Put).
    CohReq,
    /// Directory-sourced forwards and invalidations to owners/sharers.
    CohFwd,
    /// Data and acknowledgment responses terminating a coherence transaction.
    CohResp,
    /// LLC-to-MC fill reads and writebacks ("memory requests" in CDR).
    MemReq,
    /// MC-to-LLC fill data ("memory responses" in CDR).
    MemResp,
    /// NI frontend/backend command traffic (WQ entries, CQ notifications).
    NiCmd,
    /// NI bulk data: unrolled remote requests and response payloads.
    NiData,
}

impl MessageClass {
    /// All classes, in virtual-network index order.
    pub const ALL: [MessageClass; 7] = [
        MessageClass::CohReq,
        MessageClass::CohFwd,
        MessageClass::CohResp,
        MessageClass::MemReq,
        MessageClass::MemResp,
        MessageClass::NiCmd,
        MessageClass::NiData,
    ];

    /// Number of virtual networks.
    pub const COUNT: usize = Self::ALL.len();

    /// Virtual-network index of this class.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MessageClass::CohReq => 0,
            MessageClass::CohFwd => 1,
            MessageClass::CohResp => 2,
            MessageClass::MemReq => 3,
            MessageClass::MemResp => 4,
            MessageClass::NiCmd => 5,
            MessageClass::NiData => 6,
        }
    }
}

/// A NOC packet carrying an upper-layer payload `P`.
#[derive(Clone, Debug)]
pub struct Packet<P> {
    /// Source endpoint (used for statistics and route checks).
    pub src: NocNode,
    /// Destination endpoint.
    pub dst: NocNode,
    /// Virtual network this packet travels on.
    pub class: MessageClass,
    /// Length in 16-byte flits (header included), at least 1.
    pub flits: u8,
    /// True when the message originates at an LLC/directory bank — the
    /// paper's modified CDR routes this class YX (§4.3).
    pub dir_sourced: bool,
    /// Cycle the packet was first offered to the interconnect.
    pub injected_at: Cycle,
    /// Upper-layer message.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Build a packet. `flits` is clamped to at least one.
    pub fn new(
        src: NocNode,
        dst: NocNode,
        class: MessageClass,
        flits: u8,
        payload: P,
    ) -> Packet<P> {
        Packet {
            src,
            dst,
            class,
            flits: flits.max(1),
            dir_sourced: false,
            injected_at: Cycle::ZERO,
            payload,
        }
    }

    /// Mark the packet as directory-sourced (see [`Packet::dir_sourced`]).
    pub fn dir_sourced(mut self) -> Self {
        self.dir_sourced = true;
        self
    }

    /// Size in bytes on the wire.
    pub fn bytes(&self) -> u32 {
        u32::from(self.flits) * FLIT_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_sizing_matches_paper_examples() {
        // §6.1.3: a network request packet encapsulated in a NOC packet
        // takes two flits.
        assert_eq!(flits_for_payload(16, 16), 2);
        // A 64B cache-block data message with an 8B header takes 5 flits.
        assert_eq!(flits_for_payload(64, 8), 5);
        // Control messages are a single flit.
        assert_eq!(flits_for_payload(0, 8), 1);
        assert_eq!(flits_for_payload(0, 0), 1);
    }

    #[test]
    fn coords_measure_manhattan_distance() {
        let a = Coord::new(0, 0);
        let b = Coord::new(7, 3);
        assert_eq!(a.manhattan(b), 10);
        assert_eq!(b.manhattan(a), 10);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn class_indices_are_dense_and_unique() {
        let mut seen = [false; MessageClass::COUNT];
        for c in MessageClass::ALL {
            assert!(!seen[c.index()], "duplicate index {}", c.index());
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn packet_builder_clamps_flits() {
        let p = Packet::new(
            NocNode::tile(0, 0),
            NocNode::tile(1, 1),
            MessageClass::CohReq,
            0,
            (),
        );
        assert_eq!(p.flits, 1);
        assert_eq!(p.bytes(), 16);
        assert!(!p.dir_sourced);
        assert!(p.dir_sourced().dir_sourced);
    }
}
