//! Routing policies for the mesh: XY, YX, O1Turn, CDR and the paper's
//! modified CDR with a directory-sourced routing class (§4.3).
//!
//! A policy picks a [`RouteKind`] (dimension order) per packet at injection
//! time; the dimension order is then followed deterministically hop by hop.
//! XY-routed and YX-routed packets travel in separate virtual channels, which
//! keeps every policy (including the mixed ones) deadlock-free.

use crate::packet::{Coord, MessageClass, NocNode, Packet};

/// Dimension order a packet follows through the mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RouteKind {
    /// Traverse the X dimension first, then Y.
    Xy,
    /// Traverse the Y dimension first, then X.
    Yx,
}

impl RouteKind {
    /// Sub-channel index (0 or 1) within a virtual network.
    #[inline]
    pub fn lane(self) -> usize {
        match self {
            RouteKind::Xy => 0,
            RouteKind::Yx => 1,
        }
    }
}

/// The routing policies evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RoutingPolicy {
    /// Plain XY dimension-order routing.
    Xy,
    /// Plain YX dimension-order routing.
    Yx,
    /// O1Turn: each packet picks XY or YX uniformly at random (Seo et
    /// al., the paper's reference \[42\]).
    O1Turn,
    /// Class-based deterministic routing (Abts et al., reference \[1\]):
    /// memory requests (LLC to MC
    /// fills and writebacks) route YX, everything else XY.
    Cdr,
    /// The paper's modified CDR: *all* directory-sourced traffic routes YX
    /// so it never turns at the chip edges; the rest routes XY. This is the
    /// default for soNUMA chips (§4.3).
    #[default]
    CdrNi,
}

impl RoutingPolicy {
    /// All policies, for ablation sweeps.
    pub const ALL: [RoutingPolicy; 5] = [
        RoutingPolicy::Xy,
        RoutingPolicy::Yx,
        RoutingPolicy::O1Turn,
        RoutingPolicy::Cdr,
        RoutingPolicy::CdrNi,
    ];

    /// Short name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            RoutingPolicy::Xy => "XY",
            RoutingPolicy::Yx => "YX",
            RoutingPolicy::O1Turn => "O1Turn",
            RoutingPolicy::Cdr => "CDR",
            RoutingPolicy::CdrNi => "CDR+NI",
        }
    }

    /// Pick the dimension order for one packet. `coin` supplies randomness
    /// for O1Turn (a deterministic PRNG owned by the NOC).
    pub fn choose<P>(self, pkt: &Packet<P>, coin: &mut SplitMix) -> RouteKind {
        match self {
            RoutingPolicy::Xy => RouteKind::Xy,
            RoutingPolicy::Yx => RouteKind::Yx,
            RoutingPolicy::O1Turn => {
                if coin.next_bool() {
                    RouteKind::Xy
                } else {
                    RouteKind::Yx
                }
            }
            RoutingPolicy::Cdr => {
                if pkt.class == MessageClass::MemReq {
                    RouteKind::Yx
                } else {
                    RouteKind::Xy
                }
            }
            RoutingPolicy::CdrNi => {
                if pkt.dir_sourced {
                    RouteKind::Yx
                } else {
                    RouteKind::Xy
                }
            }
        }
    }
}

/// Output port of a mesh router.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Port {
    /// Delivery to the tile's local components.
    Local,
    /// Toward row `y - 1`.
    North,
    /// Toward row `y + 1`.
    South,
    /// Toward column `x + 1`.
    East,
    /// Toward column `x - 1`.
    West,
    /// Delivery to the NI block attached west of an edge-column router.
    NiAttach,
    /// Delivery to the memory controller attached east of an edge-column
    /// router.
    McAttach,
}

impl Port {
    /// All ports in index order.
    pub const ALL: [Port; 7] = [
        Port::Local,
        Port::North,
        Port::South,
        Port::East,
        Port::West,
        Port::NiAttach,
        Port::McAttach,
    ];

    /// Number of ports on a mesh router.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index of this port.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Port::Local => 0,
            Port::North => 1,
            Port::South => 2,
            Port::East => 3,
            Port::West => 4,
            Port::NiAttach => 5,
            Port::McAttach => 6,
        }
    }
}

/// Attach point and exit port of a destination node in a mesh of width
/// `width` (NI blocks hang off column 0, MCs off column `width - 1`).
pub fn attach_of(node: NocNode, width: u8) -> (Coord, Port) {
    match node {
        NocNode::Tile(c) => (c, Port::Local),
        NocNode::NiBlock(r) => (Coord::new(0, r), Port::NiAttach),
        NocNode::Mc(r) => (Coord::new(width - 1, r), Port::McAttach),
        NocNode::Llc(_) => panic!("Llc nodes do not exist in a mesh"),
    }
}

/// Compute the next output port at router `here` for a packet bound for
/// `(target, exit)` following dimension order `kind`.
pub fn next_port(here: Coord, target: Coord, exit: Port, kind: RouteKind) -> Port {
    let dx = || {
        if here.x < target.x {
            Some(Port::East)
        } else if here.x > target.x {
            Some(Port::West)
        } else {
            None
        }
    };
    let dy = || {
        if here.y < target.y {
            Some(Port::South)
        } else if here.y > target.y {
            Some(Port::North)
        } else {
            None
        }
    };
    match kind {
        RouteKind::Xy => dx().or_else(dy).unwrap_or(exit),
        RouteKind::Yx => dy().or_else(dx).unwrap_or(exit),
    }
}

/// Small deterministic PRNG (splitmix64) used for O1Turn coin flips and
/// workload jitter inside the NOC. Not cryptographic.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Seeded constructor; the same seed reproduces the same simulation.
    pub fn new(seed: u64) -> SplitMix {
        SplitMix {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MessageClass, NocNode, Packet};

    fn pkt(class: MessageClass, dir_sourced: bool) -> Packet<()> {
        let mut p = Packet::new(NocNode::tile(0, 0), NocNode::tile(7, 7), class, 1, ());
        p.dir_sourced = dir_sourced;
        p
    }

    #[test]
    fn cdr_routes_memory_requests_yx() {
        let mut rng = SplitMix::new(1);
        let p = RoutingPolicy::Cdr;
        assert_eq!(
            p.choose(&pkt(MessageClass::MemReq, true), &mut rng),
            RouteKind::Yx
        );
        assert_eq!(
            p.choose(&pkt(MessageClass::MemResp, false), &mut rng),
            RouteKind::Xy
        );
        assert_eq!(
            p.choose(&pkt(MessageClass::NiData, false), &mut rng),
            RouteKind::Xy
        );
    }

    #[test]
    fn cdr_ni_routes_directory_sourced_yx() {
        let mut rng = SplitMix::new(1);
        let p = RoutingPolicy::CdrNi;
        assert_eq!(
            p.choose(&pkt(MessageClass::CohFwd, true), &mut rng),
            RouteKind::Yx
        );
        assert_eq!(
            p.choose(&pkt(MessageClass::CohResp, true), &mut rng),
            RouteKind::Yx
        );
        assert_eq!(
            p.choose(&pkt(MessageClass::CohReq, false), &mut rng),
            RouteKind::Xy
        );
        assert_eq!(
            p.choose(&pkt(MessageClass::NiData, false), &mut rng),
            RouteKind::Xy
        );
    }

    #[test]
    fn o1turn_uses_both_orders() {
        let mut rng = SplitMix::new(7);
        let p = RoutingPolicy::O1Turn;
        let picks: Vec<_> = (0..64)
            .map(|_| p.choose(&pkt(MessageClass::CohReq, false), &mut rng))
            .collect();
        assert!(picks.contains(&RouteKind::Xy));
        assert!(picks.contains(&RouteKind::Yx));
    }

    #[test]
    fn xy_route_goes_x_first() {
        let here = Coord::new(2, 2);
        let tgt = Coord::new(5, 6);
        assert_eq!(next_port(here, tgt, Port::Local, RouteKind::Xy), Port::East);
        assert_eq!(
            next_port(here, tgt, Port::Local, RouteKind::Yx),
            Port::South
        );
        // Aligned in X: XY continues in Y.
        assert_eq!(
            next_port(Coord::new(5, 2), tgt, Port::Local, RouteKind::Xy),
            Port::South
        );
        // At target: exit port.
        assert_eq!(
            next_port(tgt, tgt, Port::NiAttach, RouteKind::Xy),
            Port::NiAttach
        );
    }

    #[test]
    fn attach_points_hang_off_edges() {
        assert_eq!(
            attach_of(NocNode::NiBlock(3), 8),
            (Coord::new(0, 3), Port::NiAttach)
        );
        assert_eq!(
            attach_of(NocNode::Mc(5), 8),
            (Coord::new(7, 5), Port::McAttach)
        );
        assert_eq!(
            attach_of(NocNode::tile(4, 4), 8),
            (Coord::new(4, 4), Port::Local)
        );
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // below-bound stays below bound
        for _ in 0..100 {
            assert!(a.next_below(7) < 7);
        }
    }
}
