//! The 2D mesh interconnect (Table 2: 8x8 tiles, 16-byte links, 3 cycles/hop).
//!
//! Geometry follows Fig. 2 of the paper: NI blocks (RRPPs plus RGP/RCP
//! backends) extend the mesh west of column 0 with dedicated attach links,
//! memory controllers extend it east of the last column, and the
//! chip-to-chip network router connects to the NI blocks directly (that
//! link is modeled by the SoC layer, not here).

use ni_engine::{Cycle, DelayLine};

use crate::packet::{Coord, NocNode, Packet};
use crate::router::{vq_index, Flight, OutPort, Router, RouterConfig};
use crate::routing::{attach_of, Port, RoutingPolicy, SplitMix};
use crate::stats::NocStats;
use crate::Interconnect;

/// Mesh shape and policy configuration.
#[derive(Clone, Copy, Debug)]
pub struct MeshConfig {
    /// Columns of tiles.
    pub width: u8,
    /// Rows of tiles.
    pub height: u8,
    /// Router buffering and timing.
    pub router: RouterConfig,
    /// Routing policy for all traffic.
    pub policy: RoutingPolicy,
    /// Capacity of each endpoint delivery queue, in flits.
    pub delivery_capacity_flits: u32,
    /// Seed for the O1Turn coin.
    pub seed: u64,
    /// Cycles without any progress (while packets are in flight) after which
    /// [`MeshNoc::tick`] panics with a deadlock diagnostic.
    pub watchdog_cycles: u64,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            width: 8,
            height: 8,
            router: RouterConfig::default(),
            policy: RoutingPolicy::default(),
            delivery_capacity_flits: 40,
            seed: 0x00DA_6115,
            watchdog_cycles: 200_000,
        }
    }
}

/// Where a link event terminates.
#[derive(Debug)]
enum LinkDest<P> {
    /// Arrival into a router input buffer `(router index, port, vq)`.
    RouterIn(usize, usize, usize, Flight<P>),
    /// Delivery into an endpoint queue.
    Endpoint(usize, Packet<P>),
}

/// Per-endpoint delivery buffer plus injection serialization state.
#[derive(Debug)]
struct EndpointPort<P> {
    delivered: std::collections::VecDeque<Packet<P>>,
    /// Flits resident or in flight toward the delivery queue.
    reserved_flits: u32,
    /// Endpoint may inject its next packet at this cycle (16B/cycle port).
    inject_ready_at: Cycle,
}

impl<P> Default for EndpointPort<P> {
    fn default() -> Self {
        EndpointPort {
            delivered: std::collections::VecDeque::new(),
            reserved_flits: 0,
            inject_ready_at: Cycle::ZERO,
        }
    }
}

/// The mesh NOC.
///
/// ```
/// use ni_engine::Cycle;
/// use ni_noc::{Interconnect, MeshConfig, MeshNoc, MessageClass, NocNode, Packet};
///
/// let mut noc: MeshNoc<u32> = MeshNoc::new(MeshConfig::default());
/// let pkt = Packet::new(NocNode::tile(3, 3), NocNode::tile(0, 3), MessageClass::CohReq, 1, 7);
/// noc.try_inject(Cycle(0), pkt).unwrap();
/// let mut now = Cycle(0);
/// let got = loop {
///     noc.tick(now);
///     if let Some(p) = noc.eject(NocNode::tile(0, 3)) {
///         break p;
///     }
///     now += 1;
///     assert!(now.0 < 1000);
/// };
/// assert_eq!(got.payload, 7);
/// ```
#[derive(Debug)]
pub struct MeshNoc<P> {
    cfg: MeshConfig,
    routers: Vec<Router<P>>,
    endpoints: Vec<EndpointPort<P>>,
    links: DelayLine<LinkDest<P>>,
    rng: SplitMix,
    stats: NocStats,
    in_flight: u64,
    last_progress: Cycle,
    /// Reusable grant scratch buffer.
    grants: Vec<(usize, usize)>,
}

impl<P> MeshNoc<P> {
    /// Build a mesh from `cfg`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(cfg: MeshConfig) -> MeshNoc<P> {
        assert!(
            cfg.width > 0 && cfg.height > 0,
            "mesh dimensions must be non-zero"
        );
        let routers = (0..cfg.height)
            .flat_map(|y| (0..cfg.width).map(move |x| Router::new(Coord::new(x, y))))
            .collect();
        let n_endpoints = cfg.width as usize * cfg.height as usize + 2 * cfg.height as usize;
        MeshNoc {
            cfg,
            routers,
            endpoints: (0..n_endpoints).map(|_| EndpointPort::default()).collect(),
            links: DelayLine::new(),
            rng: SplitMix::new(cfg.seed),
            stats: NocStats::default(),
            in_flight: 0,
            last_progress: Cycle::ZERO,
            grants: Vec::new(),
        }
    }

    /// Mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    fn router_index(&self, c: Coord) -> usize {
        usize::from(c.y) * usize::from(self.cfg.width) + usize::from(c.x)
    }

    /// Dense endpoint index: tiles, then NI blocks, then MCs.
    fn endpoint_index(&self, node: NocNode) -> usize {
        let tiles = usize::from(self.cfg.width) * usize::from(self.cfg.height);
        match node {
            NocNode::Tile(c) => self.router_index(c),
            NocNode::NiBlock(r) => tiles + usize::from(r),
            NocNode::Mc(r) => tiles + usize::from(self.cfg.height) + usize::from(r),
            NocNode::Llc(_) => panic!("Llc nodes do not exist in a mesh"),
        }
    }

    /// Coordinate of the router on the far side of `port` from `c`, if any.
    fn neighbor(&self, c: Coord, port: Port) -> Option<Coord> {
        match port {
            Port::North if c.y > 0 => Some(Coord::new(c.x, c.y - 1)),
            Port::South if c.y + 1 < self.cfg.height => Some(Coord::new(c.x, c.y + 1)),
            Port::East if c.x + 1 < self.cfg.width => Some(Coord::new(c.x + 1, c.y)),
            Port::West if c.x > 0 => Some(Coord::new(c.x - 1, c.y)),
            _ => None,
        }
    }

    /// Input port on the downstream router fed by an upstream `port` output.
    fn opposite(port: Port) -> Port {
        match port {
            Port::North => Port::South,
            Port::South => Port::North,
            Port::East => Port::West,
            Port::West => Port::East,
            p => p,
        }
    }

    /// The endpoint node delivered to by output `port` of router at `c`.
    fn delivery_node(&self, c: Coord, port: Port) -> NocNode {
        match port {
            Port::Local => NocNode::Tile(c),
            Port::NiAttach => NocNode::NiBlock(c.y),
            Port::McAttach => NocNode::Mc(c.y),
            _ => unreachable!("not a delivery port"),
        }
    }

    /// True when a transfer from column `from_x` toward `port` crosses the
    /// central vertical bisection.
    fn crosses_bisection(&self, from_x: u8, port: Port) -> bool {
        let cut = self.cfg.width / 2;
        match port {
            Port::East => from_x + 1 == cut,
            Port::West => from_x == cut,
            _ => false,
        }
    }

    /// Injection attach point for a source node: `(router, input port)`.
    fn inject_port(&self, src: NocNode) -> (Coord, Port) {
        match src {
            NocNode::Tile(c) => (c, Port::Local),
            NocNode::NiBlock(r) => (Coord::new(0, r), Port::NiAttach),
            NocNode::Mc(r) => (Coord::new(self.cfg.width - 1, r), Port::McAttach),
            NocNode::Llc(_) => panic!("Llc nodes do not exist in a mesh"),
        }
    }

    /// Move ready link events into their destination buffers.
    fn absorb_arrivals(&mut self, now: Cycle) {
        while let Some(ev) = self.links.pop_ready(now) {
            match ev {
                LinkDest::RouterIn(r, port, vq, flight) => {
                    self.routers[r].accept(port, vq, flight);
                }
                LinkDest::Endpoint(idx, pkt) => {
                    self.stats
                        .record_delivery(pkt.class, pkt.flits, pkt.injected_at, now);
                    self.endpoints[idx].delivered.push_back(pkt);
                    self.in_flight -= 1;
                    self.last_progress = now;
                }
            }
        }
    }

    /// One grant pass over every output port of every active router.
    fn arbitrate(&mut self, now: Cycle) {
        // Phase A: decide grants. Each (router, output) pair feeds a distinct
        // downstream buffer, so decisions are independent within a cycle.
        self.grants.clear();
        for r_idx in 0..self.routers.len() {
            if self.routers[r_idx].queued_packets == 0 {
                continue;
            }
            for port in Port::ALL {
                let p_idx = port.index();
                if self.routers[r_idx].outputs[p_idx].busy_until > now
                    || self.routers[r_idx].outputs[p_idx].candidates.is_empty()
                {
                    continue;
                }
                if let Some(slot) = self.pick_candidate(r_idx, port, now) {
                    self.grants.push((r_idx, p_idx));
                    // Rotate losers later; record chosen slot by moving it to
                    // the ring front so phase B pops the right entry.
                    let ring = &mut self.routers[r_idx].outputs[p_idx].candidates;
                    if slot != 0 {
                        let entry = ring.remove(slot).expect("slot in ring");
                        ring.push_front(entry);
                    }
                } else {
                    // Head-of-ring can't move: rotate for fairness.
                    let ring = &mut self.routers[r_idx].outputs[p_idx].candidates;
                    if let Some(e) = ring.pop_front() {
                        ring.push_back(e);
                    }
                }
            }
        }
        // Phase B: apply grants.
        for g in std::mem::take(&mut self.grants) {
            self.apply_grant(g.0, g.1, now);
        }
    }

    /// Find the first grantable candidate (within the arbitration window) of
    /// output `port` on router `r_idx`. Returns its ring slot.
    fn pick_candidate(&self, r_idx: usize, port: Port, _now: Cycle) -> Option<usize> {
        let router = &self.routers[r_idx];
        let ring = &router.outputs[port.index()].candidates;
        let window = self.cfg.router.arbitration_window.min(ring.len());
        for (slot, &(in_port, vq)) in ring.iter().enumerate().take(window) {
            let head = router.inputs[usize::from(in_port)][usize::from(vq)]
                .head()
                .expect("registered candidate has a head");
            let flits = head.pkt.flits;
            let ok = match port {
                Port::North | Port::South | Port::East | Port::West => {
                    let n = self
                        .neighbor(router.coord, port)
                        .expect("mesh route never exits the grid");
                    let n_idx = self.router_index(n);
                    self.routers[n_idx].free_flits(
                        Self::opposite(port).index(),
                        usize::from(vq),
                        self.cfg.router.vq_capacity_flits,
                    ) >= u32::from(flits)
                }
                Port::Local | Port::NiAttach | Port::McAttach => {
                    let e = self.endpoint_index(self.delivery_node(router.coord, port));
                    self.cfg
                        .delivery_capacity_flits
                        .saturating_sub(self.endpoints[e].reserved_flits)
                        >= u32::from(flits)
                }
            };
            if ok {
                return Some(slot);
            }
        }
        None
    }

    /// Execute a grant: move the head of the winning queue onto the link.
    fn apply_grant(&mut self, r_idx: usize, p_idx: usize, now: Cycle) {
        let port = Port::ALL[p_idx];
        let (in_port, vq) = self.routers[r_idx].outputs[p_idx]
            .candidates
            .pop_front()
            .expect("grant requires a candidate");
        let flight = self.routers[r_idx].take_granted(usize::from(in_port), usize::from(vq));
        let flits = flight.pkt.flits;
        let coord = self.routers[r_idx].coord;
        let out: &mut OutPort = &mut self.routers[r_idx].outputs[p_idx];
        out.busy_until = now + u64::from(flits);
        self.last_progress = now;
        match port {
            Port::North | Port::South | Port::East | Port::West => {
                let n = self.neighbor(coord, port).expect("grant checked neighbor");
                let n_idx = self.router_index(n);
                self.routers[n_idx].reserve(Self::opposite(port).index(), usize::from(vq), flits);
                self.stats
                    .record_hop(flits, self.crosses_bisection(coord.x, port));
                self.links.push_at(
                    now + self.cfg.router.hop_latency,
                    LinkDest::RouterIn(
                        n_idx,
                        Self::opposite(port).index(),
                        usize::from(vq),
                        flight,
                    ),
                );
            }
            Port::Local | Port::NiAttach | Port::McAttach => {
                let node = self.delivery_node(coord, port);
                let e = self.endpoint_index(node);
                self.endpoints[e].reserved_flits += u32::from(flits);
                if port != Port::Local {
                    // Attach links are real wires (Fig. 2); count them.
                    self.stats.record_hop(flits, false);
                }
                self.links
                    .push_at(now + 1, LinkDest::Endpoint(e, flight.pkt));
            }
        }
    }

    fn check_watchdog(&self, now: Cycle) {
        if self.in_flight > 0 && now.saturating_since(self.last_progress) > self.cfg.watchdog_cycles
        {
            panic!(
                "mesh NOC watchdog: {} packets in flight with no progress since {:?} (now {:?})",
                self.in_flight, self.last_progress, now
            );
        }
    }
}

impl<P> Interconnect<P> for MeshNoc<P> {
    fn try_inject(&mut self, now: Cycle, mut pkt: Packet<P>) -> Result<(), Packet<P>> {
        let (coord, port) = self.inject_port(pkt.src);
        let src_idx = self.endpoint_index(pkt.src);
        if self.endpoints[src_idx].inject_ready_at > now {
            self.stats.inject_rejects.incr();
            return Err(pkt);
        }
        let route = self.cfg.policy.choose(&pkt, &mut self.rng);
        let vq = vq_index(pkt.class, route);
        let r_idx = self.router_index(coord);
        if self.routers[r_idx].free_flits(port.index(), vq, self.cfg.router.vq_capacity_flits)
            < u32::from(pkt.flits)
        {
            self.stats.inject_rejects.incr();
            return Err(pkt);
        }
        pkt.injected_at = now;
        let (target, exit) = attach_of(pkt.dst, self.cfg.width);
        let flits = pkt.flits;
        self.routers[r_idx].reserve(port.index(), vq, flits);
        self.routers[r_idx].accept(
            port.index(),
            vq,
            Flight {
                pkt,
                route,
                target,
                exit,
            },
        );
        // Injection port serializes at one flit per cycle.
        self.endpoints[src_idx].inject_ready_at = now + u64::from(flits);
        self.in_flight += 1;
        self.stats.injected_packets.incr();
        self.last_progress = now;
        Ok(())
    }

    fn eject(&mut self, node: NocNode) -> Option<Packet<P>> {
        let e = self.endpoint_index(node);
        let pkt = self.endpoints[e].delivered.pop_front()?;
        self.endpoints[e].reserved_flits -= u32::from(pkt.flits);
        Some(pkt)
    }

    fn tick(&mut self, now: Cycle) {
        self.absorb_arrivals(now);
        self.arbitrate(now);
        self.check_watchdog(now);
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn is_idle(&self) -> bool {
        self.in_flight == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::MessageClass;

    fn run_until_delivered(
        noc: &mut MeshNoc<u64>,
        dst: NocNode,
        start: Cycle,
        limit: u64,
    ) -> (Packet<u64>, Cycle) {
        let mut now = start;
        loop {
            noc.tick(now);
            if let Some(p) = noc.eject(dst) {
                return (p, now);
            }
            now += 1;
            assert!(now.0 < start.0 + limit, "packet not delivered in time");
        }
    }

    #[test]
    fn single_hop_latency_is_small() {
        let mut noc: MeshNoc<u64> = MeshNoc::new(MeshConfig::default());
        let pkt = Packet::new(
            NocNode::tile(1, 0),
            NocNode::tile(0, 0),
            MessageClass::CohReq,
            1,
            1,
        );
        noc.try_inject(Cycle(0), pkt).unwrap();
        let (_, when) = run_until_delivered(&mut noc, NocNode::tile(0, 0), Cycle(0), 100);
        // One mesh hop (3 cycles) + delivery: well under 10 cycles.
        assert!(when.0 <= 10, "one hop took {} cycles", when.0);
    }

    #[test]
    fn latency_scales_with_hops() {
        let mut noc: MeshNoc<u64> = MeshNoc::new(MeshConfig::default());
        noc.try_inject(
            Cycle(0),
            Packet::new(
                NocNode::tile(7, 7),
                NocNode::tile(0, 0),
                MessageClass::CohReq,
                1,
                1,
            ),
        )
        .unwrap();
        let (_, when) = run_until_delivered(&mut noc, NocNode::tile(0, 0), Cycle(0), 200);
        // 14 hops at 3 cycles plus delivery.
        assert!(when.0 >= 14 * 3, "too fast: {}", when.0);
        assert!(when.0 <= 14 * 4 + 10, "too slow: {}", when.0);
    }

    #[test]
    fn delivers_to_ni_block_and_mc() {
        let mut noc: MeshNoc<u64> = MeshNoc::new(MeshConfig::default());
        noc.try_inject(
            Cycle(0),
            Packet::new(
                NocNode::tile(4, 2),
                NocNode::NiBlock(2),
                MessageClass::NiData,
                2,
                11,
            ),
        )
        .unwrap();
        let (p, _) = run_until_delivered(&mut noc, NocNode::NiBlock(2), Cycle(0), 200);
        assert_eq!(p.payload, 11);

        noc.try_inject(
            Cycle(100),
            Packet::new(
                NocNode::NiBlock(0),
                NocNode::Mc(5),
                MessageClass::MemReq,
                1,
                12,
            ),
        )
        .unwrap();
        let (p, _) = run_until_delivered(&mut noc, NocNode::Mc(5), Cycle(100), 300);
        assert_eq!(p.payload, 12);
    }

    #[test]
    fn injection_port_serializes() {
        let mut noc: MeshNoc<u64> = MeshNoc::new(MeshConfig::default());
        let mk = |id| {
            Packet::new(
                NocNode::tile(3, 3),
                NocNode::tile(0, 3),
                MessageClass::NiData,
                5,
                id,
            )
        };
        noc.try_inject(Cycle(0), mk(1)).unwrap();
        // Second 5-flit packet must wait 5 cycles for the injection port.
        assert!(noc.try_inject(Cycle(1), mk(2)).is_err());
        assert!(noc.try_inject(Cycle(5), mk(2)).is_ok());
        assert_eq!(noc.stats().inject_rejects.get(), 1);
    }

    #[test]
    fn all_policies_deliver_cross_traffic() {
        for policy in RoutingPolicy::ALL {
            let cfg = MeshConfig {
                policy,
                ..MeshConfig::default()
            };
            let mut noc: MeshNoc<u64> = MeshNoc::new(cfg);
            let mut now = Cycle(0);
            let mut expected = Vec::new();
            for i in 0..8u8 {
                let pkt = Packet::new(
                    NocNode::tile(i % 8, (i * 3) % 8),
                    NocNode::tile((7 - i) % 8, (i * 5) % 8),
                    MessageClass::CohResp,
                    5,
                    u64::from(i),
                );
                let dst = pkt.dst;
                // Stagger injections so each endpoint port is free.
                while noc.try_inject(now, pkt.clone()).is_err() {
                    noc.tick(now);
                    now += 1;
                }
                expected.push((dst, u64::from(i)));
            }
            let mut got = 0;
            for _ in 0..2000 {
                noc.tick(now);
                for (dst, _) in &expected {
                    if noc.eject(*dst).is_some() {
                        got += 1;
                    }
                }
                now += 1;
                if got == expected.len() {
                    break;
                }
            }
            assert_eq!(got, expected.len(), "policy {policy:?} lost packets");
            assert!(noc.is_idle());
        }
    }

    #[test]
    fn bisection_counted_for_cross_chip_traffic() {
        let mut noc: MeshNoc<u64> = MeshNoc::new(MeshConfig::default());
        noc.try_inject(
            Cycle(0),
            Packet::new(
                NocNode::tile(0, 0),
                NocNode::tile(7, 0),
                MessageClass::NiData,
                5,
                1,
            ),
        )
        .unwrap();
        run_until_delivered(&mut noc, NocNode::tile(7, 0), Cycle(0), 200);
        assert_eq!(noc.stats().bisection_flits.get(), 5);
    }

    #[test]
    fn backpressure_rejects_when_buffers_full() {
        let cfg = MeshConfig {
            router: RouterConfig {
                vq_capacity_flits: 5,
                ..RouterConfig::default()
            },
            ..MeshConfig::default()
        };
        let mut noc: MeshNoc<u64> = MeshNoc::new(cfg);
        let mk = |src: NocNode| Packet::new(src, NocNode::tile(0, 0), MessageClass::NiData, 5, 9);
        // Fill the injection buffer at (1,0): first packet sits, second is
        // rejected for buffer space (after the port becomes free again).
        noc.try_inject(Cycle(0), mk(NocNode::tile(1, 0))).unwrap();
        let r = noc.try_inject(Cycle(5), mk(NocNode::tile(1, 0)));
        // Either still serializing or buffer full; after ticking it drains.
        assert!(r.is_err() || noc.stats().inject_rejects.get() == 0);
    }
}
