//! NOC-Out interconnect (§6.3, Fig. 8; Lotfi-Kamran et al., MICRO 2012).
//!
//! Eight LLC tiles form a row in the middle of the chip, richly connected by
//! a flattened butterfly (2 tiles/cycle). The 64 cores sit in eight columns,
//! four above and four below the LLC row, each column chained to its LLC
//! tile by 1-cycle-per-hop reduction (up) and dispersion (down) networks.
//! Memory controllers and the chip-to-chip router hang off the butterfly.
//!
//! Unlike the mesh there is no adaptive routing: every (src, dst) pair has a
//! unique path, so packets are *source-routed* through a station graph. Each
//! station forwards at 16B/cycle per outgoing wire with three virtual-queue
//! groups (request / forward / response) for protocol-deadlock freedom.
//!
//! NI placement in this topology (paper §6.3): RRPPs and RGP/RCP backends
//! live at the LLC tiles ("NImiddle"), addressed as [`NocNode::NiBlock`]\(c\)
//! aliases of LLC tile `c`, so the RMC layer is topology-agnostic.

use std::collections::VecDeque;

use ni_engine::{Cycle, DelayLine};

use crate::packet::{Coord, MessageClass, NocNode, Packet};
use crate::stats::NocStats;
use crate::Interconnect;

/// Number of virtual-queue groups on NOC-Out links.
const NUM_GROUPS: usize = 3;

/// Map a message class to its queue group (requests / forwards / responses).
fn group_of(class: MessageClass) -> usize {
    match class {
        MessageClass::CohReq | MessageClass::MemReq => 0,
        MessageClass::CohFwd | MessageClass::NiCmd => 1,
        MessageClass::CohResp | MessageClass::MemResp | MessageClass::NiData => 2,
    }
}

/// NOC-Out configuration.
#[derive(Clone, Copy, Debug)]
pub struct NocOutConfig {
    /// Columns (= LLC tiles = cores per row). The paper uses 8.
    pub columns: u8,
    /// Cores per column (half above, half below the LLC row). Paper: 8.
    pub cores_per_column: u8,
    /// Tiles traversed per cycle on the flattened butterfly (Table 2: 2).
    pub butterfly_tiles_per_cycle: u8,
    /// Per-queue capacity in flits.
    pub queue_capacity_flits: u32,
    /// Delivery queue capacity per endpoint, in flits.
    pub delivery_capacity_flits: u32,
    /// Watchdog horizon (cycles without progress while loaded).
    pub watchdog_cycles: u64,
}

impl Default for NocOutConfig {
    fn default() -> Self {
        NocOutConfig {
            columns: 8,
            cores_per_column: 8,
            butterfly_tiles_per_cycle: 2,
            queue_capacity_flits: 16,
            delivery_capacity_flits: 40,
            watchdog_cycles: 200_000,
        }
    }
}

/// A packet in flight with its remaining source route.
#[derive(Debug)]
struct Flight<P> {
    pkt: Packet<P>,
    /// Remaining stations to visit; the current station is not included.
    path: VecDeque<u16>,
    /// Delivery endpoint index once the path is exhausted.
    endpoint: usize,
}

/// One queue at a station, keyed by the next station it feeds.
#[derive(Debug)]
struct WireQueue<P> {
    next: u16,
    /// Wire is serializing until this cycle.
    busy_until: Cycle,
    /// Wire latency in cycles.
    latency: u64,
    groups: [VecDeque<Flight<P>>; NUM_GROUPS],
    /// Flits resident or reserved per group.
    reserved: [u32; NUM_GROUPS],
    /// Round-robin pointer over groups.
    rr: usize,
}

impl<P> WireQueue<P> {
    fn new(next: u16, latency: u64) -> Self {
        WireQueue {
            next,
            busy_until: Cycle::ZERO,
            latency,
            groups: Default::default(),
            reserved: [0; NUM_GROUPS],
            rr: 0,
        }
    }

    fn total_queued(&self) -> usize {
        self.groups.iter().map(VecDeque::len).sum()
    }
}

/// A station of the NOC-Out graph (a core tile, an LLC tile, or an MC).
#[derive(Debug)]
struct Station<P> {
    wires: Vec<WireQueue<P>>,
    queued: u32,
}

impl<P> Station<P> {
    fn wire_to(&self, next: u16) -> Option<usize> {
        self.wires.iter().position(|w| w.next == next)
    }
}

/// Per-endpoint delivery buffer and injection port.
#[derive(Debug)]
struct EndpointPort<P> {
    delivered: VecDeque<Packet<P>>,
    reserved_flits: u32,
    inject_ready_at: Cycle,
}

impl<P> Default for EndpointPort<P> {
    fn default() -> Self {
        EndpointPort {
            delivered: VecDeque::new(),
            reserved_flits: 0,
            inject_ready_at: Cycle::ZERO,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum WireEnd {
    Station(u16),
    Endpoint(usize),
}

/// The NOC-Out interconnect.
#[derive(Debug)]
pub struct NocOutNoc<P> {
    cfg: NocOutConfig,
    stations: Vec<Station<P>>,
    endpoints: Vec<EndpointPort<P>>,
    /// In-flight wire traversals.
    links: DelayLine<(WireEnd, Flight<P>)>,
    stats: NocStats,
    in_flight: u64,
    last_progress: Cycle,
}

impl<P> NocOutNoc<P> {
    /// Build the station graph for `cfg`.
    ///
    /// # Panics
    /// Panics if `columns == 0` or `cores_per_column` is odd or zero.
    pub fn new(cfg: NocOutConfig) -> NocOutNoc<P> {
        assert!(cfg.columns > 0, "need at least one column");
        assert!(
            cfg.cores_per_column > 0 && cfg.cores_per_column.is_multiple_of(2),
            "cores per column must be even (half above, half below the LLC row)"
        );
        let cols = usize::from(cfg.columns);
        let cpc = usize::from(cfg.cores_per_column);
        let n_cores = cols * cpc;
        let n_stations = n_cores + cols /* LLC */ + cols /* MC */;
        let mut stations: Vec<Station<P>> = (0..n_stations)
            .map(|_| Station {
                wires: Vec::new(),
                queued: 0,
            })
            .collect();

        let this = |x: usize, y: usize| (y * cols + x) as u16;
        let llc = |c: usize| (n_cores + c) as u16;
        let mc = |c: usize| (n_cores + cols + c) as u16;
        let half = cpc / 2;

        // Column chains. Rows 0..half sit north of the LLC row (row half-1
        // is depth 1); rows half..cpc sit south (row half is depth 1).
        for c in 0..cols {
            for y in 0..cpc {
                let toward_llc: u16 = if y < half {
                    if y + 1 < half {
                        this(c, y + 1)
                    } else {
                        llc(c)
                    }
                } else if y == half {
                    llc(c)
                } else {
                    this(c, y - 1)
                };
                stations[this(c, y) as usize]
                    .wires
                    .push(WireQueue::new(toward_llc, 1));
                // Matching down wire from the inner neighbour back out.
                stations[toward_llc as usize]
                    .wires
                    .push(WireQueue::new(this(c, y), 1));
            }
        }
        // Flattened butterfly: all-to-all among LLC tiles and MCs.
        let fb_latency = |a: usize, b: usize| {
            let tiles = a.abs_diff(b).max(1) as u64;
            tiles
                .div_ceil(u64::from(cfg.butterfly_tiles_per_cycle))
                .max(1)
        };
        let fb_nodes: Vec<u16> = (0..cols).map(llc).chain((0..cols).map(mc)).collect();
        for (i, &a) in fb_nodes.iter().enumerate() {
            for (j, &b) in fb_nodes.iter().enumerate() {
                if i != j {
                    let lat = fb_latency(i % cols, j % cols);
                    stations[a as usize].wires.push(WireQueue::new(b, lat));
                }
            }
        }

        let n_endpoints = n_cores + cols /* llc */ + cols /* niblock */ + cols /* mc */;
        NocOutNoc {
            cfg,
            stations,
            endpoints: (0..n_endpoints).map(|_| EndpointPort::default()).collect(),
            links: DelayLine::new(),
            stats: NocStats::default(),
            in_flight: 0,
            last_progress: Cycle::ZERO,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &NocOutConfig {
        &self.cfg
    }

    fn n_cores(&self) -> usize {
        usize::from(self.cfg.columns) * usize::from(self.cfg.cores_per_column)
    }

    /// Station hosting `node`.
    fn station_of(&self, node: NocNode) -> u16 {
        let cols = usize::from(self.cfg.columns);
        match node {
            NocNode::Tile(c) => (usize::from(c.y) * cols + usize::from(c.x)) as u16,
            NocNode::Llc(c) | NocNode::NiBlock(c) => (self.n_cores() + usize::from(c)) as u16,
            NocNode::Mc(r) => (self.n_cores() + cols + usize::from(r)) as u16,
        }
    }

    /// Dense endpoint index for delivery queues.
    fn endpoint_index(&self, node: NocNode) -> usize {
        let cols = usize::from(self.cfg.columns);
        let cores = self.n_cores();
        match node {
            NocNode::Tile(c) => usize::from(c.y) * cols + usize::from(c.x),
            NocNode::Llc(c) => cores + usize::from(c),
            NocNode::NiBlock(c) => cores + cols + usize::from(c),
            NocNode::Mc(r) => cores + 2 * cols + usize::from(r),
        }
    }

    /// LLC tile station of a core's column.
    fn column_llc(&self, c: Coord) -> u16 {
        (self.n_cores() + usize::from(c.x)) as u16
    }

    /// Stations between a core and its LLC tile, in the up direction
    /// (excluding the core itself, including the LLC station).
    fn chain_up(&self, c: Coord) -> Vec<u16> {
        let cols = usize::from(self.cfg.columns);
        let half = usize::from(self.cfg.cores_per_column) / 2;
        let mut path = Vec::new();
        let y = usize::from(c.y);
        if y < half {
            for yy in (y + 1)..half {
                path.push((yy * cols + usize::from(c.x)) as u16);
            }
        } else {
            for yy in (half..y).rev() {
                path.push((yy * cols + usize::from(c.x)) as u16);
            }
        }
        path.push(self.column_llc(c));
        path
    }

    /// Stations from an LLC tile down to a core (excluding the LLC,
    /// including the core).
    fn chain_down(&self, c: Coord) -> Vec<u16> {
        let mut p = self.chain_up(c);
        p.pop(); // drop the LLC
        p.reverse();
        let cols = usize::from(self.cfg.columns);
        p.push((usize::from(c.y) * cols + usize::from(c.x)) as u16);
        p
    }

    /// Full source route from `src` to `dst` (excluding the source station).
    fn route(&self, src: NocNode, dst: NocNode) -> VecDeque<u16> {
        let mut path = VecDeque::new();
        let src_fb = !matches!(src, NocNode::Tile(_));
        let dst_fb = !matches!(dst, NocNode::Tile(_));
        match (src, dst) {
            (NocNode::Tile(a), NocNode::Tile(b)) => {
                path.extend(self.chain_up(a));
                if a.x != b.x {
                    path.push_back(self.column_llc(b));
                }
                path.extend(self.chain_down(b));
            }
            (NocNode::Tile(a), _) if dst_fb => {
                path.extend(self.chain_up(a));
                let d = self.station_of(dst);
                if *path.back().expect("chain is non-empty") != d {
                    path.push_back(d);
                }
            }
            (_, NocNode::Tile(b)) if src_fb => {
                let s = self.station_of(src);
                let l = self.column_llc(b);
                if s != l {
                    path.push_back(l);
                }
                path.extend(self.chain_down(b));
            }
            _ => {
                let s = self.station_of(src);
                let d = self.station_of(dst);
                if s != d {
                    path.push_back(d);
                }
            }
        }
        path
    }

    fn absorb_arrivals(&mut self, now: Cycle) {
        while let Some((end, flight)) = self.links.pop_ready(now) {
            match end {
                WireEnd::Station(s) => {
                    self.enqueue_at(s, flight);
                }
                WireEnd::Endpoint(e) => {
                    self.stats.record_delivery(
                        flight.pkt.class,
                        flight.pkt.flits,
                        flight.pkt.injected_at,
                        now,
                    );
                    self.endpoints[e].delivered.push_back(flight.pkt);
                    self.in_flight -= 1;
                    self.last_progress = now;
                }
            }
        }
    }

    /// Place an arrived flight into the queue feeding its next wire at `s`.
    /// Space was reserved at grant/injection time.
    fn enqueue_at(&mut self, s: u16, flight: Flight<P>) {
        let g = group_of(flight.pkt.class);
        let key = flight.path.front().copied().unwrap_or(s);
        let st = &mut self.stations[s as usize];
        let w = st.wire_to(key).expect("reservation created the wire queue");
        st.wires[w].groups[g].push_back(flight);
        st.queued += 1;
    }

    /// Reserve space in the queue a flight will join at station `s` en route
    /// to `next` (`None` = terminal delivery at `s`). Returns `false` when
    /// the queue is full.
    fn try_reserve(&mut self, s: u16, next: Option<u16>, class: MessageClass, flits: u8) -> bool {
        let g = group_of(class);
        let key = next.unwrap_or(s);
        let st = &mut self.stations[s as usize];
        let w = match st.wire_to(key) {
            Some(i) => i,
            None if next.is_none() => {
                // Lazily create the local-delivery pseudo-wire.
                st.wires.push(WireQueue::new(s, 1));
                st.wires.len() - 1
            }
            None => panic!("no wire from station {s} to {key}"),
        };
        if self
            .cfg
            .queue_capacity_flits
            .saturating_sub(st.wires[w].reserved[g])
            < u32::from(flits)
        {
            return false;
        }
        st.wires[w].reserved[g] += u32::from(flits);
        true
    }

    fn forward_all(&mut self, now: Cycle) {
        for s in 0..self.stations.len() as u16 {
            if self.stations[s as usize].queued == 0 {
                continue;
            }
            for w in 0..self.stations[s as usize].wires.len() {
                self.forward_wire(s, w, now);
            }
        }
    }

    /// Try to move one flight out of wire queue `w` at station `s`.
    fn forward_wire(&mut self, s: u16, w: usize, now: Cycle) {
        let (next, latency, group) = {
            let wq = &self.stations[s as usize].wires[w];
            if wq.busy_until > now || wq.total_queued() == 0 {
                return;
            }
            let mut chosen = None;
            for k in 0..NUM_GROUPS {
                let g = (wq.rr + k) % NUM_GROUPS;
                if !wq.groups[g].is_empty() {
                    chosen = Some(g);
                    break;
                }
            }
            let Some(g) = chosen else { return };
            (wq.next, wq.latency, g)
        };

        if next == s {
            // Local delivery pseudo-wire.
            let (flits, endpoint) = {
                let f = self.stations[s as usize].wires[w].groups[group]
                    .front()
                    .expect("non-empty group");
                (f.pkt.flits, f.endpoint)
            };
            let free = self
                .cfg
                .delivery_capacity_flits
                .saturating_sub(self.endpoints[endpoint].reserved_flits);
            if free < u32::from(flits) {
                return;
            }
            let wq = &mut self.stations[s as usize].wires[w];
            let flight = wq.groups[group].pop_front().expect("checked non-empty");
            wq.reserved[group] -= u32::from(flits);
            wq.busy_until = now + u64::from(flits);
            wq.rr = (group + 1) % NUM_GROUPS;
            self.stations[s as usize].queued -= 1;
            self.endpoints[endpoint].reserved_flits += u32::from(flits);
            self.links
                .push_at(now + 1, (WireEnd::Endpoint(endpoint), flight));
            self.last_progress = now;
            return;
        }

        let (flits, class, after_next) = {
            let f = self.stations[s as usize].wires[w].groups[group]
                .front()
                .expect("non-empty group");
            (f.pkt.flits, f.pkt.class, f.path.get(1).copied())
        };
        if !self.try_reserve(next, after_next, class, flits) {
            return;
        }
        let wq = &mut self.stations[s as usize].wires[w];
        let mut flight = wq.groups[group].pop_front().expect("checked non-empty");
        wq.reserved[group] -= u32::from(flits);
        wq.busy_until = now + u64::from(flits);
        wq.rr = (group + 1) % NUM_GROUPS;
        self.stations[s as usize].queued -= 1;
        flight.path.pop_front();
        self.stats.record_hop(flits, false);
        self.links
            .push_at(now + latency, (WireEnd::Station(next), flight));
        self.last_progress = now;
    }
}

impl<P> Interconnect<P> for NocOutNoc<P> {
    fn try_inject(&mut self, now: Cycle, mut pkt: Packet<P>) -> Result<(), Packet<P>> {
        let src_idx = self.endpoint_index(pkt.src);
        if self.endpoints[src_idx].inject_ready_at > now {
            self.stats.inject_rejects.incr();
            return Err(pkt);
        }
        let s = self.station_of(pkt.src);
        let path = self.route(pkt.src, pkt.dst);
        let next = path.front().copied();
        if !self.try_reserve(s, next, pkt.class, pkt.flits) {
            self.stats.inject_rejects.incr();
            return Err(pkt);
        }
        pkt.injected_at = now;
        let flits = pkt.flits;
        let endpoint = self.endpoint_index(pkt.dst);
        self.endpoints[src_idx].inject_ready_at = now + u64::from(flits);
        self.in_flight += 1;
        self.stats.injected_packets.incr();
        self.last_progress = now;
        self.enqueue_at(
            s,
            Flight {
                pkt,
                path,
                endpoint,
            },
        );
        Ok(())
    }

    fn eject(&mut self, node: NocNode) -> Option<Packet<P>> {
        let e = self.endpoint_index(node);
        let pkt = self.endpoints[e].delivered.pop_front()?;
        self.endpoints[e].reserved_flits -= u32::from(pkt.flits);
        Some(pkt)
    }

    fn tick(&mut self, now: Cycle) {
        self.absorb_arrivals(now);
        self.forward_all(now);
        if self.in_flight > 0 && now.saturating_since(self.last_progress) > self.cfg.watchdog_cycles
        {
            panic!(
                "NOC-Out watchdog: {} packets stalled since {:?} (now {:?})",
                self.in_flight, self.last_progress, now
            );
        }
    }

    fn stats(&self) -> &NocStats {
        &self.stats
    }

    fn is_idle(&self) -> bool {
        self.in_flight == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(
        noc: &mut NocOutNoc<u32>,
        dst: NocNode,
        mut now: Cycle,
        limit: u64,
    ) -> (Packet<u32>, Cycle) {
        let start = now;
        loop {
            noc.tick(now);
            if let Some(p) = noc.eject(dst) {
                return (p, now);
            }
            now += 1;
            assert!(now.0 < start.0 + limit, "not delivered within {limit}");
        }
    }

    fn send(noc: &mut NocOutNoc<u32>, src: NocNode, dst: NocNode, flits: u8, tag: u32) {
        let pkt = Packet::new(src, dst, MessageClass::CohReq, flits, tag);
        noc.try_inject(Cycle(0), pkt).unwrap();
    }

    #[test]
    fn core_reaches_own_llc_quickly() {
        let mut noc: NocOutNoc<u32> = NocOutNoc::new(NocOutConfig::default());
        // Row 3 is depth 1 north: one hop to the LLC.
        send(&mut noc, NocNode::tile(2, 3), NocNode::Llc(2), 1, 5);
        let (p, when) = deliver(&mut noc, NocNode::Llc(2), Cycle(0), 100);
        assert_eq!(p.payload, 5);
        assert!(when.0 <= 5, "depth-1 core took {} cycles", when.0);
    }

    #[test]
    fn deeper_cores_take_longer() {
        let mut noc: NocOutNoc<u32> = NocOutNoc::new(NocOutConfig::default());
        send(&mut noc, NocNode::tile(2, 0), NocNode::Llc(2), 1, 1);
        let (_, t_deep) = deliver(&mut noc, NocNode::Llc(2), Cycle(0), 100);
        let mut noc2: NocOutNoc<u32> = NocOutNoc::new(NocOutConfig::default());
        send(&mut noc2, NocNode::tile(2, 3), NocNode::Llc(2), 1, 1);
        let (_, t_shallow) = deliver(&mut noc2, NocNode::Llc(2), Cycle(0), 100);
        assert!(
            t_deep > t_shallow,
            "depth 4 {} vs depth 1 {}",
            t_deep.0,
            t_shallow.0
        );
    }

    #[test]
    fn south_side_chains_work_symmetrically() {
        let mut noc: NocOutNoc<u32> = NocOutNoc::new(NocOutConfig::default());
        send(&mut noc, NocNode::tile(3, 7), NocNode::Llc(3), 1, 8);
        let (p, _) = deliver(&mut noc, NocNode::Llc(3), Cycle(0), 100);
        assert_eq!(p.payload, 8);
    }

    #[test]
    fn cross_column_core_to_core() {
        let mut noc: NocOutNoc<u32> = NocOutNoc::new(NocOutConfig::default());
        send(&mut noc, NocNode::tile(0, 0), NocNode::tile(7, 7), 5, 42);
        let (p, _) = deliver(&mut noc, NocNode::tile(7, 7), Cycle(0), 500);
        assert_eq!(p.payload, 42);
        assert!(noc.is_idle());
    }

    #[test]
    fn butterfly_connects_llc_and_mc() {
        let mut noc: NocOutNoc<u32> = NocOutNoc::new(NocOutConfig::default());
        send(&mut noc, NocNode::Llc(0), NocNode::Mc(7), 5, 9);
        let (p, when) = deliver(&mut noc, NocNode::Mc(7), Cycle(0), 100);
        assert_eq!(p.payload, 9);
        // 7 tiles at 2 tiles/cycle: about 4 cycles plus queuing/delivery.
        assert!(when.0 <= 15, "butterfly hop took {}", when.0);
    }

    #[test]
    fn ni_block_aliases_llc_tile_with_separate_queue() {
        let mut noc: NocOutNoc<u32> = NocOutNoc::new(NocOutConfig::default());
        send(&mut noc, NocNode::tile(4, 4), NocNode::NiBlock(4), 2, 77);
        let (p, _) = deliver(&mut noc, NocNode::NiBlock(4), Cycle(0), 100);
        assert_eq!(p.payload, 77);
        assert!(noc.eject(NocNode::Llc(4)).is_none());
    }

    #[test]
    fn chain_sharing_serializes_column_traffic() {
        // Two deep cores of the same column both send 5-flit packets; the
        // shared chain serializes them at the inner station.
        let mut same: NocOutNoc<u32> = NocOutNoc::new(NocOutConfig::default());
        send(&mut same, NocNode::tile(1, 0), NocNode::Llc(1), 5, 1);
        send(&mut same, NocNode::tile(1, 1), NocNode::Llc(1), 5, 2);
        let (_, t1) = deliver(&mut same, NocNode::Llc(1), Cycle(0), 300);
        let (_, t2) = deliver(&mut same, NocNode::Llc(1), t1, 300);
        assert!(t2.0 > t1.0);
    }
}
