//! Interconnect traffic statistics.
//!
//! Tracks the quantities §6.2 of the paper reports: packets and flits moved,
//! aggregate link traffic (the "594GBps of NOC bandwidth" counter), bisection
//! crossings, and per-class packet latency.

use ni_engine::{Counter, Cycle, Frequency, RunningMean};

use crate::packet::{MessageClass, FLIT_BYTES};

/// Aggregate traffic counters for one interconnect instance.
#[derive(Clone, Debug, Default)]
pub struct NocStats {
    /// Packets accepted at injection ports.
    pub injected_packets: Counter,
    /// Packets handed to their destination endpoint.
    pub delivered_packets: Counter,
    /// Flits delivered to endpoints.
    pub delivered_flits: Counter,
    /// Flit-hops: one flit crossing one inter-router or attach link.
    pub flit_hops: Counter,
    /// Flit-hops crossing the vertical bisection of the mesh.
    pub bisection_flits: Counter,
    /// Injection attempts rejected for lack of buffer space.
    pub inject_rejects: Counter,
    /// In-network latency per message class (injection to delivery).
    pub latency_by_class: [RunningMean; MessageClass::COUNT],
    /// Packets delivered per message class.
    pub delivered_by_class: [Counter; MessageClass::COUNT],
}

impl NocStats {
    /// Record a delivery that was injected at `injected_at`.
    pub(crate) fn record_delivery(
        &mut self,
        class: MessageClass,
        flits: u8,
        injected_at: Cycle,
        now: Cycle,
    ) {
        self.delivered_packets.incr();
        self.delivered_flits.add(u64::from(flits));
        self.delivered_by_class[class.index()].incr();
        self.latency_by_class[class.index()].record(now.saturating_since(injected_at));
    }

    /// Record one link traversal of `flits` flits; `crosses_bisection` marks
    /// traversals of the central vertical cut.
    pub(crate) fn record_hop(&mut self, flits: u8, crosses_bisection: bool) {
        self.flit_hops.add(u64::from(flits));
        if crosses_bisection {
            self.bisection_flits.add(u64::from(flits));
        }
    }

    /// Total bytes moved across links, counting every link traversal (a
    /// packet crossing eight links counts eight times). Measures link
    /// utilization, not traffic volume.
    pub fn link_bytes(&self) -> u64 {
        self.flit_hops.get() * u64::from(FLIT_BYTES)
    }

    /// Total bytes delivered to endpoints, counted once per packet — the
    /// paper's aggregate NOC traffic metric (§6.2 reports 594GBps of NOC
    /// packets carrying 214GBps of application data, a 2.7x overhead from
    /// coherence messages and writebacks).
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_flits.get() * u64::from(FLIT_BYTES)
    }

    /// Aggregate NOC bandwidth in GBps over `cycles` at frequency `freq`.
    pub fn aggregate_gbps(&self, cycles: u64, freq: Frequency) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        freq.gbps_from_bytes_per_cycle(self.link_bytes() as f64 / cycles as f64)
    }

    /// Bandwidth crossing the bisection in GBps over `cycles`.
    pub fn bisection_gbps(&self, cycles: u64, freq: Frequency) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        freq.gbps_from_bytes_per_cycle(
            self.bisection_flits.get() as f64 * f64::from(FLIT_BYTES) / cycles as f64,
        )
    }

    /// Mean in-network latency over all classes, in cycles.
    pub fn mean_latency(&self) -> f64 {
        let mut all = RunningMean::new();
        for m in &self.latency_by_class {
            all.merge(m);
        }
        all.mean()
    }

    /// Difference of two snapshots (`self - earlier`) for windowed metrics.
    pub fn delta_link_bytes(&self, earlier: &NocStats) -> u64 {
        self.link_bytes() - earlier.link_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_updates_class_counters() {
        let mut s = NocStats::default();
        s.record_delivery(MessageClass::CohReq, 1, Cycle(10), Cycle(25));
        s.record_delivery(MessageClass::NiData, 5, Cycle(0), Cycle(40));
        assert_eq!(s.delivered_packets.get(), 2);
        assert_eq!(s.delivered_flits.get(), 6);
        assert_eq!(s.delivered_by_class[MessageClass::CohReq.index()].get(), 1);
        assert_eq!(
            s.latency_by_class[MessageClass::CohReq.index()].mean(),
            15.0
        );
        assert!((s.mean_latency() - 27.5).abs() < 1e-9);
    }

    #[test]
    fn hop_accounting_tracks_bisection() {
        let mut s = NocStats::default();
        s.record_hop(5, true);
        s.record_hop(1, false);
        assert_eq!(s.flit_hops.get(), 6);
        assert_eq!(s.bisection_flits.get(), 5);
        assert_eq!(s.link_bytes(), 96);
        // 96 bytes over 6 cycles at 2 GHz = 32 GBps.
        assert!((s.aggregate_gbps(6, Frequency::GHZ2) - 32.0).abs() < 1e-9);
        assert!(s.bisection_gbps(5, Frequency::GHZ2) > 0.0);
        assert_eq!(s.aggregate_gbps(0, Frequency::GHZ2), 0.0);
    }
}
