//! Mesh router microarchitecture.
//!
//! Each router has seven ports ([`Port`]): the four mesh directions, the
//! local tile, and the two edge-attach ports (NI block, memory controller).
//! Every input port holds one FIFO per *virtual queue* — a (message class,
//! dimension-order lane) pair — so different protocol classes never block
//! each other and XY/YX packets occupy disjoint buffers (deadlock freedom
//! for O1Turn and both CDR variants).
//!
//! Arbitration is candidate-driven: whenever a queue's head packet changes,
//! the queue registers with the output port the head wants; each output port
//! grants at most one packet per cycle among its registered candidates in
//! round-robin order, subject to link occupancy (one flit per cycle
//! serialization) and downstream buffer credit.

use std::collections::VecDeque;

use ni_engine::Cycle;

use crate::packet::{Coord, MessageClass, Packet};
use crate::routing::{next_port, Port, RouteKind};

/// Number of virtual queues per input port: one per (class, route lane).
pub const NUM_VQ: usize = MessageClass::COUNT * 2;

/// Virtual-queue index for a class and dimension-order lane.
#[inline]
pub fn vq_index(class: MessageClass, kind: RouteKind) -> usize {
    class.index() * 2 + kind.lane()
}

/// Buffering and timing parameters of a mesh router.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Pipeline latency per hop in cycles (Table 2: 3 cycles/hop).
    pub hop_latency: u64,
    /// Buffer capacity of each virtual queue, in flits.
    pub vq_capacity_flits: u32,
    /// Candidates each output port examines per cycle before giving up.
    pub arbitration_window: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            hop_latency: 3,
            vq_capacity_flits: 16,
            arbitration_window: 4,
        }
    }
}

/// A packet in flight inside the mesh, annotated with its dimension order.
#[derive(Clone, Debug)]
pub struct Flight<P> {
    /// The packet itself.
    pub pkt: Packet<P>,
    /// Dimension order chosen at injection.
    pub route: RouteKind,
    /// Attach coordinate of the destination.
    pub target: Coord,
    /// Exit port at the attach router.
    pub exit: Port,
}

/// One virtual queue: FIFO of flights plus an occupancy counter that also
/// accounts for flits already granted toward this queue but still on a link
/// (credit-accurate backpressure).
#[derive(Debug)]
pub struct VirtQueue<P> {
    flights: VecDeque<Flight<P>>,
    /// Flits resident or in flight toward this queue.
    pub reserved_flits: u32,
}

impl<P> Default for VirtQueue<P> {
    fn default() -> Self {
        VirtQueue {
            flights: VecDeque::new(),
            reserved_flits: 0,
        }
    }
}

impl<P> VirtQueue<P> {
    /// Head flight, if any.
    pub fn head(&self) -> Option<&Flight<P>> {
        self.flights.front()
    }

    /// Append an arrived flight (space was reserved at grant time).
    pub fn push_arrived(&mut self, f: Flight<P>) {
        self.flights.push_back(f);
    }

    /// Number of queued flights.
    pub fn len(&self) -> usize {
        self.flights.len()
    }

    /// True when no flight is queued.
    pub fn is_empty(&self) -> bool {
        self.flights.is_empty()
    }
}

/// An output port: link occupancy plus the candidate ring of input queues
/// whose head wants this output.
#[derive(Debug, Default)]
pub struct OutPort {
    /// The link is serializing a previous packet until this cycle.
    pub busy_until: Cycle,
    /// Registered (input port index, virtual queue index) candidates.
    pub candidates: VecDeque<(u8, u8)>,
}

/// One mesh router.
#[derive(Debug)]
pub struct Router<P> {
    /// Grid position.
    pub coord: Coord,
    /// Input buffers: `inputs[port][vq]`.
    pub inputs: Vec<Vec<VirtQueue<P>>>,
    /// Output ports.
    pub outputs: Vec<OutPort>,
    /// Total packets buffered here (fast idle check).
    pub queued_packets: u32,
}

impl<P> Router<P> {
    /// Create an empty router at `coord`.
    pub fn new(coord: Coord) -> Router<P> {
        Router {
            coord,
            inputs: (0..Port::COUNT)
                .map(|_| (0..NUM_VQ).map(|_| VirtQueue::default()).collect())
                .collect(),
            outputs: (0..Port::COUNT).map(|_| OutPort::default()).collect(),
            queued_packets: 0,
        }
    }

    /// Free flit capacity of input queue `(port, vq)` under `cap` flits.
    pub fn free_flits(&self, port: usize, vq: usize, cap: u32) -> u32 {
        cap.saturating_sub(self.inputs[port][vq].reserved_flits)
    }

    /// Reserve space for an incoming flight granted by an upstream router.
    pub fn reserve(&mut self, port: usize, vq: usize, flits: u8) {
        self.inputs[port][vq].reserved_flits += u32::from(flits);
    }

    /// Accept a flight that physically arrived at `(port, vq)`; registers it
    /// as an arbitration candidate when it becomes the queue head.
    pub fn accept(&mut self, port: usize, vq: usize, flight: Flight<P>) {
        let out = next_port(self.coord, flight.target, flight.exit, flight.route);
        let q = &mut self.inputs[port][vq];
        let was_empty = q.is_empty();
        q.push_arrived(flight);
        self.queued_packets += 1;
        if was_empty {
            self.outputs[out.index()]
                .candidates
                .push_back((port as u8, vq as u8));
        }
    }

    /// Remove the head of `(port, vq)` after a grant; re-registers the next
    /// head (if any) with its output. Returns the granted flight.
    ///
    /// # Panics
    /// Panics if the queue is empty — grants are only issued to heads.
    pub fn take_granted(&mut self, port: usize, vq: usize) -> Flight<P> {
        let q = &mut self.inputs[port][vq];
        let f = q.flights.pop_front().expect("grant on empty queue");
        q.reserved_flits -= u32::from(f.pkt.flits);
        self.queued_packets -= 1;
        if let Some(next) = self.inputs[port][vq].head() {
            let out = next_port(self.coord, next.target, next.exit, next.route);
            self.outputs[out.index()]
                .candidates
                .push_back((port as u8, vq as u8));
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NocNode;

    fn flight(dst_x: u8, dst_y: u8, flits: u8) -> Flight<()> {
        Flight {
            pkt: Packet::new(
                NocNode::tile(0, 0),
                NocNode::tile(dst_x, dst_y),
                MessageClass::CohReq,
                flits,
                (),
            ),
            route: RouteKind::Xy,
            target: Coord::new(dst_x, dst_y),
            exit: Port::Local,
        }
    }

    #[test]
    fn vq_indices_are_dense() {
        let mut seen = [false; NUM_VQ];
        for c in MessageClass::ALL {
            for k in [RouteKind::Xy, RouteKind::Yx] {
                let i = vq_index(c, k);
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn accept_registers_candidate_once() {
        let mut r: Router<()> = Router::new(Coord::new(2, 2));
        r.reserve(Port::West.index(), 0, 1);
        r.accept(Port::West.index(), 0, flight(5, 2, 1));
        // Head wants East (XY toward x=5).
        assert_eq!(r.outputs[Port::East.index()].candidates.len(), 1);
        r.reserve(Port::West.index(), 0, 1);
        r.accept(Port::West.index(), 0, flight(6, 2, 1));
        // Second arrival queues behind the head: no duplicate registration.
        assert_eq!(r.outputs[Port::East.index()].candidates.len(), 1);
        assert_eq!(r.queued_packets, 2);
    }

    #[test]
    fn take_granted_reregisters_next_head() {
        let mut r: Router<()> = Router::new(Coord::new(2, 2));
        r.reserve(Port::West.index(), 0, 1);
        r.accept(Port::West.index(), 0, flight(5, 2, 1));
        r.reserve(Port::West.index(), 0, 5);
        r.accept(Port::West.index(), 0, flight(2, 7, 5)); // wants South once head
        let f = r.take_granted(Port::West.index(), 0);
        assert_eq!(f.pkt.flits, 1);
        assert_eq!(r.outputs[Port::South.index()].candidates.len(), 1);
        assert_eq!(r.free_flits(Port::West.index(), 0, 16), 11);
    }
}
