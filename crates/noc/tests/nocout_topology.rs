//! Focused NOC-Out topology tests: latency structure of the tree +
//! flattened-butterfly station graph (§6.3, Fig. 8).

use ni_engine::Cycle;
use ni_noc::{Interconnect, MessageClass, NocNode, NocOutConfig, NocOutNoc, Packet};

/// Inject one packet into a fresh NOC and return its delivery cycle.
fn deliver(pkt: Packet<u64>, limit: u64) -> u64 {
    let mut noc: NocOutNoc<u64> = NocOutNoc::new(NocOutConfig::default());
    let dst = pkt.dst;
    let start = Cycle(0);
    noc.try_inject(start, pkt).expect("empty NOC accepts");
    let mut now = start;
    loop {
        noc.tick(now);
        if noc.eject(dst).is_some() {
            return now.0;
        }
        now += 1;
        assert!(now.0 < limit, "packet to {dst:?} not delivered");
    }
}

fn pkt(src: NocNode, dst: NocNode) -> Packet<u64> {
    Packet::new(src, dst, MessageClass::CohReq, 1, 0)
}

#[test]
fn core_to_own_llc_tile_uses_only_the_tree() {
    // Tile (3, 0) sits at the top of column 3: four tree hops to the LLC row.
    let near = deliver(pkt(NocNode::tile(3, 3), NocNode::Llc(3)), 100);
    let far = deliver(pkt(NocNode::tile(3, 0), NocNode::Llc(3)), 100);
    assert!(
        far > near,
        "deeper tree position must cost more: {far} vs {near}"
    );
}

#[test]
fn cross_column_traffic_crosses_the_butterfly() {
    let same = deliver(pkt(NocNode::tile(0, 3), NocNode::Llc(0)), 100);
    let cross = deliver(pkt(NocNode::tile(0, 3), NocNode::Llc(7)), 100);
    // The butterfly moves 2 tiles/cycle: 7 columns cost ~4 extra cycles.
    assert!(
        cross > same,
        "butterfly traversal must show: {cross} vs {same}"
    );
    assert!(
        cross - same <= 8,
        "rich butterfly connectivity keeps it cheap: +{}",
        cross - same
    );
}

#[test]
fn llc_reaches_memory_controllers_and_router_edge() {
    let to_mc = deliver(pkt(NocNode::Llc(2), NocNode::Mc(2)), 100);
    assert!(to_mc <= 10, "MCs hang off the butterfly: {to_mc}");
    // NI blocks alias the LLC tiles in NOC-Out ("NImiddle", §6.3).
    let to_ni = deliver(pkt(NocNode::tile(4, 2), NocNode::NiBlock(4)), 100);
    assert!(to_ni <= 20, "NI at the LLC row: {to_ni}");
}

#[test]
fn llc_access_is_faster_than_mesh_average() {
    // §6.3: the flattened butterfly speeds up LLC access versus the mesh.
    // A worst-case core->LLC path on NOC-Out (tree depth 4 + butterfly)
    // must beat a worst-case mesh corner-to-corner path (14 hops x 3).
    let worst = deliver(pkt(NocNode::tile(0, 0), NocNode::Llc(7)), 200);
    assert!(
        worst < 14 * 3,
        "NOC-Out worst LLC access {worst} vs mesh 42"
    );
}

#[test]
fn response_and_request_groups_do_not_block_each_other() {
    let mut noc: NocOutNoc<u64> = NocOutNoc::new(NocOutConfig::default());
    // Saturate the request group toward one LLC tile, then send a response:
    // it must not be stuck behind the request queue (separate VQ group).
    let mut now = Cycle(0);
    for i in 0..6u64 {
        let p = Packet::new(
            NocNode::tile(1, 3),
            NocNode::Llc(1),
            MessageClass::CohReq,
            5,
            i,
        );
        while noc.try_inject(now, p.clone()).is_err() {
            noc.tick(now);
            now += 1;
        }
    }
    let resp = Packet::new(
        NocNode::tile(1, 4),
        NocNode::Llc(1),
        MessageClass::CohResp,
        5,
        99,
    );
    while noc.try_inject(now, resp.clone()).is_err() {
        noc.tick(now);
        now += 1;
    }
    let mut got_resp_at = None;
    let deadline = now + 200;
    while now < deadline {
        noc.tick(now);
        while let Some(p) = noc.eject(NocNode::Llc(1)) {
            if p.payload == 99 {
                got_resp_at = Some(now);
            }
        }
        if got_resp_at.is_some() {
            break;
        }
        now += 1;
    }
    assert!(got_resp_at.is_some(), "response starved behind requests");
}
