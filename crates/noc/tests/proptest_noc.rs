//! Property tests for the interconnects: arbitrary traffic must be
//! delivered exactly once, intact, to the right endpoint, under every
//! routing policy, and in-network latency must respect the physical floor.

use ni_engine::Cycle;
use ni_noc::{
    Interconnect, MeshConfig, MeshNoc, MessageClass, NocNode, NocOutConfig, NocOutNoc, Packet,
    RoutingPolicy,
};
use proptest::prelude::*;

/// Any mesh endpoint: tiles, NI blocks (west edge), MCs (east edge).
fn mesh_node() -> impl Strategy<Value = NocNode> {
    prop_oneof![
        (0u8..8, 0u8..8).prop_map(|(x, y)| NocNode::tile(x, y)),
        (0u8..8).prop_map(NocNode::NiBlock),
        (0u8..8).prop_map(NocNode::Mc),
    ]
}

fn message_class() -> impl Strategy<Value = MessageClass> {
    prop_oneof![
        Just(MessageClass::CohReq),
        Just(MessageClass::CohFwd),
        Just(MessageClass::CohResp),
        Just(MessageClass::MemReq),
        Just(MessageClass::MemResp),
        Just(MessageClass::NiCmd),
        Just(MessageClass::NiData),
    ]
}

fn policy() -> impl Strategy<Value = RoutingPolicy> {
    prop_oneof![
        Just(RoutingPolicy::Xy),
        Just(RoutingPolicy::Yx),
        Just(RoutingPolicy::O1Turn),
        Just(RoutingPolicy::Cdr),
        Just(RoutingPolicy::CdrNi),
    ]
}

/// Manhattan distance between the attach *routers* of two endpoints.
/// Attach links themselves (NI/MC blocks to their edge router, and final
/// delivery into an endpoint queue) cost ~1 cycle each, not a full
/// 3-cycle router hop, so they are excluded from the latency floor.
fn min_hops(a: NocNode, b: NocNode, width: u8) -> u64 {
    fn attach(n: NocNode, width: u8) -> (i64, i64) {
        match n {
            NocNode::Tile(c) => (i64::from(c.x), i64::from(c.y)),
            NocNode::NiBlock(r) => (0, i64::from(r)),
            NocNode::Mc(r) => (i64::from(width) - 1, i64::from(r)),
            NocNode::Llc(_) => unreachable!("mesh test uses mesh nodes"),
        }
    }
    let (ax, ay) = attach(a, width);
    let (bx, by) = attach(b, width);
    (ax - bx).unsigned_abs() + (ay - by).unsigned_abs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mesh_delivers_all_packets_exactly_once(
        policy in policy(),
        specs in prop::collection::vec(
            (mesh_node(), mesh_node(), message_class(), 1u8..6),
            1..40,
        ),
    ) {
        let cfg = MeshConfig {
            policy,
            ..MeshConfig::default()
        };
        let mut noc: MeshNoc<usize> = MeshNoc::new(cfg);
        let mut now = Cycle(0);
        let mut expect: Vec<Option<(NocNode, MessageClass, u8)>> = Vec::new();
        let mut backlog: Vec<Packet<usize>> = Vec::new();
        for (i, &(src, dst, class, flits)) in specs.iter().enumerate() {
            if src == dst {
                expect.push(None); // same-node traffic bypasses the NOC
                continue;
            }
            expect.push(Some((dst, class, flits)));
            backlog.push(Packet::new(src, dst, class, flits, i));
        }
        let total = backlog.len();
        let mut delivered = 0usize;
        let mut seen = vec![false; specs.len()];
        let mut guard = 0u32;
        while delivered < total {
            // Retry injections head-first.
            let mut still = Vec::new();
            for pkt in backlog.drain(..) {
                match noc.try_inject(now, pkt) {
                    Ok(()) => {}
                    Err(p) => still.push(p),
                }
            }
            backlog = still;
            noc.tick(now);
            for spec in &expect {
                let Some((dst, _, _)) = spec else { continue };
                while let Some(p) = noc.eject(*dst) {
                    let idx = p.payload;
                    prop_assert!(!seen[idx], "duplicate delivery of packet {idx}");
                    let (edst, eclass, eflits) =
                        expect[idx].expect("delivered packet was expected");
                    prop_assert_eq!(p.dst, edst, "wrong endpoint");
                    prop_assert_eq!(p.class, eclass, "class corrupted");
                    prop_assert_eq!(p.flits, eflits, "length corrupted");
                    // Physical floor: 3 cycles per hop along a minimal path.
                    let hops = min_hops(p.src, p.dst, 8);
                    prop_assert!(
                        now.saturating_since(p.injected_at) + 1 >= 3 * hops,
                        "{:?}->{:?} delivered faster than {} hops allow",
                        p.src, p.dst, hops
                    );
                    seen[idx] = true;
                    delivered += 1;
                }
            }
            now += 1;
            guard += 1;
            prop_assert!(guard < 20_000, "packets stuck: {delivered}/{total}");
        }
        prop_assert!(noc.is_idle(), "NOC not idle after full delivery");
        prop_assert_eq!(noc.stats().delivered_packets.get(), total as u64);
    }

    #[test]
    fn nocout_delivers_all_packets_exactly_once(
        specs in prop::collection::vec(
            (0u8..64, prop_oneof![
                (0u8..8).prop_map(NocNode::Llc),
                (0u8..8).prop_map(NocNode::Mc),
                (0u8..8).prop_map(NocNode::NiBlock),
                (0u8..8, 0u8..8).prop_map(|(x, y)| NocNode::tile(x, y)),
            ], 1u8..6),
            1..30,
        ),
    ) {
        let mut noc: NocOutNoc<usize> = NocOutNoc::new(NocOutConfig::default());
        let mut now = Cycle(0);
        let mut backlog: Vec<Packet<usize>> = Vec::new();
        let mut expect: Vec<Option<NocNode>> = Vec::new();
        for (i, &(srcidx, dst, flits)) in specs.iter().enumerate() {
            let src = NocNode::tile(srcidx % 8, srcidx / 8);
            if src == dst {
                expect.push(None);
                continue;
            }
            expect.push(Some(dst));
            backlog.push(Packet::new(src, dst, MessageClass::NiData, flits, i));
        }
        let total = backlog.len();
        let mut delivered = 0;
        let mut guard = 0u32;
        while delivered < total {
            let mut still = Vec::new();
            for pkt in backlog.drain(..) {
                match noc.try_inject(now, pkt) {
                    Ok(()) => {}
                    Err(p) => still.push(p),
                }
            }
            backlog = still;
            noc.tick(now);
            for spec in &expect {
                let Some(dst) = spec else { continue };
                while let Some(p) = noc.eject(*dst) {
                    prop_assert_eq!(expect[p.payload], Some(p.dst));
                    delivered += 1;
                }
            }
            now += 1;
            guard += 1;
            prop_assert!(guard < 20_000, "packets stuck: {delivered}/{total}");
        }
        prop_assert!(noc.is_idle());
    }

    #[test]
    fn xy_and_yx_latencies_agree_on_straight_lines(
        y in 0u8..8,
        x0 in 0u8..8,
        x1 in 0u8..8,
    ) {
        // A transfer within one row never turns, so XY and YX take the
        // identical physical path and must produce identical latency.
        prop_assume!(x0 != x1);
        let mut lat = Vec::new();
        for policy in [RoutingPolicy::Xy, RoutingPolicy::Yx] {
            let cfg = MeshConfig { policy, ..MeshConfig::default() };
            let mut noc: MeshNoc<u8> = MeshNoc::new(cfg);
            let pkt = Packet::new(
                NocNode::tile(x0, y),
                NocNode::tile(x1, y),
                MessageClass::CohReq,
                1,
                0,
            );
            noc.try_inject(Cycle(0), pkt).expect("empty NOC accepts");
            let mut now = Cycle(0);
            let got = loop {
                noc.tick(now);
                if noc.eject(NocNode::tile(x1, y)).is_some() {
                    break now.0;
                }
                now += 1;
                prop_assert!(now.0 < 1000);
            };
            lat.push(got);
        }
        prop_assert_eq!(lat[0], lat[1]);
    }
}
