//! # ni-bench — the benchmark harness regenerating the paper's evaluation
//!
//! One Criterion bench target per table and figure of Daglis et al. (ISCA
//! 2015), plus ablation benches for the design choices called out in
//! DESIGN.md and a `simperf` bench measuring the simulator itself.
//!
//! Each target does two things when run under `cargo bench`:
//!
//! 1. prints the paper-style table (the reproduction artifact recorded in
//!    EXPERIMENTS.md), with the published numbers alongside where they
//!    exist, and
//! 2. registers Criterion measurements of a representative kernel, so
//!    regressions in simulator performance show up in CI.
//!
//! Experiment fidelity is controlled by `RACKNI_SCALE` (`quick`, the
//! default, or `full` — the paper's §5 methodology with longer convergence
//! windows).

use std::time::Duration;

use criterion::Criterion;
use rackni::experiments::Scale;

/// Read the experiment scale from `RACKNI_SCALE` (`quick` by default).
pub fn scale() -> Scale {
    Scale::from_env()
}

/// Print the standard experiment banner: id, description, and scale.
pub fn banner(id: &str, what: &str) {
    let s = scale();
    println!("\n=== {id}: {what} [scale: {s:?}] ===");
}

/// The Criterion configuration shared by every bench target: few samples
/// and short measurement windows, because each iteration is a whole-chip
/// simulation rather than a microsecond kernel.
pub fn criterion_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_quick() {
        // The test environment does not set RACKNI_SCALE.
        if std::env::var("RACKNI_SCALE").is_err() {
            assert_eq!(scale(), Scale::Quick);
        }
    }
}
