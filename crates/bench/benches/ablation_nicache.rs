//! Ablation A2 (§3.4): the NI cache's Owned state.
//!
//! With the optimization off, the NI cache cannot hand a dirty CQ block to
//! the polling core directly: every core poll of a freshly written CQ entry
//! costs a writeback round trip through the LLC before the clean copy can
//! be forwarded.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::nicache_ablation;
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_sync_latency, ChipConfig};
use rackni::report::{f1, pct, Table};

fn print_table() {
    banner(
        "Ablation A2",
        "NI-cache Owned-state fast path (NI_split, 64B sync reads)",
    );
    let (on, off) = nicache_ablation(scale());
    let mut t = Table::new(&["owned state", "E2E cycles", "delta"]);
    t.row_owned(vec!["enabled (paper §3.4)".into(), f1(on), "-".into()]);
    t.row_owned(vec![
        "disabled".into(),
        f1(off),
        pct((off / on - 1.0) * 100.0),
    ]);
    println!("{}", t.render());
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_nicache");
    for (name, owned) in [("owned_on", true), ("owned_off", false)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = ChipConfig {
                    placement: NiPlacement::Split,
                    ..ChipConfig::default()
                };
                cfg.coherence.ni_owned_state = owned;
                run_sync_latency(cfg, 64, 2)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
