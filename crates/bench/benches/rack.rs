//! Rack-scale sweep: racks of growing torus dimensions (up to the paper's
//! 512-node 8x8x8 at `RACKNI_SCALE=full`), every node a fully simulated
//! chip ticked through the two-phase parallel driver, with simulator
//! throughput (simulated cycles per wall-clock second) per point.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::rack_scale_render;
use rackni::ni_fabric::Torus3D;
use rackni::ni_soc::{ChipConfig, Rack, RackSimConfig, TrafficPattern, Workload};

fn print_table() {
    banner(
        "Rack scale",
        "multi-node torus racks, hop-by-hop fabric, parallel two-phase ticking",
    );
    println!("{}", rack_scale_render(scale()));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("rack");
    g.bench_function("two_phase_tick_2x2x2_500_cycles", |b| {
        b.iter(|| {
            let cfg = RackSimConfig {
                torus: Torus3D::new(2, 2, 2),
                chip: ChipConfig {
                    active_cores: 2,
                    ..ChipConfig::default()
                },
                traffic: TrafficPattern::Uniform,
                ..RackSimConfig::default()
            };
            let mut rack = Rack::new(cfg, Workload::SyncRead { size: 64 });
            rack.run(500);
            rack.hops_traversed()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
