//! Table 1: latency comparison of the QP-based model (NIedge) against a pure
//! load/store NUMA interface for a single-block remote read at one hop.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::table1_render;
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_sync_latency, ChipConfig};

fn print_table() {
    banner(
        "Table 1",
        "QP-based model vs. NUMA load/store, single-block read",
    );
    println!("{}", table1_render(scale()));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.bench_function("edge_sync_read_64B", |b| {
        b.iter(|| {
            let cfg = ChipConfig {
                placement: NiPlacement::Edge,
                ..ChipConfig::default()
            };
            run_sync_latency(cfg, 64, 2)
        })
    });
    g.bench_function("numa_sync_read_64B", |b| {
        b.iter(|| {
            let cfg = ChipConfig {
                placement: NiPlacement::Numa,
                ..ChipConfig::default()
            };
            run_sync_latency(cfg, 64, 2)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
