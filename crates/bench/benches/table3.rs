//! Table 3: zero-load latency breakdown of a single-block remote read for
//! NIedge / NIper-tile / NIsplit plus the NUMA baseline.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::table3_render;
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{stage_breakdown, ChipConfig};

fn print_table() {
    banner(
        "Table 3",
        "zero-load single-block latency tomography, all designs",
    );
    println!("{}", table3_render(scale()));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    for p in NiPlacement::QP_DESIGNS {
        g.bench_function(format!("breakdown_{}", p.name()), |b| {
            b.iter(|| {
                let cfg = ChipConfig {
                    placement: p,
                    ..ChipConfig::default()
                };
                stage_breakdown(cfg, 2)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
