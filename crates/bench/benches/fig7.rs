//! Fig. 7: aggregate application bandwidth of asynchronous remote reads vs.
//! transfer size (64B..8KB) on the mesh, all 64 cores issuing.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::{bandwidth_vs_size, bandwidth_vs_size_render, BANDWIDTH_SIZES};
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_bandwidth, ChipConfig, Topology};
use rackni::paper;

fn print_table() {
    banner(
        "Fig. 7",
        "aggregate app bandwidth vs. transfer size (mesh, async)",
    );
    println!(
        "{}",
        bandwidth_vs_size_render(scale(), Topology::Mesh, &BANDWIDTH_SIZES)
    );
    let pts = bandwidth_vs_size(scale(), Topology::Mesh, &[2048]);
    let peak = pts[0].gbps[0].max(pts[0].gbps[1]);
    println!(
        "peak (2KB): {:.0} GBps measured vs {:.0} GBps paper; NOC aggregate {:.0} GBps \
         measured vs {:.0} GBps paper ({:.1}x amplification vs {:.1}x)\n",
        peak,
        paper::bandwidth::PEAK_APP_GBPS,
        pts[0].split_noc_gbps,
        paper::bandwidth::NOC_AGGREGATE_GBPS,
        pts[0].split_noc_gbps / pts[0].gbps[1].max(1.0),
        paper::bandwidth::TRAFFIC_AMPLIFICATION,
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("split_async_512B_one_window", |b| {
        b.iter(|| {
            let cfg = ChipConfig {
                placement: NiPlacement::Split,
                ..ChipConfig::default()
            };
            run_bandwidth(cfg, 512, 10_000, 1)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
