//! Torus routing-policy sweep: dimension-order vs congestion-aware
//! minimal-adaptive vs seeded random-minimal routing
//! (`ni_fabric::RoutingPolicy`) on a 64-node 4x4x4 rack, across uniform,
//! antipodal, and Zipf-hotspot traffic — job completion time, remote-read
//! tail latency, and per-link byte skew per cell. The evaluated-design-axis
//! follow-up to the `rack_scale` congestion data.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::{routing_sweep_render, run_routing_point};
use rackni::ni_fabric::RoutingKind;
use rackni::ni_soc::ZipfHotspot;

fn print_table() {
    banner(
        "Routing sweep",
        "torus routing policies (DOR / minimal-adaptive / random-minimal) on a 4x4x4 rack",
    );
    println!("{}", routing_sweep_render(scale()));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    for routing in RoutingKind::ALL {
        g.bench_function(format!("zipf_3x3x1_{}", routing.name()), |b| {
            b.iter(|| {
                run_routing_point(
                    (3, 3, 1),
                    "zipf",
                    Box::<ZipfHotspot>::default(),
                    routing,
                    8,
                    60_000,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
