//! Table 2: the simulated system parameters. This bench prints the
//! configuration actually used by every other experiment and asserts it
//! matches the paper, then measures chip-construction cost.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config};
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{Chip, ChipConfig, Topology, Workload};
use rackni::report::Table;

fn print_table() {
    banner("Table 2", "system parameters (simulation configuration)");
    let c = ChipConfig::default();
    let mut t = Table::new(&["parameter", "value", "paper (Table 2)"]);
    t.row(&[
        "cores",
        "64 (8x8 mesh tiles)",
        "64, ARM Cortex-A15-like, 2GHz",
    ]);
    t.row_owned(vec![
        "LLC banks".into(),
        c.n_banks().to_string(),
        "16MB NUCA, 1 bank/tile".into(),
    ]);
    t.row_owned(vec![
        "coherence".into(),
        "directory-based non-inclusive MESI (+NI Owned state)".into(),
        "Directory-based Non-Inclusive MESI".into(),
    ]);
    t.row_owned(vec![
        "memory latency".into(),
        format!("{} cycles", c.mem.latency),
        "50ns (100 cycles @ 2GHz)".into(),
    ]);
    t.row_owned(vec![
        "mesh link / hop".into(),
        format!("{}B links, {} cycles/hop", 16, c.mesh.router.hop_latency),
        "16B links, 3 cycles/hop".into(),
    ]);
    t.row_owned(vec![
        "NI".into(),
        format!("RGP/RCP/RRPP, {} RRPPs (one per row)", c.n_edge()),
        "3 pipelines, one RRPP per row (8)".into(),
    ]);
    t.row_owned(vec![
        "network hop".into(),
        format!("{} cycles", c.rack.hop_cycles),
        "fixed 35ns per hop (70 cycles)".into(),
    ]);
    t.row_owned(vec![
        "WQ entries".into(),
        c.qp.wq_entries.to_string(),
        "128 (bandwidth microbenchmark, §5)".into(),
    ]);
    println!("{}", t.render());
    assert_eq!(c.n_cores(), 64);
    assert_eq!(c.n_edge(), 8);
    assert_eq!(c.mem.latency, 100);
    assert_eq!(c.rack.hop_cycles, 70);
    assert_eq!(c.qp.wq_entries, 128);
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    for (name, topo) in [("mesh", Topology::Mesh), ("nocout", Topology::NocOut)] {
        g.bench_function(format!("chip_construction_{name}"), |b| {
            b.iter(|| {
                let cfg = ChipConfig {
                    topology: topo,
                    placement: NiPlacement::Split,
                    ..ChipConfig::default()
                };
                Chip::new(cfg, Workload::Idle)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
