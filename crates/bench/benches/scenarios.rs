//! Scenario sweep: every built-in `Scenario` (synthetic async reads, Zipf
//! hotspot, KV store, graph shard) on an 8-node rack of fully simulated
//! chips, with per-link and per-RRPP skew against the paper's balanced
//! assumption — the application-traffic axis the paper's closed
//! microbenchmark set could not express.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::{run_scenario_point, scenario_sweep_render};
use rackni::ni_soc::ZipfHotspot;

fn print_table() {
    banner(
        "Scenario sweep",
        "built-in application scenarios on an 8-node rack (throughput, link/RRPP skew)",
    );
    println!("{}", scenario_sweep_render(scale()));
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenarios");
    g.bench_function("zipf_hotspot_8node_2k_cycles", |b| {
        b.iter(|| run_scenario_point(&ZipfHotspot::default(), 2_000))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
