//! Fig. 5: projected end-to-end latency of a cache-block remote read across
//! 0..=12 intra-rack network hops, NIedge / NIsplit / NUMA, with percentage
//! overheads over NUMA.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::{fig5, fig5_render};
use rackni::ni_fabric::Torus3D;

fn print_table() {
    banner(
        "Fig. 5",
        "E2E latency vs. hop count (512-node 3D torus projection)",
    );
    println!("{}", fig5_render(scale()));
    // The projection's hop range comes from the rack geometry (§6.1.2).
    let t = Torus3D::new(8, 8, 8);
    println!(
        "torus 8x8x8: {} nodes, avg hops {:.1} (paper: 6), diameter {} (paper: 12)\n",
        t.nodes(),
        t.average_hops(),
        t.max_hops()
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.bench_function("hop_projection", |b| {
        b.iter(|| fig5(rackni::experiments::Scale::Quick))
    });
    g.bench_function("torus_average_hops", |b| {
        b.iter(|| Torus3D::new(8, 8, 8).average_hops())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
