//! Ablation A1 (§6.2 / §4.3): on-chip routing policy vs. peak bandwidth.
//!
//! The paper reports that without CDR the peak bandwidth any design reaches
//! is less than half (~100GBps) of the ~214GBps achievable with the
//! NI-aware CDR variant. This bench sweeps XY, YX, O1Turn, plain CDR, and
//! the paper's CDR+NI class on the NIsplit design.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::routing_ablation;
use rackni::ni_noc::RoutingPolicy;
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_bandwidth, ChipConfig};
use rackni::paper;
use rackni::report::{f1, Table};

/// Transfer size for the sweep: 2KB sits on the flat top of Fig. 7.
const SIZE: u64 = 2048;

fn print_table() {
    banner(
        "Ablation A1",
        "routing policy vs. aggregate bandwidth (NI_split, 2KB)",
    );
    let rows = routing_ablation(scale(), SIZE);
    let mut t = Table::new(&["routing", "app GBps", "paper note"]);
    for (policy, gbps) in rows {
        let note = match policy {
            RoutingPolicy::CdrNi => "paper's default, peak 214 GBps",
            RoutingPolicy::Cdr => "MC-oriented CDR [1], NI column still hot",
            _ => "\"less than half (~100GBps)\" without CDR",
        };
        t.row_owned(vec![format!("{policy:?}"), f1(gbps), note.into()]);
    }
    println!("{}", t.render());
    println!(
        "paper: no-CDR peak ~{:.0} GBps, CDR peak {:.0} GBps\n",
        paper::bandwidth::NO_CDR_PEAK_GBPS,
        paper::bandwidth::PEAK_APP_GBPS
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_routing");
    for policy in [RoutingPolicy::Xy, RoutingPolicy::CdrNi] {
        g.bench_function(format!("{policy:?}_one_window"), |b| {
            b.iter(|| {
                let mut cfg = ChipConfig {
                    placement: NiPlacement::Split,
                    ..ChipConfig::default()
                };
                cfg.routing = policy;
                run_bandwidth(cfg, SIZE, 10_000, 1)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
