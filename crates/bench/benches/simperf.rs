//! Simulator performance: simulated cycles per wall-clock second for the
//! configurations the experiment harness runs most, measured head-to-head
//! between the poll-everything chip tick and the event-driven tick
//! (activity sets + next-event skip). Not a paper artifact — this guards
//! the reproduction's own usability.
//!
//! Unlike the figure/table benches this target is a plain deterministic
//! harness (no Criterion statistics): every point is one seeded build plus
//! one timed run, so the output doubles as a machine-readable trajectory.
//! Three jobs:
//!
//! 1. **Trajectory** — writes `BENCH_simperf.json` (schema
//!    `rackni-bench-simperf/1`) at the workspace root, one row per point:
//!    single-chip microbenchmarks plus idle-heavy and bursty racks at
//!    2x2x2 / 4x4x4 / 8x8x8, each in both tick modes.
//! 2. **Speedup gate** (machine-independent) — the event-driven tick must
//!    clear `RACKNI_SIMPERF_MIN_SPEEDUP` (default 3.0) over the poll tick
//!    on the idle-heavy 8x8x8 rack. Both runs happen on the same host in
//!    the same process, so this ratio is stable across machines.
//! 3. **Regression gate** (baseline-relative) — if
//!    `BENCH_simperf_baseline.json` exists at the workspace root, every
//!    measured point must reach `RACKNI_SIMPERF_TOLERANCE` (default 0.25)
//!    of its recorded cycles/sec. The committed baseline is from a slow
//!    1-core container, and the wide tolerance absorbs host variance while
//!    still catching order-of-magnitude regressions.
//!
//! `RACKNI_SIMPERF_GATE=off` disables both gates (measurement-only runs on
//! exotic hosts).
//!
//! ```sh
//! cargo bench --bench simperf
//! RACKNI_SIMPERF_GATE=off cargo bench --bench simperf
//! ```

use std::path::{Path, PathBuf};
use std::time::Instant;

use rackni::experiments::{build_idle_rack_point, build_rack_point};
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{
    Bursty, Chip, ChipConfig, Rack, RackSimConfig, Synthetic, TickMode, TrafficPattern, Workload,
};
use rackni::parallel::default_threads;
use rackni::report::{f1, Table};

/// One measured point of the simulator-performance trajectory.
struct Measured {
    name: String,
    cycles: u64,
    wall_ms: f64,
    cps: f64,
    completed_ops: u64,
}

fn mode_tag(mode: TickMode) -> &'static str {
    match mode {
        TickMode::Event => "event",
        TickMode::Poll => "poll",
    }
}

fn measure_chip(name: &str, mut chip: Chip, cycles: u64) -> Measured {
    let t = Instant::now();
    chip.run(cycles);
    let wall = t.elapsed().as_secs_f64();
    Measured {
        name: name.to_string(),
        cycles,
        wall_ms: wall * 1e3,
        cps: cycles as f64 / wall.max(1e-9),
        completed_ops: chip.completed_ops(),
    }
}

fn measure_rack(name: &str, mut rack: Rack, cycles: u64) -> Measured {
    let t = Instant::now();
    rack.run(cycles);
    let wall = t.elapsed().as_secs_f64();
    Measured {
        name: name.to_string(),
        cycles,
        wall_ms: wall * 1e3,
        cps: cycles as f64 / wall.max(1e-9),
        completed_ops: rack.completed_ops(),
    }
}

/// The *bursty* shape: shorter think-time windows than the idle-heavy rack
/// point (8-op bursts against 100-cycle windows, 32-cycle poll backoff),
/// so full ticks are a much larger fraction of the run — the regime where
/// the event tick's win is modest and its bookkeeping overhead would show.
fn build_bursty_rack(dims: (u16, u16, u16), mode: TickMode) -> Rack {
    use rackni::ni_fabric::Torus3D;
    let mut chip = ChipConfig {
        active_cores: 2,
        placement: NiPlacement::Edge,
        tick_mode: mode,
        ..ChipConfig::default()
    };
    chip.rmc.poll_backoff = 32;
    let cfg = RackSimConfig {
        torus: Torus3D::new(dims.0, dims.1, dims.2),
        chip,
        traffic: TrafficPattern::Uniform,
        threads: 0,
        ..RackSimConfig::default()
    };
    let scenario = Bursty::new(
        Box::new(
            Synthetic::from_workload(Workload::AsyncRead {
                size: 512,
                poll_every: 4,
            })
            .with_pattern(TrafficPattern::Uniform),
        ),
        8,
        100,
    );
    Rack::with_scenario(cfg, &scenario)
}

fn workspace_root() -> PathBuf {
    // crates/bench -> workspace root; independent of the invoker's cwd
    // (cargo bench runs the binary from the package directory).
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Extract `"key": <number>` from a single JSON row (the files this bench
/// writes put one point per line, so line-wise scanning is exact).
fn json_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Baseline cycles/sec per point name, read from a previous run's JSON.
fn read_baseline(path: &Path) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    Some(
        text.lines()
            .filter_map(|l| {
                let name = json_str(l, "name")?;
                let cps = json_num(l, "cps")?;
                Some((name.to_string(), cps))
            })
            .collect(),
    )
}

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    println!(
        "rackni simperf: simulator cycles/sec, poll vs event-driven chip \
         ticking (host threads {})\n",
        default_threads()
    );
    let mut results: Vec<Measured> = Vec::new();

    // Single-chip microbenchmarks (event mode — the shipped default).
    results.push(measure_chip(
        "chip_idle",
        Chip::new(ChipConfig::default(), Workload::Idle),
        20_000,
    ));
    results.push(measure_chip(
        "chip_async_split_512B",
        Chip::new(
            ChipConfig::default(),
            Workload::AsyncRead {
                size: 512,
                poll_every: 4,
            },
        ),
        5_000,
    ));

    // Rack sweeps: idle-heavy (the event tick's home regime) and bursty
    // (short windows; checks the bookkeeping doesn't cost more than it
    // saves), each size in both tick modes on identical seeded workloads.
    // One full burst-plus-think period (~11.5k cycles) per point, so the
    // measured ratio reflects the workload's true duty cycle rather than
    // over- or under-weighting the burst tail.
    let idle_sizes: [((u16, u16, u16), u64); 3] = [
        ((2, 2, 2), 11_500),
        ((4, 4, 4), 11_500),
        ((8, 8, 8), 11_500),
    ];
    for (dims, cycles) in idle_sizes {
        for mode in [TickMode::Event, TickMode::Poll] {
            let name = format!(
                "idle_heavy_{}x{}x{}_{}",
                dims.0,
                dims.1,
                dims.2,
                mode_tag(mode)
            );
            let rack = build_idle_rack_point(dims, 0, mode);
            results.push(measure_rack(&name, rack, cycles));
        }
    }
    for mode in [TickMode::Event, TickMode::Poll] {
        let name = format!("bursty_8x8x8_{}", mode_tag(mode));
        results.push(measure_rack(&name, build_bursty_rack((8, 8, 8), mode), 800));
    }
    // The saturated uniform-async rack point (BENCH_rack.json's workhorse),
    // for continuity with the rack trajectory.
    results.push(measure_rack(
        "uniform_async_4x4x4_event",
        build_rack_point((4, 4, 4), TrafficPattern::Uniform, 0),
        1_200,
    ));

    let mut table = Table::new(&["point", "cycles", "wall (ms)", "cycles/sec", "ops"]);
    for m in &results {
        table.row_owned(vec![
            m.name.clone(),
            m.cycles.to_string(),
            f1(m.wall_ms),
            f1(m.cps),
            m.completed_ops.to_string(),
        ]);
    }
    println!("{}", table.render());

    let cps_of = |name: &str| {
        results
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.cps)
            .expect("measured point")
    };
    for dims in ["2x2x2", "4x4x4", "8x8x8"] {
        let speedup = cps_of(&format!("idle_heavy_{dims}_event"))
            / cps_of(&format!("idle_heavy_{dims}_poll"));
        println!("idle-heavy {dims}: event tick {speedup:.2}x over poll");
    }
    let bursty_speedup = cps_of("bursty_8x8x8_event") / cps_of("bursty_8x8x8_poll");
    println!("bursty 8x8x8: event tick {bursty_speedup:.2}x over poll");

    // Trajectory file, one point per line (the baseline reader depends on
    // the line-wise layout).
    let rows: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                r#"    {{"name": "{}", "cycles": {}, "wall_ms": {:.2}, "cps": {:.1}, "completed_ops": {}}}"#,
                m.name, m.cycles, m.wall_ms, m.cps, m.completed_ops
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"rackni-bench-simperf/1\",\n  \"host_threads\": {},\n  \"points\": [\n{}\n  ]\n}}\n",
        default_threads(),
        rows.join(",\n")
    );
    let out = workspace_root().join("BENCH_simperf.json");
    std::fs::write(&out, &json).expect("write BENCH_simperf.json");
    println!("\nsimperf trajectory written to {}", out.display());

    if std::env::var("RACKNI_SIMPERF_GATE").as_deref() == Ok("off") {
        println!("gates disabled (RACKNI_SIMPERF_GATE=off)");
        return;
    }

    let mut failed = false;

    // Gate 1 (machine-independent): the event tick must actually win on
    // the idle-heavy 512-node rack — the headline claim of the
    // event-driven ticking work.
    let min_speedup = env_f64("RACKNI_SIMPERF_MIN_SPEEDUP", 3.0);
    let speedup = cps_of("idle_heavy_8x8x8_event") / cps_of("idle_heavy_8x8x8_poll");
    if speedup < min_speedup {
        eprintln!(
            "GATE FAIL: event tick is only {speedup:.2}x over poll on the \
             idle-heavy 8x8x8 rack (need >= {min_speedup:.1}x)"
        );
        failed = true;
    } else {
        println!("gate: idle-heavy 8x8x8 event speedup {speedup:.2}x >= {min_speedup:.1}x");
    }

    // Gate 2 (baseline-relative): no point may collapse below the
    // tolerance fraction of its committed baseline cycles/sec.
    let baseline_path = workspace_root().join("BENCH_simperf_baseline.json");
    match read_baseline(&baseline_path) {
        None => println!(
            "no baseline at {} — regression gate skipped",
            baseline_path.display()
        ),
        Some(baseline) => {
            let tolerance = env_f64("RACKNI_SIMPERF_TOLERANCE", 0.25);
            let mut checked = 0;
            for (name, base_cps) in &baseline {
                let Some(m) = results.iter().find(|m| &m.name == name) else {
                    // A renamed/retired point is a baseline-refresh job,
                    // not a perf regression.
                    continue;
                };
                checked += 1;
                let floor = base_cps * tolerance;
                if m.cps < floor {
                    eprintln!(
                        "GATE FAIL: {name} at {:.1} cycles/sec, below {floor:.1} \
                         ({tolerance}x of baseline {base_cps:.1})",
                        m.cps
                    );
                    failed = true;
                }
            }
            if !failed {
                println!(
                    "gate: all {checked} baselined points within {tolerance}x of \
                     {}",
                    baseline_path.display()
                );
            }
        }
    }

    if failed {
        eprintln!("simperf gates FAILED");
        std::process::exit(1);
    }
}
