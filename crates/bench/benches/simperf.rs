//! Simulator performance: simulated cycles per wall-clock second for the
//! configurations the experiment harness runs most. Not a paper artifact —
//! this guards the reproduction's own usability.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ni_bench::criterion_config;
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{Chip, ChipConfig, Topology, Workload};

const CYCLES: u64 = 5_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("simperf");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("idle_chip", |b| {
        b.iter(|| {
            let mut chip = Chip::new(ChipConfig::default(), Workload::Idle);
            chip.run(CYCLES);
            chip.now()
        })
    });
    g.bench_function("one_core_sync_split", |b| {
        b.iter(|| {
            let cfg = ChipConfig {
                active_cores: 1,
                ..ChipConfig::default()
            };
            let mut chip = Chip::new(cfg, Workload::SyncRead { size: 64 });
            chip.run(CYCLES);
            chip.completed_ops()
        })
    });
    g.bench_function("all_cores_async_split_512B", |b| {
        b.iter(|| {
            let mut chip = Chip::new(
                ChipConfig::default(),
                Workload::AsyncRead {
                    size: 512,
                    poll_every: 4,
                },
            );
            chip.run(CYCLES);
            chip.completed_ops()
        })
    });
    g.bench_function("all_cores_async_pertile_8KB", |b| {
        b.iter(|| {
            let cfg = ChipConfig {
                placement: NiPlacement::PerTile,
                ..ChipConfig::default()
            };
            let mut chip = Chip::new(
                cfg,
                Workload::AsyncRead {
                    size: 8192,
                    poll_every: 4,
                },
            );
            chip.run(CYCLES);
            chip.completed_ops()
        })
    });
    g.bench_function("all_cores_async_nocout_512B", |b| {
        b.iter(|| {
            let cfg = ChipConfig {
                topology: Topology::NocOut,
                ..ChipConfig::default()
            };
            let mut chip = Chip::new(
                cfg,
                Workload::AsyncRead {
                    size: 512,
                    poll_every: 4,
                },
            );
            chip.run(CYCLES);
            chip.completed_ops()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}
criterion_main!(benches);
