//! Fig. 10: aggregate application bandwidth vs. transfer size on NOC-Out
//! (§6.3). The paper finds the same qualitative trends as the mesh but a
//! lower peak, limited by the eight contended LLC tiles.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::{bandwidth_vs_size_render, BANDWIDTH_SIZES};
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_bandwidth, ChipConfig, Topology};

fn print_table() {
    banner(
        "Fig. 10",
        "aggregate app bandwidth vs. transfer size (NOC-Out, async)",
    );
    println!(
        "{}",
        bandwidth_vs_size_render(scale(), Topology::NocOut, &BANDWIDTH_SIZES)
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.bench_function("split_async_512B_one_window_nocout", |b| {
        b.iter(|| {
            let cfg = ChipConfig {
                placement: NiPlacement::Split,
                topology: Topology::NocOut,
                ..ChipConfig::default()
            };
            run_bandwidth(cfg, 512, 10_000, 1)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
