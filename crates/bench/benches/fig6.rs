//! Fig. 6: end-to-end latency of synchronous remote reads vs. transfer size
//! (64B..16KB) on the mesh, all three NI designs plus the NUMA projection.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::{latency_vs_size_render, LATENCY_SIZES};
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_sync_latency, ChipConfig, Topology};

fn print_table() {
    banner(
        "Fig. 6",
        "sync remote-read latency vs. transfer size (mesh)",
    );
    println!(
        "{}",
        latency_vs_size_render(scale(), Topology::Mesh, &LATENCY_SIZES)
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    for size in [64u64, 16384] {
        g.bench_function(format!("split_sync_read_{size}B"), |b| {
            b.iter(|| {
                let cfg = ChipConfig {
                    placement: NiPlacement::Split,
                    ..ChipConfig::default()
                };
                run_sync_latency(cfg, size, 2)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
