//! Fig. 9: synchronous remote-read latency vs. transfer size on NOC-Out
//! (§6.3), the latency-optimized scale-out topology.

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::{latency_vs_size_render, LATENCY_SIZES};
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_sync_latency, ChipConfig, Topology};

fn print_table() {
    banner(
        "Fig. 9",
        "sync remote-read latency vs. transfer size (NOC-Out)",
    );
    println!(
        "{}",
        latency_vs_size_render(scale(), Topology::NocOut, &LATENCY_SIZES)
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.bench_function("split_sync_read_64B_nocout", |b| {
        b.iter(|| {
            let cfg = ChipConfig {
                placement: NiPlacement::Split,
                topology: Topology::NocOut,
                ..ChipConfig::default()
            };
            run_sync_latency(cfg, 64, 2)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
