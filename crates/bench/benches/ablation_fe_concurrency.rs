//! Ablation A3 (extension): NIedge frontend poll concurrency.
//!
//! The paper's RGP polls its registered WQs through one serialized loop,
//! which is part of why NIedge's single-block latency is 80% over NUMA: an
//! edge frontend serves eight cores and every WQ poll is a multi-hop
//! coherence round trip. This extension lets an edge frontend overlap polls
//! of distinct QPs and measures how much of the latency penalty is
//! scheduling (recoverable with a more aggressive frontend) versus inherent
//! coherence ping-pong (not recoverable without moving the frontend, as
//! NIsplit does).

use criterion::{criterion_group, Criterion};
use ni_bench::{banner, criterion_config, scale};
use rackni::experiments::Scale;
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::{run_sync_latency, ChipConfig};
use rackni::parallel::par_map;
use rackni::report::{f1, pct, Table};

fn cfg(concurrency: usize) -> ChipConfig {
    let mut c = ChipConfig {
        placement: NiPlacement::Edge,
        ..ChipConfig::default()
    };
    c.rmc.fe_poll_concurrency = concurrency;
    c
}

fn print_table() {
    banner(
        "Ablation A3",
        "NIedge frontend poll concurrency vs. single-block latency",
    );
    let s = scale();
    let ops = match s {
        Scale::Quick => 8,
        Scale::Full => 50,
    };
    let numa = run_sync_latency(
        ChipConfig {
            placement: NiPlacement::Numa,
            ..ChipConfig::default()
        },
        64,
        ops,
    );
    let split = run_sync_latency(ChipConfig::default(), 64, ops);
    let rows = par_map(vec![1usize, 2, 4, 8], |k| {
        (k, run_sync_latency(cfg(k), 64, ops))
    });
    let mut t = Table::new(&["fe_poll_concurrency", "E2E cycles", "overhead vs NUMA"]);
    for (k, r) in rows {
        t.row_owned(vec![
            k.to_string(),
            f1(r.mean_cycles),
            pct((r.mean_cycles / numa.mean_cycles - 1.0) * 100.0),
        ]);
    }
    t.row_owned(vec![
        "NI_split (any)".into(),
        f1(split.mean_cycles),
        pct((split.mean_cycles / numa.mean_cycles - 1.0) * 100.0),
    ]);
    println!("{}", t.render());
    println!("Even a fully concurrent edge frontend cannot reach NI_split: the\nremaining gap is the QP blocks ping-ponging across the whole mesh.\n");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fe_concurrency");
    for k in [1usize, 8] {
        g.bench_function(format!("edge_poll_k{k}"), |b| {
            b.iter(|| run_sync_latency(cfg(k), 64, 2))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = criterion_config();
    targets = bench
}

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
