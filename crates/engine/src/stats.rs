//! Online statistics used by the latency and bandwidth experiments.
//!
//! The paper (§5) monitors metrics in 500K-cycle windows and stops once the
//! delta between consecutive windows is below 1%. [`ConvergenceMonitor`]
//! implements exactly that protocol; [`RunningMean`], [`Histogram`] and
//! [`Counter`] collect the per-request samples feeding it.

use std::fmt;

use crate::clock::{Cycle, Frequency};

/// Monotonic event counter.
///
/// ```
/// use ni_engine::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Streaming mean/min/max over `u64` samples (latencies in cycles).
///
/// ```
/// use ni_engine::RunningMean;
/// let mut m = RunningMean::new();
/// m.record(10);
/// m.record(20);
/// assert_eq!(m.mean(), 15.0);
/// assert_eq!(m.min(), Some(10));
/// assert_eq!(m.max(), Some(20));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningMean {
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl RunningMean {
    /// New, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        self.count += 1;
        self.sum += u128::from(sample);
        self.min = Some(self.min.map_or(sample, |m| m.min(sample)));
        self.max = Some(self.max.map_or(sample, |m| m.max(sample)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 when no samples have been recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &RunningMean) {
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = other.min {
            self.min = Some(self.min.map_or(m, |s| s.min(m)));
        }
        if let Some(m) = other.max {
            self.max = Some(self.max.map_or(m, |s| s.max(m)));
        }
    }
}

/// Power-of-two-bucketed histogram for latency distributions.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; bucket 0 covers `[0, 2)`.
///
/// ```
/// use ni_engine::Histogram;
/// let mut h = Histogram::new();
/// h.record(700);
/// assert_eq!(h.percentile(0.5), 700);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    stats: RunningMean,
    /// Exact samples kept while small, for precise percentiles in tests.
    exact: Vec<u64>,
    exact_cap: usize,
}

impl Histogram {
    /// New histogram keeping up to 64K exact samples before degrading to
    /// bucketed percentiles.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            stats: RunningMean::new(),
            exact: Vec::new(),
            exact_cap: 65_536,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = (64 - sample.leading_zeros()).min(63) as usize;
        self.buckets[idx] += 1;
        self.stats.record(sample);
        if self.exact.len() < self.exact_cap {
            self.exact.push(sample);
        }
    }

    /// Underlying mean/min/max statistics.
    pub fn stats(&self) -> &RunningMean {
        &self.stats
    }

    /// Merge another histogram into this one (chip-wide tails from per-core
    /// histograms). Exact samples are kept up to the cap; past it the
    /// percentiles degrade to the bucketed approximation, as with `record`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.stats.merge(&other.stats);
        for &s in &other.exact {
            if self.exact.len() >= self.exact_cap {
                break;
            }
            self.exact.push(s);
        }
    }

    /// `q`-quantile (0.0..=1.0). Exact while few samples, bucket-midpoint
    /// approximation afterwards. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        let q = q.clamp(0.0, 1.0);
        if self.stats.count() == 0 {
            return 0;
        }
        if self.exact.len() as u64 == self.stats.count() {
            let mut v = self.exact.clone();
            v.sort_unstable();
            // Nearest-rank definition: the ceil(q*n)-th smallest sample.
            let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
            return v[rank - 1];
        }
        let target = (self.stats.count() as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // Midpoint of bucket [2^(i-1), 2^i) — approximate.
                return if i == 0 {
                    1
                } else {
                    ((1u64 << (i - 1)) + (1u64 << i)) >> 1
                };
            }
        }
        self.stats.max().unwrap_or(0)
    }
}

/// Occupancy and bandwidth accounting for one directed link.
///
/// Tracks totals (bytes, packets, busy cycles) plus a windowed byte count
/// whose maximum gives the link's *peak* bandwidth — the quantity rack-scale
/// congestion studies care about, since a link can be near-idle on average
/// yet saturated in bursts.
///
/// ```
/// use ni_engine::{Cycle, Frequency, LinkLoad};
/// let mut l = LinkLoad::new(100);
/// l.record(Cycle(10), 64, 4);
/// l.record(Cycle(150), 32, 2);
/// assert_eq!(l.total_bytes(), 96);
/// assert_eq!(l.packets(), 2);
/// assert_eq!(l.busy_cycles(), 6);
/// assert_eq!(l.peak_window_bytes(), 64);
/// let peak = l.peak_gbps(Frequency::GHZ2);
/// assert!((peak - 64.0 / 100.0 * 2.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct LinkLoad {
    window: u64,
    window_start: u64,
    window_bytes: u64,
    peak_window_bytes: u64,
    total_bytes: u64,
    busy_cycles: u64,
    packets: u64,
}

impl LinkLoad {
    /// New accumulator using `window`-cycle windows for peak tracking.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    pub fn new(window: u64) -> LinkLoad {
        assert!(window > 0, "window must be non-zero");
        LinkLoad {
            window,
            window_start: 0,
            window_bytes: 0,
            peak_window_bytes: 0,
            total_bytes: 0,
            busy_cycles: 0,
            packets: 0,
        }
    }

    /// Record one packet of `bytes` crossing the link at `now`, occupying it
    /// for `busy` cycles. `now` must be non-decreasing across calls.
    pub fn record(&mut self, now: Cycle, bytes: u64, busy: u64) {
        if now.0 >= self.window_start + self.window {
            self.peak_window_bytes = self.peak_window_bytes.max(self.window_bytes);
            self.window_bytes = 0;
            // Jump straight to the window containing `now` (links are often
            // idle for long stretches; no need to roll through empty windows).
            self.window_start = now.0 - now.0 % self.window;
        }
        self.window_bytes += bytes;
        self.total_bytes += bytes;
        self.busy_cycles += busy;
        self.packets += 1;
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total packets moved.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Cycles the link spent serializing flits.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Bytes in the busiest window seen so far (including the open one).
    pub fn peak_window_bytes(&self) -> u64 {
        self.peak_window_bytes.max(self.window_bytes)
    }

    /// Peak bandwidth over any window, in GB/s at `freq`.
    pub fn peak_gbps(&self, freq: Frequency) -> f64 {
        freq.gbps_from_bytes_per_cycle(self.peak_window_bytes() as f64 / self.window as f64)
    }

    /// Average bandwidth over `elapsed` cycles, in GB/s at `freq`.
    pub fn avg_gbps(&self, freq: Frequency, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        freq.gbps_from_bytes_per_cycle(self.total_bytes as f64 / elapsed as f64)
    }

    /// Fraction of `elapsed` cycles the link was busy.
    pub fn utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / elapsed as f64
    }
}

/// Result of feeding one monitoring window to a [`ConvergenceMonitor`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WindowStatus {
    /// Not enough windows yet, or delta still above tolerance.
    Open {
        /// Windows observed so far.
        windows: u32,
        /// Relative delta between the two most recent windows, if two exist.
        last_delta: Option<f64>,
    },
    /// Metric stabilized: consecutive windows within tolerance.
    Converged {
        /// The stabilized metric value (last window's sample).
        value: f64,
        /// Windows observed when convergence was declared.
        windows: u32,
    },
}

/// Windowed convergence detector replicating the paper's §5 protocol:
/// sample a metric every `window` cycles and declare convergence when the
/// relative delta between consecutive windows drops below `tolerance`.
///
/// ```
/// use ni_engine::{ConvergenceMonitor, Cycle, WindowStatus};
/// let mut mon = ConvergenceMonitor::new(1000, 0.01, 2);
/// assert!(mon.observe(Cycle(1000), 100.0).is_some());
/// mon.observe(Cycle(2000), 100.4);
/// if let Some(WindowStatus::Converged { value, .. }) = mon.observe(Cycle(3000), 100.5) {
///     assert!(value > 100.0);
/// } else {
///     panic!("expected convergence");
/// }
/// ```
#[derive(Clone, Debug)]
pub struct ConvergenceMonitor {
    window: u64,
    tolerance: f64,
    /// Number of consecutive in-tolerance deltas required.
    required_stable: u32,
    next_boundary: Cycle,
    last_value: Option<f64>,
    stable_run: u32,
    windows_seen: u32,
}

impl ConvergenceMonitor {
    /// Create a monitor with the given window length (cycles), relative
    /// tolerance (e.g. `0.01` = 1%) and required consecutive stable windows.
    ///
    /// # Panics
    /// Panics if `window` is zero or `tolerance` is negative.
    pub fn new(window: u64, tolerance: f64, required_stable: u32) -> Self {
        assert!(window > 0, "window must be non-zero");
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        ConvergenceMonitor {
            window,
            tolerance,
            required_stable: required_stable.max(1),
            next_boundary: Cycle(window),
            last_value: None,
            stable_run: 0,
            windows_seen: 0,
        }
    }

    /// The paper's configuration: 500K-cycle windows, 1% tolerance.
    pub fn paper_default() -> Self {
        ConvergenceMonitor::new(500_000, 0.01, 1)
    }

    /// Window length in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Feed the current metric value; returns a status when `now` crosses a
    /// window boundary, `None` inside a window.
    pub fn observe(&mut self, now: Cycle, value: f64) -> Option<WindowStatus> {
        if now < self.next_boundary {
            return None;
        }
        self.next_boundary += self.window;
        self.windows_seen += 1;
        let status = match self.last_value {
            None => WindowStatus::Open {
                windows: self.windows_seen,
                last_delta: None,
            },
            Some(prev) => {
                let denom = prev.abs().max(f64::EPSILON);
                let delta = (value - prev).abs() / denom;
                if delta <= self.tolerance {
                    self.stable_run += 1;
                } else {
                    self.stable_run = 0;
                }
                if self.stable_run >= self.required_stable {
                    WindowStatus::Converged {
                        value,
                        windows: self.windows_seen,
                    }
                } else {
                    WindowStatus::Open {
                        windows: self.windows_seen,
                        last_delta: Some(delta),
                    }
                }
            }
        };
        self.last_value = Some(value);
        Some(status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn running_mean_tracks_extremes() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        for s in [5, 1, 9] {
            m.record(s);
        }
        assert_eq!(m.count(), 3);
        assert_eq!(m.mean(), 5.0);
        assert_eq!(m.min(), Some(1));
        assert_eq!(m.max(), Some(9));
    }

    #[test]
    fn running_mean_merges() {
        let mut a = RunningMean::new();
        a.record(10);
        let mut b = RunningMean::new();
        b.record(30);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 20.0);
        assert_eq!(a.min(), Some(10));
        assert_eq!(a.max(), Some(30));
    }

    #[test]
    fn histogram_merge_combines_distributions() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=50u64 {
            a.record(v);
        }
        for v in 51..=100u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.stats().count(), 100);
        assert_eq!(a.percentile(0.5), 50);
        assert_eq!(a.percentile(1.0), 100);
    }

    #[test]
    fn histogram_percentiles_exact_when_small() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(0.5), 50);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.stats().count(), 100);
    }

    #[test]
    fn monitor_requires_consecutive_stability() {
        let mut mon = ConvergenceMonitor::new(100, 0.01, 2);
        assert!(matches!(
            mon.observe(Cycle(100), 10.0),
            Some(WindowStatus::Open { .. })
        ));
        // 50% jump resets stability.
        assert!(matches!(
            mon.observe(Cycle(200), 15.0),
            Some(WindowStatus::Open { .. })
        ));
        assert!(matches!(
            mon.observe(Cycle(300), 15.05),
            Some(WindowStatus::Open { .. })
        ));
        assert!(matches!(
            mon.observe(Cycle(400), 15.1),
            Some(WindowStatus::Converged { .. })
        ));
    }

    #[test]
    fn monitor_silent_inside_window() {
        let mut mon = ConvergenceMonitor::new(1000, 0.01, 1);
        assert_eq!(mon.observe(Cycle(1), 1.0), None);
        assert_eq!(mon.observe(Cycle(999), 1.0), None);
        assert!(mon.observe(Cycle(1000), 1.0).is_some());
    }

    #[test]
    fn paper_default_uses_500k_windows() {
        assert_eq!(ConvergenceMonitor::paper_default().window(), 500_000);
    }
}
