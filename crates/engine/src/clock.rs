//! Clock domain: cycles, frequencies, and time conversion.
//!
//! The whole simulated SoC runs at a single frequency (2 GHz in the paper's
//! configuration, Table 2). Off-chip latencies given in nanoseconds (DRAM
//! 50ns, inter-node hop 35ns) are converted to cycles through [`Frequency`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds per cycle at the paper's 2 GHz core clock.
pub const NANOS_PER_CYCLE_2GHZ: f64 = 0.5;

/// A point in simulated time, measured in core clock cycles.
///
/// `Cycle` is an absolute timestamp; durations are plain `u64`s added to or
/// subtracted from it. Keeping the distinction in the type system prevents
/// the classic simulator bug of mixing "at cycle t" with "for t cycles".
///
/// ```
/// use ni_engine::Cycle;
/// let t = Cycle(10) + 5;
/// assert_eq!(t, Cycle(15));
/// assert_eq!(t - Cycle(10), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero of the simulation clock.
    pub const ZERO: Cycle = Cycle(0);

    /// Saturating duration from `earlier` to `self`, zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Convert to nanoseconds at the given frequency.
    #[inline]
    pub fn as_nanos(self, freq: Frequency) -> f64 {
        self.0 as f64 * freq.nanos_per_cycle()
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    /// Duration between two timestamps.
    ///
    /// # Panics
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        debug_assert!(self.0 >= rhs.0, "negative cycle duration");
        self.0 - rhs.0
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A clock frequency, used to convert wall-clock latencies into cycles.
///
/// ```
/// use ni_engine::Frequency;
/// let f = Frequency::GHZ2;
/// assert_eq!(f.cycles_from_nanos(35.0), 70); // one intra-rack hop
/// assert_eq!(f.cycles_from_nanos(50.0), 100); // DRAM access
/// ```
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// The paper's 2 GHz SoC clock (Table 2).
    pub const GHZ2: Frequency = Frequency { hz: 2.0e9 };

    /// Create a frequency from a value in GHz.
    ///
    /// # Panics
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn from_ghz(ghz: f64) -> Frequency {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        Frequency { hz: ghz * 1e9 }
    }

    /// Frequency in hertz.
    #[inline]
    pub fn hz(self) -> f64 {
        self.hz
    }

    /// Nanoseconds taken by a single cycle.
    #[inline]
    pub fn nanos_per_cycle(self) -> f64 {
        1e9 / self.hz
    }

    /// Number of whole cycles covering `ns` nanoseconds (rounded to nearest).
    #[inline]
    pub fn cycles_from_nanos(self, ns: f64) -> u64 {
        (ns / self.nanos_per_cycle()).round() as u64
    }

    /// Bytes per cycle corresponding to `gbps` gigabytes per second.
    #[inline]
    pub fn bytes_per_cycle_from_gbps(self, gbps: f64) -> f64 {
        gbps * 1e9 / self.hz
    }

    /// Convert a sustained rate in bytes/cycle to GB/s.
    #[inline]
    pub fn gbps_from_bytes_per_cycle(self, bpc: f64) -> f64 {
        bpc * self.hz / 1e9
    }
}

impl Default for Frequency {
    fn default() -> Self {
        Frequency::GHZ2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic_roundtrips() {
        let a = Cycle(100);
        let b = a + 23;
        assert_eq!(b - a, 23);
        assert_eq!(b.saturating_since(a), 23);
        assert_eq!(a.saturating_since(b), 0);
    }

    #[test]
    fn cycle_orders_and_formats() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(format!("{:?}", Cycle(42)), "c42");
        assert_eq!(format!("{}", Cycle(42)), "42");
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    fn frequency_conversions_match_paper_parameters() {
        let f = Frequency::GHZ2;
        // Table 2 / §5: 35ns per network hop = 70 cycles, 50ns DRAM = 100 cycles.
        assert_eq!(f.cycles_from_nanos(35.0), 70);
        assert_eq!(f.cycles_from_nanos(50.0), 100);
        assert!((f.nanos_per_cycle() - NANOS_PER_CYCLE_2GHZ).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_conversions_are_inverses() {
        let f = Frequency::GHZ2;
        // A 16-byte-per-cycle link at 2GHz carries 32 GBps.
        assert!((f.gbps_from_bytes_per_cycle(16.0) - 32.0).abs() < 1e-9);
        let bpc = f.bytes_per_cycle_from_gbps(32.0);
        assert!((bpc - 16.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_nanos_at_default_frequency() {
        assert!((Cycle(70).as_nanos(Frequency::GHZ2) - 35.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_ghz(0.0);
    }
}
