//! # ni-engine — simulation kernel for the rackni simulator
//!
//! Cycle-level simulation primitives shared by every subsystem of the
//! manycore-NI simulator: the [`Cycle`] clock domain, bounded FIFO queues with
//! backpressure ([`BoundedQueue`]), ready-at delay heaps ([`DelayLine`]),
//! online statistics ([`stats`]), and windowed convergence monitoring
//! ([`stats::ConvergenceMonitor`]) used by the bandwidth experiments.
//!
//! The simulator is *synchronous*: a top-level driver advances a shared clock
//! and ticks each component once per cycle, moving messages between explicitly
//! owned queues. This keeps the whole chip deterministic (identical cycle
//! counts on every run) without interior mutability webs.
//!
//! ```
//! use ni_engine::{Cycle, DelayLine};
//!
//! let mut dram: DelayLine<u32> = DelayLine::new();
//! dram.push_at(Cycle(100), 7);
//! assert_eq!(dram.pop_ready(Cycle(99)), None);
//! assert_eq!(dram.pop_ready(Cycle(100)), Some(7));
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod parallel;
pub mod queue;
pub mod stats;

pub use clock::{Cycle, Frequency, NANOS_PER_CYCLE_2GHZ};
pub use queue::{BoundedQueue, DelayLine, PushError};
pub use stats::{ConvergenceMonitor, Counter, Histogram, LinkLoad, RunningMean, WindowStatus};
