//! Bounded FIFO queues with backpressure and fixed-latency delay lines.
//!
//! [`BoundedQueue`] models the finite buffering of routers, cache controllers
//! and NI pipelines: a producer that cannot push must stall, which is how
//! congestion propagates through the simulated chip (§6.2 of the paper shows
//! this backpressure destroying NIper-tile bandwidth on large unrolls).
//!
//! [`DelayLine`] models fixed-latency resources that complete out-of-band of
//! the NOC — DRAM accesses (50ns) and intra-rack hops (35ns) — as a min-heap
//! of (ready-at, item) pairs popped once the clock reaches them.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use crate::clock::Cycle;

/// Error returned by [`BoundedQueue::push`] when the queue is full.
///
/// Hands the rejected item back so the caller can retry next cycle without
/// cloning (`C-CALLER-CONTROL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError<T>(pub T);

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue full")
    }
}

impl<T: fmt::Debug> std::error::Error for PushError<T> {}

/// A bounded FIFO with explicit backpressure.
///
/// ```
/// use ni_engine::BoundedQueue;
/// let mut q = BoundedQueue::new(2);
/// q.push(1).unwrap();
/// q.push(2).unwrap();
/// assert!(q.push(3).is_err());
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// High-water mark, for occupancy diagnostics.
    peak: usize,
}

impl<T> BoundedQueue<T> {
    /// Create a queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero: a zero-capacity queue can never accept
    /// an item and always indicates a mis-configured pipeline.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            peak: 0,
        }
    }

    /// Append an item, or return it in `Err` if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), PushError<T>> {
        if self.items.len() >= self.capacity {
            return Err(PushError(item));
        }
        self.items.push_back(item);
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Remove and return the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peek at the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Mutable peek, used by controllers that annotate a head entry in place.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when another `push` would fail.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest occupancy observed since construction.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Iterate over queued items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

/// Heap entry ordering ready-at timestamps for [`DelayLine`].
///
/// Ties are broken by insertion sequence so equal-time completions drain in
/// FIFO order — this keeps the simulator deterministic.
#[derive(Debug)]
struct Pending<T> {
    ready_at: Cycle,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ready_at == other.ready_at && self.seq == other.seq
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ready_at, self.seq).cmp(&(other.ready_at, other.seq))
    }
}

/// A fixed-latency completion queue: items pushed with a ready-at time pop in
/// timestamp order once the simulation clock reaches them.
///
/// ```
/// use ni_engine::{Cycle, DelayLine};
/// let mut d = DelayLine::new();
/// d.push_at(Cycle(20), "b");
/// d.push_at(Cycle(10), "a");
/// assert_eq!(d.pop_ready(Cycle(15)), Some("a"));
/// assert_eq!(d.pop_ready(Cycle(15)), None);
/// assert_eq!(d.pop_ready(Cycle(25)), Some("b"));
/// ```
#[derive(Debug)]
pub struct DelayLine<T> {
    heap: BinaryHeap<Reverse<Pending<T>>>,
    next_seq: u64,
}

impl<T> DelayLine<T> {
    /// Create an empty delay line.
    pub fn new() -> Self {
        DelayLine {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `item` to become available at `ready_at`.
    pub fn push_at(&mut self, ready_at: Cycle, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Pending {
            ready_at,
            seq,
            item,
        }));
    }

    /// Schedule `item` to become available `delay` cycles after `now`.
    pub fn push_after(&mut self, now: Cycle, delay: u64, item: T) {
        self.push_at(now + delay, item);
    }

    /// Pop the earliest item whose ready time is `<= now`, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|p| p.0.ready_at <= now) {
            Some(self.heap.pop().expect("peeked entry").0.item)
        } else {
            None
        }
    }

    /// Ready time of the earliest scheduled item.
    pub fn next_ready_at(&self) -> Option<Cycle> {
        self.heap.peek().map(|p| p.0.ready_at)
    }

    /// Number of in-flight items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for DelayLine<T> {
    fn default() -> Self {
        DelayLine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_respects_capacity_and_order() {
        let mut q = BoundedQueue::new(3);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.push(99), Err(PushError(99)));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.free(), 1);
        q.push(3).unwrap();
        let drained: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(q.peak(), 3);
    }

    #[test]
    fn bounded_queue_front_access() {
        let mut q = BoundedQueue::new(2);
        assert!(q.front().is_none());
        q.push(5).unwrap();
        assert_eq!(q.front(), Some(&5));
        *q.front_mut().unwrap() = 6;
        assert_eq!(q.pop(), Some(6));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_queue_rejected() {
        let _: BoundedQueue<u8> = BoundedQueue::new(0);
    }

    #[test]
    fn delay_line_orders_by_time_then_fifo() {
        let mut d = DelayLine::new();
        d.push_at(Cycle(10), 'x');
        d.push_at(Cycle(10), 'y');
        d.push_at(Cycle(5), 'z');
        assert_eq!(d.next_ready_at(), Some(Cycle(5)));
        assert_eq!(d.pop_ready(Cycle(10)), Some('z'));
        // Same ready time: FIFO by insertion.
        assert_eq!(d.pop_ready(Cycle(10)), Some('x'));
        assert_eq!(d.pop_ready(Cycle(10)), Some('y'));
        assert!(d.is_empty());
    }

    #[test]
    fn delay_line_push_after_offsets_from_now() {
        let mut d = DelayLine::new();
        d.push_after(Cycle(100), 100, "dram");
        assert_eq!(d.pop_ready(Cycle(199)), None);
        assert_eq!(d.pop_ready(Cycle(200)), Some("dram"));
    }
}
