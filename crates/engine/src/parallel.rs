//! Bounded parallel execution of independent simulations.
//!
//! Experiment sweeps run many *independent* chip simulations (one per design
//! point, transfer size, or routing policy), and the multi-node rack driver
//! builds hundreds of independent chips at once. Each unit of work is
//! single-threaded and deterministic; these helpers farm the units out
//! across the host's cores with plain scoped threads, so no concurrency
//! crate is needed and per-item results are bit-identical to a sequential
//! run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker-thread count: the `RACKNI_THREADS` environment variable
/// when set to a positive integer, else
/// [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("RACKNI_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Map `f` over `items` using up to [`default_threads`] worker threads,
/// preserving order.
///
/// Results are identical to `items.into_iter().map(f).collect()`; only
/// wall-clock time changes. Used by every multi-point experiment sweep.
///
/// # Panics
/// Propagates the first panic raised inside `f`.
///
/// ```
/// let doubled = ni_engine::parallel::par_map(vec![1, 2, 3], |x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = default_threads();
    par_map_threads(items, workers, f)
}

/// As [`par_map`] with an explicit worker-thread cap (`threads == 1` runs
/// inline on the calling thread). Determinism knob for the rack driver's
/// serial-vs-parallel equivalence tests.
///
/// # Panics
/// Propagates the first panic raised inside `f`.
pub fn par_map_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        // Mirror the threaded path's panic surface so callers observe the
        // same failure regardless of host parallelism.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            items.into_iter().map(&f).collect::<Vec<R>>()
        }));
        return out.unwrap_or_else(|_| panic!("a scoped thread panicked"));
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("no poisoned slot")
                    .take()
                    .expect("each index claimed once");
                let r = f(item);
                *results[i].lock().expect("no poisoned result") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoned result")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = par_map((0..100).collect::<Vec<u32>>(), |x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<u32>>());
    }

    #[test]
    fn explicit_thread_counts_agree_with_inline() {
        let items: Vec<u32> = (0..37).collect();
        let inline = par_map_threads(items.clone(), 1, |x| x.wrapping_mul(31) ^ 5);
        for threads in [2, 4, 16] {
            let out = par_map_threads(items.clone(), threads, |x| x.wrapping_mul(31) ^ 5);
            assert_eq!(out, inline, "{threads} threads diverged from inline");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = par_map(Vec::<u8>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn worker_panic_propagates() {
        let _ = par_map(vec![1, 2, 3, 4], |x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}
