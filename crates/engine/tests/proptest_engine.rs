//! Property tests for the simulation kernel: queue semantics, delay-line
//! ordering, and statistics against naive references.

use ni_engine::{BoundedQueue, ConvergenceMonitor, Cycle, DelayLine, RunningMean, WindowStatus};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bounded_queue_matches_vecdeque(
        cap in 1usize..32,
        ops in prop::collection::vec(prop_oneof![Just(None), (0u32..1000).prop_map(Some)], 1..200),
    ) {
        let mut q = BoundedQueue::new(cap);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let r = q.push(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert_eq!(r.unwrap_err().0, v);
                    }
                }
                None => {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.is_empty(), model.is_empty());
            prop_assert_eq!(q.is_full(), model.len() >= cap);
            prop_assert_eq!(q.free(), cap - model.len());
            prop_assert_eq!(q.front(), model.front());
        }
    }

    #[test]
    fn delay_line_pops_in_time_then_fifo_order(
        items in prop::collection::vec((0u64..500, 0u32..1000), 1..100),
    ) {
        let mut d = DelayLine::new();
        for (i, &(t, v)) in items.iter().enumerate() {
            d.push_at(Cycle(t), (t, i, v));
        }
        // Expected order: by (ready time, insertion sequence).
        let mut expected: Vec<(u64, usize, u32)> = items
            .iter()
            .enumerate()
            .map(|(i, &(t, v))| (t, i, v))
            .collect();
        expected.sort_by_key(|&(t, i, _)| (t, i));
        let mut got = Vec::new();
        let mut now = 0u64;
        while got.len() < items.len() {
            while let Some(x) = d.pop_ready(Cycle(now)) {
                prop_assert!(x.0 <= now, "popped before ready");
                got.push(x);
            }
            now += 1;
            prop_assert!(now < 2000, "runaway drain loop");
        }
        prop_assert_eq!(got, expected);
        prop_assert!(d.is_empty());
    }

    #[test]
    fn delay_line_never_pops_early(t in 1u64..10_000, delta in 1u64..1000) {
        let mut d = DelayLine::new();
        d.push_at(Cycle(t), ());
        prop_assert_eq!(d.pop_ready(Cycle(t - 1)), None);
        prop_assert_eq!(d.pop_ready(Cycle(t + delta)), Some(()));
    }

    #[test]
    fn running_mean_matches_naive(values in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut m = RunningMean::new();
        for &v in &values {
            m.record(v);
        }
        let naive = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((m.mean() - naive).abs() < 1e-6 * naive.max(1.0));
        prop_assert_eq!(m.count(), values.len() as u64);
        prop_assert_eq!(m.min(), values.iter().min().copied());
        prop_assert_eq!(m.max(), values.iter().max().copied());
    }

    #[test]
    fn running_mean_merge_equals_concat(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ma = RunningMean::new();
        let mut mb = RunningMean::new();
        let mut all = RunningMean::new();
        for &v in &a {
            ma.record(v);
            all.record(v);
        }
        for &v in &b {
            mb.record(v);
            all.record(v);
        }
        ma.merge(&mb);
        prop_assert_eq!(ma.count(), all.count());
        if all.count() > 0 {
            prop_assert!((ma.mean() - all.mean()).abs() < 1e-9 * all.mean().max(1.0));
            prop_assert_eq!(ma.min(), all.min());
            prop_assert_eq!(ma.max(), all.max());
        }
    }

    #[test]
    fn convergence_monitor_accepts_flat_series(level in 1.0f64..1e6) {
        let mut m = ConvergenceMonitor::new(100, 0.01, 2);
        let mut converged_at = None;
        for w in 1..10u64 {
            if let Some(WindowStatus::Converged { .. }) = m.observe(Cycle(w * 100), level) {
                converged_at = Some(w);
                break;
            }
        }
        // A perfectly flat series converges as soon as the window quorum
        // allows (needs at least 1 + required consecutive deltas).
        prop_assert_eq!(converged_at, Some(3));
    }

    #[test]
    fn convergence_monitor_rejects_oscillation(level in 1.0f64..1e6) {
        let mut m = ConvergenceMonitor::new(100, 0.01, 2);
        for w in 1..20u64 {
            let v = if w % 2 == 0 { level } else { level * 1.5 };
            let s = m.observe(Cycle(w * 100), v);
            prop_assert!(
                !matches!(s, Some(WindowStatus::Converged { .. })),
                "50% oscillation must not satisfy a 1% criterion"
            );
        }
    }
}
