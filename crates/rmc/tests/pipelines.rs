//! Unit/integration tests for the RMC pipelines driven in isolation: the
//! backend's unroll engine and ITT, and the RRPP service loop.

use ni_engine::Cycle;
use ni_fabric::{RemoteReq, RemoteResp};
use ni_mem::{Addr, BlockAddr};
use ni_noc::NocNode;
use ni_qp::{QpConfig, RemoteOp, WqEntry};
use ni_rmc::{NiBackend, NiMsg, RmcConfig, RmcEgress, Rrpp, Stage};

fn home(b: BlockAddr, n_banks: u32) -> NocNode {
    NocNode::tile((b.0 % u64::from(n_banks)) as u8, 0)
}

fn backend(edge_via: Option<NocNode>) -> NiBackend {
    NiBackend::new(
        NocNode::NiBlock(0),
        3,
        RmcConfig::default(),
        QpConfig::default(),
        home,
        64,
        edge_via,
    )
}

fn entry(id: u64, op: RemoteOp, len: u64) -> WqEntry {
    WqEntry {
        id,
        op,
        remote_node: 1,
        remote_addr: Addr(0x10_0000),
        local_addr: Addr(0x20_0000),
        length: len,
        service: 0,
    }
}

/// Drive `be` for `cycles`, partitioning egress by kind.
struct Drained {
    net: Vec<RemoteReq>,
    coh: Vec<ni_coherence::Egress>,
    ni: Vec<(NocNode, NiMsg)>,
    stages: Vec<Stage>,
}

fn drain(be: &mut NiBackend, start: u64, cycles: u64) -> Drained {
    let mut d = Drained {
        net: Vec::new(),
        coh: Vec::new(),
        ni: Vec::new(),
        stages: Vec::new(),
    };
    for t in start..start + cycles {
        be.tick(Cycle(t));
        while let Some(e) = be.pop_egress() {
            match e {
                RmcEgress::Net(r) => d.net.push(r),
                RmcEgress::Coh(c) => d.coh.push(c),
                RmcEgress::Ni { dst, msg } => d.ni.push((dst, msg)),
                RmcEgress::NetResp(_) => {}
                RmcEgress::Trace(t) => d.stages.push(t.stage),
            }
        }
    }
    d
}

#[test]
fn read_entry_unrolls_into_one_request_per_block() {
    let mut be = backend(None);
    be.on_wq_entry(
        Cycle(0),
        entry(1, RemoteOp::Read, 8 * 64),
        5,
        NocNode::tile(2, 2),
    );
    let d = drain(&mut be, 0, 40);
    assert_eq!(d.net.len(), 8, "8 blocks -> 8 requests");
    for (i, r) in d.net.iter().enumerate() {
        assert!(r.is_read);
        assert_eq!(r.target_node, 1);
        assert_eq!(
            r.remote_block,
            Addr(0x10_0000).block().step(i as u64),
            "blocks are consecutive"
        );
        assert_eq!(
            NiBackend::backend_of_tid(r.tid),
            3,
            "tid carries backend id"
        );
    }
    assert!(d.stages.contains(&Stage::BeReceived));
    assert!(d.stages.contains(&Stage::NetOut));
    assert_eq!(
        be.inflight(),
        1,
        "transfer stays in the ITT until responses"
    );
}

#[test]
fn unroll_rate_is_bounded_per_cycle() {
    let mut be = backend(None);
    be.on_wq_entry(
        Cycle(0),
        entry(1, RemoteOp::Read, 64 * 64),
        0,
        NocNode::tile(0, 0),
    );
    // After activation (rgp_be_proc = 4) + k cycles, at most k requests.
    let d = drain(&mut be, 0, 20);
    assert!(
        d.net.len() <= 16,
        "{} requests in 20 cycles exceeds 1/cycle after activation",
        d.net.len()
    );
    let rest = drain(&mut be, 20, 100);
    assert_eq!(
        d.net.len() + rest.net.len(),
        64,
        "all blocks eventually sent"
    );
}

#[test]
fn responses_complete_transfer_and_notify_frontend() {
    let fe = NocNode::tile(4, 1);
    let mut be = backend(None);
    be.on_wq_entry(Cycle(0), entry(9, RemoteOp::Read, 2 * 64), 7, fe);
    let d = drain(&mut be, 0, 20);
    assert_eq!(d.net.len(), 2);
    // Feed both responses back.
    for (i, r) in d.net.iter().enumerate() {
        be.on_response(
            Cycle(30 + i as u64),
            RemoteResp {
                tid: r.tid,
                dst_node: 0,
                remote_block: r.remote_block,
                value: 0xAB + i as u64,
                is_read: true,
            },
        );
    }
    let d2 = drain(&mut be, 30, 30);
    // Each read response lands in local memory through a non-caching write.
    let writes: Vec<_> = d2
        .coh
        .iter()
        .filter(|e| matches!(e.msg, ni_coherence::CohMsg::NcWrite { .. }))
        .collect();
    assert_eq!(writes.len(), 2, "one NcWrite per payload block");
    // Completion notification goes to the issuing frontend.
    let notifies: Vec<_> = d2
        .ni
        .iter()
        .filter(|(dst, msg)| {
            *dst == fe
                && matches!(
                    msg,
                    NiMsg::CqNotify {
                        qp: 7,
                        wq_id: 9,
                        ok: true,
                        ..
                    }
                )
        })
        .collect();
    assert_eq!(notifies.len(), 1, "exactly one CqNotify");
    assert_eq!(be.inflight(), 0, "ITT slot freed");
    assert!(d2.stages.contains(&Stage::NetIn));
    assert!(d2.stages.contains(&Stage::DataWritten));
}

#[test]
fn itt_exhaustion_queues_and_drains() {
    let cfg = RmcConfig {
        itt_slots: 2,
        ..RmcConfig::default()
    };
    let mut be = NiBackend::new(
        NocNode::NiBlock(0),
        0,
        cfg,
        QpConfig::default(),
        home,
        64,
        None,
    );
    for id in 1..=4u64 {
        be.on_wq_entry(
            Cycle(0),
            entry(id, RemoteOp::Read, 64),
            id as u32,
            NocNode::tile(0, 0),
        );
    }
    let d = drain(&mut be, 0, 30);
    assert_eq!(d.net.len(), 2, "only two slots admit transfers");
    assert_eq!(be.stats().itt_stalls.get(), 2, "two entries stalled");
    // Complete the first two; the stalled ones must now proceed.
    for r in &d.net {
        be.on_response(
            Cycle(40),
            RemoteResp {
                tid: r.tid,
                dst_node: 0,
                remote_block: r.remote_block,
                value: 0,
                is_read: true,
            },
        );
    }
    let d2 = drain(&mut be, 40, 40);
    assert_eq!(d2.net.len(), 2, "stalled transfers drained");
}

#[test]
fn write_entry_loads_payload_before_shipping() {
    let mut be = backend(None);
    be.on_wq_entry(
        Cycle(0),
        entry(1, RemoteOp::Write, 3 * 64),
        0,
        NocNode::tile(0, 0),
    );
    let d = drain(&mut be, 0, 30);
    assert!(
        d.net.is_empty(),
        "nothing ships before the local reads return"
    );
    let reads: Vec<_> = d
        .coh
        .iter()
        .filter_map(|e| match e.msg {
            ni_coherence::CohMsg::NcRead { block } => Some(block),
            _ => None,
        })
        .collect();
    assert_eq!(reads.len(), 3, "one local payload read per block");
    // Return the local data; each NcData produces one outbound write.
    for (i, &b) in reads.iter().enumerate() {
        be.on_nc_data(Cycle(40 + i as u64), b, 100 + i as u64);
    }
    let d2 = drain(&mut be, 40, 20);
    assert_eq!(d2.net.len(), 3);
    for r in &d2.net {
        assert!(!r.is_read);
        assert!(r.value >= 100 && r.value < 103, "payload value shipped");
    }
    assert_eq!(be.stats().payload_bytes.get(), 3 * 64);
}

#[test]
fn per_tile_backend_detours_via_edge() {
    let via = NocNode::NiBlock(5);
    let mut be = backend(Some(via));
    be.on_wq_entry(
        Cycle(0),
        entry(1, RemoteOp::Read, 64),
        0,
        NocNode::tile(0, 0),
    );
    let d = drain(&mut be, 0, 20);
    assert!(
        d.net.is_empty(),
        "per-tile backends cannot reach the router directly"
    );
    let outs: Vec<_> =
        d.ni.iter()
            .filter(|(dst, msg)| *dst == via && matches!(msg, NiMsg::NetOut(_)))
            .collect();
    assert_eq!(
        outs.len(),
        1,
        "request detours via the edge NI block (§6.2)"
    );
}

#[test]
fn concurrent_transfers_interleave_round_robin() {
    let mut be = backend(None);
    be.on_wq_entry(
        Cycle(0),
        entry(1, RemoteOp::Read, 4 * 64),
        1,
        NocNode::tile(0, 0),
    );
    be.on_wq_entry(
        Cycle(0),
        entry(2, RemoteOp::Read, 4 * 64),
        2,
        NocNode::tile(1, 0),
    );
    let d = drain(&mut be, 0, 40);
    assert_eq!(d.net.len(), 8);
    // Both transfers make progress within the first half of the unrolls.
    let first_half: Vec<u16> = d.net[..4].iter().map(|r| (r.tid >> 32) as u16).collect();
    let slots: std::collections::HashSet<u64> =
        d.net[..4].iter().map(|r| r.tid & 0xffff_ffff).collect();
    assert!(
        slots.len() > 1,
        "round-robin interleaves slots: {first_half:?}"
    );
}

// ---- ITT timeout / retry ----------------------------------------------

fn watchdog_backend(timeout: u64, retries: u32) -> NiBackend {
    NiBackend::new(
        NocNode::NiBlock(0),
        3,
        RmcConfig {
            itt_timeout: timeout,
            itt_retries: retries,
            ..RmcConfig::default()
        },
        QpConfig::default(),
        home,
        64,
        None,
    )
}

fn resp_for(r: &RemoteReq) -> RemoteResp {
    RemoteResp {
        tid: r.tid,
        dst_node: 0,
        remote_block: r.remote_block,
        value: 1,
        is_read: true,
    }
}

#[test]
fn itt_timeout_resends_only_the_missing_blocks() {
    let fe = NocNode::tile(1, 1);
    let mut be = watchdog_backend(100, 2);
    be.on_wq_entry(Cycle(0), entry(1, RemoteOp::Read, 4 * 64), 0, fe);
    let d = drain(&mut be, 0, 20);
    assert_eq!(d.net.len(), 4);
    // Two blocks answered; two lost to a (simulated) dead link.
    be.on_response(Cycle(30), resp_for(&d.net[0]));
    be.on_response(Cycle(31), resp_for(&d.net[1]));
    let d2 = drain(&mut be, 20, 80);
    assert!(d2.net.is_empty(), "nothing re-sent before the deadline");
    // Progress was at cycle 31; the watchdog fires at 131.
    let d3 = drain(&mut be, 100, 60);
    assert_eq!(d3.net.len(), 2, "exactly the unanswered tail re-sent");
    assert_eq!(be.stats().itt_timeouts.get(), 1);
    assert_eq!(be.stats().itt_retries.get(), 1);
    assert_eq!(be.stats().failed_transfers.get(), 0);
    // The re-sent blocks arrive: the transfer completes successfully.
    be.on_response(Cycle(170), resp_for(&d3.net[0]));
    be.on_response(Cycle(171), resp_for(&d3.net[1]));
    let d4 = drain(&mut be, 170, 20);
    assert!(d4.ni.iter().any(|(dst, msg)| *dst == fe
        && matches!(
            msg,
            NiMsg::CqNotify {
                qp: 0,
                wq_id: 1,
                ok: true,
                ..
            }
        )));
    assert_eq!(be.inflight(), 0);
    assert!(be.is_quiescent());
}

#[test]
fn exhausted_retry_budget_completes_with_an_error_status() {
    let fe = NocNode::tile(2, 0);
    let mut be = watchdog_backend(50, 1);
    be.on_wq_entry(Cycle(0), entry(7, RemoteOp::Read, 64), 4, fe);
    // No responses ever arrive (dead destination). One retry at ~+50,
    // then the error completion at ~+100.
    let d = drain(&mut be, 0, 200);
    assert_eq!(d.net.len(), 2, "original send plus one retry");
    assert_eq!(be.stats().itt_timeouts.get(), 2);
    assert_eq!(be.stats().itt_retries.get(), 1);
    assert_eq!(be.stats().failed_transfers.get(), 1);
    let fails: Vec<_> =
        d.ni.iter()
            .filter(|(dst, msg)| {
                *dst == fe
                    && matches!(
                        msg,
                        NiMsg::CqNotify {
                            qp: 4,
                            wq_id: 7,
                            ok: false,
                            ..
                        }
                    )
            })
            .collect();
    assert_eq!(fails.len(), 1, "exactly one error CqNotify");
    assert_eq!(be.inflight(), 0, "the slot is freed on failure");
    assert!(be.is_quiescent(), "an abandoned transfer leaves no residue");
}

#[test]
fn responses_outliving_their_transfer_are_dropped_as_stale() {
    let mut be = watchdog_backend(50, 0);
    be.on_wq_entry(
        Cycle(0),
        entry(1, RemoteOp::Read, 64),
        0,
        NocNode::tile(0, 0),
    );
    let d = drain(&mut be, 0, 120);
    assert_eq!(
        be.stats().failed_transfers.get(),
        1,
        "gave up with 0 retries"
    );
    // A new transfer recycles the same slot under a fresh generation.
    be.on_wq_entry(
        Cycle(200),
        entry(2, RemoteOp::Read, 64),
        0,
        NocNode::tile(0, 0),
    );
    let d2 = drain(&mut be, 200, 20);
    assert_eq!(d2.net.len(), 1);
    assert_ne!(
        d2.net[0].tid, d.net[0].tid,
        "slot reuse must mint a fresh generation"
    );
    // The original response finally limps home: dropped, not matched.
    be.on_response(Cycle(230), resp_for(&d.net[0]));
    drain(&mut be, 230, 20);
    assert_eq!(be.stats().stale_responses.get(), 1);
    assert_eq!(
        be.inflight(),
        1,
        "the recycled slot's live transfer is untouched"
    );
    // The real response completes it.
    be.on_response(Cycle(260), resp_for(&d2.net[0]));
    drain(&mut be, 260, 20);
    assert_eq!(be.inflight(), 0);
}

#[test]
fn write_transfer_failure_orphans_pending_local_reads() {
    let mut be = watchdog_backend(50, 0);
    be.on_wq_entry(
        Cycle(0),
        entry(1, RemoteOp::Write, 2 * 64),
        0,
        NocNode::tile(0, 0),
    );
    let d = drain(&mut be, 0, 10);
    let reads: Vec<_> = d
        .coh
        .iter()
        .filter_map(|e| match e.msg {
            ni_coherence::CohMsg::NcRead { block } => Some(block),
            _ => None,
        })
        .collect();
    assert_eq!(reads.len(), 2, "payload reads issued");
    // The watchdog abandons the transfer before local data returns.
    drain(&mut be, 10, 120);
    assert_eq!(be.stats().failed_transfers.get(), 1);
    // Late local data must not resolve against the freed slot (this used
    // to be an `expect("slot live while reads pending")` panic path).
    be.on_nc_data(Cycle(150), reads[0], 0xEE);
    be.on_nc_data(Cycle(151), reads[1], 0xEF);
    let d2 = drain(&mut be, 150, 20);
    assert!(d2.net.is_empty(), "no payload ships for a dead transfer");
    assert!(be.is_quiescent());
}

/// A block lost in the *middle* of a transfer (later blocks answered) must
/// be exactly what the retry re-sends — a suffix-based resend would skip
/// it and let duplicate arrivals complete the transfer `ok` with data
/// missing.
#[test]
fn retry_resends_a_block_lost_mid_transfer() {
    let fe = NocNode::tile(0, 3);
    let mut be = watchdog_backend(100, 1);
    be.on_wq_entry(Cycle(0), entry(1, RemoteOp::Read, 3 * 64), 0, fe);
    let d = drain(&mut be, 0, 20);
    assert_eq!(d.net.len(), 3);
    // Blocks 1 and 2 answered; block 0's request was erased by the fabric.
    be.on_response(Cycle(30), resp_for(&d.net[1]));
    be.on_response(Cycle(31), resp_for(&d.net[2]));
    let d2 = drain(&mut be, 20, 150);
    assert_eq!(d2.net.len(), 1, "exactly the lost block re-sent");
    assert_eq!(
        d2.net[0].remote_block, d.net[0].remote_block,
        "the re-send must target the missing block, not the tail"
    );
    // A duplicate of an already-answered block must not complete the
    // transfer...
    be.on_response(Cycle(200), resp_for(&d.net[1]));
    drain(&mut be, 200, 20);
    assert_eq!(be.inflight(), 1, "duplicate must not count as progress");
    assert_eq!(be.stats().stale_responses.get(), 1);
    // ...only the real missing data does.
    be.on_response(Cycle(230), resp_for(&d2.net[0]));
    let d3 = drain(&mut be, 230, 20);
    assert!(d3
        .ni
        .iter()
        .any(|(_, msg)| matches!(msg, NiMsg::CqNotify { ok: true, .. })));
    assert_eq!(be.inflight(), 0);
    assert!(be.is_quiescent());
}

/// A parked original response can arrive in the same tick the watchdog
/// re-queues its slot for resending: the completion must pull the slot
/// back out of the unroll queue, or the next `unroll_one` drives a freed
/// (or recycled) slot. This used to panic on `active slot is live`.
#[test]
fn response_arriving_as_the_watchdog_retries_completes_cleanly() {
    let mut be = watchdog_backend(50, 1);
    be.on_wq_entry(
        Cycle(0),
        entry(1, RemoteOp::Read, 64),
        0,
        NocNode::tile(0, 0),
    );
    let d = drain(&mut be, 0, 10);
    assert_eq!(d.net.len(), 1);
    // Admission happened at cycle 4 (rgp_be_proc), so the watchdog fires
    // at tick 54. RespDone events pay rcp_be_proc = 4 cycles: delivering
    // the response at 50 makes it land in tick 54's event loop — after
    // check_timeouts re-queued the slot, before the unroll phase resends.
    be.on_response(Cycle(50), resp_for(&d.net[0]));
    let d2 = drain(&mut be, 10, 100);
    assert!(d2.net.is_empty(), "completion must cancel the re-send");
    assert_eq!(be.stats().itt_retries.get(), 1, "the watchdog did fire");
    assert!(d2
        .ni
        .iter()
        .any(|(_, msg)| matches!(msg, NiMsg::CqNotify { ok: true, .. })));
    assert_eq!(be.inflight(), 0);
    assert!(
        be.is_quiescent(),
        "no zombie slot may stay in the unroll queue"
    );
    // The freed slot must be reusable without interference.
    be.on_wq_entry(
        Cycle(200),
        entry(2, RemoteOp::Read, 64),
        0,
        NocNode::tile(0, 0),
    );
    let d3 = drain(&mut be, 200, 20);
    assert_eq!(d3.net.len(), 1, "recycled slot unrolls exactly once");
}

// ---- RRPP --------------------------------------------------------------

fn rrpp() -> Rrpp {
    Rrpp::new(NocNode::NiBlock(2), RmcConfig::default(), home, 64)
}

fn req(tid: u64, is_read: bool, block: u64) -> RemoteReq {
    RemoteReq {
        tid,
        is_read,
        src_node: 0,
        target_node: 0,
        remote_block: BlockAddr(block),
        value: 0x77,
        service: 0,
    }
}

#[test]
fn rrpp_services_read_with_local_access_and_responds() {
    let mut r = rrpp();
    r.on_request(Cycle(0), req(11, true, 42));
    let mut reads = Vec::new();
    let mut resps = Vec::new();
    for t in 0..30u64 {
        r.tick(Cycle(t));
        while let Some(e) = r.pop_egress() {
            match e {
                RmcEgress::Coh(c) => reads.push(c),
                RmcEgress::NetResp(resp) => resps.push(resp),
                _ => {}
            }
        }
        if t == 15 && !reads.is_empty() && resps.is_empty() {
            r.on_nc_data(Cycle(t), BlockAddr(42), 0xDEAD);
        }
    }
    assert_eq!(reads.len(), 1);
    assert_eq!(
        reads[0].dst,
        home(BlockAddr(42), 64),
        "local access goes to the home bank"
    );
    assert_eq!(resps.len(), 1);
    assert_eq!(resps[0].tid, 11);
    assert_eq!(resps[0].value, 0xDEAD);
    assert!(resps[0].is_read);
    assert_eq!(r.stats().serviced.get(), 1);
    assert!(
        r.pop_latency_sample().is_some(),
        "latency sample feeds the rack emulator"
    );
}

#[test]
fn rrpp_services_write_with_nc_write() {
    let mut r = rrpp();
    r.on_request(Cycle(0), req(5, false, 7));
    let mut writes = 0;
    let mut resps = 0;
    for t in 0..30u64 {
        r.tick(Cycle(t));
        while let Some(e) = r.pop_egress() {
            match e {
                RmcEgress::Coh(c) => {
                    if let ni_coherence::CohMsg::NcWrite { value, .. } = c.msg {
                        assert_eq!(value, 0x77, "write payload forwarded to memory");
                        writes += 1;
                    }
                }
                RmcEgress::NetResp(resp) => {
                    assert!(!resp.is_read);
                    resps += 1;
                }
                _ => {}
            }
        }
        if t == 15 && writes > 0 && resps == 0 {
            r.on_nc_wack(Cycle(t), BlockAddr(7));
        }
    }
    assert_eq!(writes, 1);
    assert_eq!(resps, 1);
}

#[test]
fn rrpp_outstanding_window_is_bounded() {
    let cfg = RmcConfig {
        rrpp_max_outstanding: 4,
        ..RmcConfig::default()
    };
    let mut r = Rrpp::new(NocNode::NiBlock(0), cfg, home, 64);
    for i in 0..20u64 {
        r.on_request(Cycle(0), req(i, true, i));
    }
    let mut issued = 0;
    for t in 0..40u64 {
        r.tick(Cycle(t));
        while let Some(e) = r.pop_egress() {
            if matches!(e, RmcEgress::Coh(_)) {
                issued += 1;
            }
        }
    }
    assert_eq!(issued, 4, "no more than the window may be outstanding");
    assert_eq!(r.inflight(), 20, "the rest wait in the queue");
}

#[test]
fn rrpp_latency_counts_queueing_time() {
    let mut r = rrpp();
    r.on_request(Cycle(0), req(1, true, 1));
    for t in 0..10u64 {
        r.tick(Cycle(t));
        while r.pop_egress().is_some() {}
    }
    // Local data returns late: service latency includes the wait.
    r.on_nc_data(Cycle(500), BlockAddr(1), 0);
    while r.pop_egress().is_some() {}
    assert_eq!(r.pop_latency_sample(), Some(500));
    assert!((r.mean_latency() - 500.0).abs() < 1e-9);
}
