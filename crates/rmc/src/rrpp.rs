//! Remote Request Processing Pipeline (RRPP).
//!
//! The simplest pipeline (§4.1): it services incoming remote requests by
//! reading or writing local memory (through the non-caching LLC path) and
//! responding. RRPPs always sit at the chip edge next to the network
//! router, one per mesh row (Table 2), and incoming requests are
//! address-interleaved among them by home-bank location (§4.3) so each
//! request's on-chip path to its LLC slice is minimal.

use std::collections::{BTreeMap, VecDeque};

use ni_coherence::{ClientKind, CohMsg, Egress};
use ni_engine::{Counter, Cycle, DelayLine, RunningMean};
use ni_fabric::{RemoteReq, RemoteResp};
use ni_mem::BlockAddr;
use ni_noc::NocNode;

use crate::config::RmcConfig;
use crate::RmcEgress;

/// RRPP statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RrppStats {
    /// Requests serviced to completion.
    pub serviced: Counter,
    /// Bytes of payload sent back in read responses.
    pub payload_bytes: Counter,
    /// Requests that arrived while the pipeline was already at
    /// [`RmcConfig::rrpp_max_outstanding`] and had to wait in the arrival
    /// queue. Nothing is ever *rejected*: the queue is unbounded, every
    /// admitted request is eventually serviced and answered, and a request
    /// the fabric lost (dead link or node en route) is recovered by the
    /// *requester's* ITT timeout/retry — never by the RRPP, which cannot
    /// know the request existed.
    pub stalls: Counter,
}

/// One RRPP instance.
#[derive(Debug)]
pub struct Rrpp {
    node: NocNode,
    cfg: RmcConfig,
    home: fn(BlockAddr, u32) -> NocNode,
    n_banks: u32,
    /// Waiting requests, each with its arrival time. The arrival timestamp
    /// rides alongside the request through the whole pipeline: transfer
    /// tags are not unique across blocks of one transfer (or across
    /// requesting nodes), so no tid-keyed lookup can be correct.
    queue: VecDeque<(RemoteReq, Cycle)>,
    /// Requests whose local access is outstanding, FIFO per block.
    /// Keyed access only today, but a `BTreeMap` keeps any future
    /// iteration (and `Debug` output) deterministic for free.
    pending: BTreeMap<BlockAddr, Vec<(RemoteReq, Cycle)>>,
    outstanding: usize,
    started: DelayLine<(RemoteReq, Cycle)>,
    egress: VecDeque<RmcEgress>,
    latency: RunningMean,
    samples: VecDeque<u64>,
    stats: RrppStats,
}

impl Rrpp {
    /// Create an RRPP at `node` (an NI block or NOC-Out LLC tile).
    pub fn new(
        node: NocNode,
        cfg: RmcConfig,
        home: fn(BlockAddr, u32) -> NocNode,
        n_banks: u32,
    ) -> Rrpp {
        Rrpp {
            node,
            cfg,
            home,
            n_banks,
            queue: VecDeque::new(),
            pending: BTreeMap::new(),
            outstanding: 0,
            started: DelayLine::new(),
            egress: VecDeque::new(),
            latency: RunningMean::new(),
            samples: VecDeque::new(),
            stats: RrppStats::default(),
        }
    }

    /// Where this RRPP lives.
    pub fn node(&self) -> NocNode {
        self.node
    }

    /// Statistics.
    pub fn stats(&self) -> &RrppStats {
        &self.stats
    }

    /// Mean service latency (arrival to response injection), cycles.
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }

    /// Pop one recorded service-latency sample (fed to the rack emulator).
    pub fn pop_latency_sample(&mut self) -> Option<u64> {
        self.samples.pop_front()
    }

    /// An incoming remote request arrives from the network router.
    pub fn on_request(&mut self, now: Cycle, req: RemoteReq) {
        if self.outstanding >= self.cfg.rrpp_max_outstanding {
            self.stats.stalls.incr();
        }
        self.queue.push_back((req, now));
    }

    /// The local read for a request finished.
    pub fn on_nc_data(&mut self, now: Cycle, block: BlockAddr, value: u64) {
        self.complete(now, block, Some(value));
    }

    /// The local write for a request finished.
    pub fn on_nc_wack(&mut self, now: Cycle, block: BlockAddr) {
        self.complete(now, block, None);
    }

    /// Drive one cycle.
    pub fn tick(&mut self, now: Cycle) {
        // Begin processing queued requests (one per cycle, bounded window).
        if self.outstanding < self.cfg.rrpp_max_outstanding {
            if let Some(entry) = self.queue.pop_front() {
                self.outstanding += 1;
                // Two-sided ops carry a per-block compute time the serving
                // node spends before touching memory; it extends the fixed
                // pipeline delay, so the recorded service latency (arrival
                // to response injection) includes it.
                let proc = self.cfg.rrpp_proc + entry.0.service;
                self.started.push_after(now, proc, entry);
            }
        }
        // Issue the local memory access after the processing delay.
        while let Some((req, arrived)) = self.started.pop_ready(now) {
            let dst = (self.home)(req.remote_block, self.n_banks);
            let msg = if req.is_read {
                CohMsg::NcRead {
                    block: req.remote_block,
                }
            } else {
                CohMsg::NcWrite {
                    block: req.remote_block,
                    value: req.value,
                }
            };
            self.pending
                .entry(req.remote_block)
                .or_default()
                .push((req, arrived));
            self.egress.push_back(RmcEgress::Coh(Egress {
                dst,
                kind: ClientKind::Directory,
                msg,
            }));
        }
    }

    /// Next outbound item.
    pub fn pop_egress(&mut self) -> Option<RmcEgress> {
        self.egress.pop_front()
    }

    /// Requests currently inside the pipeline.
    pub fn inflight(&self) -> usize {
        self.outstanding + self.queue.len()
    }

    /// True when the pipeline is empty end to end: no queued or started
    /// requests, no outstanding local accesses, and no undelivered egress
    /// or latency samples. Ticking a quiescent RRPP is a no-op, so a
    /// quiesced chip may skip it.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
            && self.pending.is_empty()
            && self.outstanding == 0
            && self.started.is_empty()
            && self.egress.is_empty()
            && self.samples.is_empty()
    }

    /// Earliest cycle (>= `now`) at which this pipeline does anything on
    /// its own: undrained egress or latency samples, a queued request with
    /// admission credit, or a started request finishing its processing
    /// delay. `None` means only external input (an arriving request or the
    /// local access completing) wakes it — `pending` accesses wait on the
    /// memory system, and a full admission window waits on a completion to
    /// free credit.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.egress.is_empty()
            || !self.samples.is_empty()
            || (!self.queue.is_empty() && self.outstanding < self.cfg.rrpp_max_outstanding)
        {
            return Some(now);
        }
        self.started.next_ready_at()
    }

    /// True when a local access for `block` is outstanding (used by the
    /// chip to route NcData/NcWAck deliveries at shared NI blocks).
    pub fn has_pending(&self, block: BlockAddr) -> bool {
        self.pending.contains_key(&block)
    }

    fn complete(&mut self, now: Cycle, block: BlockAddr, value: Option<u64>) {
        let Some(list) = self.pending.get_mut(&block) else {
            return;
        };
        let (req, arrived) = list.remove(0);
        if list.is_empty() {
            self.pending.remove(&block);
        }
        self.outstanding -= 1;
        self.stats.serviced.incr();
        // Payload moved on behalf of the remote requester: a block sent
        // back (read) or a block absorbed into local memory (write).
        self.stats.payload_bytes.add(ni_mem::BLOCK_BYTES);
        let lat = now.saturating_since(arrived);
        self.latency.record(lat);
        self.samples.push_back(lat);
        self.egress.push_back(RmcEgress::NetResp(RemoteResp {
            tid: req.tid,
            dst_node: req.src_node,
            remote_block: req.remote_block,
            value: value.unwrap_or(0),
            is_read: req.is_read,
        }));
    }
}
