//! Latency tomography: per-request stage timestamps.
//!
//! Every pipeline stamps the requests it touches; the SoC layer collects
//! the events into a [`TraceTable`] from which the Table 1/3 breakdowns and
//! the Fig. 5 projections are computed.

use std::collections::BTreeMap;

use ni_engine::{Cycle, RunningMean};

/// Lifecycle stages of one remote operation (a WQ entry).
///
/// `Ord` follows declaration order, which is lifecycle order — the
/// [`TraceTable`] keys its per-request stamps by stage.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Stage {
    /// Core begins composing the WQ entry.
    WqWriteStart,
    /// Core's final WQ store completed.
    WqWriteDone,
    /// RGP frontend's poll observed the entry.
    FeObserved,
    /// RGP backend received the entry (latch or NOC).
    BeReceived,
    /// First unrolled packet left for the network router.
    NetOut,
    /// Final response packet arrived from the network router.
    NetIn,
    /// RCP backend finished writing data into local memory (issue time).
    DataWritten,
    /// RCP frontend's CQ store completed.
    CqWritten,
    /// Core's poll observed the completion.
    CqReadDone,
}

impl Stage {
    /// All stages in lifecycle order.
    pub const ALL: [Stage; 9] = [
        Stage::WqWriteStart,
        Stage::WqWriteDone,
        Stage::FeObserved,
        Stage::BeReceived,
        Stage::NetOut,
        Stage::NetIn,
        Stage::DataWritten,
        Stage::CqWritten,
        Stage::CqReadDone,
    ];
}

/// One timestamped stage of one request.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Queue pair the request belongs to.
    pub qp: u32,
    /// WQ entry id.
    pub wq_id: u64,
    /// Stage reached.
    pub stage: Stage,
    /// When.
    pub at: Cycle,
}

/// Collected request traces.
///
/// Rows are ordered (`BTreeMap`): [`TraceTable::mean_between`] folds
/// per-request durations into a float mean, and float summation is not
/// associative — hash-order iteration here made the reported breakdowns
/// differ between same-seed runs.
#[derive(Debug, Default)]
pub struct TraceTable {
    rows: BTreeMap<(u32, u64), BTreeMap<Stage, Cycle>>,
}

impl TraceTable {
    /// Empty table.
    pub fn new() -> TraceTable {
        TraceTable::default()
    }

    /// Record one event (first stamp per stage wins; re-polls re-observe).
    pub fn record(&mut self, e: TraceEvent) {
        self.rows
            .entry((e.qp, e.wq_id))
            .or_default()
            .entry(e.stage)
            .or_insert(e.at);
    }

    /// Timestamp of `stage` for request `(qp, wq_id)`.
    pub fn at(&self, qp: u32, wq_id: u64, stage: Stage) -> Option<Cycle> {
        self.rows.get(&(qp, wq_id))?.get(&stage).copied()
    }

    /// Number of traced requests.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Mean duration between two stages across all fully-stamped requests.
    pub fn mean_between(&self, a: Stage, b: Stage) -> Option<f64> {
        let mut m = RunningMean::new();
        for stamps in self.rows.values() {
            if let (Some(&ta), Some(&tb)) = (stamps.get(&a), stamps.get(&b)) {
                if tb >= ta {
                    m.record(tb - ta);
                }
            }
        }
        (m.count() > 0).then(|| m.mean())
    }

    /// Mean end-to-end latency (WqWriteStart to CqReadDone).
    pub fn mean_end_to_end(&self) -> Option<f64> {
        self.mean_between(Stage::WqWriteStart, Stage::CqReadDone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_measure() {
        let mut t = TraceTable::new();
        for (stage, at) in [
            (Stage::WqWriteStart, 0),
            (Stage::WqWriteDone, 13),
            (Stage::NetOut, 50),
            (Stage::CqReadDone, 447),
        ] {
            t.record(TraceEvent {
                qp: 0,
                wq_id: 1,
                stage,
                at: Cycle(at),
            });
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.mean_end_to_end(), Some(447.0));
        assert_eq!(
            t.mean_between(Stage::WqWriteStart, Stage::WqWriteDone),
            Some(13.0)
        );
        assert_eq!(t.mean_between(Stage::NetOut, Stage::NetIn), None);
    }

    #[test]
    fn first_stamp_wins() {
        let mut t = TraceTable::new();
        t.record(TraceEvent {
            qp: 0,
            wq_id: 1,
            stage: Stage::FeObserved,
            at: Cycle(10),
        });
        t.record(TraceEvent {
            qp: 0,
            wq_id: 1,
            stage: Stage::FeObserved,
            at: Cycle(20),
        });
        assert_eq!(t.at(0, 1, Stage::FeObserved), Some(Cycle(10)));
    }

    #[test]
    fn averages_across_requests() {
        let mut t = TraceTable::new();
        for (id, dt) in [(1u64, 100u64), (2, 200)] {
            t.record(TraceEvent {
                qp: 0,
                wq_id: id,
                stage: Stage::WqWriteStart,
                at: Cycle(0),
            });
            t.record(TraceEvent {
                qp: 0,
                wq_id: id,
                stage: Stage::CqReadDone,
                at: Cycle(dt),
            });
        }
        assert_eq!(t.mean_end_to_end(), Some(150.0));
    }
}
