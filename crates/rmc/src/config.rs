//! RMC configuration: pipeline timings and the NI placement design space.

use ni_fabric::ReplicaCfg;

/// The NI design space of §3 plus the idealized NUMA baseline.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum NiPlacement {
    /// Full RGP/RCP pipelines along the chip edge, one pair per NI block
    /// (§3.1). Lowest hardware cost; QP traffic crosses the whole NOC.
    Edge,
    /// Full RGP/RCP at every tile (§3.2). Minimal QP latency; unrolls and
    /// response indirection flood the NOC on bulk transfers.
    PerTile,
    /// The paper's contribution (§3.3): RGP/RCP frontends per tile, backends
    /// across the edge. Best of both.
    #[default]
    Split,
    /// Idealized hardware NUMA: the core issues single-block remote
    /// load/stores directly, with no QP machinery (Table 1's baseline).
    Numa,
}

impl NiPlacement {
    /// All QP-based placements (excludes the NUMA baseline).
    pub const QP_DESIGNS: [NiPlacement; 3] =
        [NiPlacement::Edge, NiPlacement::PerTile, NiPlacement::Split];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            NiPlacement::Edge => "NI_edge",
            NiPlacement::PerTile => "NI_per-tile",
            NiPlacement::Split => "NI_split",
            NiPlacement::Numa => "NUMA",
        }
    }

    /// True when RGP/RCP frontends sit at each tile.
    pub fn frontend_per_tile(self) -> bool {
        matches!(self, NiPlacement::PerTile | NiPlacement::Split)
    }

    /// True when RGP/RCP backends sit at each tile.
    pub fn backend_per_tile(self) -> bool {
        matches!(self, NiPlacement::PerTile)
    }
}

/// Pipeline timing and capacity parameters.
#[derive(Clone, Copy, Debug)]
pub struct RmcConfig {
    /// RGP frontend processing per WQ entry (QP selection, address
    /// computation; Table 3: 4 cycles).
    pub rgp_fe_proc: u64,
    /// RGP backend processing per request (init, verification; 4 cycles).
    pub rgp_be_proc: u64,
    /// RCP backend processing per response (status update; 4 cycles).
    pub rcp_be_proc: u64,
    /// RCP frontend processing per completion before the CQ store (Table 3
    /// charges 8 cycles of RCP frontend processing; the store itself is
    /// simulated).
    pub rcp_fe_proc: u64,
    /// RRPP processing on request arrival (translation etc.).
    pub rrpp_proc: u64,
    /// Inflight Transfer Table slots per backend.
    pub itt_slots: usize,
    /// Unrolled block requests a backend can inject per cycle (§6.1.3:
    /// "unrolls happen at a rate of one request per cycle").
    pub unroll_per_cycle: u32,
    /// Concurrent requests one RRPP keeps in flight.
    pub rrpp_max_outstanding: usize,
    /// Cycles between WQ polls when the previous poll found nothing.
    pub poll_backoff: u64,
    /// WQ polls of *distinct* QPs one frontend keeps in flight. Per-tile
    /// frontends serve one QP, so this only matters for NIedge, where each
    /// edge frontend services a whole row of cores. The default of 1 models
    /// the paper's serialized RGP poll loop (and reproduces Table 3's
    /// NIedge numbers); higher values are an extension studied by the
    /// `ablation_fe_concurrency` bench.
    pub fe_poll_concurrency: usize,
    /// Cycles an ITT entry may sit without progress (no response arriving)
    /// before the backend declares it timed out and re-sends its missing
    /// blocks — the recovery path for traffic a dead link or node erased.
    /// `0` disables the watchdog entirely (the paper's fault-free
    /// methodology, and the default: a healthy run is bit-identical with
    /// the watchdog armed or not, but disabled costs nothing per tick).
    /// When set, it must comfortably exceed the worst-case round trip
    /// *plus* the unroll time of the largest transfer, or healthy
    /// transfers will spuriously retry.
    pub itt_timeout: u64,
    /// Re-send attempts per ITT entry after a timeout before the backend
    /// gives up and completes the operation with an error CQ status
    /// ([`ni_qp::CqEntry::ok`]` == false`). Only meaningful with a
    /// non-zero `itt_timeout`.
    pub itt_retries: u32,
    /// K-way replication (`k`, write quorum `w`, placement seed). The
    /// default ([`ReplicaCfg::off`], `k == 1`) disables every recovery path
    /// and keeps all existing runs bit-identical. With `k > 1` the chip
    /// derives a deterministic [`ReplicaMap`](ni_fabric::ReplicaMap) and
    /// its backends fail reads over across it and fan writes out to a
    /// `w`-of-`k` quorum.
    pub replication: ReplicaCfg,
    /// WQ replays per transfer: after the ITT watchdog exhausts
    /// `itt_retries` re-sends toward one destination, the backend may
    /// re-inject the whole transfer from its WQ descriptor toward the next
    /// replica this many times before error-completing. `0` (the default)
    /// disables replay; only meaningful with an armed watchdog, replication
    /// `k > 1`, and read transfers (replicated writes recover through the
    /// quorum instead).
    pub replay_budget: u32,
}

impl Default for RmcConfig {
    fn default() -> Self {
        RmcConfig {
            rgp_fe_proc: 4,
            rgp_be_proc: 4,
            rcp_be_proc: 4,
            rcp_fe_proc: 4,
            rrpp_proc: 4,
            itt_slots: 64,
            unroll_per_cycle: 1,
            rrpp_max_outstanding: 64,
            poll_backoff: 0,
            fe_poll_concurrency: 1,
            itt_timeout: 0,
            itt_retries: 1,
            replication: ReplicaCfg::off(),
            replay_budget: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_predicates_match_paper_designs() {
        assert!(!NiPlacement::Edge.frontend_per_tile());
        assert!(!NiPlacement::Edge.backend_per_tile());
        assert!(NiPlacement::PerTile.frontend_per_tile());
        assert!(NiPlacement::PerTile.backend_per_tile());
        assert!(NiPlacement::Split.frontend_per_tile());
        assert!(!NiPlacement::Split.backend_per_tile());
        assert_eq!(NiPlacement::default(), NiPlacement::Split);
    }

    #[test]
    fn names_match_figures() {
        assert_eq!(NiPlacement::Edge.name(), "NI_edge");
        assert_eq!(NiPlacement::Split.name(), "NI_split");
        assert_eq!(NiPlacement::PerTile.name(), "NI_per-tile");
        assert_eq!(NiPlacement::Numa.name(), "NUMA");
    }

    #[test]
    fn default_unroll_rate_is_one_per_cycle() {
        assert_eq!(RmcConfig::default().unroll_per_cycle, 1);
    }
}
