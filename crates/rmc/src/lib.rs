//! # ni-rmc — the Remote Memory Controller (soNUMA NI) pipelines
//!
//! §4 of the paper: every remote operation passes through three independent
//! pipelines — the Request Generation Pipeline (RGP), the Request Completion
//! Pipeline (RCP) and the Remote Request Processing Pipeline (RRPP). This
//! crate implements them as explicit state machines:
//!
//! * [`frontend::NiFrontend`] — the RGP/RCP *frontends*: QP selection, WQ
//!   polling through the NI cache, and CQ entry writes (Fig. 4). One per
//!   tile in the NIper-tile and NIsplit designs; one per NI block (serving a
//!   whole mesh row of cores) in NIedge.
//! * [`backend::NiBackend`] — the RGP/RCP *backends*: the inflight transfer
//!   table (ITT), request unrolling into cache-block-sized network packets
//!   at one per cycle (§6.1.3), and delivery of response payloads into local
//!   memory through the non-caching LLC path. One per NI block (edge rows)
//!   in NIedge/NIsplit; one per tile in NIper-tile.
//! * [`rrpp::Rrpp`] — services incoming remote requests against local
//!   memory; always placed across the chip's edge (all designs, §4.2).
//!
//! The Frontend-Backend Interface (§4.2) is a pipeline latch in NIedge and
//! NIper-tile, and a NOC message ([`NiMsg::WqFwd`] / [`NiMsg::CqNotify`]) in
//! NIsplit.

#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod frontend;
pub mod rrpp;
pub mod trace;

pub use backend::{BackendStats, NiBackend};
pub use config::{NiPlacement, RmcConfig};
pub use frontend::NiFrontend;
pub use rrpp::Rrpp;
pub use trace::{Stage, TraceEvent, TraceTable};

use ni_coherence::Egress;
use ni_fabric::{RemoteReq, RemoteResp};
use ni_noc::NocNode;
use ni_qp::WqEntry;

/// RMC-level messages carried over the NOC between NI components.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NiMsg {
    /// Frontend-to-backend WQ entry transfer (NIsplit's extra pipeline
    /// stage that packetizes a valid WQ entry, §4.2).
    WqFwd {
        /// The work-queue entry being forwarded.
        entry: WqEntry,
        /// Owning queue pair.
        qp: u32,
        /// Issuing frontend (for the completion notification route back).
        fe: NocNode,
    },
    /// Backend-to-frontend completion notification (NIsplit RCP split).
    CqNotify {
        /// Owning queue pair.
        qp: u32,
        /// Completed WQ entry id.
        wq_id: u64,
        /// Completion status written into the CQ entry: `false` when the
        /// backend gave up on the transfer (ITT timeout past the retry
        /// budget) so the core observes the failure instead of hanging.
        ok: bool,
        /// Degraded-path marker carried into
        /// [`ni_qp::CqEntry::degraded`]: the transfer needed a WQ replay
        /// to an alternate replica, or its write quorum absorbed a dead
        /// fan-out leg.
        degraded: bool,
    },
    /// A per-tile backend's unrolled request traveling to the chip edge.
    NetOut(RemoteReq),
    /// A response payload traveling from the chip edge to a per-tile
    /// backend (the NIper-tile indirection of §6.2).
    NetIn(RemoteResp),
}

impl NiMsg {
    /// Wire length in 16-byte flits (§6.1.3: a request packet encapsulated
    /// in a NOC packet takes two flits; block-data packets take six).
    pub fn flits(&self) -> u8 {
        match self {
            NiMsg::WqFwd { .. } => 2,
            NiMsg::CqNotify { .. } => 1,
            NiMsg::NetOut(r) => {
                if r.is_read {
                    2
                } else {
                    6
                }
            }
            NiMsg::NetIn(r) => {
                if r.is_read {
                    6
                } else {
                    2
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ni_mem::Addr;
    use ni_qp::RemoteOp;

    fn wq_entry() -> WqEntry {
        WqEntry {
            id: 1,
            op: RemoteOp::Read,
            remote_node: 0,
            remote_addr: Addr(0),
            local_addr: Addr(0),
            length: 64,
            service: 0,
        }
    }

    #[test]
    fn command_messages_are_short() {
        let fwd = NiMsg::WqFwd {
            entry: wq_entry(),
            qp: 0,
            fe: NocNode::tile(0, 0),
        };
        assert_eq!(fwd.flits(), 2, "a WQ entry plus header fits two flits");
        let note = NiMsg::CqNotify {
            qp: 0,
            wq_id: 1,
            ok: true,
            degraded: false,
        };
        assert_eq!(note.flits(), 1);
    }

    #[test]
    fn data_direction_determines_packet_length() {
        let read_req = RemoteReq {
            tid: 0,
            is_read: true,
            src_node: 0,
            target_node: 0,
            remote_block: ni_mem::BlockAddr(0),
            value: 0,
            service: 0,
        };
        let write_req = RemoteReq {
            is_read: false,
            ..read_req
        };
        // Read requests carry no payload (2 flits); write requests carry a
        // block (6 flits). Responses mirror that.
        assert_eq!(NiMsg::NetOut(read_req).flits(), 2);
        assert_eq!(NiMsg::NetOut(write_req).flits(), 6);
        let read_resp = RemoteResp {
            tid: 0,
            dst_node: 0,
            remote_block: ni_mem::BlockAddr(0),
            value: 0,
            is_read: true,
        };
        let write_resp = RemoteResp {
            is_read: false,
            ..read_resp
        };
        assert_eq!(NiMsg::NetIn(read_resp).flits(), 6);
        assert_eq!(NiMsg::NetIn(write_resp).flits(), 2);
    }
}

/// Everything an RMC pipeline can emit in one tick.
#[derive(Clone, Copy, Debug)]
pub enum RmcEgress {
    /// A coherence-layer message (non-caching LLC access) to a directory.
    Coh(Egress),
    /// An RMC message to another NI component over the NOC.
    Ni {
        /// Destination NI component.
        dst: NocNode,
        /// Message.
        msg: NiMsg,
    },
    /// A request handed directly to the network router (co-located NIs).
    Net(RemoteReq),
    /// A response handed directly to the network router (RRPP output).
    NetResp(RemoteResp),
    /// A latency-tomography event.
    Trace(TraceEvent),
}
