//! RGP/RCP backends: the ITT, request unrolling, and response data handling.
//!
//! The backend receives validated WQ entries from its frontends, allocates
//! an Inflight Transfer Table slot, and unrolls the transfer into
//! cache-block-sized network requests at one per cycle (§6.1.3). Responses
//! are matched back to their slot; read payloads are written into local
//! memory through the non-caching LLC path; when the last block lands, the
//! backend notifies the owning frontend so it can write the CQ entry.

use std::collections::{HashMap, VecDeque};

use ni_coherence::{ClientKind, CohMsg, Egress};
use ni_engine::{Counter, Cycle, DelayLine};
use ni_fabric::{RemoteReq, RemoteResp};
use ni_mem::BlockAddr;
use ni_noc::NocNode;
use ni_qp::{QpConfig, RemoteOp, WqEntry};

use crate::config::RmcConfig;
use crate::trace::{Stage, TraceEvent};
use crate::{NiMsg, RmcEgress};

/// One in-flight transfer.
#[derive(Debug, Clone)]
struct IttEntry {
    qp: u32,
    fe: NocNode,
    wq_id: u64,
    op: RemoteOp,
    remote_node: u16,
    remote_base: BlockAddr,
    local_base: BlockAddr,
    total: u64,
    sent: u64,
    responses: u64,
}

#[derive(Debug)]
enum BeEv {
    /// Finish RGP backend processing; start unrolling the entry.
    Activate {
        entry: WqEntry,
        qp: u32,
        fe: NocNode,
    },
    /// Finish RCP backend processing of one response.
    RespDone(RemoteResp),
}

/// Backend statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendStats {
    /// Transfers accepted.
    pub transfers: Counter,
    /// Block requests sent.
    pub requests_sent: Counter,
    /// Block responses handled.
    pub responses: Counter,
    /// Bytes of remote-read payload written into local memory.
    pub payload_bytes: Counter,
    /// Entries stalled on a full ITT.
    pub itt_stalls: Counter,
}

/// An RGP/RCP backend.
#[derive(Debug)]
pub struct NiBackend {
    node: NocNode,
    /// Unique id used in the transfer-tag encoding.
    id: u16,
    cfg: RmcConfig,
    qp_cfg: QpConfig,
    home: fn(BlockAddr, u32) -> NocNode,
    n_banks: u32,
    /// When the backend is not at the chip edge (NIper-tile), its network
    /// packets detour via this NI block (§6.2's indirection).
    edge_via: Option<NocNode>,
    itt: HashMap<u32, IttEntry>,
    free_slots: Vec<u32>,
    /// Entries waiting for a free ITT slot.
    waiting: VecDeque<(WqEntry, u32, NocNode)>,
    /// Slots with blocks left to unroll, round-robin.
    active: VecDeque<u32>,
    /// Local reads outstanding for remote-write payloads: block -> slot.
    pending_local_reads: HashMap<BlockAddr, Vec<u32>>,
    events: DelayLine<BeEv>,
    egress: VecDeque<RmcEgress>,
    stats: BackendStats,
}

impl NiBackend {
    /// Create backend `id` at `node`. `edge_via` must be set when the
    /// backend is not co-located with the network router.
    pub fn new(
        node: NocNode,
        id: u16,
        cfg: RmcConfig,
        qp_cfg: QpConfig,
        home: fn(BlockAddr, u32) -> NocNode,
        n_banks: u32,
        edge_via: Option<NocNode>,
    ) -> NiBackend {
        NiBackend {
            node,
            id,
            cfg,
            qp_cfg,
            home,
            n_banks,
            edge_via,
            itt: HashMap::new(),
            free_slots: (0..cfg.itt_slots as u32).rev().collect(),
            waiting: VecDeque::new(),
            active: VecDeque::new(),
            pending_local_reads: HashMap::new(),
            events: DelayLine::new(),
            egress: VecDeque::new(),
            stats: BackendStats::default(),
        }
    }

    /// Where this backend lives.
    pub fn node(&self) -> NocNode {
        self.node
    }

    /// Statistics.
    pub fn stats(&self) -> &BackendStats {
        &self.stats
    }

    /// True when the backend holds no in-flight work anywhere in its
    /// pipeline: no ITT entries, nothing waiting for a slot, no pending
    /// local reads, and empty event/egress queues. Ticking a quiescent
    /// backend is a no-op, so a quiesced chip may skip it.
    pub fn is_quiescent(&self) -> bool {
        self.itt.is_empty()
            && self.waiting.is_empty()
            && self.active.is_empty()
            && self.pending_local_reads.is_empty()
            && self.events.is_empty()
            && self.egress.is_empty()
    }

    /// Transfer tag for `(backend, slot)`.
    fn tid(&self, slot: u32) -> u64 {
        (u64::from(self.id) << 32) | u64::from(slot)
    }

    /// Backend id encoded in a transfer tag.
    pub fn backend_of_tid(tid: u64) -> u16 {
        (tid >> 32) as u16
    }

    /// Accept a WQ entry from a frontend (latch or NOC delivery).
    pub fn on_wq_entry(&mut self, now: Cycle, entry: WqEntry, qp: u32, fe: NocNode) {
        self.egress.push_back(RmcEgress::Trace(TraceEvent {
            qp,
            wq_id: entry.id,
            stage: Stage::BeReceived,
            at: now,
        }));
        self.events
            .push_after(now, self.cfg.rgp_be_proc, BeEv::Activate { entry, qp, fe });
    }

    /// Accept a response from the network (direct or via NOC `NetIn`).
    pub fn on_response(&mut self, now: Cycle, resp: RemoteResp) {
        self.events
            .push_after(now, self.cfg.rcp_be_proc, BeEv::RespDone(resp));
    }

    /// Accept a non-caching read reply (local data for a remote write).
    pub fn on_nc_data(&mut self, now: Cycle, block: BlockAddr, value: u64) {
        let Some(slots) = self.pending_local_reads.get_mut(&block) else {
            return;
        };
        let slot = slots.remove(0);
        if slots.is_empty() {
            self.pending_local_reads.remove(&block);
        }
        let e = self.itt.get(&slot).expect("slot live while reads pending");
        let idx = block.0 - e.local_base.0;
        let req = RemoteReq {
            tid: self.tid(slot),
            is_read: false,
            src_node: 0, // stamped by the fabric at the network router
            target_node: e.remote_node,
            remote_block: e.remote_base.step(idx),
            value,
        };
        // Outbound write payload counts as application data moved (the
        // write-direction analog of §6.2's read accounting).
        self.stats.payload_bytes.add(ni_mem::BLOCK_BYTES);
        self.emit_net(now, req);
    }

    /// Acknowledgment of a local NcWrite (response payload landed); no
    /// action needed beyond flow control.
    pub fn on_nc_wack(&mut self, _now: Cycle, _block: BlockAddr) {}

    /// Drive one cycle.
    pub fn tick(&mut self, now: Cycle) {
        while let Some(ev) = self.events.pop_ready(now) {
            match ev {
                BeEv::Activate { entry, qp, fe } => self.activate(now, entry, qp, fe),
                BeEv::RespDone(resp) => self.finish_response(now, resp),
            }
        }
        // Admit waiting entries into free ITT slots.
        while !self.waiting.is_empty() && !self.free_slots.is_empty() {
            let (entry, qp, fe) = self.waiting.pop_front().expect("checked non-empty");
            self.admit(now, entry, qp, fe);
        }
        // Unroll active transfers.
        for _ in 0..self.cfg.unroll_per_cycle {
            let Some(&slot) = self.active.front() else {
                break;
            };
            self.unroll_one(now, slot);
        }
    }

    /// Next outbound item.
    pub fn pop_egress(&mut self) -> Option<RmcEgress> {
        self.egress.pop_front()
    }

    /// In-flight transfer count.
    pub fn inflight(&self) -> usize {
        self.itt.len()
    }

    // ---- internals -------------------------------------------------------

    fn activate(&mut self, now: Cycle, entry: WqEntry, qp: u32, fe: NocNode) {
        if self.free_slots.is_empty() {
            self.stats.itt_stalls.incr();
            self.waiting.push_back((entry, qp, fe));
        } else {
            self.admit(now, entry, qp, fe);
        }
    }

    fn admit(&mut self, _now: Cycle, entry: WqEntry, qp: u32, fe: NocNode) {
        let slot = self.free_slots.pop().expect("caller checked free slot");
        self.stats.transfers.incr();
        self.itt.insert(
            slot,
            IttEntry {
                qp,
                fe,
                wq_id: entry.id,
                op: entry.op,
                remote_node: entry.remote_node,
                remote_base: entry.remote_addr.block(),
                local_base: entry.local_addr.block(),
                total: entry.blocks(),
                sent: 0,
                responses: 0,
            },
        );
        self.active.push_back(slot);
    }

    fn unroll_one(&mut self, now: Cycle, slot: u32) {
        let e = self.itt.get_mut(&slot).expect("active slot is live");
        let idx = e.sent;
        let (qp, wq_id, op) = (e.qp, e.wq_id, e.op);
        let (remote_block, local_block, tgt) = (
            e.remote_base.step(idx),
            e.local_base.step(idx),
            e.remote_node,
        );
        e.sent += 1;
        let finished_unroll = e.sent >= e.total;
        if finished_unroll {
            let pos = self
                .active
                .iter()
                .position(|&s| s == slot)
                .expect("slot was active");
            self.active.remove(pos);
        } else {
            // Round-robin across active transfers.
            if self.active.len() > 1 {
                let s = self.active.pop_front().expect("non-empty");
                self.active.push_back(s);
            }
        }
        if idx == 0 {
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id,
                stage: Stage::NetOut,
                at: now,
            }));
        }
        match op {
            RemoteOp::Read => {
                let req = RemoteReq {
                    tid: self.tid(slot),
                    is_read: true,
                    src_node: 0, // stamped by the fabric at the network router
                    target_node: tgt,
                    remote_block,
                    value: 0,
                };
                self.emit_net(now, req);
            }
            RemoteOp::Write => {
                // Load the payload from local memory first (Fig. 4a:
                // "Memory Read" stage), then ship it.
                self.pending_local_reads
                    .entry(local_block)
                    .or_default()
                    .push(slot);
                self.egress.push_back(RmcEgress::Coh(Egress {
                    dst: (self.home)(local_block, self.n_banks),
                    kind: ClientKind::Directory,
                    msg: CohMsg::NcRead { block: local_block },
                }));
            }
        }
    }

    fn emit_net(&mut self, _now: Cycle, req: RemoteReq) {
        self.stats.requests_sent.incr();
        match self.edge_via {
            None => self.egress.push_back(RmcEgress::Net(req)),
            Some(via) => self.egress.push_back(RmcEgress::Ni {
                dst: via,
                msg: NiMsg::NetOut(req),
            }),
        }
    }

    fn finish_response(&mut self, now: Cycle, resp: RemoteResp) {
        let slot = (resp.tid & 0xffff_ffff) as u32;
        let e = self.itt.get_mut(&slot).expect("response matches live slot");
        self.stats.responses.incr();
        e.responses += 1;
        let done = e.responses >= e.total;
        let (qp, wq_id, fe) = (e.qp, e.wq_id, e.fe);
        if resp.is_read {
            let idx = resp.remote_block.0 - e.remote_base.0;
            let local = e.local_base.step(idx);
            self.stats.payload_bytes.add(ni_mem::BLOCK_BYTES);
            self.egress.push_back(RmcEgress::Coh(Egress {
                dst: (self.home)(local, self.n_banks),
                kind: ClientKind::Directory,
                msg: CohMsg::NcWrite {
                    block: local,
                    value: resp.value,
                },
            }));
        }
        if done {
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id,
                stage: Stage::NetIn,
                at: now,
            }));
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id,
                stage: Stage::DataWritten,
                at: now,
            }));
            self.itt.remove(&slot);
            self.free_slots.push(slot);
            self.egress.push_back(RmcEgress::Ni {
                dst: fe,
                msg: NiMsg::CqNotify { qp, wq_id },
            });
        }
        let _ = self.qp_cfg;
    }
}
