//! RGP/RCP backends: the ITT, request unrolling, and response data handling.
//!
//! The backend receives validated WQ entries from its frontends, allocates
//! an Inflight Transfer Table slot, and unrolls the transfer into
//! cache-block-sized network requests at one per cycle (§6.1.3). Responses
//! are matched back to their slot; read payloads are written into local
//! memory through the non-caching LLC path; when the last block lands, the
//! backend notifies the owning frontend so it can write the CQ entry.
//!
//! The ITT doubles as the end-to-end recovery point for a degraded rack:
//! every entry tracks its last progress cycle, and an optional watchdog
//! ([`RmcConfig::itt_timeout`]) re-sends the missing blocks of a stalled
//! transfer up to [`RmcConfig::itt_retries`] times before giving up and
//! completing the operation with an error CQ status — so a dead link or
//! node costs the issuing core a failed completion, never a hang.
//!
//! With a [`ReplicaMap`] installed ([`NiBackend::set_replicas`]) the
//! backend goes one step further and makes recovery *transparent*:
//!
//! * **WQ replay (read failover).** When the watchdog exhausts a
//!   transfer's retries, instead of error-completing it the backend
//!   re-injects the whole operation from its WQ descriptor toward the next
//!   replica of the original destination — up to
//!   [`RmcConfig::replay_budget`] times, under a fresh slot generation so
//!   stragglers from the abandoned destination are recognized as stale.
//! * **Write fan-out with a W-of-K quorum.** A replicated write expands
//!   into one ITT leg per replica; the single CQ notification fires once
//!   [`ReplicaCfg::w`](ni_fabric::ReplicaCfg) legs acknowledged (or, as an
//!   error, once too many legs died for the quorum to ever be met), so one
//!   dead replica costs nothing but a `degraded` completion flag.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use ni_coherence::{ClientKind, CohMsg, Egress};
use ni_engine::{Counter, Cycle, DelayLine};
use ni_fabric::{RemoteReq, RemoteResp, ReplicaMap};
use ni_mem::BlockAddr;
use ni_noc::NocNode;
use ni_qp::{QpConfig, RemoteOp, WqEntry};

use crate::config::RmcConfig;
use crate::trace::{Stage, TraceEvent};
use crate::{NiMsg, RmcEgress};

/// One in-flight transfer.
#[derive(Debug, Clone)]
struct IttEntry {
    qp: u32,
    fe: NocNode,
    wq_id: u64,
    op: RemoteOp,
    remote_node: u16,
    remote_base: BlockAddr,
    local_base: BlockAddr,
    total: u64,
    sent: u64,
    responses: u64,
    /// Slot reuse generation stamped into this transfer's tids, so a
    /// response that limps home after its entry timed out (and the slot
    /// was recycled) is recognized as stale instead of corrupting the new
    /// occupant.
    gen: u16,
    /// Last cycle this transfer made progress (admitted, retried, or
    /// received a response); the ITT watchdog measures staleness from
    /// here, so long unrolls with a live remote end never spuriously time
    /// out.
    last_progress: Cycle,
    /// Re-sends left before the backend gives up and error-completes.
    retries_left: u32,
    /// Per-block acknowledgment bitmap, allocated only when the watchdog
    /// is armed (empty = tracking off, the healthy-run fast path). Retries
    /// make *duplicate* responses possible, and with duplicates a bare
    /// count cannot tell "every block arrived" from "some block arrived
    /// twice while another was lost" — the bitmap is what keeps an
    /// `ok == true` completion meaning all data actually transferred.
    acked: Vec<u64>,
    /// The WQ descriptor's original destination — the anchor whose replica
    /// set a WQ replay rotates `remote_node` through.
    primary: u16,
    /// Index into `replicas(primary)` this transfer currently targets
    /// (0 = the primary itself).
    replica_rank: u32,
    /// WQ replays left: whole-transfer re-injections toward the next
    /// replica after the retry budget toward one destination is spent.
    /// Granted only to non-quorum transfers with somewhere else to go.
    replays_left: u32,
    /// The transfer needed at least one WQ replay — carried into the CQ
    /// entry's `degraded` flag so the application can tell a failover
    /// completion from a first-try one.
    replayed: bool,
    /// One leg of a replicated write fan-out: completion (success or
    /// failure) routes through the quorum table instead of emitting a CQ
    /// notification of its own.
    quorum: bool,
    /// Remote compute cycles the serving RRPP spends on each block before
    /// replying (two-sided request–response ops); stamped into every
    /// network request this transfer unrolls into. Zero for one-sided
    /// remote-memory operations.
    service: u64,
}

impl IttEntry {
    fn is_acked(&self, idx: u64) -> bool {
        self.acked
            .get((idx / 64) as usize)
            .is_some_and(|w| (w >> (idx % 64)) & 1 == 1)
    }

    /// Mark block `idx` answered; `false` means it already was (a
    /// duplicate from a retry) — or always `true` when tracking is off.
    fn mark_acked(&mut self, idx: u64) -> bool {
        let Some(w) = self.acked.get_mut((idx / 64) as usize) else {
            return true;
        };
        let bit = 1u64 << (idx % 64);
        if *w & bit != 0 {
            return false;
        }
        *w |= bit;
        true
    }
}

#[derive(Debug)]
enum BeEv {
    /// Finish RGP backend processing; start unrolling the entry.
    Activate {
        entry: WqEntry,
        qp: u32,
        fe: NocNode,
    },
    /// Finish RCP backend processing of one response.
    RespDone(RemoteResp),
}

/// One unit of work headed for an ITT slot: a WQ entry — possibly one leg
/// of a replicated write fan-out, with `remote_node` already rewritten to
/// the leg's replica — plus its recovery bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Pending {
    entry: WqEntry,
    qp: u32,
    fe: NocNode,
    /// The descriptor's original destination (see [`IttEntry::primary`]).
    primary: u16,
    /// Replica rank this leg starts at (see [`IttEntry::replica_rank`]).
    rank: u32,
    /// Fan-out leg of a quorum write (see [`IttEntry::quorum`]).
    quorum: bool,
}

/// Completion bookkeeping of one replicated write: its single CQ
/// notification fires the moment the outcome is decided — `need` legs
/// acknowledged (ok, degraded if any leg died), or so many legs dead that
/// `need` can never be met (error). The state lives until every leg
/// resolves, so stragglers after the notification account cleanly.
#[derive(Debug)]
struct QuorumState {
    /// Legs that must acknowledge for the write to complete ok (W).
    need: u32,
    /// Legs fanned out (K, clamped to the replica set size).
    total: u32,
    acked: u32,
    failed: u32,
    /// Frontend to notify.
    fe: NocNode,
    /// The CQ notification already went out (a decided outcome); the
    /// remaining legs only settle the table entry.
    notified: bool,
}

/// Backend statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendStats {
    /// Transfers accepted.
    pub transfers: Counter,
    /// Block requests sent.
    pub requests_sent: Counter,
    /// Block responses handled.
    pub responses: Counter,
    /// Bytes of remote-read payload written into local memory.
    pub payload_bytes: Counter,
    /// Entries stalled on a full ITT.
    pub itt_stalls: Counter,
    /// ITT entries that hit the [`RmcConfig::itt_timeout`] watchdog
    /// (counted once per expiry, whether it led to a retry or a failure).
    pub itt_timeouts: Counter,
    /// Timed-out entries re-sent (missing blocks re-injected into the
    /// fabric; bounded by [`RmcConfig::itt_retries`]).
    pub itt_retries: Counter,
    /// Transfers abandoned after the retry budget: completed back to the
    /// core with an error CQ status instead of data.
    pub failed_transfers: Counter,
    /// Responses dropped as stale: their transfer had already timed out
    /// (slot freed or recycled under a newer generation), or the block was
    /// already answered (a duplicate minted by a retry).
    pub stale_responses: Counter,
    /// WQ replays: transfers re-injected from their descriptor toward an
    /// alternate replica after the retry budget toward one destination ran
    /// out (bounded by [`RmcConfig::replay_budget`]).
    pub replays: Counter,
    /// Writes fanned out to a replica quorum (counted once per operation,
    /// not per leg).
    pub quorum_writes: Counter,
    /// Fan-out legs of quorum writes abandoned by the watchdog. The
    /// operation itself still completes ok while `w` live legs remain;
    /// only `failed_transfers` counts operations lost outright.
    pub quorum_leg_failures: Counter,
}

impl BackendStats {
    /// Accumulate another backend's counters into this one (chip- and
    /// rack-level aggregation).
    pub fn merge(&mut self, other: &BackendStats) {
        self.transfers.add(other.transfers.get());
        self.requests_sent.add(other.requests_sent.get());
        self.responses.add(other.responses.get());
        self.payload_bytes.add(other.payload_bytes.get());
        self.itt_stalls.add(other.itt_stalls.get());
        self.itt_timeouts.add(other.itt_timeouts.get());
        self.itt_retries.add(other.itt_retries.get());
        self.failed_transfers.add(other.failed_transfers.get());
        self.stale_responses.add(other.stale_responses.get());
        self.replays.add(other.replays.get());
        self.quorum_writes.add(other.quorum_writes.get());
        self.quorum_leg_failures
            .add(other.quorum_leg_failures.get());
    }
}

/// An RGP/RCP backend.
#[derive(Debug)]
pub struct NiBackend {
    node: NocNode,
    /// Unique id used in the transfer-tag encoding.
    id: u16,
    cfg: RmcConfig,
    qp_cfg: QpConfig,
    home: fn(BlockAddr, u32) -> NocNode,
    n_banks: u32,
    /// When the backend is not at the chip edge (NIper-tile), its network
    /// packets detour via this NI block (§6.2's indirection).
    edge_via: Option<NocNode>,
    /// Live transfers by slot. A `BTreeMap` so the watchdog's slot scan
    /// and the `retain` purges below can never depend on hash order.
    itt: BTreeMap<u32, IttEntry>,
    free_slots: Vec<u32>,
    /// Per-slot reuse generation (see [`IttEntry::gen`]).
    slot_gens: Vec<u16>,
    /// Earliest cycle any live ITT entry could time out — a conservative
    /// lower bound, so the deterministic slot scan only runs when a
    /// timeout may actually be due (and never when the watchdog is off).
    next_deadline: Cycle,
    /// Entries waiting for a free ITT slot.
    waiting: VecDeque<Pending>,
    /// Slots with blocks left to unroll, round-robin.
    active: VecDeque<u32>,
    /// Local reads outstanding for remote-write payloads: block -> slot.
    pending_local_reads: BTreeMap<BlockAddr, Vec<u32>>,
    /// The rack's replica placement, shared read-only across backends.
    /// `None` (the default) keeps every recovery path compiled out of the
    /// hot loop.
    replicas: Option<Arc<ReplicaMap>>,
    /// Outcome tracking for in-flight quorum writes, by `(qp, wq_id)`.
    quorum: BTreeMap<(u32, u64), QuorumState>,
    events: DelayLine<BeEv>,
    egress: VecDeque<RmcEgress>,
    stats: BackendStats,
}

impl NiBackend {
    /// Create backend `id` at `node`. `edge_via` must be set when the
    /// backend is not co-located with the network router.
    pub fn new(
        node: NocNode,
        id: u16,
        cfg: RmcConfig,
        qp_cfg: QpConfig,
        home: fn(BlockAddr, u32) -> NocNode,
        n_banks: u32,
        edge_via: Option<NocNode>,
    ) -> NiBackend {
        assert!(
            cfg.itt_slots <= 1 << 16,
            "ITT slots must fit the 16-bit slot field of the transfer tag"
        );
        NiBackend {
            node,
            id,
            cfg,
            qp_cfg,
            home,
            n_banks,
            edge_via,
            itt: BTreeMap::new(),
            free_slots: (0..cfg.itt_slots as u32).rev().collect(),
            slot_gens: vec![0; cfg.itt_slots],
            next_deadline: Cycle(u64::MAX),
            waiting: VecDeque::new(),
            active: VecDeque::new(),
            pending_local_reads: BTreeMap::new(),
            replicas: None,
            quorum: BTreeMap::new(),
            events: DelayLine::new(),
            egress: VecDeque::new(),
            stats: BackendStats::default(),
        }
    }

    /// Install the rack's replica placement (shared, read-only). Enables
    /// WQ replay for reads ([`RmcConfig::replay_budget`]) and W-of-K write
    /// fan-out for destinations whose replica set holds more than one
    /// node. Chips call this once at construction; `None` (the default)
    /// keeps every recovery path off.
    pub fn set_replicas(&mut self, map: Option<Arc<ReplicaMap>>) {
        self.replicas = map;
    }

    /// Where this backend lives.
    pub fn node(&self) -> NocNode {
        self.node
    }

    /// Statistics.
    pub fn stats(&self) -> &BackendStats {
        &self.stats
    }

    /// True when the backend holds no in-flight work anywhere in its
    /// pipeline: no ITT entries, nothing waiting for a slot, no pending
    /// local reads, and empty event/egress queues. Ticking a quiescent
    /// backend is a no-op, so a quiesced chip may skip it.
    pub fn is_quiescent(&self) -> bool {
        self.itt.is_empty()
            && self.waiting.is_empty()
            && self.active.is_empty()
            && self.pending_local_reads.is_empty()
            && self.quorum.is_empty()
            && self.events.is_empty()
            && self.egress.is_empty()
    }

    /// Earliest cycle (>= `now`) at which this backend does anything on its
    /// own: undrained egress, an active transfer still unrolling, waiting
    /// entries with a free ITT slot, a due internal event, or the ITT
    /// watchdog's next deadline. `None` means only external input (a WQ
    /// entry, a network response, or local payload data) wakes it —
    /// in-flight ITT entries with the watchdog disabled wait silently on
    /// their acks. The watchdog term uses the same conservative
    /// `next_deadline` bound the poll-everything tick consults: waking
    /// there at worst recomputes the bound, exactly as an idle
    /// `check_timeouts` call would.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.egress.is_empty()
            || !self.active.is_empty()
            || (!self.waiting.is_empty() && !self.free_slots.is_empty())
        {
            return Some(now);
        }
        let mut next = self.events.next_ready_at();
        if self.cfg.itt_timeout > 0 && !self.itt.is_empty() {
            let at = self.next_deadline.max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        next
    }

    /// Transfer tag for `(backend, slot generation, slot)`: backend id in
    /// bits 32.., the slot's reuse generation in bits 16..32, the slot in
    /// bits 0..16. The generation is what lets the RCP tell a live
    /// transfer's response from one that outlived its timed-out entry.
    fn tid(&self, slot: u32, gen: u16) -> u64 {
        (u64::from(self.id) << 32) | (u64::from(gen) << 16) | u64::from(slot)
    }

    /// Backend id encoded in a transfer tag.
    pub fn backend_of_tid(tid: u64) -> u16 {
        (tid >> 32) as u16
    }

    /// ITT slot encoded in a transfer tag.
    fn slot_of_tid(tid: u64) -> u32 {
        (tid & 0xffff) as u32
    }

    /// Slot generation encoded in a transfer tag.
    fn gen_of_tid(tid: u64) -> u16 {
        ((tid >> 16) & 0xffff) as u16
    }

    /// Accept a WQ entry from a frontend (latch or NOC delivery).
    pub fn on_wq_entry(&mut self, now: Cycle, entry: WqEntry, qp: u32, fe: NocNode) {
        self.egress.push_back(RmcEgress::Trace(TraceEvent {
            qp,
            wq_id: entry.id,
            stage: Stage::BeReceived,
            at: now,
        }));
        self.events
            .push_after(now, self.cfg.rgp_be_proc, BeEv::Activate { entry, qp, fe });
    }

    /// Accept a response from the network (direct or via NOC `NetIn`).
    pub fn on_response(&mut self, now: Cycle, resp: RemoteResp) {
        self.events
            .push_after(now, self.cfg.rcp_be_proc, BeEv::RespDone(resp));
    }

    /// Accept a non-caching read reply (local data for a remote write).
    pub fn on_nc_data(&mut self, now: Cycle, block: BlockAddr, value: u64) {
        let Some(slots) = self.pending_local_reads.get_mut(&block) else {
            return;
        };
        let slot = slots.remove(0);
        if slots.is_empty() {
            self.pending_local_reads.remove(&block);
        }
        let e = self.itt.get(&slot).expect("slot live while reads pending");
        let idx = block.0 - e.local_base.0;
        let req = RemoteReq {
            tid: self.tid(slot, e.gen),
            is_read: false,
            src_node: 0, // stamped by the fabric at the network router
            target_node: e.remote_node,
            remote_block: e.remote_base.step(idx),
            value,
            service: e.service,
        };
        // Outbound write payload counts as application data moved (the
        // write-direction analog of §6.2's read accounting).
        self.stats.payload_bytes.add(ni_mem::BLOCK_BYTES);
        self.emit_net(now, req);
    }

    /// Acknowledgment of a local NcWrite (response payload landed); no
    /// action needed beyond flow control.
    pub fn on_nc_wack(&mut self, _now: Cycle, _block: BlockAddr) {}

    /// Drive one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.check_timeouts(now);
        while let Some(ev) = self.events.pop_ready(now) {
            match ev {
                BeEv::Activate { entry, qp, fe } => self.activate(now, entry, qp, fe),
                BeEv::RespDone(resp) => self.finish_response(now, resp),
            }
        }
        // Admit waiting entries into free ITT slots.
        while !self.waiting.is_empty() && !self.free_slots.is_empty() {
            let p = self.waiting.pop_front().expect("checked non-empty");
            self.admit(now, p);
        }
        // Unroll active transfers.
        for _ in 0..self.cfg.unroll_per_cycle {
            let Some(&slot) = self.active.front() else {
                break;
            };
            self.unroll_one(now, slot);
        }
    }

    /// Next outbound item.
    pub fn pop_egress(&mut self) -> Option<RmcEgress> {
        self.egress.pop_front()
    }

    /// In-flight transfer count.
    pub fn inflight(&self) -> usize {
        self.itt.len()
    }

    // ---- internals -------------------------------------------------------

    /// A validated WQ entry finished RGP backend processing. With a
    /// replica map and a multi-node replica set, a write expands here into
    /// one ITT leg per replica plus a quorum-table entry that owns the
    /// operation's single CQ notification; everything else becomes one
    /// plain leg.
    fn activate(&mut self, now: Cycle, entry: WqEntry, qp: u32, fe: NocNode) {
        let primary = entry.remote_node;
        let fan_out = entry.op == RemoteOp::Write
            && self
                .replicas
                .as_ref()
                .is_some_and(|m| m.replicas(primary).len() > 1);
        if fan_out {
            let map = self.replicas.clone().expect("fan_out implies a map");
            let set = map.replicas(primary);
            let need = u32::from(self.cfg.replication.w.max(1)).min(set.len() as u32);
            self.stats.quorum_writes.incr();
            self.quorum.insert(
                (qp, entry.id),
                QuorumState {
                    need,
                    total: set.len() as u32,
                    acked: 0,
                    failed: 0,
                    fe,
                    notified: false,
                },
            );
            for (rank, &dst) in set.iter().enumerate() {
                let mut leg = entry;
                leg.remote_node = dst;
                self.enqueue_leg(
                    now,
                    Pending {
                        entry: leg,
                        qp,
                        fe,
                        primary,
                        rank: rank as u32,
                        quorum: true,
                    },
                );
            }
        } else {
            self.enqueue_leg(
                now,
                Pending {
                    entry,
                    qp,
                    fe,
                    primary,
                    rank: 0,
                    quorum: false,
                },
            );
        }
    }

    fn enqueue_leg(&mut self, now: Cycle, p: Pending) {
        if self.free_slots.is_empty() {
            self.stats.itt_stalls.incr();
            self.waiting.push_back(p);
        } else {
            self.admit(now, p);
        }
    }

    fn admit(&mut self, now: Cycle, p: Pending) {
        let slot = self.free_slots.pop().expect("caller checked free slot");
        self.stats.transfers.incr();
        let gen = self.slot_gens[slot as usize].wrapping_add(1);
        self.slot_gens[slot as usize] = gen;
        let total = p.entry.blocks();
        // Per-block ack tracking only matters once retries can mint
        // duplicate responses; with the watchdog off the empty Vec keeps
        // the healthy path allocation-free.
        let acked = if self.cfg.itt_timeout > 0 {
            vec![0u64; total.div_ceil(64) as usize]
        } else {
            Vec::new()
        };
        // A replay needs an armed watchdog to trigger it, an alternate
        // destination to aim at, and a transfer that is not already a
        // quorum leg (replicated writes recover through the quorum).
        let replays_left = if !p.quorum
            && self.cfg.itt_timeout > 0
            && self
                .replicas
                .as_ref()
                .is_some_and(|m| m.replicas(p.primary).len() > 1)
        {
            self.cfg.replay_budget
        } else {
            0
        };
        self.itt.insert(
            slot,
            IttEntry {
                qp: p.qp,
                fe: p.fe,
                wq_id: p.entry.id,
                op: p.entry.op,
                remote_node: p.entry.remote_node,
                remote_base: p.entry.remote_addr.block(),
                local_base: p.entry.local_addr.block(),
                total,
                sent: 0,
                responses: 0,
                gen,
                last_progress: now,
                retries_left: self.cfg.itt_retries,
                acked,
                primary: p.primary,
                replica_rank: p.rank,
                replays_left,
                replayed: false,
                quorum: p.quorum,
                service: p.entry.service,
            },
        );
        if self.cfg.itt_timeout > 0 {
            self.next_deadline = self.next_deadline.min(now + self.cfg.itt_timeout);
        }
        self.active.push_back(slot);
    }

    /// The ITT watchdog: when armed ([`RmcConfig::itt_timeout`]` > 0`) and
    /// the earliest possible deadline has passed, scan the slots in index
    /// order for entries that made no progress for a full timeout. Each
    /// expiry escalates through up to three rungs: re-send the transfer's
    /// missing blocks (while [`IttEntry::retries_left`] lasts), replay the
    /// whole transfer toward the next replica (while
    /// [`IttEntry::replays_left`] lasts), and finally give up — free the
    /// slot and complete the operation with an error CQ status (or, for a
    /// quorum leg, record the dead leg and let the quorum decide).
    fn check_timeouts(&mut self, now: Cycle) {
        if self.cfg.itt_timeout == 0 || now < self.next_deadline || self.itt.is_empty() {
            return;
        }
        let timeout = self.cfg.itt_timeout;
        let mut next = Cycle(u64::MAX);
        for slot in 0..self.cfg.itt_slots as u32 {
            let mut retried = false;
            let mut replayed = false;
            let mut failed: Option<(u32, u64, NocNode, bool, bool)> = None;
            match self.itt.get_mut(&slot) {
                None => continue,
                Some(e) => {
                    let deadline = e.last_progress + timeout;
                    if now < deadline {
                        next = next.min(deadline);
                    } else if e.retries_left > 0 {
                        e.retries_left -= 1;
                        // Rewind the unroll cursor; `unroll_one` skips the
                        // blocks the ack bitmap already saw answered, so
                        // exactly the missing blocks go out again —
                        // wherever in the transfer they were lost.
                        e.sent = 0;
                        e.last_progress = now;
                        retried = true;
                        next = next.min(now + timeout);
                    } else if e.replays_left > 0 {
                        // WQ replay: re-inject the whole transfer from its
                        // descriptor toward the next replica of the
                        // original destination. Bumping the slot
                        // generation (mirrored in `slot_gens` so admits
                        // keep monotonic) makes every response the
                        // abandoned destination still owes — including
                        // blocks already counted — stale on arrival, which
                        // is what lets the ack bitmap restart from zero
                        // without double-count hazards.
                        let map = self
                            .replicas
                            .as_ref()
                            .expect("replay budget is only granted with a replica map");
                        e.replays_left -= 1;
                        e.replica_rank += 1;
                        e.remote_node = map.alternate(e.primary, e.replica_rank);
                        let gen = self.slot_gens[slot as usize].wrapping_add(1);
                        self.slot_gens[slot as usize] = gen;
                        e.gen = gen;
                        e.sent = 0;
                        e.responses = 0;
                        for w in &mut e.acked {
                            *w = 0;
                        }
                        e.retries_left = self.cfg.itt_retries;
                        e.last_progress = now;
                        e.replayed = true;
                        replayed = true;
                        next = next.min(now + timeout);
                    } else {
                        failed = Some((e.qp, e.wq_id, e.fe, e.quorum, e.replayed));
                    }
                }
            }
            if retried {
                self.stats.itt_timeouts.incr();
                self.stats.itt_retries.incr();
                if !self.active.contains(&slot) {
                    self.active.push_back(slot);
                }
            }
            if replayed {
                self.stats.itt_timeouts.incr();
                self.stats.replays.incr();
                // Reads never hold local payload reads, but replay is
                // op-agnostic: orphan any the old generation left behind.
                self.pending_local_reads.retain(|_, slots| {
                    slots.retain(|&s| s != slot);
                    !slots.is_empty()
                });
                if !self.active.contains(&slot) {
                    self.active.push_back(slot);
                }
            }
            if let Some((qp, wq_id, fe, quorum, was_replayed)) = failed {
                self.stats.itt_timeouts.incr();
                self.itt.remove(&slot);
                self.free_slots.push(slot);
                if let Some(pos) = self.active.iter().position(|&s| s == slot) {
                    self.active.remove(pos);
                }
                // Write transfers may still have local payload reads in
                // flight; orphan them so a late NcData cannot resolve
                // against the freed (or recycled) slot.
                self.pending_local_reads.retain(|_, slots| {
                    slots.retain(|&s| s != slot);
                    !slots.is_empty()
                });
                if quorum {
                    // A dead fan-out leg is not (yet) a failed operation:
                    // the quorum table decides, and counts
                    // `failed_transfers` only if the operation is lost.
                    self.stats.quorum_leg_failures.incr();
                    self.quorum_leg_done(now, qp, wq_id, false);
                } else {
                    self.stats.failed_transfers.incr();
                    self.egress.push_back(RmcEgress::Ni {
                        dst: fe,
                        msg: NiMsg::CqNotify {
                            qp,
                            wq_id,
                            ok: false,
                            degraded: was_replayed,
                        },
                    });
                }
            }
        }
        self.next_deadline = next;
    }

    /// One leg of a replicated write resolved (`ok` = every block
    /// acknowledged by that replica). Updates the quorum and emits the
    /// operation's single CQ notification at the moment the outcome is
    /// decided: `need` acks (ok — degraded if any leg died first), or too
    /// many dead legs for `need` to ever be met (error). The table entry
    /// is dropped once every leg has resolved.
    fn quorum_leg_done(&mut self, now: Cycle, qp: u32, wq_id: u64, ok: bool) {
        let Some(st) = self.quorum.get_mut(&(qp, wq_id)) else {
            debug_assert!(
                false,
                "quorum leg {qp}/{wq_id} resolved with no table entry"
            );
            return;
        };
        if ok {
            st.acked += 1;
        } else {
            st.failed += 1;
        }
        let mut notify = None;
        if !st.notified {
            if st.acked >= st.need {
                notify = Some(true);
            } else if st.failed > st.total - st.need {
                notify = Some(false);
            }
            if notify.is_some() {
                st.notified = true;
            }
        }
        let fe = st.fe;
        let degraded = st.failed > 0;
        if st.acked + st.failed >= st.total {
            self.quorum.remove(&(qp, wq_id));
        }
        let Some(ok) = notify else { return };
        if ok {
            // The operation-level trace marks fire when the quorum is met
            // — the application-visible completion instant.
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id,
                stage: Stage::NetIn,
                at: now,
            }));
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id,
                stage: Stage::DataWritten,
                at: now,
            }));
        } else {
            self.stats.failed_transfers.incr();
        }
        self.egress.push_back(RmcEgress::Ni {
            dst: fe,
            msg: NiMsg::CqNotify {
                qp,
                wq_id,
                ok,
                degraded,
            },
        });
    }

    fn unroll_one(&mut self, now: Cycle, slot: u32) {
        let e = self.itt.get_mut(&slot).expect("active slot is live");
        // Skip blocks the ack bitmap already saw answered (no-op before
        // the first retry: the bitmap is all zeroes — or empty — until
        // duplicates are possible). A rewound cursor can land past the
        // last missing block, leaving nothing to send.
        while e.sent < e.total && e.is_acked(e.sent) {
            e.sent += 1;
        }
        if e.sent >= e.total {
            let pos = self
                .active
                .iter()
                .position(|&s| s == slot)
                .expect("slot was active");
            self.active.remove(pos);
            return;
        }
        let idx = e.sent;
        let (qp, wq_id, op, gen, service) = (e.qp, e.wq_id, e.op, e.gen, e.service);
        // Fan-out legs beyond the primary would otherwise mint duplicate
        // per-operation NetOut trace marks.
        let traces_net_out = !e.quorum || e.replica_rank == 0;
        let (remote_block, local_block, tgt) = (
            e.remote_base.step(idx),
            e.local_base.step(idx),
            e.remote_node,
        );
        e.sent += 1;
        let finished_unroll = e.sent >= e.total;
        if finished_unroll {
            let pos = self
                .active
                .iter()
                .position(|&s| s == slot)
                .expect("slot was active");
            self.active.remove(pos);
        } else {
            // Round-robin across active transfers.
            if self.active.len() > 1 {
                let s = self.active.pop_front().expect("non-empty");
                self.active.push_back(s);
            }
        }
        if idx == 0 && traces_net_out {
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id,
                stage: Stage::NetOut,
                at: now,
            }));
        }
        match op {
            RemoteOp::Read => {
                let req = RemoteReq {
                    tid: self.tid(slot, gen),
                    is_read: true,
                    src_node: 0, // stamped by the fabric at the network router
                    target_node: tgt,
                    remote_block,
                    value: 0,
                    service,
                };
                self.emit_net(now, req);
            }
            RemoteOp::Write => {
                // Load the payload from local memory first (Fig. 4a:
                // "Memory Read" stage), then ship it.
                self.pending_local_reads
                    .entry(local_block)
                    .or_default()
                    .push(slot);
                self.egress.push_back(RmcEgress::Coh(Egress {
                    dst: (self.home)(local_block, self.n_banks),
                    kind: ClientKind::Directory,
                    msg: CohMsg::NcRead { block: local_block },
                }));
            }
        }
    }

    fn emit_net(&mut self, _now: Cycle, req: RemoteReq) {
        self.stats.requests_sent.incr();
        match self.edge_via {
            None => self.egress.push_back(RmcEgress::Net(req)),
            Some(via) => self.egress.push_back(RmcEgress::Ni {
                dst: via,
                msg: NiMsg::NetOut(req),
            }),
        }
    }

    fn finish_response(&mut self, now: Cycle, resp: RemoteResp) {
        let slot = Self::slot_of_tid(resp.tid);
        let gen = Self::gen_of_tid(resp.tid);
        // A response may outlive its transfer: the ITT watchdog can have
        // error-completed the entry (slot vacant) or recycled the slot for
        // a newer transfer (generation mismatch). Either way it is stale —
        // dropping it is the only correct move.
        // A vacant slot or generation mismatch is a *stale* response —
        // legitimate once the watchdog can free entries early, but with
        // the watchdog off nothing ever outlives its entry, so it can only
        // mean tid corruption or a routing bug: keep the old loud failure
        // in debug builds there.
        let Some(e) = self.itt.get_mut(&slot) else {
            debug_assert!(
                self.cfg.itt_timeout > 0,
                "response tid {:#x} matches no live slot with the watchdog off",
                resp.tid
            );
            self.stats.stale_responses.incr();
            return;
        };
        if e.gen != gen {
            debug_assert!(
                self.cfg.itt_timeout > 0,
                "response tid {:#x} generation mismatch with the watchdog off",
                resp.tid
            );
            self.stats.stale_responses.incr();
            return;
        }
        // Locate the answered block within the transfer; with retries in
        // play a response can also be a duplicate of one already counted
        // (the ack bitmap remembers), and duplicates must not advance the
        // completion count — that is what keeps `ok == true` meaning every
        // block actually arrived, not "enough arrivals happened".
        let idx = resp.remote_block.0.wrapping_sub(e.remote_base.0);
        if idx >= e.total {
            // A gen-matched response always names a block of its own
            // transfer; out of range is a bug in any configuration.
            debug_assert!(
                false,
                "response tid {:#x} names block {idx} of a {}-block transfer",
                resp.tid, e.total
            );
            self.stats.stale_responses.incr();
            return;
        }
        if !e.mark_acked(idx) {
            debug_assert!(
                self.cfg.itt_timeout > 0,
                "duplicate response tid {:#x} with the watchdog off",
                resp.tid
            );
            self.stats.stale_responses.incr();
            return;
        }
        self.stats.responses.incr();
        e.responses += 1;
        e.last_progress = now;
        let done = e.responses >= e.total;
        let (qp, wq_id, fe) = (e.qp, e.wq_id, e.fe);
        let (quorum, degraded) = (e.quorum, e.replayed);
        // A replay resets `retries_left`, so check the replay marker too:
        // its rewound slot has the same stale-`active` / orphaned-payload
        // hazards a retry has.
        let needs_purge = e.retries_left < self.cfg.itt_retries || e.replayed;
        if resp.is_read {
            let local = e.local_base.step(idx);
            self.stats.payload_bytes.add(ni_mem::BLOCK_BYTES);
            self.egress.push_back(RmcEgress::Coh(Egress {
                dst: (self.home)(local, self.n_banks),
                kind: ClientKind::Directory,
                msg: CohMsg::NcWrite {
                    block: local,
                    value: resp.value,
                },
            }));
        }
        if done {
            self.itt.remove(&slot);
            self.free_slots.push(slot);
            // A transfer that retried (or replayed) can complete while its
            // rewound slot still sits in `active` (a parked original
            // response arriving after the watchdog re-queued it) or with
            // duplicate local payload reads pending: purge both, or the
            // freed slot's next occupant gets driven by the corpse's
            // leftovers. Never reachable — and never paid for — without a
            // retry or replay.
            if needs_purge {
                if let Some(pos) = self.active.iter().position(|&s| s == slot) {
                    self.active.remove(pos);
                }
                self.pending_local_reads.retain(|_, slots| {
                    slots.retain(|&s| s != slot);
                    !slots.is_empty()
                });
            }
            if quorum {
                // One leg of a write fan-out: the quorum table owns the
                // operation's CQ notification and trace marks.
                self.quorum_leg_done(now, qp, wq_id, true);
            } else {
                self.egress.push_back(RmcEgress::Trace(TraceEvent {
                    qp,
                    wq_id,
                    stage: Stage::NetIn,
                    at: now,
                }));
                self.egress.push_back(RmcEgress::Trace(TraceEvent {
                    qp,
                    wq_id,
                    stage: Stage::DataWritten,
                    at: now,
                }));
                self.egress.push_back(RmcEgress::Ni {
                    dst: fe,
                    msg: NiMsg::CqNotify {
                        qp,
                        wq_id,
                        ok: true,
                        degraded,
                    },
                });
            }
        }
        let _ = self.qp_cfg;
    }
}
