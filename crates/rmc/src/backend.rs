//! RGP/RCP backends: the ITT, request unrolling, and response data handling.
//!
//! The backend receives validated WQ entries from its frontends, allocates
//! an Inflight Transfer Table slot, and unrolls the transfer into
//! cache-block-sized network requests at one per cycle (§6.1.3). Responses
//! are matched back to their slot; read payloads are written into local
//! memory through the non-caching LLC path; when the last block lands, the
//! backend notifies the owning frontend so it can write the CQ entry.
//!
//! The ITT doubles as the end-to-end recovery point for a degraded rack:
//! every entry tracks its last progress cycle, and an optional watchdog
//! ([`RmcConfig::itt_timeout`]) re-sends the missing blocks of a stalled
//! transfer up to [`RmcConfig::itt_retries`] times before giving up and
//! completing the operation with an error CQ status — so a dead link or
//! node costs the issuing core a failed completion, never a hang.

use std::collections::{BTreeMap, VecDeque};

use ni_coherence::{ClientKind, CohMsg, Egress};
use ni_engine::{Counter, Cycle, DelayLine};
use ni_fabric::{RemoteReq, RemoteResp};
use ni_mem::BlockAddr;
use ni_noc::NocNode;
use ni_qp::{QpConfig, RemoteOp, WqEntry};

use crate::config::RmcConfig;
use crate::trace::{Stage, TraceEvent};
use crate::{NiMsg, RmcEgress};

/// One in-flight transfer.
#[derive(Debug, Clone)]
struct IttEntry {
    qp: u32,
    fe: NocNode,
    wq_id: u64,
    op: RemoteOp,
    remote_node: u16,
    remote_base: BlockAddr,
    local_base: BlockAddr,
    total: u64,
    sent: u64,
    responses: u64,
    /// Slot reuse generation stamped into this transfer's tids, so a
    /// response that limps home after its entry timed out (and the slot
    /// was recycled) is recognized as stale instead of corrupting the new
    /// occupant.
    gen: u16,
    /// Last cycle this transfer made progress (admitted, retried, or
    /// received a response); the ITT watchdog measures staleness from
    /// here, so long unrolls with a live remote end never spuriously time
    /// out.
    last_progress: Cycle,
    /// Re-sends left before the backend gives up and error-completes.
    retries_left: u32,
    /// Per-block acknowledgment bitmap, allocated only when the watchdog
    /// is armed (empty = tracking off, the healthy-run fast path). Retries
    /// make *duplicate* responses possible, and with duplicates a bare
    /// count cannot tell "every block arrived" from "some block arrived
    /// twice while another was lost" — the bitmap is what keeps an
    /// `ok == true` completion meaning all data actually transferred.
    acked: Vec<u64>,
}

impl IttEntry {
    fn is_acked(&self, idx: u64) -> bool {
        self.acked
            .get((idx / 64) as usize)
            .is_some_and(|w| (w >> (idx % 64)) & 1 == 1)
    }

    /// Mark block `idx` answered; `false` means it already was (a
    /// duplicate from a retry) — or always `true` when tracking is off.
    fn mark_acked(&mut self, idx: u64) -> bool {
        let Some(w) = self.acked.get_mut((idx / 64) as usize) else {
            return true;
        };
        let bit = 1u64 << (idx % 64);
        if *w & bit != 0 {
            return false;
        }
        *w |= bit;
        true
    }
}

#[derive(Debug)]
enum BeEv {
    /// Finish RGP backend processing; start unrolling the entry.
    Activate {
        entry: WqEntry,
        qp: u32,
        fe: NocNode,
    },
    /// Finish RCP backend processing of one response.
    RespDone(RemoteResp),
}

/// Backend statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendStats {
    /// Transfers accepted.
    pub transfers: Counter,
    /// Block requests sent.
    pub requests_sent: Counter,
    /// Block responses handled.
    pub responses: Counter,
    /// Bytes of remote-read payload written into local memory.
    pub payload_bytes: Counter,
    /// Entries stalled on a full ITT.
    pub itt_stalls: Counter,
    /// ITT entries that hit the [`RmcConfig::itt_timeout`] watchdog
    /// (counted once per expiry, whether it led to a retry or a failure).
    pub itt_timeouts: Counter,
    /// Timed-out entries re-sent (missing blocks re-injected into the
    /// fabric; bounded by [`RmcConfig::itt_retries`]).
    pub itt_retries: Counter,
    /// Transfers abandoned after the retry budget: completed back to the
    /// core with an error CQ status instead of data.
    pub failed_transfers: Counter,
    /// Responses dropped as stale: their transfer had already timed out
    /// (slot freed or recycled under a newer generation), or the block was
    /// already answered (a duplicate minted by a retry).
    pub stale_responses: Counter,
}

impl BackendStats {
    /// Accumulate another backend's counters into this one (chip- and
    /// rack-level aggregation).
    pub fn merge(&mut self, other: &BackendStats) {
        self.transfers.add(other.transfers.get());
        self.requests_sent.add(other.requests_sent.get());
        self.responses.add(other.responses.get());
        self.payload_bytes.add(other.payload_bytes.get());
        self.itt_stalls.add(other.itt_stalls.get());
        self.itt_timeouts.add(other.itt_timeouts.get());
        self.itt_retries.add(other.itt_retries.get());
        self.failed_transfers.add(other.failed_transfers.get());
        self.stale_responses.add(other.stale_responses.get());
    }
}

/// An RGP/RCP backend.
#[derive(Debug)]
pub struct NiBackend {
    node: NocNode,
    /// Unique id used in the transfer-tag encoding.
    id: u16,
    cfg: RmcConfig,
    qp_cfg: QpConfig,
    home: fn(BlockAddr, u32) -> NocNode,
    n_banks: u32,
    /// When the backend is not at the chip edge (NIper-tile), its network
    /// packets detour via this NI block (§6.2's indirection).
    edge_via: Option<NocNode>,
    /// Live transfers by slot. A `BTreeMap` so the watchdog's slot scan
    /// and the `retain` purges below can never depend on hash order.
    itt: BTreeMap<u32, IttEntry>,
    free_slots: Vec<u32>,
    /// Per-slot reuse generation (see [`IttEntry::gen`]).
    slot_gens: Vec<u16>,
    /// Earliest cycle any live ITT entry could time out — a conservative
    /// lower bound, so the deterministic slot scan only runs when a
    /// timeout may actually be due (and never when the watchdog is off).
    next_deadline: Cycle,
    /// Entries waiting for a free ITT slot.
    waiting: VecDeque<(WqEntry, u32, NocNode)>,
    /// Slots with blocks left to unroll, round-robin.
    active: VecDeque<u32>,
    /// Local reads outstanding for remote-write payloads: block -> slot.
    pending_local_reads: BTreeMap<BlockAddr, Vec<u32>>,
    events: DelayLine<BeEv>,
    egress: VecDeque<RmcEgress>,
    stats: BackendStats,
}

impl NiBackend {
    /// Create backend `id` at `node`. `edge_via` must be set when the
    /// backend is not co-located with the network router.
    pub fn new(
        node: NocNode,
        id: u16,
        cfg: RmcConfig,
        qp_cfg: QpConfig,
        home: fn(BlockAddr, u32) -> NocNode,
        n_banks: u32,
        edge_via: Option<NocNode>,
    ) -> NiBackend {
        assert!(
            cfg.itt_slots <= 1 << 16,
            "ITT slots must fit the 16-bit slot field of the transfer tag"
        );
        NiBackend {
            node,
            id,
            cfg,
            qp_cfg,
            home,
            n_banks,
            edge_via,
            itt: BTreeMap::new(),
            free_slots: (0..cfg.itt_slots as u32).rev().collect(),
            slot_gens: vec![0; cfg.itt_slots],
            next_deadline: Cycle(u64::MAX),
            waiting: VecDeque::new(),
            active: VecDeque::new(),
            pending_local_reads: BTreeMap::new(),
            events: DelayLine::new(),
            egress: VecDeque::new(),
            stats: BackendStats::default(),
        }
    }

    /// Where this backend lives.
    pub fn node(&self) -> NocNode {
        self.node
    }

    /// Statistics.
    pub fn stats(&self) -> &BackendStats {
        &self.stats
    }

    /// True when the backend holds no in-flight work anywhere in its
    /// pipeline: no ITT entries, nothing waiting for a slot, no pending
    /// local reads, and empty event/egress queues. Ticking a quiescent
    /// backend is a no-op, so a quiesced chip may skip it.
    pub fn is_quiescent(&self) -> bool {
        self.itt.is_empty()
            && self.waiting.is_empty()
            && self.active.is_empty()
            && self.pending_local_reads.is_empty()
            && self.events.is_empty()
            && self.egress.is_empty()
    }

    /// Earliest cycle (>= `now`) at which this backend does anything on its
    /// own: undrained egress, an active transfer still unrolling, waiting
    /// entries with a free ITT slot, a due internal event, or the ITT
    /// watchdog's next deadline. `None` means only external input (a WQ
    /// entry, a network response, or local payload data) wakes it —
    /// in-flight ITT entries with the watchdog disabled wait silently on
    /// their acks. The watchdog term uses the same conservative
    /// `next_deadline` bound the poll-everything tick consults: waking
    /// there at worst recomputes the bound, exactly as an idle
    /// `check_timeouts` call would.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.egress.is_empty()
            || !self.active.is_empty()
            || (!self.waiting.is_empty() && !self.free_slots.is_empty())
        {
            return Some(now);
        }
        let mut next = self.events.next_ready_at();
        if self.cfg.itt_timeout > 0 && !self.itt.is_empty() {
            let at = self.next_deadline.max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        next
    }

    /// Transfer tag for `(backend, slot generation, slot)`: backend id in
    /// bits 32.., the slot's reuse generation in bits 16..32, the slot in
    /// bits 0..16. The generation is what lets the RCP tell a live
    /// transfer's response from one that outlived its timed-out entry.
    fn tid(&self, slot: u32, gen: u16) -> u64 {
        (u64::from(self.id) << 32) | (u64::from(gen) << 16) | u64::from(slot)
    }

    /// Backend id encoded in a transfer tag.
    pub fn backend_of_tid(tid: u64) -> u16 {
        (tid >> 32) as u16
    }

    /// ITT slot encoded in a transfer tag.
    fn slot_of_tid(tid: u64) -> u32 {
        (tid & 0xffff) as u32
    }

    /// Slot generation encoded in a transfer tag.
    fn gen_of_tid(tid: u64) -> u16 {
        ((tid >> 16) & 0xffff) as u16
    }

    /// Accept a WQ entry from a frontend (latch or NOC delivery).
    pub fn on_wq_entry(&mut self, now: Cycle, entry: WqEntry, qp: u32, fe: NocNode) {
        self.egress.push_back(RmcEgress::Trace(TraceEvent {
            qp,
            wq_id: entry.id,
            stage: Stage::BeReceived,
            at: now,
        }));
        self.events
            .push_after(now, self.cfg.rgp_be_proc, BeEv::Activate { entry, qp, fe });
    }

    /// Accept a response from the network (direct or via NOC `NetIn`).
    pub fn on_response(&mut self, now: Cycle, resp: RemoteResp) {
        self.events
            .push_after(now, self.cfg.rcp_be_proc, BeEv::RespDone(resp));
    }

    /// Accept a non-caching read reply (local data for a remote write).
    pub fn on_nc_data(&mut self, now: Cycle, block: BlockAddr, value: u64) {
        let Some(slots) = self.pending_local_reads.get_mut(&block) else {
            return;
        };
        let slot = slots.remove(0);
        if slots.is_empty() {
            self.pending_local_reads.remove(&block);
        }
        let e = self.itt.get(&slot).expect("slot live while reads pending");
        let idx = block.0 - e.local_base.0;
        let req = RemoteReq {
            tid: self.tid(slot, e.gen),
            is_read: false,
            src_node: 0, // stamped by the fabric at the network router
            target_node: e.remote_node,
            remote_block: e.remote_base.step(idx),
            value,
        };
        // Outbound write payload counts as application data moved (the
        // write-direction analog of §6.2's read accounting).
        self.stats.payload_bytes.add(ni_mem::BLOCK_BYTES);
        self.emit_net(now, req);
    }

    /// Acknowledgment of a local NcWrite (response payload landed); no
    /// action needed beyond flow control.
    pub fn on_nc_wack(&mut self, _now: Cycle, _block: BlockAddr) {}

    /// Drive one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.check_timeouts(now);
        while let Some(ev) = self.events.pop_ready(now) {
            match ev {
                BeEv::Activate { entry, qp, fe } => self.activate(now, entry, qp, fe),
                BeEv::RespDone(resp) => self.finish_response(now, resp),
            }
        }
        // Admit waiting entries into free ITT slots.
        while !self.waiting.is_empty() && !self.free_slots.is_empty() {
            let (entry, qp, fe) = self.waiting.pop_front().expect("checked non-empty");
            self.admit(now, entry, qp, fe);
        }
        // Unroll active transfers.
        for _ in 0..self.cfg.unroll_per_cycle {
            let Some(&slot) = self.active.front() else {
                break;
            };
            self.unroll_one(now, slot);
        }
    }

    /// Next outbound item.
    pub fn pop_egress(&mut self) -> Option<RmcEgress> {
        self.egress.pop_front()
    }

    /// In-flight transfer count.
    pub fn inflight(&self) -> usize {
        self.itt.len()
    }

    // ---- internals -------------------------------------------------------

    fn activate(&mut self, now: Cycle, entry: WqEntry, qp: u32, fe: NocNode) {
        if self.free_slots.is_empty() {
            self.stats.itt_stalls.incr();
            self.waiting.push_back((entry, qp, fe));
        } else {
            self.admit(now, entry, qp, fe);
        }
    }

    fn admit(&mut self, now: Cycle, entry: WqEntry, qp: u32, fe: NocNode) {
        let slot = self.free_slots.pop().expect("caller checked free slot");
        self.stats.transfers.incr();
        let gen = self.slot_gens[slot as usize].wrapping_add(1);
        self.slot_gens[slot as usize] = gen;
        let total = entry.blocks();
        // Per-block ack tracking only matters once retries can mint
        // duplicate responses; with the watchdog off the empty Vec keeps
        // the healthy path allocation-free.
        let acked = if self.cfg.itt_timeout > 0 {
            vec![0u64; total.div_ceil(64) as usize]
        } else {
            Vec::new()
        };
        self.itt.insert(
            slot,
            IttEntry {
                qp,
                fe,
                wq_id: entry.id,
                op: entry.op,
                remote_node: entry.remote_node,
                remote_base: entry.remote_addr.block(),
                local_base: entry.local_addr.block(),
                total,
                sent: 0,
                responses: 0,
                gen,
                last_progress: now,
                retries_left: self.cfg.itt_retries,
                acked,
            },
        );
        if self.cfg.itt_timeout > 0 {
            self.next_deadline = self.next_deadline.min(now + self.cfg.itt_timeout);
        }
        self.active.push_back(slot);
    }

    /// The ITT watchdog: when armed ([`RmcConfig::itt_timeout`]` > 0`) and
    /// the earliest possible deadline has passed, scan the slots in index
    /// order for entries that made no progress for a full timeout. Each expiry
    /// either re-sends the transfer's missing blocks (while
    /// [`IttEntry::retries_left`] lasts) or frees the slot and completes
    /// the operation back to the core with an error CQ status.
    fn check_timeouts(&mut self, now: Cycle) {
        if self.cfg.itt_timeout == 0 || now < self.next_deadline || self.itt.is_empty() {
            return;
        }
        let timeout = self.cfg.itt_timeout;
        let mut next = Cycle(u64::MAX);
        for slot in 0..self.cfg.itt_slots as u32 {
            let mut retried = false;
            let mut failed: Option<(u32, u64, NocNode)> = None;
            match self.itt.get_mut(&slot) {
                None => continue,
                Some(e) => {
                    let deadline = e.last_progress + timeout;
                    if now < deadline {
                        next = next.min(deadline);
                    } else if e.retries_left > 0 {
                        e.retries_left -= 1;
                        // Rewind the unroll cursor; `unroll_one` skips the
                        // blocks the ack bitmap already saw answered, so
                        // exactly the missing blocks go out again —
                        // wherever in the transfer they were lost.
                        e.sent = 0;
                        e.last_progress = now;
                        retried = true;
                        next = next.min(now + timeout);
                    } else {
                        failed = Some((e.qp, e.wq_id, e.fe));
                    }
                }
            }
            if retried {
                self.stats.itt_timeouts.incr();
                self.stats.itt_retries.incr();
                if !self.active.contains(&slot) {
                    self.active.push_back(slot);
                }
            }
            if let Some((qp, wq_id, fe)) = failed {
                self.stats.itt_timeouts.incr();
                self.stats.failed_transfers.incr();
                self.itt.remove(&slot);
                self.free_slots.push(slot);
                if let Some(pos) = self.active.iter().position(|&s| s == slot) {
                    self.active.remove(pos);
                }
                // Write transfers may still have local payload reads in
                // flight; orphan them so a late NcData cannot resolve
                // against the freed (or recycled) slot.
                self.pending_local_reads.retain(|_, slots| {
                    slots.retain(|&s| s != slot);
                    !slots.is_empty()
                });
                self.egress.push_back(RmcEgress::Ni {
                    dst: fe,
                    msg: NiMsg::CqNotify {
                        qp,
                        wq_id,
                        ok: false,
                    },
                });
            }
        }
        self.next_deadline = next;
    }

    fn unroll_one(&mut self, now: Cycle, slot: u32) {
        let e = self.itt.get_mut(&slot).expect("active slot is live");
        // Skip blocks the ack bitmap already saw answered (no-op before
        // the first retry: the bitmap is all zeroes — or empty — until
        // duplicates are possible). A rewound cursor can land past the
        // last missing block, leaving nothing to send.
        while e.sent < e.total && e.is_acked(e.sent) {
            e.sent += 1;
        }
        if e.sent >= e.total {
            let pos = self
                .active
                .iter()
                .position(|&s| s == slot)
                .expect("slot was active");
            self.active.remove(pos);
            return;
        }
        let idx = e.sent;
        let (qp, wq_id, op, gen) = (e.qp, e.wq_id, e.op, e.gen);
        let (remote_block, local_block, tgt) = (
            e.remote_base.step(idx),
            e.local_base.step(idx),
            e.remote_node,
        );
        e.sent += 1;
        let finished_unroll = e.sent >= e.total;
        if finished_unroll {
            let pos = self
                .active
                .iter()
                .position(|&s| s == slot)
                .expect("slot was active");
            self.active.remove(pos);
        } else {
            // Round-robin across active transfers.
            if self.active.len() > 1 {
                let s = self.active.pop_front().expect("non-empty");
                self.active.push_back(s);
            }
        }
        if idx == 0 {
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id,
                stage: Stage::NetOut,
                at: now,
            }));
        }
        match op {
            RemoteOp::Read => {
                let req = RemoteReq {
                    tid: self.tid(slot, gen),
                    is_read: true,
                    src_node: 0, // stamped by the fabric at the network router
                    target_node: tgt,
                    remote_block,
                    value: 0,
                };
                self.emit_net(now, req);
            }
            RemoteOp::Write => {
                // Load the payload from local memory first (Fig. 4a:
                // "Memory Read" stage), then ship it.
                self.pending_local_reads
                    .entry(local_block)
                    .or_default()
                    .push(slot);
                self.egress.push_back(RmcEgress::Coh(Egress {
                    dst: (self.home)(local_block, self.n_banks),
                    kind: ClientKind::Directory,
                    msg: CohMsg::NcRead { block: local_block },
                }));
            }
        }
    }

    fn emit_net(&mut self, _now: Cycle, req: RemoteReq) {
        self.stats.requests_sent.incr();
        match self.edge_via {
            None => self.egress.push_back(RmcEgress::Net(req)),
            Some(via) => self.egress.push_back(RmcEgress::Ni {
                dst: via,
                msg: NiMsg::NetOut(req),
            }),
        }
    }

    fn finish_response(&mut self, now: Cycle, resp: RemoteResp) {
        let slot = Self::slot_of_tid(resp.tid);
        let gen = Self::gen_of_tid(resp.tid);
        // A response may outlive its transfer: the ITT watchdog can have
        // error-completed the entry (slot vacant) or recycled the slot for
        // a newer transfer (generation mismatch). Either way it is stale —
        // dropping it is the only correct move.
        // A vacant slot or generation mismatch is a *stale* response —
        // legitimate once the watchdog can free entries early, but with
        // the watchdog off nothing ever outlives its entry, so it can only
        // mean tid corruption or a routing bug: keep the old loud failure
        // in debug builds there.
        let Some(e) = self.itt.get_mut(&slot) else {
            debug_assert!(
                self.cfg.itt_timeout > 0,
                "response tid {:#x} matches no live slot with the watchdog off",
                resp.tid
            );
            self.stats.stale_responses.incr();
            return;
        };
        if e.gen != gen {
            debug_assert!(
                self.cfg.itt_timeout > 0,
                "response tid {:#x} generation mismatch with the watchdog off",
                resp.tid
            );
            self.stats.stale_responses.incr();
            return;
        }
        // Locate the answered block within the transfer; with retries in
        // play a response can also be a duplicate of one already counted
        // (the ack bitmap remembers), and duplicates must not advance the
        // completion count — that is what keeps `ok == true` meaning every
        // block actually arrived, not "enough arrivals happened".
        let idx = resp.remote_block.0.wrapping_sub(e.remote_base.0);
        if idx >= e.total {
            // A gen-matched response always names a block of its own
            // transfer; out of range is a bug in any configuration.
            debug_assert!(
                false,
                "response tid {:#x} names block {idx} of a {}-block transfer",
                resp.tid, e.total
            );
            self.stats.stale_responses.incr();
            return;
        }
        if !e.mark_acked(idx) {
            debug_assert!(
                self.cfg.itt_timeout > 0,
                "duplicate response tid {:#x} with the watchdog off",
                resp.tid
            );
            self.stats.stale_responses.incr();
            return;
        }
        self.stats.responses.incr();
        e.responses += 1;
        e.last_progress = now;
        let done = e.responses >= e.total;
        let (qp, wq_id, fe) = (e.qp, e.wq_id, e.fe);
        let ever_retried = e.retries_left < self.cfg.itt_retries;
        if resp.is_read {
            let local = e.local_base.step(idx);
            self.stats.payload_bytes.add(ni_mem::BLOCK_BYTES);
            self.egress.push_back(RmcEgress::Coh(Egress {
                dst: (self.home)(local, self.n_banks),
                kind: ClientKind::Directory,
                msg: CohMsg::NcWrite {
                    block: local,
                    value: resp.value,
                },
            }));
        }
        if done {
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id,
                stage: Stage::NetIn,
                at: now,
            }));
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id,
                stage: Stage::DataWritten,
                at: now,
            }));
            self.itt.remove(&slot);
            self.free_slots.push(slot);
            // A transfer that retried can complete while its rewound slot
            // still sits in `active` (a parked original response arriving
            // after the watchdog re-queued it) or with duplicate local
            // payload reads pending: purge both, or the freed slot's next
            // occupant gets driven by the corpse's leftovers. Never
            // reachable — and never paid for — without a retry.
            if ever_retried {
                if let Some(pos) = self.active.iter().position(|&s| s == slot) {
                    self.active.remove(pos);
                }
                self.pending_local_reads.retain(|_, slots| {
                    slots.retain(|&s| s != slot);
                    !slots.is_empty()
                });
            }
            self.egress.push_back(RmcEgress::Ni {
                dst: fe,
                msg: NiMsg::CqNotify {
                    qp,
                    wq_id,
                    ok: true,
                },
            });
        }
        let _ = self.qp_cfg;
    }
}
