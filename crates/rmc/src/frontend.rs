//! RGP/RCP frontends: QP selection, WQ polling, CQ writes (Fig. 4).
//!
//! A frontend owns the NI side of the QP protocol. It continuously polls
//! the WQ head blocks of its registered QPs through the NI cache (which is
//! what generates the coherence traffic of Fig. 2) and writes CQ entries on
//! completion notifications from its backend.
//!
//! Per-tile frontends (NIper-tile, NIsplit) serve exactly one QP. Edge
//! frontends (NIedge) serve a whole mesh row of QPs; they overlap polls of
//! *distinct* QPs up to [`RmcConfig::fe_poll_concurrency`], since every such
//! poll is an independent multi-hop coherence transaction — a single
//! outstanding miss would serialize eight cores behind one round trip.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ni_coherence::{Access, AccessKind, AccessOrigin, CacheComplex};
use ni_engine::{Cycle, DelayLine};
use ni_noc::NocNode;
use ni_qp::QueuePair;

use crate::config::RmcConfig;
use crate::trace::{Stage, TraceEvent};
use crate::{NiMsg, RmcEgress};

/// Tag-space discriminators for the frontend's cache accesses.
const TAG_POLL: u64 = 1 << 62;
const TAG_CQ: u64 = 2 << 62;

#[derive(Debug)]
enum FeEv {
    /// Emit a WqFwd to the backend (after RGP frontend processing).
    SendWq { qp: u32, wq_id: u64 },
    /// Begin the CQ store (after RCP frontend processing); `ok` is the
    /// completion status the backend reported (false for a transfer its
    /// ITT watchdog abandoned) and `degraded` marks a completion that
    /// needed a recovery path (WQ replay or a quorum that absorbed a dead
    /// leg).
    CqStore {
        qp: u32,
        wq_id: u64,
        ok: bool,
        degraded: bool,
    },
}

/// An RGP/RCP frontend.
#[derive(Debug)]
pub struct NiFrontend {
    node: NocNode,
    cfg: RmcConfig,
    /// QPs serviced by this frontend.
    qp_ids: Vec<u32>,
    /// Backend this frontend's entries go to.
    backend: NocNode,
    rr: usize,
    /// Pending completion notifications to turn into CQ entries:
    /// `(qp, wq_id, ok, degraded)`.
    cq_queue: VecDeque<(u32, u64, bool, bool)>,
    /// Outstanding WQ polls: access tag -> polled QP.
    polls: BTreeMap<u64, u32>,
    /// QPs with a poll in flight (never poll the same QP twice at once).
    in_poll: BTreeSet<u32>,
    /// Outstanding CQ store, if any: (tag, qp, wq_id). CQ stores are
    /// serialized — same-block stores must retire in order.
    storing_cq: Option<(u64, u32, u64)>,
    /// A CQ store event is scheduled or its store is in flight.
    cq_busy: bool,
    events: DelayLine<FeEv>,
    egress: VecDeque<RmcEgress>,
    next_tag: u64,
    poll_ready_at: Cycle,
    /// A submit was rejected (MSHR full); retry it.
    retry: Option<Access>,
    /// Highest WQ entry id already scheduled for forwarding, per QP.
    ///
    /// A poll returning the newest-written id may race with the delayed
    /// `SendWq` events of the previous poll (the entries stay pending until
    /// the forward fires); this watermark keeps each entry forwarded once.
    dispatched: BTreeMap<u32, u64>,
}

impl NiFrontend {
    /// Create a frontend at `node`, forwarding to `backend`.
    pub fn new(node: NocNode, backend: NocNode, qp_ids: Vec<u32>, cfg: RmcConfig) -> NiFrontend {
        NiFrontend {
            node,
            cfg,
            qp_ids,
            backend,
            rr: 0,
            cq_queue: VecDeque::new(),
            polls: BTreeMap::new(),
            in_poll: BTreeSet::new(),
            storing_cq: None,
            cq_busy: false,
            events: DelayLine::new(),
            egress: VecDeque::new(),
            next_tag: 0,
            poll_ready_at: Cycle::ZERO,
            retry: None,
            dispatched: BTreeMap::new(),
        }
    }

    /// Where this frontend lives.
    pub fn node(&self) -> NocNode {
        self.node
    }

    /// Its backend's location.
    pub fn backend(&self) -> NocNode {
        self.backend
    }

    /// Deliver a completion notification (from the backend, via latch or
    /// NOC). `ok == false` marks a transfer the backend's ITT watchdog
    /// abandoned; `degraded` marks a completion that needed a recovery
    /// path. The frontend writes the CQ entry either way, with both flags
    /// carried through to the application.
    pub fn on_notify(&mut self, qp: u32, wq_id: u64, ok: bool, degraded: bool) {
        self.cq_queue.push_back((qp, wq_id, ok, degraded));
    }

    /// True when the frontend holds no in-flight work: no outstanding WQ
    /// poll or CQ store, no queued notifications, and nothing pending in
    /// its event or egress queues. A quiescent frontend would only ever
    /// re-issue its idle WQ poll loop, so a quiesced chip may safely skip
    /// ticking it (see the chip driver's fast path).
    pub fn is_quiescent(&self) -> bool {
        self.cq_queue.is_empty()
            && self.polls.is_empty()
            && self.storing_cq.is_none()
            && !self.cq_busy
            && self.events.is_empty()
            && self.egress.is_empty()
            && self.retry.is_none()
    }

    /// Earliest cycle (>= `now`) at which this frontend does anything on
    /// its own: a pending retry, an undrained egress queue, a queued CQ
    /// notification, a due internal event, or the next WQ-poll issue slot.
    /// `None` means only external input (a notification or a cache
    /// completion) wakes it. The poll term may be conservatively early — a
    /// tick that finds every QP already in-poll only rotates the
    /// round-robin cursor by a full lap, which is invisible mod the QP
    /// count — but it is never late: a frontend holding poll credit is due
    /// at `max(now, poll_ready_at)` exactly as the poll-everything tick
    /// would observe.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.retry.is_some()
            || !self.egress.is_empty()
            || (!self.cq_busy && !self.cq_queue.is_empty())
        {
            return Some(now);
        }
        let mut next = self.events.next_ready_at();
        if !self.qp_ids.is_empty() && self.polls.len() < self.cfg.fe_poll_concurrency.max(1) {
            let at = self.poll_ready_at.max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        next
    }

    /// Drive the frontend one cycle. Needs the shared QP table and the
    /// cache complex hosting the NI cache.
    pub fn tick(&mut self, now: Cycle, qps: &mut [QueuePair], cache: &mut CacheComplex) {
        // Retry a rejected submit first.
        if let Some(a) = self.retry.take() {
            if let Err(a) = cache.submit(now, a) {
                self.retry = Some(a);
                return;
            }
        }
        while let Some(ev) = self.events.pop_ready(now) {
            match ev {
                FeEv::SendWq { qp, wq_id } => {
                    let q = &mut qps[qp as usize];
                    let entry = q.ni_take().expect("observed entry still pending");
                    debug_assert_eq!(entry.id, wq_id);
                    self.egress.push_back(RmcEgress::Ni {
                        dst: self.backend,
                        msg: NiMsg::WqFwd {
                            entry,
                            qp,
                            fe: self.node,
                        },
                    });
                }
                FeEv::CqStore {
                    qp,
                    wq_id,
                    ok,
                    degraded,
                } => {
                    let q = &mut qps[qp as usize];
                    let block = q.cq_tail_block();
                    q.ni_complete_with(wq_id, ok, degraded);
                    let token = q.completions_written();
                    let tag = TAG_CQ | self.bump_tag();
                    self.storing_cq = Some((tag, qp, wq_id));
                    let a = Access {
                        origin: AccessOrigin::Ni,
                        kind: AccessKind::Store,
                        block,
                        store_value: token,
                        tag,
                    };
                    if let Err(a) = cache.submit(now, a) {
                        self.retry = Some(a);
                    }
                }
            }
        }
        // CQ writes take priority over new polls.
        if !self.cq_busy {
            if let Some((qp, wq_id, ok, degraded)) = self.cq_queue.pop_front() {
                self.cq_busy = true;
                self.events.push_after(
                    now,
                    self.cfg.rcp_fe_proc,
                    FeEv::CqStore {
                        qp,
                        wq_id,
                        ok,
                        degraded,
                    },
                );
                return;
            }
        }
        if self.qp_ids.is_empty() || now < self.poll_ready_at || self.retry.is_some() {
            return;
        }
        if self.polls.len() >= self.cfg.fe_poll_concurrency.max(1) {
            return;
        }
        // Poll the next registered QP without a poll already in flight.
        let Some(qp) = self.next_pollable_qp() else {
            return;
        };
        let block = qps[qp as usize].wq_head_block();
        let tag = TAG_POLL | self.bump_tag();
        self.polls.insert(tag, qp);
        self.in_poll.insert(qp);
        let a = Access {
            origin: AccessOrigin::Ni,
            kind: AccessKind::Load,
            block,
            store_value: 0,
            tag,
        };
        if let Err(a) = cache.submit(now, a) {
            self.retry = Some(a);
        }
    }

    /// Round-robin choice among QPs with no outstanding poll.
    fn next_pollable_qp(&mut self) -> Option<u32> {
        let n = self.qp_ids.len();
        for _ in 0..n {
            let qp = self.qp_ids[self.rr % n];
            self.rr = self.rr.wrapping_add(1);
            if !self.in_poll.contains(&qp) {
                return Some(qp);
            }
        }
        None
    }

    /// Handle a completed NI-cache access (routed here by the SoC for
    /// completions with `AccessOrigin::Ni`).
    pub fn on_cache_completion(&mut self, now: Cycle, tag: u64, value: u64, qps: &mut [QueuePair]) {
        if tag & TAG_CQ != 0 {
            let (stag, qp, wq_id) = self.storing_cq.take().expect("CQ store outstanding");
            debug_assert_eq!(stag, tag);
            self.cq_busy = false;
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id,
                stage: Stage::CqWritten,
                at: now,
            }));
            return;
        }
        debug_assert!(tag & TAG_POLL != 0, "unexpected frontend tag {tag:#x}");
        let qp = self.polls.remove(&tag).expect("poll outstanding");
        self.in_poll.remove(&qp);
        let q = &mut qps[qp as usize];
        // The block token is the newest entry id written into that block;
        // take every pending entry the poll made visible.
        let delay = self.cfg.rgp_fe_proc;
        let already = self.dispatched.get(&qp).copied().unwrap_or(0);
        let ids: Vec<u64> = q
            .pending_entries()
            .skip_while(|e| e.id <= already)
            .take_while(|e| e.id <= value)
            .map(|e| e.id)
            .collect();
        let found = !ids.is_empty();
        if let Some(&max) = ids.last() {
            self.dispatched.insert(qp, max);
        }
        // Only peeked so far: record traces and schedule the takes in order.
        for (i, id) in ids.iter().enumerate() {
            // Re-peek via index: entries are taken inside SendWq in order.
            self.egress.push_back(RmcEgress::Trace(TraceEvent {
                qp,
                wq_id: *id,
                stage: Stage::FeObserved,
                at: now,
            }));
            self.events
                .push_after(now, delay + i as u64, FeEv::SendWq { qp, wq_id: *id });
        }
        if !found {
            self.poll_ready_at = now + self.cfg.poll_backoff;
        }
    }

    /// Next outbound item.
    pub fn pop_egress(&mut self) -> Option<RmcEgress> {
        self.egress.pop_front()
    }

    fn bump_tag(&mut self) -> u64 {
        self.next_tag = (self.next_tag + 1) & ((1 << 62) - 1);
        self.next_tag
    }
}
