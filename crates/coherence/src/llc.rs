//! Set-associative LLC data array (one bank).
//!
//! The directory keeps protocol state separately (non-inclusive protocol:
//! directory entries outlive the data). This array only tracks which blocks
//! have a *data copy* at the bank, their value token and dirtiness, with LRU
//! replacement within a set.

// lint: file-allow(hash-order) — `lookup` is a pure block->set memo,
// consulted and updated by key only, never iterated; victim choice comes
// from the ordered per-set `Vec`s, so hash order cannot reach sim state.
use std::collections::HashMap;

use ni_mem::BlockAddr;

/// A victim evicted by [`LlcArray::install`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted block.
    pub block: BlockAddr,
    /// Its value token.
    pub value: u64,
    /// True when the copy was dirty and must be written back to memory.
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    block: BlockAddr,
    value: u64,
    dirty: bool,
    lru: u64,
}

/// One bank's data array.
#[derive(Debug)]
pub struct LlcArray {
    sets: Vec<Vec<Line>>,
    ways: usize,
    /// Block -> set index memo (cheap set mapping by block address bits).
    index_mask: u64,
    clock: u64,
    lookup: HashMap<BlockAddr, usize>,
}

impl LlcArray {
    /// Create an array with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics unless `sets` is a power of two and `ways > 0`.
    pub fn new(sets: usize, ways: usize) -> LlcArray {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways > 0, "need at least one way");
        LlcArray {
            // Way storage grows lazily on first touch: racks instantiate
            // hundreds of banks and most sets are never filled, so eager
            // per-set way allocation would dominate whole-rack construction
            // time and memory.
            sets: (0..sets).map(|_| Vec::new()).collect(),
            ways,
            index_mask: (sets - 1) as u64,
            clock: 0,
            lookup: HashMap::new(),
        }
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        // Bank interleaving already consumed the low bits; use the next bits.
        ((block.0 >> 6) & self.index_mask) as usize
    }

    /// Look up a block, refreshing LRU. Returns `(value, dirty)`.
    pub fn get(&mut self, block: BlockAddr) -> Option<(u64, bool)> {
        if !self.lookup.contains_key(&block) {
            return None;
        }
        let s = self.set_of(block);
        self.clock += 1;
        let clock = self.clock;
        let line = self.sets[s]
            .iter_mut()
            .find(|l| l.block == block)
            .expect("lookup map and sets agree");
        line.lru = clock;
        Some((line.value, line.dirty))
    }

    /// True when the block has a data copy (no LRU update).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.lookup.contains_key(&block)
    }

    /// Look up a block without touching LRU state. Returns `(value, dirty)`.
    pub fn peek(&self, block: BlockAddr) -> Option<(u64, bool)> {
        if !self.lookup.contains_key(&block) {
            return None;
        }
        let s = self.set_of(block);
        self.sets[s]
            .iter()
            .find(|l| l.block == block)
            .map(|l| (l.value, l.dirty))
    }

    /// Overwrite a resident block in place, marking it dirty; `false` when
    /// the block is not cached (no allocation, no eviction, no LRU update).
    pub fn update_in_place(&mut self, block: BlockAddr, value: u64) -> bool {
        if !self.lookup.contains_key(&block) {
            return false;
        }
        let s = self.set_of(block);
        let line = self.sets[s]
            .iter_mut()
            .find(|l| l.block == block)
            .expect("lookup map and sets agree");
        line.value = value;
        line.dirty = true;
        true
    }

    /// Install (or update) a block, returning the victim if a dirty line had
    /// to be evicted to make room. Clean victims are dropped silently.
    pub fn install(&mut self, block: BlockAddr, value: u64, dirty: bool) -> Option<Evicted> {
        self.clock += 1;
        let s = self.set_of(block);
        if self.lookup.contains_key(&block) {
            let clock = self.clock;
            let line = self.sets[s]
                .iter_mut()
                .find(|l| l.block == block)
                .expect("lookup map and sets agree");
            line.value = value;
            line.dirty = line.dirty || dirty;
            line.lru = clock;
            return None;
        }
        let mut victim = None;
        if self.sets[s].len() >= self.ways {
            let (i, _) = self.sets[s]
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("full set is non-empty");
            let v = self.sets[s].swap_remove(i);
            self.lookup.remove(&v.block);
            victim = Some(Evicted {
                block: v.block,
                value: v.value,
                dirty: v.dirty,
            });
        }
        self.sets[s].push(Line {
            block,
            value,
            dirty,
            lru: self.clock,
        });
        self.lookup.insert(block, s);
        victim.filter(|v| v.dirty)
    }

    /// Drop a block's data copy (e.g. when ownership moves to an L1 and the
    /// protocol chooses not to keep stale data). Returns the dropped value.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<u64> {
        let s = self.lookup.remove(&block)?;
        let i = self.sets[s]
            .iter()
            .position(|l| l.block == block)
            .expect("lookup map and sets agree");
        Some(self.sets[s].swap_remove(i).value)
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.lookup.len()
    }

    /// True when no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.lookup.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_get_roundtrip() {
        let mut a = LlcArray::new(4, 2);
        assert!(a.install(BlockAddr(1), 10, false).is_none());
        assert_eq!(a.get(BlockAddr(1)), Some((10, false)));
        assert!(a.contains(BlockAddr(1)));
        assert_eq!(a.get(BlockAddr(2)), None);
    }

    #[test]
    fn update_in_place_keeps_dirty_sticky() {
        let mut a = LlcArray::new(4, 2);
        a.install(BlockAddr(1), 10, true);
        a.install(BlockAddr(1), 11, false);
        assert_eq!(a.get(BlockAddr(1)), Some((11, true)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn eviction_returns_dirty_victims_only() {
        let mut a = LlcArray::new(1, 2);
        // Same set: blocks 0, 64, 128 (>> 6 gives 0 with mask 0... use
        // blocks that collide: with 1 set everything collides).
        a.install(BlockAddr(0), 1, true);
        a.install(BlockAddr(1), 2, false);
        // Third install evicts LRU (block 0, dirty).
        let v = a.install(BlockAddr(2), 3, false).expect("dirty victim");
        assert_eq!(v.block, BlockAddr(0));
        assert_eq!(v.value, 1);
        // Fourth install evicts block 1 (clean) silently.
        assert!(a.install(BlockAddr(3), 4, false).is_none());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn lru_refresh_on_get_protects_blocks() {
        let mut a = LlcArray::new(1, 2);
        a.install(BlockAddr(0), 1, true);
        a.install(BlockAddr(1), 2, true);
        // Touch block 0 so block 1 becomes LRU.
        a.get(BlockAddr(0));
        let v = a.install(BlockAddr(2), 3, false).expect("dirty victim");
        assert_eq!(v.block, BlockAddr(1));
    }

    #[test]
    fn invalidate_removes_data() {
        let mut a = LlcArray::new(2, 2);
        a.install(BlockAddr(5), 50, true);
        assert_eq!(a.invalidate(BlockAddr(5)), Some(50));
        assert!(!a.contains(BlockAddr(5)));
        assert_eq!(a.invalidate(BlockAddr(5)), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        let _ = LlcArray::new(3, 2);
    }
}
