//! The per-tile cache complex: a core's L1 paired with an optional NI cache.
//!
//! §3.4 of the paper: the NI cache is attached directly to the back side of
//! the L1, at the boundary of the core's IP block. The two structures
//! *collectively appear as a single logical entity* to the LLC's coherence
//! domain while being physically decoupled; blocks migrate between them over
//! an internal path (5 cycles) without touching the directory. The NI cache
//! controller additionally implements an **Owned** state, visible only to
//! itself, so a dirty CQ block can be handed to the polling core as a clean
//! shared copy while the NI retains responsibility for the eventual
//! writeback.
//!
//! The same type also models the NIedge cache (§3.1): constructed without a
//! core, attached to an edge NI block, it participates in coherence as its
//! own tile and every QP block transfer becomes a full 3-hop protocol
//! transaction — the effect Table 3 quantifies.

use std::collections::BTreeMap;

use ni_engine::{Counter, Cycle, DelayLine};
use ni_mem::BlockAddr;
use ni_noc::NocNode;

use crate::config::CoherenceConfig;
use crate::msg::{ClientKind, CohMsg, Egress};

/// Who issued an access into the complex.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOrigin {
    /// The core, through the L1.
    Core,
    /// The NI frontend (or edge-NI pipeline), through the NI cache.
    Ni,
}

/// Load or store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Read the block token.
    Load,
    /// Overwrite the block token.
    Store,
}

/// A memory access submitted to the complex.
#[derive(Clone, Copy, Debug)]
pub struct Access {
    /// Issuing side.
    pub origin: AccessOrigin,
    /// Load or store.
    pub kind: AccessKind,
    /// Target block.
    pub block: BlockAddr,
    /// Token written by stores (ignored by loads).
    pub store_value: u64,
    /// Caller tag returned in the completion.
    pub tag: u64,
}

/// A finished access.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// Issuing side.
    pub origin: AccessOrigin,
    /// Caller tag.
    pub tag: u64,
    /// Token observed (loads) or written (stores).
    pub value: u64,
    /// Cycle the access completed.
    pub at: Cycle,
}

/// Stable per-holder line state. `Owned` exists only in the NI cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
enum LineState {
    #[default]
    I,
    S,
    E,
    M,
    /// NI-cache-only: dirty copy retained while the L1 holds a clean S copy.
    O,
}

impl LineState {
    fn present(self) -> bool {
        self != LineState::I
    }
    fn dirty(self) -> bool {
        matches!(self, LineState::M | LineState::O)
    }
    fn writable(self) -> bool {
        matches!(self, LineState::E | LineState::M)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    l1: LineState,
    ni: LineState,
    value: u64,
    lru: u64,
}

impl Line {
    fn present(&self) -> bool {
        self.l1.present() || self.ni.present()
    }
    fn dirty(&self) -> bool {
        self.l1.dirty() || self.ni.dirty()
    }
    fn state_of(&self, o: AccessOrigin) -> LineState {
        match o {
            AccessOrigin::Core => self.l1,
            AccessOrigin::Ni => self.ni,
        }
    }
    fn set_state(&mut self, o: AccessOrigin, s: LineState) {
        match o {
            AccessOrigin::Core => self.l1 = s,
            AccessOrigin::Ni => self.ni = s,
        }
    }
}

/// Outstanding miss bookkeeping.
#[derive(Debug)]
struct Mshr {
    want_exclusive: bool,
    has_data: bool,
    /// Fill grants E/M rights (DataE/DataM) rather than S.
    exclusive_grant: bool,
    value: u64,
    /// InvAcks still expected (may dip negative if acks outrun data).
    pending_acks: i64,
    /// Accesses completing when the fill lands.
    waiters: Vec<Access>,
    /// Forwards buffered while the line is transient.
    deferred: Vec<CohMsg>,
    /// Cache the fill installs into.
    fill_to: AccessOrigin,
    /// An Inv raced the fill: deliver data to waiters but leave the line I.
    invalidated: bool,
}

/// Writeback awaiting `PutAck`.
#[derive(Debug)]
struct Writeback {
    value: u64,
    /// Block was forwarded to a new owner while the PutM was in flight.
    surrendered: bool,
}

/// Internal timed events.
#[derive(Debug)]
enum Ev {
    /// An access reached the L1 (or NI cache) tag array.
    Lookup(Access),
    /// An internal L1 <-> NI transfer finished; complete the access.
    Transfer(Access),
}

/// Statistics exposed by a complex.
#[derive(Clone, Copy, Debug, Default)]
pub struct ComplexStats {
    /// L1/NI hits completed locally.
    pub hits: Counter,
    /// Misses sent to the directory.
    pub misses: Counter,
    /// Internal L1 <-> NI cache transfers (no directory traffic).
    pub internal_transfers: Counter,
    /// Times the Owned-state fast path served a core poll of a dirty NI block.
    pub owned_fast_paths: Counter,
    /// Writebacks issued.
    pub writebacks: Counter,
    /// Forwards answered with data.
    pub forwards_served: Counter,
    /// Forwards answered with `FwdMiss`.
    pub forward_misses: Counter,
}

/// The L1 + NI cache pair (or a bare NI-edge cache when `has_core == false`).
#[derive(Debug)]
pub struct CacheComplex {
    cfg: CoherenceConfig,
    /// Our interconnect identity (messages from the directory arrive here).
    me: NocNode,
    /// Home-bank lookup supplied by the chip: block -> directory node.
    home: fn(BlockAddr, u32) -> NocNode,
    /// Parameter forwarded to `home` (bank count).
    n_banks: u32,
    has_ni_cache: bool,
    /// Resident lines. Ordered: `enforce_capacity` scans this map for the
    /// LRU victim and breaks `lru` ties by iteration order — with a
    /// `HashMap` the victim choice (and thus the whole downstream
    /// writeback/invalidation traffic) varied between same-seed runs.
    lines: BTreeMap<BlockAddr, Line>,
    mshrs: BTreeMap<BlockAddr, Mshr>,
    writebacks: BTreeMap<BlockAddr, Writeback>,
    events: DelayLine<Ev>,
    completions: std::collections::VecDeque<Completion>,
    egress: std::collections::VecDeque<Egress>,
    stats: ComplexStats,
    lru_clock: u64,
}

impl CacheComplex {
    /// Create a complex identified as `me`, mapping blocks to home banks via
    /// `home(block, n_banks)`.
    pub fn new(
        cfg: CoherenceConfig,
        me: NocNode,
        has_ni_cache: bool,
        home: fn(BlockAddr, u32) -> NocNode,
        n_banks: u32,
    ) -> CacheComplex {
        CacheComplex {
            cfg,
            me,
            home,
            n_banks,
            has_ni_cache,
            lines: BTreeMap::new(),
            mshrs: BTreeMap::new(),
            writebacks: BTreeMap::new(),
            events: DelayLine::new(),
            completions: std::collections::VecDeque::new(),
            egress: std::collections::VecDeque::new(),
            stats: ComplexStats::default(),
            lru_clock: 0,
        }
    }

    /// Our interconnect identity.
    pub fn node(&self) -> NocNode {
        self.me
    }

    /// Statistics.
    pub fn stats(&self) -> &ComplexStats {
        &self.stats
    }

    /// True when no miss or writeback is outstanding.
    pub fn is_quiescent(&self) -> bool {
        self.mshrs.is_empty() && self.writebacks.is_empty() && self.events.is_empty()
    }

    /// Earliest cycle (>= `now`) at which this complex does anything on its
    /// own. `None` means it only acts on external input — an outstanding
    /// miss or writeback is parked until the directory answers, so it does
    /// not by itself keep the complex ticking. Undrained egress or
    /// completions force `now`: [`CacheComplex::deliver`] can produce both
    /// without scheduling an internal event.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.egress.is_empty() || !self.completions.is_empty() {
            return Some(now);
        }
        self.events.next_ready_at()
    }

    /// Submit an access.
    ///
    /// # Errors
    /// Returns the access back when all MSHRs are busy (the issuer must
    /// retry next cycle).
    pub fn submit(&mut self, now: Cycle, access: Access) -> Result<(), Access> {
        if self.mshrs.len() >= self.cfg.l1_mshrs && !self.mshrs.contains_key(&access.block) {
            return Err(access);
        }
        debug_assert!(
            self.has_ni_cache || access.origin == AccessOrigin::Core,
            "NI access submitted to a complex without an NI cache"
        );
        let lat = match access.origin {
            AccessOrigin::Core => self.cfg.l1_latency,
            // The NI cache is a small dedicated structure next to the
            // pipeline; its tag lookup is a single cycle.
            AccessOrigin::Ni => 1,
        };
        self.events.push_after(now, lat, Ev::Lookup(access));
        Ok(())
    }

    /// Deliver a protocol message from the interconnect.
    pub fn deliver(&mut self, now: Cycle, msg: CohMsg) {
        match msg {
            CohMsg::FwdGetS { .. } | CohMsg::FwdGetX { .. } => self.handle_fwd(now, msg),
            CohMsg::Inv {
                block,
                ack_to,
                akind,
            } => self.handle_inv(now, block, ack_to, akind),
            CohMsg::DataE { block, value, acks } => {
                self.handle_fill(now, block, value, true, i64::from(acks))
            }
            CohMsg::DataM { block, value } => self.handle_fill(now, block, value, true, 0),
            CohMsg::DataS { block, value } => self.handle_fill(now, block, value, false, 0),
            CohMsg::InvAck { block } => {
                if let Some(m) = self.mshrs.get_mut(&block) {
                    m.pending_acks -= 1;
                    self.try_finish_fill(now, block);
                }
            }
            CohMsg::PutAck { block } => {
                self.writebacks.remove(&block);
            }
            other => panic!("cache complex received unexpected message {other:?}"),
        }
    }

    /// Advance time; drains due internal events.
    pub fn tick(&mut self, now: Cycle) {
        while let Some(ev) = self.events.pop_ready(now) {
            match ev {
                Ev::Lookup(a) => self.lookup(now, a),
                Ev::Transfer(a) => self.finish_transfer(now, a),
            }
        }
    }

    /// Next completed access, if any.
    pub fn pop_completion(&mut self) -> Option<Completion> {
        self.completions.pop_front()
    }

    /// Next outbound protocol message, if any.
    pub fn pop_egress(&mut self) -> Option<Egress> {
        self.egress.pop_front()
    }

    /// Debug/test visibility: `(l1_present, ni_present, dirty)` of a block.
    pub fn probe(&self, block: BlockAddr) -> (bool, bool, bool) {
        match self.lines.get(&block) {
            Some(l) => (l.l1.present(), l.ni.present(), l.dirty()),
            None => (false, false, false),
        }
    }

    /// True when the NI cache holds `block` in the Owned state.
    pub fn ni_holds_owned(&self, block: BlockAddr) -> bool {
        self.lines.get(&block).is_some_and(|l| l.ni == LineState::O)
    }

    // ---- internals -------------------------------------------------------

    fn send(&mut self, dst: NocNode, kind: ClientKind, msg: CohMsg) {
        self.egress.push_back(Egress { dst, kind, msg });
    }

    fn dir_of(&self, block: BlockAddr) -> NocNode {
        (self.home)(block, self.n_banks)
    }

    fn complete(&mut self, now: Cycle, a: Access, value: u64) {
        self.completions.push_back(Completion {
            origin: a.origin,
            tag: a.tag,
            value,
            at: now,
        });
    }

    fn touch(&mut self, block: BlockAddr) {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        if let Some(l) = self.lines.get_mut(&block) {
            l.lru = clock;
        }
    }

    fn lookup(&mut self, now: Cycle, a: Access) {
        // A transient block: join the MSHR (widening to exclusive later if a
        // store arrives is handled by re-issue on fill).
        if let Some(m) = self.mshrs.get_mut(&a.block) {
            if a.kind == AccessKind::Store && !m.want_exclusive {
                // The outstanding GetS will fill as shared; the queued store
                // re-runs after the fill and upgrades then.
            }
            m.waiters.push(a);
            return;
        }
        if self.writebacks.contains_key(&a.block) {
            // Line is leaving; retry after the PutAck by deferring a cycle.
            self.events.push_after(now, 2, Ev::Lookup(a));
            return;
        }
        self.touch(a.block);
        let line = self.lines.get(&a.block).copied().unwrap_or_default();
        let own = line.state_of(a.origin);
        let other_origin = match a.origin {
            AccessOrigin::Core => AccessOrigin::Ni,
            AccessOrigin::Ni => AccessOrigin::Core,
        };
        let other = line.state_of(other_origin);

        match a.kind {
            AccessKind::Load if own.present() => {
                self.stats.hits.incr();
                self.complete(now, a, line.value);
            }
            AccessKind::Store if own.writable() => {
                self.stats.hits.incr();
                let l = self.lines.entry(a.block).or_default();
                l.set_state(a.origin, LineState::M);
                l.value = a.store_value;
                self.complete(now, a, a.store_value);
            }
            // Store with only an O copy in the NI cache (NI re-writing a CQ
            // block it still owns): O is dirty ownership, write in place and
            // the L1's stale S copy is invalidated internally.
            AccessKind::Store if a.origin == AccessOrigin::Ni && own == LineState::O => {
                self.stats.hits.incr();
                let l = self.lines.entry(a.block).or_default();
                l.ni = LineState::M;
                l.l1 = LineState::I;
                l.value = a.store_value;
                self.complete(now, a, a.store_value);
            }
            _ if other.present() => {
                // Back-side snoop hit: the other structure has the block.
                self.stats.internal_transfers.incr();
                self.events
                    .push_after(now, self.cfg.ni_transfer_latency, Ev::Transfer(a));
            }
            _ if own == LineState::S && a.kind == AccessKind::Store => {
                // Upgrade: issue GetX (the directory excludes us from the
                // invalidation list since we are a tracked sharer).
                self.miss(a, true);
            }
            _ => {
                let excl = a.kind == AccessKind::Store;
                self.miss(a, excl);
            }
        }
    }

    /// Finish an internal L1 <-> NI transfer decided `ni_transfer_latency`
    /// cycles ago; re-evaluates state so racing invalidations are honored.
    fn finish_transfer(&mut self, now: Cycle, a: Access) {
        let Some(line) = self.lines.get(&a.block).copied() else {
            // Invalidated while the transfer was in flight: fall back to a
            // fresh lookup which will miss and go to the directory.
            self.events.push_after(now, 1, Ev::Lookup(a));
            return;
        };
        let other_origin = match a.origin {
            AccessOrigin::Core => AccessOrigin::Ni,
            AccessOrigin::Ni => AccessOrigin::Core,
        };
        let other = line.state_of(other_origin);
        if !other.present() {
            self.events.push_after(now, 1, Ev::Lookup(a));
            return;
        }
        let l = self.lines.get_mut(&a.block).expect("present above");
        match a.kind {
            AccessKind::Load => {
                match (a.origin, other) {
                    // Core polls a dirty NI block: the paper's Owned-state
                    // fast path (§3.4) — clean copy to the L1, NI keeps the
                    // dirty block as O.
                    (AccessOrigin::Core, LineState::M | LineState::O)
                        if self.cfg.ni_owned_state =>
                    {
                        l.ni = LineState::O;
                        l.l1 = LineState::S;
                        self.stats.owned_fast_paths.incr();
                        let v = l.value;
                        self.complete(now, a, v);
                    }
                    // Owned-state disabled: the NI must write the dirty block
                    // back to the LLC first, then the core re-requests it
                    // through the directory (slow path, ablation A2).
                    (AccessOrigin::Core, LineState::M | LineState::O) => {
                        let value = l.value;
                        l.ni = LineState::I;
                        l.l1 = LineState::I;
                        let dirty_line = *l;
                        if !dirty_line.present() {
                            self.lines.remove(&a.block);
                        }
                        self.stats.writebacks.incr();
                        self.writebacks.insert(
                            a.block,
                            Writeback {
                                value,
                                surrendered: false,
                            },
                        );
                        let dir = self.dir_of(a.block);
                        self.send(
                            dir,
                            ClientKind::Directory,
                            CohMsg::PutM {
                                block: a.block,
                                value,
                            },
                        );
                        // Re-run the access; it will stall on the writeback
                        // then miss to the directory.
                        self.events.push_after(now, 1, Ev::Lookup(a));
                    }
                    // Exclusive clean copies migrate wholesale.
                    (_, LineState::E) => {
                        l.set_state(other_origin, LineState::I);
                        l.set_state(a.origin, LineState::E);
                        let v = l.value;
                        self.complete(now, a, v);
                    }
                    // NI reads a block the core has modified (WQ entry):
                    // ownership migrates across the back side.
                    (AccessOrigin::Ni, LineState::M) => {
                        l.l1 = LineState::I;
                        l.ni = LineState::M;
                        let v = l.value;
                        self.complete(now, a, v);
                    }
                    // Shared copies replicate.
                    (_, LineState::S | LineState::O) => {
                        if other == LineState::O {
                            // Core S copy exists alongside NI's O already.
                        }
                        l.set_state(a.origin, LineState::S);
                        let v = l.value;
                        self.complete(now, a, v);
                    }
                    (_, LineState::I) => unreachable!("checked present"),
                }
            }
            AccessKind::Store => {
                // Ownership (or the right to write) moves to the storer.
                if other.writable() || other == LineState::O {
                    l.set_state(other_origin, LineState::I);
                    l.set_state(a.origin, LineState::M);
                    l.value = a.store_value;
                    self.complete(now, a, a.store_value);
                } else {
                    // Both at most S: need a GetX upgrade.
                    let excl = true;
                    self.miss(a, excl);
                }
            }
        }
    }

    fn miss(&mut self, a: Access, exclusive: bool) {
        self.stats.misses.incr();
        let dir = self.dir_of(a.block);
        let msg = if exclusive {
            CohMsg::GetX { block: a.block }
        } else {
            CohMsg::GetS { block: a.block }
        };
        self.send(dir, ClientKind::Directory, msg);
        self.mshrs.insert(
            a.block,
            Mshr {
                want_exclusive: exclusive,
                has_data: false,
                exclusive_grant: false,
                value: 0,
                pending_acks: 0,
                waiters: vec![a],
                deferred: Vec::new(),
                fill_to: a.origin,
                invalidated: false,
            },
        );
    }

    fn handle_fill(
        &mut self,
        now: Cycle,
        block: BlockAddr,
        value: u64,
        exclusive: bool,
        acks: i64,
    ) {
        let Some(m) = self.mshrs.get_mut(&block) else {
            panic!("fill for block with no MSHR: {block:?}");
        };
        m.has_data = true;
        m.value = value;
        m.exclusive_grant = m.exclusive_grant || exclusive;
        m.pending_acks += acks;
        self.try_finish_fill(now, block);
    }

    fn try_finish_fill(&mut self, now: Cycle, block: BlockAddr) {
        let ready = self
            .mshrs
            .get(&block)
            .is_some_and(|m| m.has_data && m.pending_acks <= 0);
        if !ready {
            return;
        }
        let mut m = self.mshrs.remove(&block).expect("checked above");
        let mut value = m.value;

        // Apply waiting accesses in order; stores update the value.
        let grants_write = m.exclusive_grant;
        let mut wrote = false;
        let mut completions = Vec::new();
        let mut retries = Vec::new();
        for a in m.waiters.drain(..) {
            match a.kind {
                AccessKind::Load => completions.push((a, value)),
                AccessKind::Store if grants_write => {
                    value = a.store_value;
                    wrote = true;
                    completions.push((a, value));
                }
                AccessKind::Store => retries.push(a),
            }
        }

        if !m.invalidated {
            let state = if wrote {
                LineState::M
            } else if m.exclusive_grant {
                LineState::E
            } else {
                LineState::S
            };
            self.lru_clock += 1;
            let line = self.lines.entry(block).or_default();
            line.set_state(m.fill_to, state);
            line.value = value;
            line.lru = self.lru_clock;
        }

        for (a, v) in completions {
            self.complete(now, a, v);
        }
        // Stores that arrived under a shared fill re-issue as upgrades.
        for a in retries {
            self.events.push_after(now, 1, Ev::Lookup(a));
        }
        // Replay forwards that raced the transient window.
        for msg in std::mem::take(&mut m.deferred) {
            self.deliver(now, msg);
        }
        self.enforce_capacity();
    }

    fn handle_inv(&mut self, now: Cycle, block: BlockAddr, ack_to: NocNode, akind: ClientKind) {
        let _ = now;
        if let Some(l) = self.lines.get_mut(&block) {
            l.l1 = LineState::I;
            l.ni = LineState::I;
            self.lines.remove(&block);
        }
        if let Some(m) = self.mshrs.get_mut(&block) {
            if !m.want_exclusive {
                m.invalidated = true;
            }
        }
        // Inexact directory: acknowledge even when we hold nothing.
        self.send(ack_to, akind, CohMsg::InvAck { block });
    }

    fn handle_fwd(&mut self, now: Cycle, msg: CohMsg) {
        let block = msg.block();
        // Transient: buffer until the open transaction resolves.
        if let Some(m) = self.mshrs.get_mut(&block) {
            m.deferred.push(msg);
            return;
        }
        let (requester, rkind, is_getx) = match msg {
            CohMsg::FwdGetS {
                requester, rkind, ..
            } => (requester, rkind, false),
            CohMsg::FwdGetX {
                requester, rkind, ..
            } => (requester, rkind, true),
            _ => unreachable!("handle_fwd only sees forwards"),
        };
        let dir = self.dir_of(block);

        // A writeback is racing this forward: serve from the writeback value.
        if let Some(wb) = self.writebacks.get_mut(&block) {
            let value = wb.value;
            wb.surrendered = true;
            self.stats.forwards_served.incr();
            if is_getx {
                self.send(requester, rkind, CohMsg::DataM { block, value });
                self.send(dir, ClientKind::Directory, CohMsg::AckX { block });
            } else {
                self.send(requester, rkind, CohMsg::DataS { block, value });
                self.send(
                    dir,
                    ClientKind::Directory,
                    CohMsg::OwnerData {
                        block,
                        value,
                        dirty: true,
                    },
                );
            }
            return;
        }

        let Some(line) = self.lines.get(&block).copied() else {
            // Silent clean eviction beat the directory's knowledge.
            self.stats.forward_misses.incr();
            self.send(
                dir,
                ClientKind::Directory,
                CohMsg::FwdMiss {
                    block,
                    was_getx: is_getx,
                    requester,
                },
            );
            return;
        };
        let value = line.value;
        let dirty = line.dirty();
        self.stats.forwards_served.incr();
        if is_getx {
            self.lines.remove(&block);
            self.send(requester, rkind, CohMsg::DataM { block, value });
            self.send(dir, ClientKind::Directory, CohMsg::AckX { block });
        } else {
            // Demote to shared; the dirty copy is surrendered to the LLC.
            let l = self.lines.get_mut(&block).expect("present above");
            if l.l1.present() {
                l.l1 = LineState::S;
            }
            if l.ni.present() {
                l.ni = LineState::S;
            }
            self.send(requester, rkind, CohMsg::DataS { block, value });
            self.send(
                dir,
                ClientKind::Directory,
                CohMsg::OwnerData {
                    block,
                    value,
                    dirty,
                },
            );
        }
        let _ = now;
    }

    /// Evict LRU stable lines when over capacity.
    fn enforce_capacity(&mut self) {
        let cap = self.cfg.l1_blocks
            + if self.has_ni_cache {
                self.cfg.ni_cache_blocks
            } else {
                0
            };
        while self.lines.len() > cap {
            let victim = self
                .lines
                .iter()
                .filter(|(b, _)| !self.mshrs.contains_key(b) && !self.writebacks.contains_key(b))
                .min_by_key(|(_, l)| l.lru)
                .map(|(b, l)| (*b, *l));
            let Some((block, line)) = victim else { return };
            self.lines.remove(&block);
            if line.dirty() {
                self.stats.writebacks.incr();
                self.writebacks.insert(
                    block,
                    Writeback {
                        value: line.value,
                        surrendered: false,
                    },
                );
                let dir = self.dir_of(block);
                self.send(
                    dir,
                    ClientKind::Directory,
                    CohMsg::PutM {
                        block,
                        value: line.value,
                    },
                );
            }
            // Clean lines evict silently (inexact, non-notifying directory).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn home(_: BlockAddr, _: u32) -> NocNode {
        NocNode::tile(0, 0)
    }

    fn complex() -> CacheComplex {
        CacheComplex::new(
            CoherenceConfig::default(),
            NocNode::tile(1, 1),
            true,
            home,
            64,
        )
    }

    fn load(block: u64, tag: u64, origin: AccessOrigin) -> Access {
        Access {
            origin,
            kind: AccessKind::Load,
            block: BlockAddr(block),
            store_value: 0,
            tag,
        }
    }

    fn store(block: u64, value: u64, tag: u64, origin: AccessOrigin) -> Access {
        Access {
            origin,
            kind: AccessKind::Store,
            block: BlockAddr(block),
            store_value: value,
            tag,
        }
    }

    /// Run `cx` forward until a completion appears or `limit` cycles pass.
    fn run_until_completion(
        cx: &mut CacheComplex,
        mut now: Cycle,
        limit: u64,
    ) -> (Completion, Cycle) {
        let start = now;
        loop {
            cx.tick(now);
            if let Some(c) = cx.pop_completion() {
                return (c, now);
            }
            now += 1;
            assert!(now.0 < start.0 + limit, "no completion within {limit}");
        }
    }

    #[test]
    fn cold_load_issues_gets() {
        let mut cx = complex();
        cx.submit(Cycle(0), load(5, 1, AccessOrigin::Core)).unwrap();
        cx.tick(Cycle(3));
        let e = cx.pop_egress().expect("miss egress");
        assert_eq!(
            e.msg,
            CohMsg::GetS {
                block: BlockAddr(5)
            }
        );
        // Fill with exclusive data; completion carries the value.
        cx.deliver(
            Cycle(20),
            CohMsg::DataE {
                block: BlockAddr(5),
                value: 77,
                acks: 0,
            },
        );
        let (c, _) = run_until_completion(&mut cx, Cycle(20), 10);
        assert_eq!(c.value, 77);
        // Next load hits in 3 cycles.
        cx.submit(Cycle(30), load(5, 2, AccessOrigin::Core))
            .unwrap();
        let (c2, at) = run_until_completion(&mut cx, Cycle(30), 10);
        assert_eq!(c2.value, 77);
        assert_eq!(at, Cycle(33));
        assert_eq!(cx.stats().hits.get(), 1);
    }

    #[test]
    fn store_miss_issues_getx_and_waits_for_acks() {
        let mut cx = complex();
        cx.submit(Cycle(0), store(9, 42, 1, AccessOrigin::Core))
            .unwrap();
        cx.tick(Cycle(3));
        assert_eq!(
            cx.pop_egress().unwrap().msg,
            CohMsg::GetX {
                block: BlockAddr(9)
            }
        );
        // Data arrives expecting 2 acks: not complete yet.
        cx.deliver(
            Cycle(10),
            CohMsg::DataE {
                block: BlockAddr(9),
                value: 0,
                acks: 2,
            },
        );
        cx.tick(Cycle(11));
        assert!(cx.pop_completion().is_none());
        cx.deliver(
            Cycle(12),
            CohMsg::InvAck {
                block: BlockAddr(9),
            },
        );
        cx.tick(Cycle(13));
        assert!(cx.pop_completion().is_none());
        cx.deliver(
            Cycle(14),
            CohMsg::InvAck {
                block: BlockAddr(9),
            },
        );
        let (c, _) = run_until_completion(&mut cx, Cycle(14), 10);
        assert_eq!(c.value, 42);
        let (_, _, dirty) = cx.probe(BlockAddr(9));
        assert!(dirty);
    }

    #[test]
    fn acks_before_data_do_not_complete_early() {
        let mut cx = complex();
        cx.submit(Cycle(0), store(9, 42, 1, AccessOrigin::Core))
            .unwrap();
        cx.tick(Cycle(3));
        cx.pop_egress().unwrap();
        cx.deliver(
            Cycle(5),
            CohMsg::InvAck {
                block: BlockAddr(9),
            },
        );
        cx.tick(Cycle(6));
        assert!(cx.pop_completion().is_none());
        cx.deliver(
            Cycle(8),
            CohMsg::DataE {
                block: BlockAddr(9),
                value: 0,
                acks: 1,
            },
        );
        let (c, _) = run_until_completion(&mut cx, Cycle(8), 10);
        assert_eq!(c.value, 42);
    }

    #[test]
    fn internal_transfer_moves_wq_block_to_ni_without_directory() {
        let mut cx = complex();
        // Core fills and dirties the WQ block.
        cx.submit(Cycle(0), store(3, 100, 1, AccessOrigin::Core))
            .unwrap();
        cx.tick(Cycle(3));
        cx.pop_egress().unwrap();
        cx.deliver(
            Cycle(5),
            CohMsg::DataE {
                block: BlockAddr(3),
                value: 0,
                acks: 0,
            },
        );
        run_until_completion(&mut cx, Cycle(5), 10);
        // NI polls the WQ block: internal transfer, no egress.
        cx.submit(Cycle(20), load(3, 2, AccessOrigin::Ni)).unwrap();
        let (c, at) = run_until_completion(&mut cx, Cycle(20), 20);
        assert_eq!(c.value, 100);
        // 1 (NI tag) + 5 (transfer) cycles.
        assert_eq!(at, Cycle(26));
        assert!(cx.pop_egress().is_none(), "no directory traffic");
        assert_eq!(cx.stats().internal_transfers.get(), 1);
    }

    #[test]
    fn owned_state_serves_core_poll_of_dirty_cq_block() {
        let mut cx = complex();
        // NI fills and dirties the CQ block (writing a completion).
        cx.submit(Cycle(0), store(4, 7, 1, AccessOrigin::Ni))
            .unwrap();
        cx.tick(Cycle(1));
        cx.pop_egress().unwrap();
        cx.deliver(
            Cycle(3),
            CohMsg::DataE {
                block: BlockAddr(4),
                value: 0,
                acks: 0,
            },
        );
        run_until_completion(&mut cx, Cycle(3), 10);
        // Core polls: Owned fast path gives a clean copy, NI keeps O.
        cx.submit(Cycle(10), load(4, 2, AccessOrigin::Core))
            .unwrap();
        let (c, _) = run_until_completion(&mut cx, Cycle(10), 20);
        assert_eq!(c.value, 7);
        assert!(cx.ni_holds_owned(BlockAddr(4)));
        assert!(cx.pop_egress().is_none(), "no writeback with Owned state");
        assert_eq!(cx.stats().owned_fast_paths.get(), 1);
    }

    #[test]
    fn without_owned_state_core_poll_forces_writeback() {
        let cfg = CoherenceConfig {
            ni_owned_state: false,
            ..CoherenceConfig::default()
        };
        let mut cx = CacheComplex::new(cfg, NocNode::tile(1, 1), true, home, 64);
        cx.submit(Cycle(0), store(4, 7, 1, AccessOrigin::Ni))
            .unwrap();
        cx.tick(Cycle(1));
        cx.pop_egress().unwrap();
        cx.deliver(
            Cycle(3),
            CohMsg::DataE {
                block: BlockAddr(4),
                value: 0,
                acks: 0,
            },
        );
        run_until_completion(&mut cx, Cycle(3), 10);
        cx.submit(Cycle(10), load(4, 2, AccessOrigin::Core))
            .unwrap();
        // The poll triggers a PutM instead of completing locally.
        let mut now = Cycle(10);
        let put = loop {
            cx.tick(now);
            if let Some(e) = cx.pop_egress() {
                break e;
            }
            now += 1;
            assert!(now.0 < 50);
        };
        assert!(matches!(put.msg, CohMsg::PutM { value: 7, .. }));
        assert_eq!(cx.stats().writebacks.get(), 1);
    }

    #[test]
    fn fwd_gets_demotes_and_refreshes_llc() {
        let mut cx = complex();
        cx.submit(Cycle(0), store(6, 55, 1, AccessOrigin::Core))
            .unwrap();
        cx.tick(Cycle(3));
        cx.pop_egress().unwrap();
        cx.deliver(
            Cycle(5),
            CohMsg::DataE {
                block: BlockAddr(6),
                value: 0,
                acks: 0,
            },
        );
        run_until_completion(&mut cx, Cycle(5), 10);
        let peer = NocNode::tile(3, 3);
        cx.deliver(
            Cycle(20),
            CohMsg::FwdGetS {
                block: BlockAddr(6),
                requester: peer,
                rkind: ClientKind::Cache,
            },
        );
        cx.tick(Cycle(21));
        let d = cx.pop_egress().unwrap();
        assert_eq!(d.dst, peer);
        assert_eq!(
            d.msg,
            CohMsg::DataS {
                block: BlockAddr(6),
                value: 55
            }
        );
        let od = cx.pop_egress().unwrap();
        assert_eq!(
            od.msg,
            CohMsg::OwnerData {
                block: BlockAddr(6),
                value: 55,
                dirty: true
            }
        );
        let (l1, _, dirty) = cx.probe(BlockAddr(6));
        assert!(l1);
        assert!(!dirty, "demoted to clean shared");
    }

    #[test]
    fn fwd_getx_surrenders_ownership() {
        let mut cx = complex();
        cx.submit(Cycle(0), store(6, 55, 1, AccessOrigin::Core))
            .unwrap();
        cx.tick(Cycle(3));
        cx.pop_egress().unwrap();
        cx.deliver(
            Cycle(5),
            CohMsg::DataE {
                block: BlockAddr(6),
                value: 0,
                acks: 0,
            },
        );
        run_until_completion(&mut cx, Cycle(5), 10);
        let peer = NocNode::tile(3, 3);
        cx.deliver(
            Cycle(20),
            CohMsg::FwdGetX {
                block: BlockAddr(6),
                requester: peer,
                rkind: ClientKind::Cache,
            },
        );
        cx.tick(Cycle(21));
        assert_eq!(
            cx.pop_egress().unwrap().msg,
            CohMsg::DataM {
                block: BlockAddr(6),
                value: 55
            }
        );
        assert_eq!(
            cx.pop_egress().unwrap().msg,
            CohMsg::AckX {
                block: BlockAddr(6)
            }
        );
        let (l1, ni, _) = cx.probe(BlockAddr(6));
        assert!(!l1 && !ni);
    }

    #[test]
    fn fwd_to_absent_block_reports_miss() {
        let mut cx = complex();
        let peer = NocNode::tile(3, 3);
        cx.deliver(
            Cycle(0),
            CohMsg::FwdGetS {
                block: BlockAddr(1),
                requester: peer,
                rkind: ClientKind::Cache,
            },
        );
        cx.tick(Cycle(1));
        let e = cx.pop_egress().unwrap();
        assert_eq!(
            e.msg,
            CohMsg::FwdMiss {
                block: BlockAddr(1),
                was_getx: false,
                requester: peer
            }
        );
        assert_eq!(cx.stats().forward_misses.get(), 1);
    }

    #[test]
    fn inv_acks_even_when_absent_and_poisons_pending_fill() {
        let mut cx = complex();
        let req = NocNode::tile(2, 2);
        cx.deliver(
            Cycle(0),
            CohMsg::Inv {
                block: BlockAddr(8),
                ack_to: req,
                akind: ClientKind::Cache,
            },
        );
        cx.tick(Cycle(1));
        let e = cx.pop_egress().unwrap();
        assert_eq!(e.dst, req);
        assert_eq!(
            e.msg,
            CohMsg::InvAck {
                block: BlockAddr(8)
            }
        );

        // Pending GetS invalidated mid-fill: data satisfies the load but the
        // line is not installed.
        cx.submit(Cycle(10), load(9, 1, AccessOrigin::Core))
            .unwrap();
        cx.tick(Cycle(13));
        cx.pop_egress().unwrap();
        cx.deliver(
            Cycle(15),
            CohMsg::Inv {
                block: BlockAddr(9),
                ack_to: req,
                akind: ClientKind::Cache,
            },
        );
        cx.tick(Cycle(16));
        cx.pop_egress().unwrap(); // the InvAck
        cx.deliver(
            Cycle(18),
            CohMsg::DataS {
                block: BlockAddr(9),
                value: 5,
            },
        );
        let (c, _) = run_until_completion(&mut cx, Cycle(18), 10);
        assert_eq!(c.value, 5);
        let (l1, ni, _) = cx.probe(BlockAddr(9));
        assert!(!l1 && !ni, "line must not be installed after a raced Inv");
    }

    #[test]
    fn forward_during_writeback_serves_from_wb_buffer() {
        let mut cfg = CoherenceConfig {
            l1_blocks: 1,
            ..CoherenceConfig::default()
        };
        cfg.ni_cache_blocks = 0;
        let mut cx = CacheComplex::new(cfg, NocNode::tile(1, 1), false, home, 64);
        // Fill and dirty block 1.
        cx.submit(Cycle(0), store(1, 11, 1, AccessOrigin::Core))
            .unwrap();
        cx.tick(Cycle(3));
        cx.pop_egress().unwrap();
        cx.deliver(
            Cycle(5),
            CohMsg::DataE {
                block: BlockAddr(1),
                value: 0,
                acks: 0,
            },
        );
        run_until_completion(&mut cx, Cycle(5), 10);
        // Fill block 2: evicts block 1 (PutM).
        cx.submit(Cycle(20), store(2, 22, 2, AccessOrigin::Core))
            .unwrap();
        cx.tick(Cycle(23));
        cx.pop_egress().unwrap(); // GetX for block 2
        cx.deliver(
            Cycle(25),
            CohMsg::DataE {
                block: BlockAddr(2),
                value: 0,
                acks: 0,
            },
        );
        run_until_completion(&mut cx, Cycle(25), 10);
        let wb = cx.pop_egress().expect("eviction writeback");
        assert!(matches!(wb.msg, CohMsg::PutM { value: 11, .. }));
        // A FwdGetX races the PutM: served from the writeback buffer.
        let peer = NocNode::tile(4, 4);
        cx.deliver(
            Cycle(30),
            CohMsg::FwdGetX {
                block: BlockAddr(1),
                requester: peer,
                rkind: ClientKind::Cache,
            },
        );
        cx.tick(Cycle(31));
        assert_eq!(
            cx.pop_egress().unwrap().msg,
            CohMsg::DataM {
                block: BlockAddr(1),
                value: 11
            }
        );
        assert_eq!(
            cx.pop_egress().unwrap().msg,
            CohMsg::AckX {
                block: BlockAddr(1)
            }
        );
        // The stale PutAck still clears the writeback entry.
        cx.deliver(
            Cycle(40),
            CohMsg::PutAck {
                block: BlockAddr(1),
            },
        );
        assert!(cx.is_quiescent() || !cx.writebacks.contains_key(&BlockAddr(1)));
    }

    #[test]
    fn forwards_during_transient_are_deferred() {
        let mut cx = complex();
        cx.submit(Cycle(0), store(7, 1, 1, AccessOrigin::Core))
            .unwrap();
        cx.tick(Cycle(3));
        cx.pop_egress().unwrap();
        // Forward arrives before our fill: deferred.
        let peer = NocNode::tile(5, 5);
        cx.deliver(
            Cycle(4),
            CohMsg::FwdGetS {
                block: BlockAddr(7),
                requester: peer,
                rkind: ClientKind::Cache,
            },
        );
        cx.tick(Cycle(5));
        assert!(cx.pop_egress().is_none());
        // Fill lands; deferred forward is then served.
        cx.deliver(
            Cycle(6),
            CohMsg::DataE {
                block: BlockAddr(7),
                value: 0,
                acks: 0,
            },
        );
        run_until_completion(&mut cx, Cycle(6), 10);
        let d = cx.pop_egress().unwrap();
        assert_eq!(
            d.msg,
            CohMsg::DataS {
                block: BlockAddr(7),
                value: 1
            }
        );
    }

    #[test]
    fn mshr_exhaustion_backpressures() {
        let cfg = CoherenceConfig {
            l1_mshrs: 1,
            ..CoherenceConfig::default()
        };
        let mut cx = CacheComplex::new(cfg, NocNode::tile(1, 1), true, home, 64);
        cx.submit(Cycle(0), load(1, 1, AccessOrigin::Core)).unwrap();
        cx.tick(Cycle(3));
        assert!(cx.pop_egress().is_some());
        // Different block: MSHR full.
        assert!(cx.submit(Cycle(4), load(2, 2, AccessOrigin::Core)).is_err());
        // Same block: merges.
        assert!(cx.submit(Cycle(4), load(1, 3, AccessOrigin::Core)).is_ok());
    }

    #[test]
    fn store_merging_under_shared_fill_upgrades() {
        let mut cx = complex();
        cx.submit(Cycle(0), load(5, 1, AccessOrigin::Core)).unwrap();
        cx.tick(Cycle(3));
        cx.pop_egress().unwrap(); // GetS
                                  // A store joins the outstanding load.
        cx.submit(Cycle(4), store(5, 9, 2, AccessOrigin::Core))
            .unwrap();
        cx.tick(Cycle(7));
        // Shared fill: load completes, store must upgrade via GetX.
        cx.deliver(
            Cycle(8),
            CohMsg::DataS {
                block: BlockAddr(5),
                value: 3,
            },
        );
        let (c, _) = run_until_completion(&mut cx, Cycle(8), 10);
        assert_eq!(c.tag, 1);
        assert_eq!(c.value, 3);
        // The retried store issues a GetX.
        let mut now = Cycle(9);
        let e = loop {
            cx.tick(now);
            if let Some(e) = cx.pop_egress() {
                break e;
            }
            now += 1;
            assert!(now.0 < 30);
        };
        assert_eq!(
            e.msg,
            CohMsg::GetX {
                block: BlockAddr(5)
            }
        );
        cx.deliver(
            now + 1,
            CohMsg::DataE {
                block: BlockAddr(5),
                value: 3,
                acks: 0,
            },
        );
        let (c2, _) = run_until_completion(&mut cx, now + 1, 10);
        assert_eq!(c2.tag, 2);
        assert_eq!(c2.value, 9);
    }
}
