//! Coherence subsystem configuration (Table 2 defaults).

/// Timing and sizing of the cache hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct CoherenceConfig {
    /// L1 hit latency in cycles, tag + data (Table 2: 3).
    pub l1_latency: u64,
    /// L1 capacity in blocks (Table 2: 32KB data / 64B = 512).
    pub l1_blocks: usize,
    /// L1 MSHR count (Table 2: 32).
    pub l1_mshrs: usize,
    /// NI cache capacity in blocks (holds QP entries; small).
    pub ni_cache_blocks: usize,
    /// Latency of the internal L1 back-side <-> NI cache path, cycles
    /// (the paper's "WQ/CQ entry transfer": 5).
    pub ni_transfer_latency: u64,
    /// Enable the NI-cache Owned state (§3.4). When disabled, a dirty NI
    /// block polled read-only by the core is first written back to the LLC —
    /// the slow path the Owned state exists to avoid (ablation A2).
    pub ni_owned_state: bool,
    /// LLC bank access latency in cycles (Table 2: 6).
    pub llc_latency: u64,
    /// LLC bank capacity in blocks (16MB / 64 banks / 64B = 4096).
    pub llc_bank_blocks: usize,
    /// LLC associativity (Table 2: 16).
    pub llc_ways: usize,
    /// Messages a directory bank can begin processing per cycle.
    pub llc_bank_throughput: u32,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig {
            l1_latency: 3,
            l1_blocks: 512,
            l1_mshrs: 32,
            ni_cache_blocks: 64,
            ni_transfer_latency: 5,
            ni_owned_state: true,
            llc_latency: 6,
            llc_bank_blocks: 4096,
            llc_ways: 16,
            llc_bank_throughput: 1,
        }
    }
}

impl CoherenceConfig {
    /// Number of sets in one LLC bank.
    pub fn llc_sets(&self) -> usize {
        (self.llc_bank_blocks / self.llc_ways).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let c = CoherenceConfig::default();
        assert_eq!(c.l1_latency, 3);
        assert_eq!(c.l1_blocks, 512); // 32KB / 64B
        assert_eq!(c.l1_mshrs, 32);
        assert_eq!(c.llc_latency, 6);
        assert_eq!(c.llc_ways, 16);
        assert_eq!(c.llc_bank_blocks, 4096); // 16MB / 64 banks / 64B
        assert_eq!(c.llc_sets(), 256);
        assert!(c.ni_owned_state);
        assert_eq!(c.ni_transfer_latency, 5);
    }
}
