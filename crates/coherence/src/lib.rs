//! # ni-coherence — directory-based MESI coherence for the rackni simulator
//!
//! Implements the on-chip coherence substrate the paper's NI designs live
//! in: a 3-hop, invalidation-based, non-inclusive MESI protocol with an
//! inexact (non-notifying) directory distributed across the LLC banks
//! (Table 2), plus the paper's NI-cache integration (§3.4):
//!
//! * [`complex::CacheComplex`] — a tile's private L1 paired with an optional
//!   NI cache attached to the back side of the L1. The pair appears to the
//!   directory as a *single logical sharer*; blocks migrate between the two
//!   structures over a 5-cycle internal path without any directory traffic.
//!   The NI cache controller implements the paper's extra **Owned** state so
//!   a dirty CQ block can be forwarded clean to the polling core while the
//!   NI keeps the dirty copy (§3.4). The same type, with no core attached,
//!   models the NIedge cache that participates in coherence as its own tile.
//! * [`directory::DirectoryBank`] — one LLC bank plus its directory slice
//!   and memory-controller port. The directory *blocks* per cache block:
//!   requests racing an open transaction queue behind it, which preserves
//!   the exact message sequences of Fig. 2 on the critical path.
//! * A **non-caching access path** (`NcRead`/`NcWrite`) used by the RMC data
//!   pipelines (RRPP reads, RCP writes) that bypass the NI caches per §3.1.
//!
//! Controllers are interconnect-agnostic: they consume [`msg::CohMsg`]s and
//! emit [`msg::Egress`] records; the SoC layer maps those onto NOC packets
//! (or a zero-latency fabric in the protocol unit tests).

#![warn(missing_docs)]

pub mod complex;
pub mod config;
pub mod directory;
pub mod llc;
pub mod msg;

pub use complex::{Access, AccessKind, AccessOrigin, CacheComplex, Completion};
pub use config::CoherenceConfig;
pub use directory::DirectoryBank;
pub use llc::LlcArray;
pub use msg::{wire_of, ClientKind, CohMsg, Egress, WireMeta};
