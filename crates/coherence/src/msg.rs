//! Coherence protocol messages and their wire metadata.

use ni_mem::BlockAddr;
use ni_noc::{flits_for_payload, MessageClass, NocNode};

/// Header bytes of an on-chip protocol message.
const HDR_BYTES: u32 = 8;
/// Payload bytes of a data-bearing message (one cache block).
const DATA_BYTES: u32 = 64;

/// What kind of protocol client a message is addressed to.
///
/// Several block types share a physical endpoint (a tile hosts both a cache
/// complex and a directory bank; an NI block hosts an RRPP, a backend and
/// possibly an edge NI cache), so messages carry their addressee kind for
/// dispatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClientKind {
    /// A cache complex (L1 + NI cache pair, or an edge NI cache).
    Cache,
    /// A directory/LLC bank.
    Directory,
    /// A non-caching NI data consumer (RRPP or RGP/RCP backend).
    NiData,
}

/// Coherence protocol messages.
///
/// Third-party references (`requester`, `ack_to`) carry the [`NocNode`] of
/// the client concerned plus its [`ClientKind`]; the sending/receiving
/// nodes are carried by the interconnect envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CohMsg {
    // ---- requests: cache complex -> directory ----
    /// Read-only copy request (the paper's `GetRO`).
    GetS {
        /// Requested block.
        block: BlockAddr,
    },
    /// Exclusive copy request (the paper's `GetX`).
    GetX {
        /// Requested block.
        block: BlockAddr,
    },
    /// Dirty writeback on eviction.
    PutM {
        /// Evicted block.
        block: BlockAddr,
        /// Its dirty value token.
        value: u64,
    },

    // ---- forwards: directory -> owner / sharers ----
    /// Owner must send a shared copy to `requester` and refresh the LLC.
    FwdGetS {
        /// Block concerned.
        block: BlockAddr,
        /// Who receives the shared copy.
        requester: NocNode,
        /// Client kind of `requester`.
        rkind: ClientKind,
    },
    /// Owner must transfer the block exclusively to `requester`.
    FwdGetX {
        /// Block concerned.
        block: BlockAddr,
        /// Who receives ownership.
        requester: NocNode,
        /// Client kind of `requester`.
        rkind: ClientKind,
    },
    /// Sharer must invalidate and acknowledge to `ack_to`.
    Inv {
        /// Block to invalidate.
        block: BlockAddr,
        /// Who collects the acknowledgment.
        ack_to: NocNode,
        /// Client kind of `ack_to`.
        akind: ClientKind,
    },

    // ---- responses ----
    /// Exclusive data grant from the directory; the requester must collect
    /// `acks` invalidation acknowledgments before using the block (the
    /// paper's `MissNotify` semantics, Fig. 2a).
    DataE {
        /// Granted block.
        block: BlockAddr,
        /// Its value token.
        value: u64,
        /// Invalidation acks the requester must collect before use.
        acks: u32,
    },
    /// Shared data (from the directory or a forwarding owner).
    DataS {
        /// Granted block.
        block: BlockAddr,
        /// Its value token.
        value: u64,
    },
    /// Exclusive (possibly dirty) data from the previous owner on FwdGetX.
    DataM {
        /// Transferred block.
        block: BlockAddr,
        /// Its value token.
        value: u64,
    },
    /// Invalidation acknowledgment (the paper's `InvACK`).
    InvAck {
        /// Invalidated block.
        block: BlockAddr,
    },
    /// Owner's copy back to the directory after FwdGetS, keeping the LLC up
    /// to date (Fig. 2b's closing message).
    OwnerData {
        /// Block copied back.
        block: BlockAddr,
        /// Its value token.
        value: u64,
        /// True when the owner's copy was modified.
        dirty: bool,
    },
    /// Ownership-transfer acknowledgment to the directory after FwdGetX.
    AckX {
        /// Transferred block.
        block: BlockAddr,
    },
    /// The presumed owner no longer holds the block (legal with an inexact,
    /// non-notifying directory after a silent clean eviction).
    FwdMiss {
        /// Block the forward concerned.
        block: BlockAddr,
        /// True when the missed forward was a FwdGetX.
        was_getx: bool,
        /// Original requester awaiting data.
        requester: NocNode,
    },
    /// Writeback acknowledgment.
    PutAck {
        /// Acknowledged block.
        block: BlockAddr,
    },

    // ---- non-caching NI data path (§3.1: NI data accesses bypass the NI cache) ----
    /// Non-caching block read (RRPP servicing a remote request).
    NcRead {
        /// Block to read.
        block: BlockAddr,
    },
    /// Non-caching full-block write (RCP storing remote data locally).
    NcWrite {
        /// Block to write.
        block: BlockAddr,
        /// Value token to store.
        value: u64,
    },
    /// Reply to `NcRead`.
    NcData {
        /// Block read.
        block: BlockAddr,
        /// Its value token.
        value: u64,
    },
    /// Reply to `NcWrite`.
    NcWAck {
        /// Block written.
        block: BlockAddr,
    },
}

impl CohMsg {
    /// The cache block this message concerns.
    pub fn block(&self) -> BlockAddr {
        match *self {
            CohMsg::GetS { block }
            | CohMsg::GetX { block }
            | CohMsg::PutM { block, .. }
            | CohMsg::FwdGetS { block, .. }
            | CohMsg::FwdGetX { block, .. }
            | CohMsg::Inv { block, .. }
            | CohMsg::DataE { block, .. }
            | CohMsg::DataS { block, .. }
            | CohMsg::DataM { block, .. }
            | CohMsg::InvAck { block }
            | CohMsg::OwnerData { block, .. }
            | CohMsg::AckX { block }
            | CohMsg::FwdMiss { block, .. }
            | CohMsg::PutAck { block }
            | CohMsg::NcRead { block }
            | CohMsg::NcWrite { block, .. }
            | CohMsg::NcData { block, .. }
            | CohMsg::NcWAck { block } => block,
        }
    }

    /// True for messages that carry a full cache block of data.
    pub fn carries_data(&self) -> bool {
        matches!(
            self,
            CohMsg::PutM { .. }
                | CohMsg::DataE { .. }
                | CohMsg::DataS { .. }
                | CohMsg::DataM { .. }
                | CohMsg::OwnerData { .. }
                | CohMsg::NcWrite { .. }
                | CohMsg::NcData { .. }
        )
    }
}

/// Wire-level metadata for a message: virtual network, length and the
/// directory-sourced marker used by the modified CDR routing class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireMeta {
    /// Virtual network.
    pub class: MessageClass,
    /// Packet length in flits.
    pub flits: u8,
    /// True when the message originates at a directory/LLC bank.
    pub dir_sourced: bool,
}

/// Compute the wire metadata of a message, given whether the *sender* is a
/// directory bank (directory-sourced traffic routes YX under the paper's
/// modified CDR, §4.3).
pub fn wire_of(msg: &CohMsg, from_directory: bool) -> WireMeta {
    let data = msg.carries_data();
    let flits = if data {
        flits_for_payload(DATA_BYTES, HDR_BYTES)
    } else {
        flits_for_payload(0, HDR_BYTES)
    };
    let class = match msg {
        CohMsg::GetS { .. } | CohMsg::GetX { .. } | CohMsg::PutM { .. } => MessageClass::CohReq,
        CohMsg::FwdGetS { .. } | CohMsg::FwdGetX { .. } | CohMsg::Inv { .. } => {
            MessageClass::CohFwd
        }
        CohMsg::NcRead { .. } | CohMsg::NcWrite { .. } => MessageClass::MemReq,
        CohMsg::NcData { .. } | CohMsg::NcWAck { .. } => MessageClass::MemResp,
        _ => MessageClass::CohResp,
    };
    WireMeta {
        class,
        flits,
        dir_sourced: from_directory,
    }
}

/// An outbound message with its destination, produced by a controller and
/// shipped by whatever fabric the harness provides.
#[derive(Clone, Copy, Debug)]
pub struct Egress {
    /// Destination endpoint.
    pub dst: NocNode,
    /// Which client at that endpoint consumes the message.
    pub kind: ClientKind,
    /// The protocol message.
    pub msg: CohMsg,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_accessor_covers_all_variants() {
        let b = BlockAddr(7);
        let msgs = [
            CohMsg::GetS { block: b },
            CohMsg::GetX { block: b },
            CohMsg::PutM { block: b, value: 1 },
            CohMsg::FwdGetS {
                block: b,
                requester: NocNode::tile(0, 0),
                rkind: ClientKind::Cache,
            },
            CohMsg::Inv {
                block: b,
                ack_to: NocNode::tile(0, 0),
                akind: ClientKind::Cache,
            },
            CohMsg::DataE {
                block: b,
                value: 0,
                acks: 2,
            },
            CohMsg::InvAck { block: b },
            CohMsg::NcRead { block: b },
            CohMsg::NcWAck { block: b },
        ];
        for m in msgs {
            assert_eq!(m.block(), b);
        }
    }

    #[test]
    fn data_messages_are_five_flits_control_one() {
        let b = BlockAddr(0);
        assert_eq!(wire_of(&CohMsg::GetX { block: b }, false).flits, 1);
        assert_eq!(
            wire_of(
                &CohMsg::DataE {
                    block: b,
                    value: 0,
                    acks: 0
                },
                true
            )
            .flits,
            5
        );
        assert_eq!(
            wire_of(&CohMsg::PutM { block: b, value: 0 }, false).flits,
            5
        );
        assert_eq!(wire_of(&CohMsg::InvAck { block: b }, false).flits, 1);
    }

    #[test]
    fn classes_separate_requests_forwards_responses() {
        let b = BlockAddr(0);
        assert_eq!(
            wire_of(&CohMsg::GetS { block: b }, false).class,
            MessageClass::CohReq
        );
        assert_eq!(
            wire_of(
                &CohMsg::Inv {
                    block: b,
                    ack_to: NocNode::tile(0, 0),
                    akind: ClientKind::Cache,
                },
                true
            )
            .class,
            MessageClass::CohFwd
        );
        assert_eq!(
            wire_of(&CohMsg::InvAck { block: b }, false).class,
            MessageClass::CohResp
        );
        assert_eq!(
            wire_of(&CohMsg::NcRead { block: b }, false).class,
            MessageClass::MemReq
        );
        assert_eq!(
            wire_of(&CohMsg::NcData { block: b, value: 0 }, true).class,
            MessageClass::MemResp
        );
    }

    #[test]
    fn dir_sourced_flag_follows_sender() {
        let b = BlockAddr(0);
        assert!(wire_of(&CohMsg::DataS { block: b, value: 0 }, true).dir_sourced);
        assert!(!wire_of(&CohMsg::DataS { block: b, value: 0 }, false).dir_sourced);
    }
}
