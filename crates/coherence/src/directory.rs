//! Directory + LLC bank controller.
//!
//! One instance per LLC bank: in the mesh organization that is one per tile
//! (Table 2: "1 bank/tile"), in NOC-Out one per LLC tile. Each bank owns the
//! directory slice and data array for the blocks that home to it under
//! static block interleaving, plus a port to its memory controller.
//!
//! The directory is *blocking*: while a transaction is open on a block,
//! later requests for that block queue behind it in arrival order. It is
//! also *inexact and non-notifying* (Table 2): clean copies may be dropped
//! silently by caches, so the sharer/owner bookkeeping over-approximates and
//! the protocol tolerates `InvAck`s from non-holders and `FwdMiss` replies
//! from presumed owners.

use std::collections::{BTreeMap, VecDeque};

use ni_engine::{Counter, Cycle, DelayLine};
use ni_mem::BlockAddr;
use ni_noc::NocNode;

use crate::config::CoherenceConfig;
use crate::llc::LlcArray;
use crate::msg::{ClientKind, CohMsg, Egress};

/// Stable directory state for one block.
#[derive(Clone, Debug, PartialEq, Eq)]
enum DirState {
    /// One or more read-only copies.
    Shared(Vec<NocNode>),
    /// A single writable (or silently-clean) copy.
    Exclusive(NocNode),
}

/// What a memory fill will be used for once it lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FillKind {
    GetS,
    GetX { acks: u32 },
    NcRead,
}

/// Open transaction on a block.
#[derive(Clone, Debug)]
enum Trans {
    /// Waiting for a memory fill.
    MemFill { requester: NocNode, kind: FillKind },
    /// FwdGetS outstanding; waiting for the owner's `OwnerData`.
    AwaitOwnerData {
        owner: NocNode,
        requester: NocNode,
        /// Requester is a non-caching client (RRPP): not added as a sharer.
        nc: bool,
    },
    /// FwdGetX outstanding; waiting for `AckX`.
    AwaitAckX { requester: NocNode },
    /// Non-caching write invalidating sharers; acks return to this bank.
    NcWriteInv {
        requester: NocNode,
        value: u64,
        pending: u32,
    },
    /// Non-caching write displacing an exclusive owner.
    NcWriteOwner {
        requester: NocNode,
        value: u64,
        got_data: bool,
        got_ack: bool,
    },
}

#[derive(Debug)]
struct Busy {
    trans: Trans,
    /// Requests that arrived while the transaction was open.
    queued: VecDeque<(NocNode, CohMsg)>,
}

/// Counters exposed by a bank.
#[derive(Clone, Copy, Debug, Default)]
pub struct DirStats {
    /// Requests processed.
    pub requests: Counter,
    /// Requests that had to queue behind an open transaction.
    pub blocked: Counter,
    /// Fills requested from memory.
    pub mem_fills: Counter,
    /// Dirty LLC victims written back to memory.
    pub llc_writebacks: Counter,
    /// 3-hop forwards issued.
    pub forwards: Counter,
    /// Invalidations issued.
    pub invalidations: Counter,
}

/// One directory + LLC bank.
#[derive(Debug)]
pub struct DirectoryBank {
    cfg: CoherenceConfig,
    /// Our interconnect identity.
    me: NocNode,
    /// Memory controller servicing this bank.
    mc: NocNode,
    /// Per-block protocol state. Keyed access on the protocol paths, but
    /// `BTreeMap` keeps diagnostics and any future sweep deterministic.
    dir: BTreeMap<BlockAddr, DirState>,
    busy: BTreeMap<BlockAddr, Busy>,
    llc: LlcArray,
    inbox: VecDeque<(NocNode, CohMsg)>,
    /// Unblocked requests replayed ahead of new arrivals.
    replay: VecDeque<(NocNode, CohMsg)>,
    outbox: DelayLine<Egress>,
    egress: VecDeque<Egress>,
    stats: DirStats,
}

impl DirectoryBank {
    /// Create a bank identified as `me`, using memory controller `mc`.
    pub fn new(cfg: CoherenceConfig, me: NocNode, mc: NocNode) -> DirectoryBank {
        let llc = LlcArray::new(cfg.llc_sets().next_power_of_two(), cfg.llc_ways);
        DirectoryBank {
            cfg,
            me,
            mc,
            dir: BTreeMap::new(),
            busy: BTreeMap::new(),
            llc,
            inbox: VecDeque::new(),
            replay: VecDeque::new(),
            outbox: DelayLine::new(),
            egress: VecDeque::new(),
            stats: DirStats::default(),
        }
    }

    /// Our interconnect identity.
    pub fn node(&self) -> NocNode {
        self.me
    }

    /// Statistics.
    pub fn stats(&self) -> &DirStats {
        &self.stats
    }

    /// True when no transaction is open and all queues are empty.
    pub fn is_quiescent(&self) -> bool {
        self.busy.is_empty()
            && self.inbox.is_empty()
            && self.replay.is_empty()
            && self.outbox.is_empty()
            && self.egress.is_empty()
    }

    /// Earliest cycle (>= `now`) at which this bank does anything on its
    /// own. Queued or replayed requests and undrained egress demand a tick
    /// immediately; otherwise the only self-driven work is the delayed
    /// outbox. `None` means the bank is idle until the next
    /// [`DirectoryBank::deliver`] — open `busy` transactions wait on
    /// external messages and do not keep it ticking.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.inbox.is_empty() || !self.replay.is_empty() || !self.egress.is_empty() {
            return Some(now);
        }
        self.outbox.next_ready_at()
    }

    /// Deliver a message from the interconnect.
    pub fn deliver(&mut self, _now: Cycle, from: NocNode, msg: CohMsg) {
        self.inbox.push_back((from, msg));
    }

    /// Advance one cycle: service up to `llc_bank_throughput` messages and
    /// release due outputs.
    pub fn tick(&mut self, now: Cycle) {
        for _ in 0..self.cfg.llc_bank_throughput {
            let next = self.replay.pop_front().or_else(|| self.inbox.pop_front());
            let Some((from, msg)) = next else { break };
            self.process(now, from, msg);
        }
        while let Some(e) = self.outbox.pop_ready(now) {
            self.egress.push_back(e);
        }
    }

    /// Next outbound message, if any.
    pub fn pop_egress(&mut self) -> Option<Egress> {
        self.egress.pop_front()
    }

    /// Test/experiment visibility: the LLC bank's current copy of `block`,
    /// without disturbing LRU state.
    pub fn peek_llc(&self, block: BlockAddr) -> Option<u64> {
        self.llc.peek(block).map(|(value, _)| value)
    }

    /// Overwrite the LLC bank's resident copy of `block` in place (marking
    /// it dirty); `false` when the bank holds no copy. Bypasses timing —
    /// experiment setup only.
    pub fn poke_llc(&mut self, block: BlockAddr, value: u64) -> bool {
        self.llc.update_in_place(block, value)
    }

    /// Test/debug visibility: `(is_shared, is_exclusive, llc_has_data)`.
    pub fn probe(&self, block: BlockAddr) -> (bool, bool, bool) {
        match self.dir.get(&block) {
            Some(DirState::Shared(_)) => (true, false, self.llc.contains(block)),
            Some(DirState::Exclusive(_)) => (false, true, self.llc.contains(block)),
            None => (false, false, self.llc.contains(block)),
        }
    }

    // ---- internals -------------------------------------------------------

    fn send(&mut self, now: Cycle, dst: NocNode, kind: ClientKind, msg: CohMsg) {
        self.outbox
            .push_after(now, self.cfg.llc_latency, Egress { dst, kind, msg });
    }

    /// Install into the LLC, writing back any dirty victim to memory.
    fn llc_install(&mut self, now: Cycle, block: BlockAddr, value: u64, dirty: bool) {
        if let Some(victim) = self.llc.install(block, value, dirty) {
            self.stats.llc_writebacks.incr();
            self.send(
                now,
                self.mc,
                ClientKind::NiData,
                CohMsg::NcWrite {
                    block: victim.block,
                    value: victim.value,
                },
            );
        }
    }

    fn begin(&mut self, block: BlockAddr, trans: Trans) {
        let prev = self.busy.insert(
            block,
            Busy {
                trans,
                queued: VecDeque::new(),
            },
        );
        debug_assert!(prev.is_none(), "transaction already open on {block:?}");
    }

    /// Close the transaction on `block` and schedule queued requests.
    fn finish(&mut self, block: BlockAddr) {
        if let Some(b) = self.busy.remove(&block) {
            for q in b.queued {
                self.replay.push_back(q);
            }
        }
    }

    fn request_fill(&mut self, now: Cycle, block: BlockAddr, requester: NocNode, kind: FillKind) {
        self.stats.mem_fills.incr();
        self.send(now, self.mc, ClientKind::NiData, CohMsg::NcRead { block });
        self.begin(block, Trans::MemFill { requester, kind });
    }

    fn process(&mut self, now: Cycle, from: NocNode, msg: CohMsg) {
        let block = msg.block();
        let is_request = matches!(
            msg,
            CohMsg::GetS { .. }
                | CohMsg::GetX { .. }
                | CohMsg::PutM { .. }
                | CohMsg::NcRead { .. }
                | CohMsg::NcWrite { .. }
        );
        if is_request {
            if let Some(b) = self.busy.get_mut(&block) {
                self.stats.blocked.incr();
                b.queued.push_back((from, msg));
                return;
            }
            self.stats.requests.incr();
        }
        match msg {
            CohMsg::GetS { block } => self.on_gets(now, block, from),
            CohMsg::GetX { block } => self.on_getx(now, block, from),
            CohMsg::PutM { block, value } => self.on_putm(now, block, from, value),
            CohMsg::NcRead { block } => self.on_ncread(now, block, from),
            CohMsg::NcWrite { block, value } => self.on_ncwrite(now, block, from, value),
            CohMsg::OwnerData {
                block,
                value,
                dirty,
            } => self.on_owner_data(now, block, value, dirty),
            CohMsg::AckX { block } => self.on_ackx(now, block),
            CohMsg::FwdMiss {
                block,
                was_getx,
                requester,
            } => self.on_fwd_miss(now, block, was_getx, requester),
            CohMsg::InvAck { block } => self.on_dir_invack(now, block),
            CohMsg::DataM { block, .. } => self.on_dir_datam(now, block),
            CohMsg::NcData { block, value } => self.on_mem_data(now, block, value),
            CohMsg::NcWAck { .. } => { /* memory writeback ack: fire-and-forget */ }
            other => panic!("directory received unexpected message {other:?}"),
        }
    }

    fn on_gets(&mut self, now: Cycle, block: BlockAddr, r: NocNode) {
        match self.dir.get(&block).cloned() {
            None => {
                if let Some((value, _)) = self.llc.get(block) {
                    // MESI: grant Exclusive on a read when no one else holds it.
                    self.dir.insert(block, DirState::Exclusive(r));
                    self.send(
                        now,
                        r,
                        ClientKind::Cache,
                        CohMsg::DataE {
                            block,
                            value,
                            acks: 0,
                        },
                    );
                } else {
                    self.request_fill(now, block, r, FillKind::GetS);
                }
            }
            Some(DirState::Shared(mut set)) => {
                if let Some((value, _)) = self.llc.get(block) {
                    if !set.contains(&r) {
                        set.push(r);
                    }
                    self.dir.insert(block, DirState::Shared(set));
                    self.send(now, r, ClientKind::Cache, CohMsg::DataS { block, value });
                } else {
                    // LLC data evicted under the sharers: refetch.
                    self.request_fill(now, block, r, FillKind::GetS);
                }
            }
            Some(DirState::Exclusive(o)) if o == r => {
                // Owner lost its copy silently (clean) and asks again.
                if let Some((value, _)) = self.llc.get(block) {
                    self.send(
                        now,
                        r,
                        ClientKind::Cache,
                        CohMsg::DataE {
                            block,
                            value,
                            acks: 0,
                        },
                    );
                } else {
                    self.dir.remove(&block);
                    self.request_fill(now, block, r, FillKind::GetS);
                }
            }
            Some(DirState::Exclusive(o)) => {
                self.stats.forwards.incr();
                self.send(
                    now,
                    o,
                    ClientKind::Cache,
                    CohMsg::FwdGetS {
                        block,
                        requester: r,
                        rkind: ClientKind::Cache,
                    },
                );
                self.begin(
                    block,
                    Trans::AwaitOwnerData {
                        owner: o,
                        requester: r,
                        nc: false,
                    },
                );
            }
        }
    }

    fn on_getx(&mut self, now: Cycle, block: BlockAddr, r: NocNode) {
        match self.dir.get(&block).cloned() {
            None => {
                if let Some((value, _)) = self.llc.get(block) {
                    self.dir.insert(block, DirState::Exclusive(r));
                    self.send(
                        now,
                        r,
                        ClientKind::Cache,
                        CohMsg::DataE {
                            block,
                            value,
                            acks: 0,
                        },
                    );
                } else {
                    self.request_fill(now, block, r, FillKind::GetX { acks: 0 });
                }
            }
            Some(DirState::Shared(set)) => {
                let others: Vec<NocNode> = set.into_iter().filter(|n| *n != r).collect();
                let acks = others.len() as u32;
                for s in &others {
                    self.stats.invalidations.incr();
                    self.send(
                        now,
                        *s,
                        ClientKind::Cache,
                        CohMsg::Inv {
                            block,
                            ack_to: r,
                            akind: ClientKind::Cache,
                        },
                    );
                }
                if let Some((value, _)) = self.llc.get(block) {
                    self.dir.insert(block, DirState::Exclusive(r));
                    self.send(
                        now,
                        r,
                        ClientKind::Cache,
                        CohMsg::DataE { block, value, acks },
                    );
                } else {
                    self.request_fill(now, block, r, FillKind::GetX { acks });
                }
            }
            Some(DirState::Exclusive(o)) if o == r => {
                if let Some((value, _)) = self.llc.get(block) {
                    self.send(
                        now,
                        r,
                        ClientKind::Cache,
                        CohMsg::DataE {
                            block,
                            value,
                            acks: 0,
                        },
                    );
                } else {
                    self.dir.remove(&block);
                    self.request_fill(now, block, r, FillKind::GetX { acks: 0 });
                }
            }
            Some(DirState::Exclusive(o)) => {
                self.stats.forwards.incr();
                self.send(
                    now,
                    o,
                    ClientKind::Cache,
                    CohMsg::FwdGetX {
                        block,
                        requester: r,
                        rkind: ClientKind::Cache,
                    },
                );
                self.begin(block, Trans::AwaitAckX { requester: r });
            }
        }
    }

    fn on_putm(&mut self, now: Cycle, block: BlockAddr, from: NocNode, value: u64) {
        let is_owner = matches!(self.dir.get(&block), Some(DirState::Exclusive(o)) if *o == from);
        if is_owner {
            self.dir.remove(&block);
            self.llc_install(now, block, value, true);
        }
        // Stale PutM (ownership already moved): ack without installing.
        self.send(now, from, ClientKind::Cache, CohMsg::PutAck { block });
    }

    fn on_ncread(&mut self, now: Cycle, block: BlockAddr, r: NocNode) {
        match self.dir.get(&block).cloned() {
            Some(DirState::Exclusive(o)) => {
                self.stats.forwards.incr();
                // The owner sends DataS straight to the non-caching client
                // and refreshes the LLC via OwnerData.
                self.send(
                    now,
                    o,
                    ClientKind::Cache,
                    CohMsg::FwdGetS {
                        block,
                        requester: r,
                        rkind: ClientKind::NiData,
                    },
                );
                self.begin(
                    block,
                    Trans::AwaitOwnerData {
                        owner: o,
                        requester: r,
                        nc: true,
                    },
                );
            }
            _ => {
                if let Some((value, _)) = self.llc.get(block) {
                    self.send(now, r, ClientKind::NiData, CohMsg::NcData { block, value });
                } else {
                    self.request_fill(now, block, r, FillKind::NcRead);
                }
            }
        }
    }

    fn on_ncwrite(&mut self, now: Cycle, block: BlockAddr, r: NocNode, value: u64) {
        match self.dir.get(&block).cloned() {
            None => {
                self.llc_install(now, block, value, true);
                self.send(now, r, ClientKind::NiData, CohMsg::NcWAck { block });
            }
            Some(DirState::Shared(set)) => {
                let pending = set.len() as u32;
                for s in &set {
                    self.stats.invalidations.incr();
                    self.send(
                        now,
                        *s,
                        ClientKind::Cache,
                        CohMsg::Inv {
                            block,
                            ack_to: self.me,
                            akind: ClientKind::Directory,
                        },
                    );
                }
                self.dir.remove(&block);
                if pending == 0 {
                    self.llc_install(now, block, value, true);
                    self.send(now, r, ClientKind::NiData, CohMsg::NcWAck { block });
                } else {
                    self.begin(
                        block,
                        Trans::NcWriteInv {
                            requester: r,
                            value,
                            pending,
                        },
                    );
                }
            }
            Some(DirState::Exclusive(o)) => {
                self.stats.forwards.incr();
                self.send(
                    now,
                    o,
                    ClientKind::Cache,
                    CohMsg::FwdGetX {
                        block,
                        requester: self.me,
                        rkind: ClientKind::Directory,
                    },
                );
                self.dir.remove(&block);
                self.begin(
                    block,
                    Trans::NcWriteOwner {
                        requester: r,
                        value,
                        got_data: false,
                        got_ack: false,
                    },
                );
            }
        }
    }

    fn on_owner_data(&mut self, now: Cycle, block: BlockAddr, value: u64, dirty: bool) {
        let Some(b) = self.busy.get(&block) else {
            panic!("OwnerData with no open transaction on {block:?}");
        };
        let Trans::AwaitOwnerData {
            owner,
            requester,
            nc,
        } = b.trans.clone()
        else {
            panic!("OwnerData during {:?}", b.trans);
        };
        self.llc_install(now, block, value, dirty);
        let mut set = vec![owner];
        if !nc && requester != owner {
            set.push(requester);
        }
        self.dir.insert(block, DirState::Shared(set));
        self.finish(block);
    }

    fn on_ackx(&mut self, now: Cycle, block: BlockAddr) {
        let Some(b) = self.busy.get(&block) else {
            panic!("AckX with no open transaction on {block:?}");
        };
        match b.trans.clone() {
            Trans::AwaitAckX { requester } => {
                // Ownership moved owner -> requester; any LLC copy is stale.
                self.llc.invalidate(block);
                self.dir.insert(block, DirState::Exclusive(requester));
                self.finish(block);
            }
            Trans::NcWriteOwner { .. } => {
                self.nc_write_owner_step(now, block, false, true);
            }
            other => panic!("AckX during {other:?}"),
        }
    }

    fn on_dir_datam(&mut self, now: Cycle, block: BlockAddr) {
        match self.busy.get(&block).map(|b| b.trans.clone()) {
            Some(Trans::NcWriteOwner { .. }) => self.nc_write_owner_step(now, block, true, false),
            other => panic!("DataM at directory during {other:?}"),
        }
    }

    fn nc_write_owner_step(&mut self, now: Cycle, block: BlockAddr, data: bool, ack: bool) {
        let b = self.busy.get_mut(&block).expect("open NcWriteOwner");
        let Trans::NcWriteOwner {
            requester,
            value,
            got_data,
            got_ack,
        } = &mut b.trans
        else {
            unreachable!("checked by callers");
        };
        *got_data |= data;
        *got_ack |= ack;
        if *got_data && *got_ack {
            let (r, v) = (*requester, *value);
            self.llc_install(now, block, v, true);
            self.send(now, r, ClientKind::NiData, CohMsg::NcWAck { block });
            self.finish(block);
        }
    }

    fn on_dir_invack(&mut self, now: Cycle, block: BlockAddr) {
        let Some(b) = self.busy.get_mut(&block) else {
            panic!("InvAck at directory with no open transaction on {block:?}");
        };
        let Trans::NcWriteInv {
            requester,
            value,
            pending,
        } = &mut b.trans
        else {
            panic!("InvAck at directory during {:?}", b.trans);
        };
        *pending -= 1;
        if *pending == 0 {
            let (r, v) = (*requester, *value);
            self.llc_install(now, block, v, true);
            self.send(now, r, ClientKind::NiData, CohMsg::NcWAck { block });
            self.finish(block);
        }
    }

    fn on_fwd_miss(&mut self, now: Cycle, block: BlockAddr, _was_getx: bool, requester: NocNode) {
        let Some(b) = self.busy.get(&block) else {
            panic!("FwdMiss with no open transaction on {block:?}");
        };
        let nc_read = matches!(b.trans, Trans::AwaitOwnerData { nc: true, .. });
        let nc_write = matches!(b.trans, Trans::NcWriteOwner { .. });
        // The presumed owner is gone; clear it.
        self.dir.remove(&block);
        if nc_write {
            let Trans::NcWriteOwner {
                requester: r,
                value,
                ..
            } = b.trans.clone()
            else {
                unreachable!();
            };
            self.llc_install(now, block, value, true);
            self.send(now, r, ClientKind::NiData, CohMsg::NcWAck { block });
            self.finish(block);
            return;
        }
        if let Some((value, _)) = self.llc.get(block) {
            if nc_read {
                self.send(
                    now,
                    requester,
                    ClientKind::NiData,
                    CohMsg::NcData { block, value },
                );
            } else {
                self.dir.insert(block, DirState::Exclusive(requester));
                self.send(
                    now,
                    requester,
                    ClientKind::Cache,
                    CohMsg::DataE {
                        block,
                        value,
                        acks: 0,
                    },
                );
            }
            self.finish(block);
        } else {
            // Re-open as a memory fill for the original requester.
            let kind = if nc_read {
                FillKind::NcRead
            } else {
                FillKind::GetS
            };
            self.finish(block);
            self.request_fill(now, block, requester, kind);
        }
    }

    fn on_mem_data(&mut self, now: Cycle, block: BlockAddr, value: u64) {
        let Some(b) = self.busy.get(&block) else {
            panic!("memory data with no open transaction on {block:?}");
        };
        let Trans::MemFill { requester, kind } = b.trans.clone() else {
            panic!("memory data during {:?}", b.trans);
        };
        self.llc_install(now, block, value, false);
        match kind {
            FillKind::GetS | FillKind::GetX { acks: 0 } => {
                self.dir.insert(block, DirState::Exclusive(requester));
                self.send(
                    now,
                    requester,
                    ClientKind::Cache,
                    CohMsg::DataE {
                        block,
                        value,
                        acks: 0,
                    },
                );
            }
            FillKind::GetX { acks } => {
                self.dir.insert(block, DirState::Exclusive(requester));
                self.send(
                    now,
                    requester,
                    ClientKind::Cache,
                    CohMsg::DataE { block, value, acks },
                );
            }
            FillKind::NcRead => {
                self.send(
                    now,
                    requester,
                    ClientKind::NiData,
                    CohMsg::NcData { block, value },
                );
            }
        }
        self.finish(block);
    }
}
