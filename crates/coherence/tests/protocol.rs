//! End-to-end protocol tests: cache complexes + directory banks + memory
//! controller wired over an ideal fixed-latency fabric (no NOC contention).
//!
//! These exercise the exact message sequences of Fig. 2 of the paper and the
//! race-prone corners of the blocking-directory MESI implementation, plus a
//! randomized coherence checker (single-writer/multiple-reader and
//! per-location write-order invariants).

use std::collections::HashMap;

use ni_coherence::{
    Access, AccessKind, AccessOrigin, CacheComplex, CohMsg, CoherenceConfig, Completion,
    DirectoryBank,
};
use ni_engine::{Cycle, DelayLine};
use ni_mem::{BlockAddr, MemConfig, MemRequestKind, MemoryController};
use ni_noc::NocNode;
use proptest::prelude::*;

/// Home mapping used by every test: banks live at row 7, block-interleaved.
fn home(b: BlockAddr, n_banks: u32) -> NocNode {
    NocNode::tile((b.0 % u64::from(n_banks)) as u8, 7)
}

const MC_NODE: NocNode = NocNode::Mc(0);

/// A transcript entry for message-sequence assertions.
#[derive(Debug, Clone)]
struct Sent {
    from: NocNode,
    to: NocNode,
    msg: CohMsg,
}

/// Ideal-fabric world: all messages arrive `fabric_latency` cycles later.
struct World {
    complexes: Vec<CacheComplex>,
    banks: Vec<DirectoryBank>,
    mc: MemoryController,
    fabric: DelayLine<Sent>,
    fabric_latency: u64,
    mc_pending: HashMap<u64, (NocNode, CohMsg)>,
    mc_seq: u64,
    now: Cycle,
    transcript: Vec<Sent>,
    completions: Vec<(NocNode, Completion)>,
}

impl World {
    fn new(core_nodes: &[NocNode], ni_cache: bool, n_banks: u32, cfg: CoherenceConfig) -> World {
        let complexes = core_nodes
            .iter()
            .map(|&n| CacheComplex::new(cfg, n, ni_cache, home, n_banks))
            .collect();
        let banks = (0..n_banks)
            .map(|i| DirectoryBank::new(cfg, NocNode::tile(i as u8, 7), MC_NODE))
            .collect();
        World {
            complexes,
            banks,
            mc: MemoryController::new(MemConfig::default()),
            fabric: DelayLine::new(),
            fabric_latency: 3,
            mc_pending: HashMap::new(),
            mc_seq: 0,
            now: Cycle(0),
            transcript: Vec::new(),
            completions: Vec::new(),
        }
    }

    fn complex_mut(&mut self, node: NocNode) -> &mut CacheComplex {
        self.complexes
            .iter_mut()
            .find(|c| c.node() == node)
            .expect("complex exists")
    }

    fn submit(&mut self, node: NocNode, a: Access) {
        let now = self.now;
        self.complex_mut(node).submit(now, a).expect("mshr free");
    }

    /// Inject a raw protocol message from a phantom client (e.g. an RRPP).
    fn inject(&mut self, from: NocNode, to: NocNode, msg: CohMsg) {
        self.fabric
            .push_after(self.now, self.fabric_latency, Sent { from, to, msg });
    }

    fn step(&mut self) {
        let now = self.now;
        // Deliver due fabric messages.
        while let Some(s) = self.fabric.pop_ready(now) {
            self.transcript.push(s.clone());
            if s.to == MC_NODE {
                let tag = self.mc_seq;
                self.mc_seq += 1;
                self.mc_pending.insert(tag, (s.from, s.msg));
                match s.msg {
                    CohMsg::NcRead { block } => {
                        self.mc
                            .push(now, block, MemRequestKind::Read, 0, tag)
                            .expect("uncapped mc");
                    }
                    CohMsg::NcWrite { block, value } => {
                        self.mc
                            .push(now, block, MemRequestKind::Write, value, tag)
                            .expect("uncapped mc");
                    }
                    other => panic!("MC got {other:?}"),
                }
            } else if let Some(b) = self.banks.iter_mut().find(|b| b.node() == s.to) {
                b.deliver(now, s.from, s.msg);
            } else if let Some(c) = self.complexes.iter_mut().find(|c| c.node() == s.to) {
                c.deliver(now, s.msg);
            }
            // Messages to phantom clients (RRPP-style) stay in the
            // transcript only; tests assert on them there.
        }
        // Memory replies.
        while let Some(r) = self.mc.pop_ready(now) {
            let (requester, orig) = self.mc_pending.remove(&r.tag).expect("tracked");
            let reply = match orig {
                CohMsg::NcRead { block } => CohMsg::NcData {
                    block,
                    value: r.value,
                },
                CohMsg::NcWrite { block, .. } => CohMsg::NcWAck { block },
                _ => unreachable!(),
            };
            self.fabric.push_after(
                now,
                self.fabric_latency,
                Sent {
                    from: MC_NODE,
                    to: requester,
                    msg: reply,
                },
            );
        }
        // Tick everything and collect egress.
        for i in 0..self.complexes.len() {
            self.complexes[i].tick(now);
            let from = self.complexes[i].node();
            while let Some(e) = self.complexes[i].pop_egress() {
                self.fabric.push_after(
                    now,
                    self.fabric_latency,
                    Sent {
                        from,
                        to: e.dst,
                        msg: e.msg,
                    },
                );
            }
            while let Some(c) = self.complexes[i].pop_completion() {
                self.completions.push((from, c));
            }
        }
        for i in 0..self.banks.len() {
            self.banks[i].tick(now);
            let from = self.banks[i].node();
            while let Some(e) = self.banks[i].pop_egress() {
                self.fabric.push_after(
                    now,
                    self.fabric_latency,
                    Sent {
                        from,
                        to: e.dst,
                        msg: e.msg,
                    },
                );
            }
        }
        self.now += 1;
    }

    fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Run until a completion for `node` appears (panics after `limit`).
    fn run_until_completion(&mut self, node: NocNode, limit: u64) -> Completion {
        let start = self.now;
        loop {
            if let Some(i) = self.completions.iter().position(|(n, _)| *n == node) {
                return self.completions.remove(i).1;
            }
            self.step();
            assert!(
                self.now.0 < start.0 + limit,
                "no completion for {node:?} within {limit} cycles"
            );
        }
    }

    /// Count transcript messages matching a predicate.
    fn count_msgs(&self, f: impl Fn(&Sent) -> bool) -> usize {
        self.transcript.iter().filter(|s| f(s)).count()
    }
}

fn load(block: u64, tag: u64) -> Access {
    Access {
        origin: AccessOrigin::Core,
        kind: AccessKind::Load,
        block: BlockAddr(block),
        store_value: 0,
        tag,
    }
}

fn store(block: u64, value: u64, tag: u64) -> Access {
    Access {
        origin: AccessOrigin::Core,
        kind: AccessKind::Store,
        block: BlockAddr(block),
        store_value: value,
        tag,
    }
}

fn ni_load(block: u64, tag: u64) -> Access {
    Access {
        origin: AccessOrigin::Ni,
        kind: AccessKind::Load,
        block: BlockAddr(block),
        store_value: 0,
        tag,
    }
}

const CORE: NocNode = NocNode::Tile(ni_noc::Coord { x: 1, y: 0 });
const NI: NocNode = NocNode::NiBlock(0);
const PEER: NocNode = NocNode::Tile(ni_noc::Coord { x: 2, y: 0 });

#[test]
fn fig2a_wq_write_invalidates_polling_ni() {
    // Fig. 2a: the edge NI holds the WQ block (it polls it); core A's write
    // triggers GetX -> directory -> Inv to the NI -> InvAck to core A.
    let mut w = World::new(&[CORE, NI], true, 1, CoherenceConfig::default());
    // Steady state: the core wrote an earlier WQ entry (M), the NI polled it
    // (both demoted to S via a 3-hop forward).
    w.submit(CORE, store(0, 0xaaa, 1));
    w.run_until_completion(CORE, 500);
    w.submit(NI, ni_load(0, 1));
    w.run_until_completion(NI, 500);
    w.transcript.clear();
    // Core writes the next WQ entry into the shared block.
    w.submit(CORE, store(0, 0xabc, 2));
    let c = w.run_until_completion(CORE, 500);
    assert_eq!(c.value, 0xabc);
    // The critical-path messages of Fig. 2a all happened:
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::GetX { .. }) && s.from == CORE),
        1,
        "core sends GetX"
    );
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::Inv { .. }) && s.to == NI),
        1,
        "directory invalidates the NI copy"
    );
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::InvAck { .. }) && s.from == NI && s.to == CORE),
        1,
        "NI acks straight to the waiting core (MissNotify semantics)"
    );
    // NI copy is gone; core holds it dirty.
    let (_, ni_present, _) = w.complex_mut(NI).probe(BlockAddr(0));
    assert!(!ni_present);
    let (l1, _, dirty) = w.complex_mut(CORE).probe(BlockAddr(0));
    assert!(l1 && dirty);
}

#[test]
fn fig2b_ni_poll_forwards_from_owner() {
    // Fig. 2b: the NI polls a WQ block that core A modified: GetRO ->
    // directory -> ReadFwd to A -> ReadReply to the NI (+ OwnerData to dir).
    let mut w = World::new(&[CORE, NI], true, 1, CoherenceConfig::default());
    w.submit(CORE, store(0, 0x111, 1));
    w.run_until_completion(CORE, 500);
    w.submit(NI, ni_load(0, 2));
    let c = w.run_until_completion(NI, 500);
    assert_eq!(c.value, 0x111, "NI reads the entry the core wrote");
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::GetS { .. }) && s.from == NI),
        1
    );
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::FwdGetS { .. }) && s.to == CORE),
        1,
        "directory forwards to the owning core"
    );
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::DataS { .. }) && s.from == CORE && s.to == NI),
        1,
        "owner replies straight to the NI"
    );
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::OwnerData { .. }) && s.from == CORE),
        1,
        "owner refreshes the LLC copy"
    );
}

#[test]
fn value_propagates_through_ownership_chain() {
    let mut w = World::new(&[CORE, PEER], false, 1, CoherenceConfig::default());
    w.submit(CORE, store(5, 100, 1));
    w.run_until_completion(CORE, 500);
    // Peer reads: 3-hop forward, sees 100.
    w.submit(PEER, load(5, 2));
    assert_eq!(w.run_until_completion(PEER, 500).value, 100);
    // Peer writes: invalidates core's shared copy.
    w.submit(PEER, store(5, 200, 3));
    assert_eq!(w.run_until_completion(PEER, 500).value, 200);
    // Core re-reads: forwarded from peer, sees 200.
    w.submit(CORE, load(5, 4));
    assert_eq!(w.run_until_completion(CORE, 500).value, 200);
    // SWMR: peer demoted to shared after the final read.
    let (_, _, peer_dirty) = w.complex_mut(PEER).probe(BlockAddr(5));
    assert!(!peer_dirty, "owner demoted to clean shared after FwdGetS");
}

#[test]
fn nc_write_then_read_roundtrip_via_memory() {
    // An RRPP-style phantom client writes then reads through the directory.
    let rrpp = NocNode::NiBlock(3);
    let mut w = World::new(&[CORE], false, 1, CoherenceConfig::default());
    let dir = home(BlockAddr(9), 1);
    w.inject(
        rrpp,
        dir,
        CohMsg::NcWrite {
            block: BlockAddr(9),
            value: 777,
        },
    );
    w.run(60);
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::NcWAck { .. }) && s.to == rrpp),
        1,
        "NcWrite acknowledged"
    );
    w.inject(
        rrpp,
        dir,
        CohMsg::NcRead {
            block: BlockAddr(9),
        },
    );
    w.run(60);
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::NcData { value: 777, .. }) && s.to == rrpp),
        1,
        "NcRead returns the written value from the LLC"
    );
}

#[test]
fn nc_read_of_dirty_cached_block_forwards_from_owner() {
    let rrpp = NocNode::NiBlock(3);
    let mut w = World::new(&[CORE], false, 1, CoherenceConfig::default());
    w.submit(CORE, store(4, 0xdead, 1));
    w.run_until_completion(CORE, 500);
    let dir = home(BlockAddr(4), 1);
    w.inject(
        rrpp,
        dir,
        CohMsg::NcRead {
            block: BlockAddr(4),
        },
    );
    w.run(80);
    // Owner forwarded the dirty value directly to the RRPP.
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::DataS { value: 0xdead, .. }) && s.to == rrpp),
        1
    );
}

#[test]
fn nc_write_invalidates_sharers() {
    let rrpp = NocNode::NiBlock(3);
    let mut w = World::new(&[CORE, PEER], false, 1, CoherenceConfig::default());
    // Both cores share the block.
    w.submit(CORE, store(6, 1, 1));
    w.run_until_completion(CORE, 500);
    w.submit(PEER, load(6, 2));
    w.run_until_completion(PEER, 500);
    w.submit(CORE, load(6, 3));
    w.run_until_completion(CORE, 500);
    // RCP-style write must invalidate both copies before acking.
    let dir = home(BlockAddr(6), 1);
    w.inject(
        rrpp,
        dir,
        CohMsg::NcWrite {
            block: BlockAddr(6),
            value: 9,
        },
    );
    w.run(100);
    assert!(w.count_msgs(|s| matches!(s.msg, CohMsg::Inv { .. })) >= 1);
    assert_eq!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::NcWAck { .. }) && s.to == rrpp),
        1
    );
    let (a, _, _) = w.complex_mut(CORE).probe(BlockAddr(6));
    let (b, _, _) = w.complex_mut(PEER).probe(BlockAddr(6));
    assert!(!a && !b, "all cached copies invalidated");
}

#[test]
fn silent_clean_eviction_resolves_via_fwd_miss() {
    let mut cfg = CoherenceConfig {
        l1_blocks: 2,
        ..CoherenceConfig::default()
    };
    cfg.ni_cache_blocks = 0;
    let mut w = World::new(&[CORE, PEER], false, 1, cfg);
    // Core fills block 1 exclusively (clean).
    w.submit(CORE, load(1, 1));
    w.run_until_completion(CORE, 500);
    // Evict it silently by filling two more blocks.
    w.submit(CORE, load(2, 2));
    w.run_until_completion(CORE, 500);
    w.submit(CORE, load(3, 3));
    w.run_until_completion(CORE, 500);
    // Peer now requests block 1: directory forwards to core, which misses.
    w.submit(PEER, load(1, 4));
    let c = w.run_until_completion(PEER, 1000);
    assert_eq!(c.value, 0, "untouched block reads as zero");
    assert!(
        w.count_msgs(|s| matches!(s.msg, CohMsg::FwdMiss { .. })) >= 1,
        "inexact directory tolerated the silent eviction"
    );
}

#[test]
fn dirty_eviction_writes_back_and_peer_reads_from_llc() {
    let mut cfg = CoherenceConfig {
        l1_blocks: 1,
        ..CoherenceConfig::default()
    };
    cfg.ni_cache_blocks = 0;
    let mut w = World::new(&[CORE, PEER], false, 1, cfg);
    w.submit(CORE, store(1, 0x42, 1));
    w.run_until_completion(CORE, 500);
    // Filling block 2 evicts dirty block 1 (PutM).
    w.submit(CORE, store(2, 0x43, 2));
    w.run_until_completion(CORE, 500);
    w.run(60); // let the PutM/PutAck drain
    assert!(w.count_msgs(|s| matches!(s.msg, CohMsg::PutM { value: 0x42, .. })) >= 1);
    // Peer read is served from the LLC without forwarding to the core.
    let before = w.count_msgs(|s| matches!(s.msg, CohMsg::FwdGetS { .. }));
    w.submit(PEER, load(1, 3));
    assert_eq!(w.run_until_completion(PEER, 500).value, 0x42);
    let after = w.count_msgs(|s| matches!(s.msg, CohMsg::FwdGetS { .. }));
    assert_eq!(before, after, "no forward needed after writeback");
}

#[test]
fn two_writers_alternate_ownership() {
    let mut w = World::new(&[CORE, PEER], false, 2, CoherenceConfig::default());
    for round in 0u64..6 {
        let (writer, tag) = if round % 2 == 0 {
            (CORE, round)
        } else {
            (PEER, round)
        };
        w.submit(writer, store(8, round + 1, tag));
        let c = w.run_until_completion(writer, 1000);
        assert_eq!(c.value, round + 1);
    }
    // Final owner is PEER (round 5); CORE must read 6.
    w.submit(CORE, load(8, 99));
    assert_eq!(w.run_until_completion(CORE, 1000).value, 6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized coherence checker: four cores, two banks, four blocks.
    /// Tokens written per block strictly increase; every reader must observe
    /// a non-decreasing token sequence per block (per-location coherence),
    /// and at most one complex may hold a block dirty at quiescence.
    #[test]
    fn random_ops_preserve_per_location_order(ops in proptest::collection::vec((0usize..4, 0u64..4, proptest::bool::ANY), 1..60)) {
        let nodes = [
            NocNode::tile(0, 0),
            NocNode::tile(1, 0),
            NocNode::tile(2, 0),
            NocNode::tile(3, 0),
        ];
        let mut w = World::new(&nodes, false, 2, CoherenceConfig::default());
        let mut token = [0u64; 4];
        let mut last_seen: HashMap<(NocNode, u64), u64> = HashMap::new();
        for (who, block, is_store) in ops {
            let node = nodes[who];
            let a = if is_store {
                token[block as usize] += 1;
                store(block, token[block as usize], 0)
            } else {
                load(block, 0)
            };
            w.submit(node, a);
            let c = w.run_until_completion(node, 4000);
            if !is_store {
                let seen = last_seen.entry((node, block)).or_insert(0);
                prop_assert!(
                    c.value >= *seen,
                    "per-location order violated: {:?} block {} saw {} after {}",
                    node, block, c.value, *seen
                );
                *seen = c.value;
            } else {
                last_seen.insert((node, block), c.value);
            }
        }
        // Quiesce and check SWMR.
        w.run(500);
        for blk in 0..4u64 {
            let dirty_holders = nodes
                .iter()
                .filter(|&&n| w.complex_mut(n).probe(BlockAddr(blk)).2)
                .count();
            prop_assert!(dirty_holders <= 1, "block {blk} has {dirty_holders} dirty holders");
        }
    }
}
