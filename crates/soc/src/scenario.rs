//! The `Scenario` API: pluggable, deterministic per-core workload generation.
//!
//! The paper motivates its NI designs with *application* traffic — key-value
//! GETs over 64–512B objects, bulk graph edge-list fetches (§2.1) — but the
//! simulator originally only spoke a closed [`Workload`] enum per core and a
//! closed [`TrafficPattern`] enum per rack. A [`Scenario`] opens that
//! boundary: it is a seeded per-core *operation generator* whose
//! [`next_op`](Scenario::next_op) is consulted by a [`Core`](crate::Core)
//! whenever it is ready to issue, and whose [`Op`]s name everything the
//! hardware needs — read/write, destination node, remote address, size, and
//! sync/async issue discipline. The same trait object drives the single-chip
//! bench path ([`Chip::with_scenario`](crate::Chip::with_scenario), behind
//! the paper's rack emulator) and every node of a multi-node
//! [`Rack`](crate::Rack) over a real [`TorusFabric`](ni_fabric::TorusFabric).
//!
//! Determinism contract: a generator must be a pure function of its
//! parameters and the [`OpCtx`] it is given — per-core randomness comes only
//! from [`OpCtx::seed`], which the chip derives from
//! [`ChipConfig::seed`](crate::ChipConfig::seed). Same config, same op
//! stream, bit for bit.
//!
//! Four built-ins ship behind the trait:
//!
//! * [`Synthetic`] — the paper's microbenchmarks: the old [`Workload`] enum
//!   (sync/async read/write, NUMA loads) plus a [`TrafficPattern`]
//!   destination assignment. [`Workload`]-taking constructors across the
//!   crate are thin wrappers over this type.
//! * [`ZipfHotspot`] — Zipf-skewed destinations and keys: most requests pile
//!   onto one hot node, loading its RRPPs and incoming links far beyond the
//!   uniform assumption.
//! * [`KvStore`] — a memcached-like GET/PUT mix over 64–512B objects.
//! * [`GraphShard`] — bulk edge-list fetches (KBs) from remote graph shards.

use ni_engine::Cycle;
use ni_fabric::{ReplicaCfg, ReplicaMap, Torus3D};
use ni_mem::Addr;
use ni_qp::RemoteOp;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::core_model::{Workload, REMOTE_BASE};
use crate::rack::TrafficPattern;

/// Everything a generator may condition on: the core's place in the rack,
/// its private seed, and the issue progress so far.
///
/// The same struct serves both binding time ([`Scenario::for_core`], with
/// `issued == 0`) and issue time ([`Scenario::next_op`], refreshed each
/// call) — generators that bind lazily on first `next_op` see identical
/// information either way.
#[derive(Clone, Copy, Debug)]
pub struct OpCtx {
    /// This chip's node id in the rack.
    pub node: u16,
    /// Core index on the chip.
    pub core: usize,
    /// Total rack node count (2 behind the single-node emulator: self plus
    /// the emulated remote end).
    pub nodes: u32,
    /// Rack geometry when running on a real multi-node fabric.
    pub torus: Option<Torus3D>,
    /// Per-core decorrelated seed (pure function of the chip seed and core
    /// index) — the only entropy source a deterministic scenario may use.
    pub seed: u64,
    /// Operations this core has fetched from the scenario so far.
    pub issued: u64,
    /// Operations this core has issued but not yet reaped from the CQ.
    /// What a closed-loop generator conditions on to bound its outstanding
    /// window; open-loop scenarios may ignore it.
    pub inflight: u64,
    /// Current simulation time.
    pub now: Cycle,
    /// The rack's replication config ([`ReplicaCfg::off`] unless the chip
    /// enables K-way replication). Scenarios may condition on it — e.g.
    /// [`ZipfHotspot`] spreads reads across a hot destination's replica set
    /// when `k > 1` — and every generator may ignore it.
    pub replication: ReplicaCfg,
}

impl OpCtx {
    /// Binding-time context for one core (no ops issued, time zero,
    /// replication off — the chip overwrites [`OpCtx::replication`] after
    /// binding when K-way replication is enabled).
    pub fn bind(node: u16, core: usize, nodes: u32, torus: Option<Torus3D>, seed: u64) -> OpCtx {
        OpCtx {
            node,
            core,
            nodes,
            torus,
            seed,
            issued: 0,
            inflight: 0,
            now: Cycle::ZERO,
            replication: ReplicaCfg::off(),
        }
    }
}

/// One application-level operation, as a core issues it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Nothing this cycle; the core asks again next cycle.
    Idle,
    /// Nothing for the next `cycles` cycles: a *declared* idle window the
    /// core commits to up front, so event-driven drivers can skip it in one
    /// jump instead of re-asking every cycle (duty-cycled workloads,
    /// think-time between bursts). Identical application behavior to
    /// returning [`Op::Idle`] `cycles` times, except the scenario is not
    /// consulted again until the window ends.
    IdleFor {
        /// Length of the idle window in cycles.
        cycles: u64,
    },
    /// A one-sided remote operation through the queue pair.
    Remote {
        /// Read (fetch remote into the local buffer) or write (push local
        /// memory to the remote node).
        op: RemoteOp,
        /// Destination node in the rack.
        to: u16,
        /// Remote virtual address.
        addr: Addr,
        /// Transfer length in bytes.
        size: u64,
        /// Synchronous (spin on the CQ until *this* op completes) vs
        /// asynchronous (enqueue and move on, polling per
        /// [`Scenario::poll_every`]).
        sync: bool,
    },
    /// An idealized NUMA single-block remote load issued directly from the
    /// core, bypassing the QP machinery (the Table 1 baseline).
    Numa {
        /// Destination node in the rack.
        to: u16,
        /// Remote address of the loaded block.
        addr: Addr,
    },
    /// A two-sided request–response operation: shaped like a remote read,
    /// but the serving node's RRPP "computes" for `service` cycles per
    /// block before replying, so the measured completion latency includes
    /// remote service time — the serving-tier request shape, vs the
    /// pure remote-memory semantics of [`Op::Remote`].
    Rpc {
        /// Serving node in the rack.
        to: u16,
        /// Remote address the response payload is read from.
        addr: Addr,
        /// Response length in bytes.
        size: u64,
        /// Remote per-block compute time in cycles.
        service: u64,
        /// Synchronous vs asynchronous issue discipline (see
        /// [`Op::Remote`]).
        sync: bool,
    },
}

/// A deterministic, seeded per-core operation generator.
///
/// A `Scenario` value is used in two roles: as a *prototype* handed to
/// [`Chip::with_scenario`](crate::Chip::with_scenario) /
/// [`Rack::with_scenario`](crate::Rack::with_scenario), and as the per-core
/// *generator* those constructors produce from it via [`for_core`]. Both
/// roles share this one trait so custom scenarios stay a single type.
///
/// ```
/// use ni_mem::Addr;
/// use ni_qp::RemoteOp;
/// use ni_soc::{Op, OpCtx, Scenario, REMOTE_BASE};
///
/// /// Every core ping-pongs 64B reads between its two ring neighbors.
/// #[derive(Clone, Debug)]
/// struct RingPingPong;
///
/// impl Scenario for RingPingPong {
///     fn name(&self) -> &str {
///         "ring-ping-pong"
///     }
///     fn for_core(&self, _ctx: &OpCtx) -> Box<dyn Scenario> {
///         Box::new(self.clone())
///     }
///     fn next_op(&mut self, ctx: &OpCtx) -> Op {
///         let hop = if ctx.issued % 2 == 0 { 1 } else { ctx.nodes - 1 };
///         Op::Remote {
///             op: RemoteOp::Read,
///             to: ((u32::from(ctx.node) + hop) % ctx.nodes) as u16,
///             addr: Addr(REMOTE_BASE + ctx.issued * 64),
///             size: 64,
///             sync: false,
///         }
///     }
/// }
/// ```
///
/// [`for_core`]: Scenario::for_core
pub trait Scenario: std::fmt::Debug + Send + Sync {
    /// Human-readable name (report tables, CSV columns).
    fn name(&self) -> &str;

    /// Build the generator for one core. Must be a pure function of the
    /// prototype's parameters and `ctx` — two calls with equal inputs must
    /// yield generators producing identical op streams.
    fn for_core(&self, ctx: &OpCtx) -> Box<dyn Scenario>;

    /// The next operation this core should issue. Called whenever the core
    /// is ready (WQ has room, no synchronous op outstanding); returning
    /// [`Op::Idle`] defers by one cycle.
    fn next_op(&mut self, ctx: &OpCtx) -> Op;

    /// Asynchronous issue discipline: poll the CQ after this many issues
    /// even when the WQ still has room.
    fn poll_every(&self) -> u32 {
        4
    }

    /// Point subsequent ops at `node`, when this generator supports a fixed
    /// destination ([`Synthetic`] does; randomized scenarios ignore it).
    /// Backs [`Core::set_target`](crate::Core::set_target), the
    /// pre-scenario retargeting API.
    fn retarget(&mut self, node: u16) {
        let _ = node;
    }

    /// The single destination node of this generator when every one of its
    /// ops targets the same node (synthetic patterns); `None` for
    /// randomized scenarios. Feeds [`Core::target`](crate::Core::target).
    fn fixed_target(&self) -> Option<u16> {
        None
    }

    /// True when this generator will return [`Op::Idle`] on every future
    /// [`next_op`](Scenario::next_op) call regardless of context — a
    /// *permanent* idle promise, not a temporary stall. Rack drivers use it
    /// to skip ticking fully quiesced chips; returning `false` (the
    /// default) is always safe and merely forgoes the fast path.
    fn is_done(&self) -> bool {
        false
    }

    /// Tenant tag this generator's operations are accounted to. Per-tenant
    /// SLO aggregation (`ni_metrics`) groups core statistics by this tag;
    /// single-tenant scenarios keep the default tenant 0. [`TenantMix`]
    /// assigns distinct tags per tenant, and combinators delegate so the
    /// tag survives wrapping.
    fn tenant(&self) -> u8 {
        0
    }
}

/// Decorrelated per-core seed stream from a chip-level master seed (the
/// chip's own seed is already decorrelated per node by the rack driver).
pub fn core_seed(chip_seed: u64, core: usize) -> u64 {
    chip_seed ^ (core as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// The four built-in scenarios at their default parameters, in a stable
/// order (sweeps, determinism tests, CI smoke runs).
pub fn builtin_scenarios() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(Synthetic::from_workload(Workload::AsyncRead {
            size: 512,
            poll_every: 4,
        })),
        Box::new(ZipfHotspot::default()),
        Box::new(KvStore::default()),
        Box::new(GraphShard::default()),
    ]
}

// ---- Capped -----------------------------------------------------------------

/// Caps any inner scenario at a fixed number of operations per core, then
/// promises permanent idleness ([`Scenario::is_done`]).
///
/// This turns an open-loop generator into a *finite job*, which is what
/// completion-time experiments need: run the rack until
/// `nodes x cores x ops_per_core` operations have completed and report the
/// cycle count (see `rackni::experiments::routing_sweep`). Because the cap
/// trips [`is_done`](Scenario::is_done), fully drained chips take the
/// rack's quiesced fast path once their cores finish.
#[derive(Debug)]
pub struct Capped {
    inner: Box<dyn Scenario>,
    ops_per_core: u64,
    issued: u64,
    name: String,
}

impl Capped {
    /// Cap `inner` at `ops_per_core` operations per core (0 = immediately
    /// idle).
    pub fn new(inner: Box<dyn Scenario>, ops_per_core: u64) -> Capped {
        let name = format!("{}-capped", inner.name());
        Capped {
            inner,
            ops_per_core,
            issued: 0,
            name,
        }
    }

    /// The per-core operation budget.
    pub fn ops_per_core(&self) -> u64 {
        self.ops_per_core
    }
}

impl Scenario for Capped {
    fn name(&self) -> &str {
        &self.name
    }

    fn for_core(&self, ctx: &OpCtx) -> Box<dyn Scenario> {
        Box::new(Capped {
            inner: self.inner.for_core(ctx),
            ops_per_core: self.ops_per_core,
            issued: 0,
            name: self.name.clone(),
        })
    }

    fn next_op(&mut self, ctx: &OpCtx) -> Op {
        if self.issued >= self.ops_per_core {
            return Op::Idle;
        }
        let op = self.inner.next_op(ctx);
        // Only count real operations against the budget: an inner Idle or
        // IdleFor (e.g. a phase gap) must not burn it down.
        if !matches!(op, Op::Idle | Op::IdleFor { .. }) {
            self.issued += 1;
        }
        op
    }

    fn poll_every(&self) -> u32 {
        self.inner.poll_every()
    }

    fn retarget(&mut self, node: u16) {
        self.inner.retarget(node);
    }

    fn fixed_target(&self) -> Option<u16> {
        self.inner.fixed_target()
    }

    fn is_done(&self) -> bool {
        self.issued >= self.ops_per_core || self.inner.is_done()
    }

    fn tenant(&self) -> u8 {
        self.inner.tenant()
    }
}

// ---- Bursty -----------------------------------------------------------------

/// Duty-cycles any inner scenario: `burst_ops` real operations, then one
/// declared [`Op::IdleFor`] window of `idle_cycles`, repeating.
///
/// This is the canonical *idle-heavy* traffic shape: cores alternate short
/// request bursts with long think-time windows, the regime where the
/// event-driven chip tick's next-event skip dominates (the perf-trajectory
/// benchmarks measure it head-to-head against the poll-everything tick).
/// Inner [`Op::Idle`] results do not count against the burst budget, and
/// inner [`Op::IdleFor`] windows pass through untouched.
#[derive(Debug)]
pub struct Bursty {
    inner: Box<dyn Scenario>,
    burst_ops: u64,
    idle_cycles: u64,
    in_burst: u64,
    name: String,
}

impl Bursty {
    /// Duty-cycle `inner`: `burst_ops` operations per burst (min 1), then
    /// `idle_cycles` of declared idleness.
    pub fn new(inner: Box<dyn Scenario>, burst_ops: u64, idle_cycles: u64) -> Bursty {
        let name = format!("{}-bursty", inner.name());
        Bursty {
            inner,
            burst_ops: burst_ops.max(1),
            idle_cycles,
            in_burst: 0,
            name,
        }
    }
}

impl Scenario for Bursty {
    fn name(&self) -> &str {
        &self.name
    }

    fn for_core(&self, ctx: &OpCtx) -> Box<dyn Scenario> {
        Box::new(Bursty {
            inner: self.inner.for_core(ctx),
            burst_ops: self.burst_ops,
            idle_cycles: self.idle_cycles,
            in_burst: 0,
            name: self.name.clone(),
        })
    }

    fn next_op(&mut self, ctx: &OpCtx) -> Op {
        if self.in_burst >= self.burst_ops {
            self.in_burst = 0;
            return Op::IdleFor {
                cycles: self.idle_cycles,
            };
        }
        let op = self.inner.next_op(ctx);
        if !matches!(op, Op::Idle | Op::IdleFor { .. }) {
            self.in_burst += 1;
        }
        op
    }

    fn poll_every(&self) -> u32 {
        self.inner.poll_every()
    }

    fn retarget(&mut self, node: u16) {
        self.inner.retarget(node);
    }

    fn fixed_target(&self) -> Option<u16> {
        self.inner.fixed_target()
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn tenant(&self) -> u8 {
        self.inner.tenant()
    }
}

// ---- ClosedLoop -------------------------------------------------------------

/// Turns any open-loop scenario into a *closed-loop client*: at most
/// `window` operations outstanding per core, with a seeded think time drawn
/// after every completion-freeing issue.
///
/// Open-loop generators issue as fast as the WQ admits, so offered load
/// tracks simulator capacity rather than a client population. A closed
/// loop models `window` synchronous clients per core: while
/// [`OpCtx::inflight`] is at the window the generator returns [`Op::Idle`]
/// (the core keeps polling its CQ until a completion frees a slot), and
/// each real operation is preceded by a think-time window drawn uniformly
/// from `[1, 2·think]` cycles (mean `think`; `think == 0` disables it) from
/// an RNG salted off [`OpCtx::seed`] — decorrelated from the inner
/// scenario's own draws.
#[derive(Debug)]
pub struct ClosedLoop {
    inner: Box<dyn Scenario>,
    window: u64,
    think: u64,
    /// A real op was handed out since the last think window: the next
    /// below-window call owes a think time first.
    owe_think: bool,
    rng: Option<SmallRng>,
    name: String,
}

impl ClosedLoop {
    /// Close the loop over `inner`: at most `window` outstanding ops per
    /// core (min 1), `think` mean cycles between issues (0 = back to back).
    pub fn new(inner: Box<dyn Scenario>, window: u64, think: u64) -> ClosedLoop {
        let name = format!("{}-closed", inner.name());
        ClosedLoop {
            inner,
            window: window.max(1),
            think,
            owe_think: false,
            rng: None,
            name,
        }
    }

    /// The per-core outstanding-operation bound.
    pub fn window(&self) -> u64 {
        self.window
    }
}

impl Scenario for ClosedLoop {
    fn name(&self) -> &str {
        &self.name
    }

    fn for_core(&self, ctx: &OpCtx) -> Box<dyn Scenario> {
        Box::new(ClosedLoop {
            inner: self.inner.for_core(ctx),
            window: self.window,
            think: self.think,
            owe_think: false,
            rng: None,
            name: self.name.clone(),
        })
    }

    fn next_op(&mut self, ctx: &OpCtx) -> Op {
        if ctx.inflight >= self.window {
            // Window full: stall one cycle. The core polls its CQ while
            // anything is inflight, so a completion re-opens the window.
            return Op::Idle;
        }
        if self.owe_think && self.think > 0 {
            self.owe_think = false;
            let rng = self
                .rng
                .get_or_insert_with(|| SmallRng::seed_from_u64(ctx.seed ^ 0x7411_6b71_3e5a_11ed));
            return Op::IdleFor {
                cycles: rng.gen_range(1..=2 * self.think),
            };
        }
        let op = self.inner.next_op(ctx);
        if !matches!(op, Op::Idle | Op::IdleFor { .. }) {
            self.owe_think = true;
        }
        op
    }

    /// Closed loops poll every issue: a full window makes progress only
    /// through reaped completions, so the CQ must be checked eagerly.
    fn poll_every(&self) -> u32 {
        1
    }

    fn retarget(&mut self, node: u16) {
        self.inner.retarget(node);
    }

    fn fixed_target(&self) -> Option<u16> {
        self.inner.fixed_target()
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn tenant(&self) -> u8 {
        self.inner.tenant()
    }
}

// ---- TenantMix --------------------------------------------------------------

/// One tenant of a [`TenantMix`]: a tag for per-tenant accounting, the
/// scenario prototype its cores run, and a share of the chip's cores.
#[derive(Debug)]
pub struct TenantSpec {
    /// Tenant tag stamped on every core this tenant owns (reported by
    /// [`Scenario::tenant`] and grouped by `ni_metrics`).
    pub tag: u8,
    /// Scenario prototype the tenant's cores bind generators from.
    pub scenario: Box<dyn Scenario>,
    /// Relative share of cores (cores are striped over cumulative shares).
    pub share: u32,
}

/// Statically partitions a chip's cores among tenants: core `i` belongs to
/// the tenant owning slot `i mod Σshares` of the share vector, and runs a
/// generator bound from that tenant's prototype, tagged with the tenant's
/// tag.
///
/// The partition is by *core*, not by op — tenants share the NI pipelines,
/// the NOC, and the fabric, which is exactly the contention surface a
/// multi-tenant serving study measures. Per-core seeds already decorrelate
/// the tenants' randomness; the tag rides [`Scenario::tenant`] from
/// generator to core to chip, where per-tenant statistics are grouped.
#[derive(Debug)]
pub struct TenantMix {
    tenants: Vec<TenantSpec>,
}

impl TenantMix {
    /// An empty mix; add tenants with [`with_tenant`](TenantMix::with_tenant).
    pub fn new() -> TenantMix {
        TenantMix {
            tenants: Vec::new(),
        }
    }

    /// Add a tenant running `scenario` on `share` of every `Σshares` cores.
    pub fn with_tenant(mut self, tag: u8, scenario: Box<dyn Scenario>, share: u32) -> TenantMix {
        self.tenants.push(TenantSpec {
            tag,
            scenario,
            share: share.max(1),
        });
        self
    }

    /// The tenant owning core index `core`.
    fn spec_for(&self, core: usize) -> &TenantSpec {
        assert!(
            !self.tenants.is_empty(),
            "TenantMix needs at least one tenant"
        );
        let total: u32 = self.tenants.iter().map(|t| t.share).sum();
        let mut slot = (core as u32) % total;
        for t in &self.tenants {
            if slot < t.share {
                return t;
            }
            slot -= t.share;
        }
        unreachable!("slot < total is covered by the cumulative scan")
    }
}

impl Default for TenantMix {
    fn default() -> Self {
        TenantMix::new()
    }
}

/// A bound tenant generator: delegates everything to the tenant's inner
/// generator but reports the tenant's tag.
#[derive(Debug)]
struct Tagged {
    inner: Box<dyn Scenario>,
    tag: u8,
}

impl Scenario for Tagged {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn for_core(&self, ctx: &OpCtx) -> Box<dyn Scenario> {
        Box::new(Tagged {
            inner: self.inner.for_core(ctx),
            tag: self.tag,
        })
    }

    fn next_op(&mut self, ctx: &OpCtx) -> Op {
        self.inner.next_op(ctx)
    }

    fn poll_every(&self) -> u32 {
        self.inner.poll_every()
    }

    fn retarget(&mut self, node: u16) {
        self.inner.retarget(node);
    }

    fn fixed_target(&self) -> Option<u16> {
        self.inner.fixed_target()
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn tenant(&self) -> u8 {
        self.tag
    }
}

impl Scenario for TenantMix {
    fn name(&self) -> &str {
        "tenant-mix"
    }

    fn for_core(&self, ctx: &OpCtx) -> Box<dyn Scenario> {
        let spec = self.spec_for(ctx.core);
        Box::new(Tagged {
            inner: spec.scenario.for_core(ctx),
            tag: spec.tag,
        })
    }

    fn next_op(&mut self, ctx: &OpCtx) -> Op {
        // The mix is a prototype: cores draw from their bound per-tenant
        // generators, never from the mix itself.
        let _ = ctx;
        Op::Idle
    }

    fn is_done(&self) -> bool {
        self.tenants.iter().all(|t| t.scenario.is_done())
    }
}

// ---- Synthetic --------------------------------------------------------------

/// The paper's microbenchmark traffic as a scenario: one fixed [`Workload`]
/// per core, destinations assigned by a [`TrafficPattern`] (multi-node) or
/// pointed at the emulated remote end (single-node).
///
/// This subsumes the pre-scenario `Workload`/`TrafficPattern` surface;
/// [`Chip::new`](crate::Chip::new) and [`Rack::new`](crate::Rack::new) are
/// thin wrappers over it.
#[derive(Clone, Debug)]
pub struct Synthetic {
    workload: Workload,
    pattern: TrafficPattern,
    /// Bound destination; `None` until [`Scenario::for_core`] (or an
    /// explicit [`with_dest`](Synthetic::with_dest)) fixes it.
    dest: Option<u16>,
    /// Remote address cursor (bytes past [`REMOTE_BASE`]).
    cursor: u64,
}

impl Synthetic {
    /// Wrap a workload with the default [`TrafficPattern::Uniform`]
    /// destination assignment.
    pub fn from_workload(workload: Workload) -> Synthetic {
        Synthetic {
            workload,
            pattern: TrafficPattern::Uniform,
            dest: None,
            cursor: 0,
        }
    }

    /// Use `pattern` to assign per-core destinations on a multi-node rack.
    pub fn with_pattern(mut self, pattern: TrafficPattern) -> Synthetic {
        self.pattern = pattern;
        self
    }

    /// Pin every op of this generator at `node`, overriding the pattern.
    pub fn with_dest(mut self, node: u16) -> Synthetic {
        self.dest = Some(node);
        self
    }

    /// The wrapped workload.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    fn advance(&mut self, size: u64) -> Addr {
        let a = REMOTE_BASE + self.cursor;
        self.cursor += size.max(64).next_multiple_of(64);
        Addr(a)
    }
}

impl From<Workload> for Synthetic {
    fn from(w: Workload) -> Synthetic {
        Synthetic::from_workload(w)
    }
}

impl Scenario for Synthetic {
    fn name(&self) -> &str {
        "synthetic"
    }

    fn for_core(&self, ctx: &OpCtx) -> Box<dyn Scenario> {
        let dest = self.dest.or(Some(match ctx.torus {
            // Multi-node rack: the pattern picks this core's destination.
            Some(t) => self.pattern.target(t, u32::from(ctx.node), ctx.core) as u16,
            // Single-node emulator: the (ignored) conventional remote end.
            None => 1,
        }));
        Box::new(Synthetic {
            dest,
            cursor: 0,
            ..self.clone()
        })
    }

    fn next_op(&mut self, _ctx: &OpCtx) -> Op {
        let to = self.dest.unwrap_or(1);
        match self.workload {
            Workload::Idle => Op::Idle,
            Workload::SyncRead { size } => Op::Remote {
                op: RemoteOp::Read,
                to,
                addr: self.advance(size),
                size,
                sync: true,
            },
            Workload::SyncWrite { size } => Op::Remote {
                op: RemoteOp::Write,
                to,
                addr: self.advance(size),
                size,
                sync: true,
            },
            Workload::AsyncRead { size, .. } => Op::Remote {
                op: RemoteOp::Read,
                to,
                addr: self.advance(size),
                size,
                sync: false,
            },
            Workload::AsyncWrite { size, .. } => Op::Remote {
                op: RemoteOp::Write,
                to,
                addr: self.advance(size),
                size,
                sync: false,
            },
            Workload::NumaRead => Op::Numa {
                to,
                addr: self.advance(64),
            },
        }
    }

    fn poll_every(&self) -> u32 {
        match self.workload {
            Workload::AsyncRead { poll_every, .. } | Workload::AsyncWrite { poll_every, .. } => {
                poll_every
            }
            _ => 4,
        }
    }

    fn fixed_target(&self) -> Option<u16> {
        self.dest
    }

    fn retarget(&mut self, node: u16) {
        self.dest = Some(node);
    }

    fn is_done(&self) -> bool {
        // An Idle workload never issues anything: the permanent-idle
        // promise that lets rack drivers skip fully quiesced chips.
        matches!(self.workload, Workload::Idle)
    }
}

// ---- Zipf sampling ----------------------------------------------------------

/// Zipf(θ) sampler over ranks `0..n`: rank `r` is drawn with probability
/// proportional to `1/(r+1)^θ`. Precomputed CDF, `O(log n)` per sample.
/// θ = 0 degenerates to uniform; θ ≈ 1 is the classical web/KV skew; larger
/// θ concentrates harder on rank 0.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Sampler over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    /// Panics if `n` is zero or `theta` is negative.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(theta >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Zipf { cdf }
    }

    /// Draw one rank in `0..n`.
    pub fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        // 53 uniform mantissa bits in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (self.cdf.partition_point(|&c| c < u)).min(self.cdf.len() - 1) as u64
    }
}

/// Uniform destination over every node but one's own (self when alone).
fn uniform_other(rng: &mut SmallRng, node: u16, nodes: u32) -> u16 {
    if nodes <= 1 {
        return node;
    }
    let r = rng.gen_range(0..nodes - 1);
    if r >= u32::from(node) {
        (r + 1) as u16
    } else {
        r as u16
    }
}

// ---- ZipfHotspot ------------------------------------------------------------

/// Zipf-skewed destinations *and* keys: the ROADMAP's "skewed / hotspot
/// traffic" scenario.
///
/// Destination rank `r` maps to node `(hot_node + r) mod N`, so every core
/// on every node agrees on which node is hottest — rank 0 receives the
/// Zipf(θ) head of the rack's whole request stream, queueing its RRPPs and
/// saturating its incoming links while the uniform assumption would spread
/// that load evenly. Keys are Zipf-skewed too, so the hot node's hot blocks
/// contend in its LLC. Compare
/// [`Rack::link_report`](crate::Rack::link_report) between this and
/// [`Synthetic`] uniform traffic to see the per-link hotspot.
#[derive(Clone, Debug)]
pub struct ZipfHotspot {
    /// Skew exponent for both destination and key draws.
    pub theta: f64,
    /// Transfer size in bytes.
    pub size: u64,
    /// Key-space size per node.
    pub keys: u64,
    /// Fraction of ops issued as remote writes (the rest read).
    pub write_fraction: f64,
    /// The rack-wide hottest node (rank 0 of the destination Zipf).
    pub hot_node: u32,
    /// Async poll cadence.
    pub poll_every: u32,
    state: Option<ZipfState>,
}

#[derive(Clone, Debug)]
struct ZipfState {
    rng: SmallRng,
    node_zipf: Zipf,
    key_zipf: Zipf,
    /// Replica placement, derived lazily when [`OpCtx::replication`] has
    /// `k > 1`: reads of a hot destination spread across its replica set
    /// (any replica serves a read), which is the client-side half of the
    /// availability story — the server-side half is the backend's failover
    /// and quorum machinery.
    replicas: Option<ReplicaMap>,
}

impl Default for ZipfHotspot {
    fn default() -> Self {
        ZipfHotspot {
            theta: 1.2,
            size: 256,
            keys: 4096,
            write_fraction: 0.0,
            hot_node: 0,
            poll_every: 4,
            state: None,
        }
    }
}

impl ZipfHotspot {
    /// Set the skew exponent (0 = uniform; ~1 = classical KV skew).
    pub fn with_theta(mut self, theta: f64) -> ZipfHotspot {
        self.theta = theta.max(0.0);
        self
    }

    /// Set the transfer size in bytes.
    pub fn with_size(mut self, size: u64) -> ZipfHotspot {
        self.size = size.max(1);
        self
    }

    /// Set which node receives the Zipf head of the rack's traffic.
    pub fn with_hot_node(mut self, node: u32) -> ZipfHotspot {
        self.hot_node = node;
        self
    }

    /// Set the fraction of ops issued as remote writes.
    pub fn with_write_fraction(mut self, f: f64) -> ZipfHotspot {
        self.write_fraction = f.clamp(0.0, 1.0);
        self
    }
}

impl Scenario for ZipfHotspot {
    fn name(&self) -> &str {
        "zipf-hotspot"
    }

    fn for_core(&self, _ctx: &OpCtx) -> Box<dyn Scenario> {
        Box::new(ZipfHotspot {
            state: None,
            ..self.clone()
        })
    }

    fn next_op(&mut self, ctx: &OpCtx) -> Op {
        let nodes = ctx.nodes.max(1);
        let (theta, keys) = (self.theta, self.keys.max(1));
        let replication = ctx.replication;
        let torus = ctx.torus;
        let st = self.state.get_or_insert_with(|| ZipfState {
            rng: SmallRng::seed_from_u64(ctx.seed),
            node_zipf: Zipf::new(u64::from(nodes), theta),
            key_zipf: Zipf::new(keys, theta),
            replicas: replication.enabled().then(|| match torus {
                Some(t) => ReplicaMap::new(t, replication.seed, replication.k),
                None => ReplicaMap::ring(nodes, replication.seed, replication.k),
            }),
        });
        let rank = st.node_zipf.sample(&mut st.rng) as u32;
        let mut to = ((self.hot_node + rank) % nodes) as u16;
        if to == ctx.node && nodes > 1 {
            // Never self-target: the hot node bounces its own rank-0 draws
            // to the next-hotter neighbor.
            to = ((u32::from(to) + 1) % nodes) as u16;
        }
        let key = st.key_zipf.sample(&mut st.rng);
        let stride = self.size.max(64).next_multiple_of(64);
        let op = if self.write_fraction > 0.0 && st.rng.gen_range(0.0..1.0) < self.write_fraction {
            RemoteOp::Write
        } else {
            RemoteOp::Read
        };
        // With replication on, any replica serves a read: spread the hot
        // destination's read load uniformly across its replica set (writes
        // stay on the primary — the backend fans them out to the quorum).
        if op == RemoteOp::Read {
            if let Some(map) = &st.replicas {
                let set = map.replicas(to);
                if set.len() > 1 {
                    let pick = set[st.rng.gen_range(0..set.len())];
                    if pick != ctx.node {
                        to = pick;
                    }
                }
            }
        }
        Op::Remote {
            op,
            to,
            addr: Addr(REMOTE_BASE + key * stride),
            size: self.size,
            sync: false,
        }
    }

    fn poll_every(&self) -> u32 {
        self.poll_every
    }
}

// ---- KvStore ----------------------------------------------------------------

/// A distributed key-value store (§2.1): GETs are one-sided remote reads of
/// the value, PUTs one-sided remote writes, over a memcached-like object
/// size mix (Atikoglu et al. \[5\]) and uniform key/shard placement.
#[derive(Clone, Debug)]
pub struct KvStore {
    /// `(value bytes, weight)` object-size mix.
    pub mix: [(u64, f64); 4],
    /// Fraction of ops that are GETs (the rest PUT).
    pub get_fraction: f64,
    /// Keys per shard.
    pub keys: u64,
    /// Issue GETs synchronously (per-request latency mode) instead of
    /// streaming them asynchronously (throughput mode).
    pub sync: bool,
    /// Async poll cadence.
    pub poll_every: u32,
    /// Remote per-block compute time in cycles. Zero (the default) keeps
    /// GETs one-sided remote reads; non-zero turns them into two-sided
    /// [`Op::Rpc`] request–responses whose serving RRPP computes for this
    /// long before replying — the serving-tier shape.
    pub service: u64,
    rng: Option<SmallRng>,
}

impl KvStore {
    /// Largest value in the default mix; also the key stride in the remote
    /// address space.
    pub const MAX_VALUE_BYTES: u64 = 512;

    /// Issue GETs synchronously (per-request latency mode).
    pub fn synchronous(mut self) -> KvStore {
        self.sync = true;
        self
    }

    /// Set the GET fraction (the rest are PUTs).
    pub fn with_get_fraction(mut self, f: f64) -> KvStore {
        self.get_fraction = f.clamp(0.0, 1.0);
        self
    }

    /// Set the per-shard key-space size.
    pub fn with_keys(mut self, keys: u64) -> KvStore {
        self.keys = keys.max(1);
        self
    }

    /// Make GETs two-sided: the serving RRPP computes for `cycles` per
    /// block before replying (0 = one-sided reads, the default).
    pub fn with_service(mut self, cycles: u64) -> KvStore {
        self.service = cycles;
        self
    }
}

impl Default for KvStore {
    fn default() -> Self {
        KvStore {
            // Facebook's Memcached pools: most objects 64..512B, ~500B mean
            // in the largest pools.
            mix: [(64, 0.35), (128, 0.30), (256, 0.20), (512, 0.15)],
            get_fraction: 0.95,
            keys: 65_536,
            sync: false,
            poll_every: 4,
            service: 0,
            rng: None,
        }
    }
}

impl Scenario for KvStore {
    fn name(&self) -> &str {
        "kv-store"
    }

    fn for_core(&self, _ctx: &OpCtx) -> Box<dyn Scenario> {
        Box::new(KvStore {
            rng: None,
            ..self.clone()
        })
    }

    fn next_op(&mut self, ctx: &OpCtx) -> Op {
        let rng = self
            .rng
            .get_or_insert_with(|| SmallRng::seed_from_u64(ctx.seed));
        let to = uniform_other(rng, ctx.node, ctx.nodes);
        let total: f64 = self.mix.iter().map(|&(_, w)| w).sum();
        let mut pick = rng.gen_range(0.0..1.0) * total.max(f64::EPSILON);
        let mut size = self.mix[self.mix.len() - 1].0;
        for &(s, w) in &self.mix {
            if pick < w {
                size = s;
                break;
            }
            pick -= w;
        }
        let key = rng.gen_range(0..self.keys.max(1));
        let op = if rng.gen_range(0.0..1.0) < self.get_fraction {
            RemoteOp::Read
        } else {
            RemoteOp::Write
        };
        let addr = Addr(REMOTE_BASE + key * Self::MAX_VALUE_BYTES);
        if op == RemoteOp::Read && self.service > 0 {
            // Two-sided GET: the server computes before the value comes
            // back; PUTs stay one-sided remote writes either way.
            return Op::Rpc {
                to,
                addr,
                size,
                service: self.service,
                sync: self.sync,
            };
        }
        Op::Remote {
            op,
            to,
            addr,
            size,
            sync: self.sync,
        }
    }

    fn poll_every(&self) -> u32 {
        self.poll_every
    }
}

// ---- GraphShard -------------------------------------------------------------

/// Graph analytics over a rack-partitioned graph (§1, §2.1): every
/// out-of-shard vertex expansion is a bulk one-sided read of the neighbor
/// list — kilobytes per op (Lim et al. \[32\]) — from a uniformly random
/// remote shard. List sizes are log-uniform over
/// `[min_list_bytes, max_list_bytes]` in power-of-two steps.
#[derive(Clone, Debug)]
pub struct GraphShard {
    /// Smallest edge-list fetch in bytes.
    pub min_list_bytes: u64,
    /// Largest edge-list fetch in bytes.
    pub max_list_bytes: u64,
    /// Vertices per shard (remote address space: one max-size slot each).
    pub vertices: u64,
    /// Async poll cadence.
    pub poll_every: u32,
    rng: Option<SmallRng>,
}

impl Default for GraphShard {
    fn default() -> Self {
        GraphShard {
            min_list_bytes: 2048,
            max_list_bytes: 8192,
            vertices: 4096,
            poll_every: 4,
            rng: None,
        }
    }
}

impl GraphShard {
    /// Set the edge-list size range in bytes (`min..=max`, power-of-two
    /// steps).
    pub fn with_lists(mut self, min_bytes: u64, max_bytes: u64) -> GraphShard {
        self.min_list_bytes = min_bytes.max(64);
        self.max_list_bytes = max_bytes.max(self.min_list_bytes);
        self
    }
}

impl Scenario for GraphShard {
    fn name(&self) -> &str {
        "graph-shard"
    }

    fn for_core(&self, _ctx: &OpCtx) -> Box<dyn Scenario> {
        Box::new(GraphShard {
            rng: None,
            ..self.clone()
        })
    }

    fn next_op(&mut self, ctx: &OpCtx) -> Op {
        let rng = self
            .rng
            .get_or_insert_with(|| SmallRng::seed_from_u64(ctx.seed));
        let to = uniform_other(rng, ctx.node, ctx.nodes);
        let min = self.min_list_bytes.max(64);
        let max = self.max_list_bytes.max(min);
        let steps = (max / min).max(1).ilog2();
        let size = (min << rng.gen_range(0..=u64::from(steps))).min(max);
        let vertex = rng.gen_range(0..self.vertices.max(1));
        Op::Remote {
            op: RemoteOp::Read,
            to,
            addr: Addr(REMOTE_BASE + vertex * max),
            size,
            sync: false,
        }
    }

    fn poll_every(&self) -> u32 {
        self.poll_every
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(node: u16, core: usize, nodes: u32, seed: u64) -> OpCtx {
        OpCtx::bind(node, core, nodes, Some(Torus3D::new(2, 2, 2)), seed)
    }

    fn stream(s: &dyn Scenario, ctx: &OpCtx, n: usize) -> Vec<Op> {
        let mut g = s.for_core(ctx);
        let mut c = *ctx;
        (0..n)
            .map(|i| {
                c.issued = i as u64;
                g.next_op(&c)
            })
            .collect()
    }

    #[test]
    fn builtin_generators_are_deterministic_per_core() {
        let c = ctx(3, 5, 8, 0xdead_beef);
        for s in builtin_scenarios() {
            assert_eq!(
                stream(s.as_ref(), &c, 256),
                stream(s.as_ref(), &c, 256),
                "{} must replay identically from the same ctx",
                s.name()
            );
        }
    }

    #[test]
    fn builtin_generators_decorrelate_across_seeds() {
        let a = ctx(3, 5, 8, 1);
        let b = ctx(3, 5, 8, 2);
        for s in builtin_scenarios() {
            if s.name() == "synthetic" {
                continue; // synthetic streams are seed-independent by design
            }
            assert_ne!(
                stream(s.as_ref(), &a, 64),
                stream(s.as_ref(), &b, 64),
                "{} must vary with the seed",
                s.name()
            );
        }
    }

    #[test]
    fn ops_stay_on_the_rack_and_off_the_issuing_node() {
        for s in builtin_scenarios() {
            for node in 0..8u16 {
                let c = ctx(node, 0, 8, 42);
                for op in stream(s.as_ref(), &c, 200) {
                    if let Op::Remote { to, size, .. } = op {
                        assert!(u32::from(to) < 8, "{}: node {to} out of rack", s.name());
                        assert_ne!(to, node, "{}: self-targeted op", s.name());
                        assert!(size > 0, "{}: empty transfer", s.name());
                    }
                }
            }
        }
    }

    #[test]
    fn synthetic_reproduces_the_workload_cursor() {
        let c = ctx(0, 0, 8, 7);
        let ops = stream(
            &Synthetic::from_workload(Workload::SyncRead { size: 100 }),
            &c,
            3,
        );
        // 100B rounds to two 64B blocks: addresses step by 128.
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Remote { addr, sync, .. } => {
                    assert_eq!(addr, Addr(REMOTE_BASE + 128 * i as u64));
                    assert!(sync);
                }
                ref other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn synthetic_retargets_through_the_trait() {
        let c = ctx(0, 0, 8, 1);
        let mut g = Synthetic::from_workload(Workload::SyncRead { size: 64 }).for_core(&c);
        g.retarget(5);
        assert_eq!(g.fixed_target(), Some(5));
        match g.next_op(&c) {
            Op::Remote { to, .. } => assert_eq!(to, 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn capped_issues_exactly_the_budget_then_promises_idleness() {
        let c = ctx(0, 0, 8, 3);
        let proto = Capped::new(
            Box::new(Synthetic::from_workload(Workload::AsyncRead {
                size: 128,
                poll_every: 2,
            })),
            4,
        );
        assert_eq!(proto.name(), "synthetic-capped");
        assert_eq!(proto.poll_every(), 2, "cadence must delegate to inner");
        let mut g = proto.for_core(&c);
        assert!(!g.is_done());
        let mut real = 0;
        let mut cx = c;
        for i in 0..20u64 {
            cx.issued = i;
            if g.next_op(&cx) != Op::Idle {
                real += 1;
            }
        }
        assert_eq!(real, 4, "exactly the budget issues");
        assert!(g.is_done(), "spent generator must promise permanent idle");
        // A fresh generator from the same prototype has its own budget.
        assert!(!proto.for_core(&c).is_done());
    }

    #[test]
    fn capped_propagates_inner_idles_and_doneness() {
        let c = ctx(0, 0, 8, 3);
        let mut g = Capped::new(Box::new(Synthetic::from_workload(Workload::Idle)), 4).for_core(&c);
        let mut cx = c;
        for i in 0..10u64 {
            cx.issued = i;
            // Inner idles pass through without burning the budget...
            assert_eq!(g.next_op(&cx), Op::Idle);
        }
        // ...and a permanently idle inner makes the wrapper done even with
        // budget left.
        assert!(g.is_done());
    }

    #[test]
    fn closed_loop_stalls_at_the_window_and_draws_think_time() {
        let c = ctx(0, 0, 8, 17);
        let proto = ClosedLoop::new(Box::new(KvStore::default()), 4, 100);
        assert_eq!(proto.name(), "kv-store-closed");
        assert_eq!(proto.poll_every(), 1, "closed loops poll eagerly");
        let mut g = proto.for_core(&c);
        let mut cx = c;
        // At the window: idle, and the inner scenario is not consulted.
        cx.inflight = 4;
        for _ in 0..8 {
            assert_eq!(g.next_op(&cx), Op::Idle);
        }
        // Below the window: a real op, then a think window, alternating.
        cx.inflight = 0;
        let mut real = 0;
        let mut thinks = 0;
        for i in 0..40u64 {
            cx.issued = i;
            match g.next_op(&cx) {
                Op::Idle => {}
                Op::IdleFor { cycles } => {
                    assert!((1..=200).contains(&cycles), "think {cycles}");
                    thinks += 1;
                }
                _ => real += 1,
            }
        }
        assert!(real > 0 && thinks > 0);
        assert_eq!(real, thinks, "every issue owes exactly one think window");
    }

    #[test]
    fn closed_loop_replays_identically_from_the_same_ctx() {
        let c = ctx(2, 3, 8, 0xabcd);
        let run = |n: usize| {
            let proto = ClosedLoop::new(Box::new(KvStore::default()), 8, 50);
            let mut g = proto.for_core(&c);
            let mut cx = c;
            (0..n)
                .map(|i| {
                    cx.issued = i as u64;
                    cx.inflight = (i as u64) % 9;
                    g.next_op(&cx)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(256), run(256));
    }

    #[test]
    fn tenant_mix_stripes_cores_and_tags_ops() {
        let mix = TenantMix::new()
            .with_tenant(1, Box::new(KvStore::default()), 3)
            .with_tenant(2, Box::new(GraphShard::default()), 1);
        // Shares 3:1 over 16 cores: cores 0..3 mod 4 → kv,kv,kv,graph.
        let mut counts = [0u32; 3];
        for core in 0..16 {
            let c = OpCtx::bind(0, core, 8, Some(Torus3D::new(2, 2, 2)), 9);
            let g = mix.for_core(&c);
            counts[usize::from(g.tenant())] += 1;
            match g.tenant() {
                1 => assert_eq!(g.name(), "kv-store"),
                2 => assert_eq!(g.name(), "graph-shard"),
                t => panic!("unexpected tenant {t}"),
            }
        }
        assert_eq!(counts, [0, 12, 4]);
    }

    #[test]
    fn tenant_tag_survives_combinator_wrapping() {
        let mix = TenantMix::new().with_tenant(7, Box::new(KvStore::default()), 1);
        let c = ctx(0, 0, 8, 1);
        let bound = mix.for_core(&c);
        let wrapped = ClosedLoop::new(Capped::new(bound, 100).for_core(&c), 4, 0);
        assert_eq!(wrapped.tenant(), 7);
    }

    #[test]
    fn kv_service_turns_gets_into_rpcs() {
        let c = ctx(1, 0, 8, 5);
        let mut saw_rpc = false;
        for op in stream(&KvStore::default().with_service(300), &c, 300) {
            match op {
                Op::Rpc { service, size, .. } => {
                    assert_eq!(service, 300);
                    assert!([64, 128, 256, 512].contains(&size));
                    saw_rpc = true;
                }
                Op::Remote { op, .. } => {
                    assert_eq!(op, RemoteOp::Write, "only PUTs stay one-sided")
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_rpc);
    }

    #[test]
    fn zipf_head_dominates_with_skew() {
        let z = Zipf::new(64, 1.2);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut head = 0u32;
        for _ in 0..10_000 {
            if z.sample(&mut rng) == 0 {
                head += 1;
            }
        }
        // Rank 0 of Zipf(1.2) over 64 ranks carries ~28% of the mass.
        assert!((2_000..4_500).contains(&head), "head draws: {head}");
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..8_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for c in counts {
            assert!((1_700..2_300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn hotspot_concentrates_destinations_rack_wide() {
        // Tally destinations drawn by one core on each of 8 nodes: the
        // configured hot node must dominate even though it never targets
        // itself.
        let mut hits = [0u64; 8];
        for node in 0..8u16 {
            let c = ctx(node, 0, 8, 100 + u64::from(node));
            for op in stream(&ZipfHotspot::default(), &c, 500) {
                if let Op::Remote { to, .. } = op {
                    hits[usize::from(to)] += 1;
                }
            }
        }
        let hot = hits[0];
        let coldest = *hits.iter().min().expect("eight nodes");
        assert!(hot > 3 * coldest.max(1), "hot node must dominate: {hits:?}");
    }

    #[test]
    fn kv_mix_draws_only_configured_sizes() {
        let c = ctx(1, 2, 8, 5);
        for op in stream(&KvStore::default(), &c, 500) {
            if let Op::Remote { size, .. } = op {
                assert!([64, 128, 256, 512].contains(&size), "{size}");
            }
        }
    }

    #[test]
    fn graph_lists_stay_in_range_and_bulk() {
        let c = ctx(1, 2, 8, 5);
        for op in stream(&GraphShard::default(), &c, 500) {
            if let Op::Remote { size, .. } = op {
                assert!((2048..=8192).contains(&size), "{size}");
                assert!(size.is_power_of_two());
            }
        }
    }
}
