//! The simulated node: cores, caches, directories, memory, RMC pipelines,
//! interconnect, network router and rack fabric, ticked in lock step.

use std::collections::{BTreeMap, VecDeque};

use ni_coherence::{wire_of, CacheComplex, ClientKind, CohMsg, DirectoryBank, Egress};
use ni_engine::{Cycle, DelayLine};
use ni_fabric::{Fabric, FabricStats, RackConfig, RackEmulator, RemoteResp, ReplicaMap, Torus3D};
use ni_mem::{Addr, BlockAddr, MemRequestKind, MemoryController};
use ni_noc::{Coord, Interconnect, MeshNoc, MessageClass, NocNode, NocOutNoc, NocStats, Packet};
use ni_qp::QueuePair;
use ni_rmc::{NiBackend, NiFrontend, NiMsg, NiPlacement, RmcEgress, Rrpp, TraceTable};

use crate::config::{ChipConfig, TickMode, Topology};
use crate::core_model::{Core, Workload, NUMA_TID_BASE};
use crate::scenario::{core_seed, OpCtx, Scenario, Synthetic};

/// Wake timestamp meaning "only an external delivery re-activates this
/// component" (no self-driven event pending).
const NEVER: Cycle = Cycle(u64::MAX);

/// QP region base (bytes).
const QP_BASE: u64 = 0x0100_0000;
/// Per-core QP region stride (bytes).
const QP_STRIDE: u64 = 0x4000;
/// Local buffer region base (bytes).
const LBUF_BASE: u64 = 0x4000_0000;
/// Per-core local buffer size (bytes): 64 cores x 16MB = 1GB >> 16MB LLC.
const LBUF_BYTES: u64 = 0x0100_0000;

/// NOC payload: coherence or RMC messages.
#[derive(Clone, Copy, Debug)]
pub enum ChipMsg {
    /// A coherence message for a client of the given kind at the endpoint.
    Coh {
        /// Addressee kind at the destination endpoint.
        kind: ClientKind,
        /// The protocol message.
        msg: CohMsg,
    },
    /// An RMC message.
    Ni(NiMsg),
}

/// Home directory node under static block interleaving (mesh: bank per tile).
fn home_mesh(b: BlockAddr, n_banks: u32) -> NocNode {
    let t = (b.0 % u64::from(n_banks)) as u8;
    NocNode::tile(t % 8, t / 8)
}

/// Home directory node on NOC-Out (bank per LLC tile).
fn home_nocout(b: BlockAddr, n_banks: u32) -> NocNode {
    NocNode::Llc((b.0 % u64::from(n_banks)) as u8)
}

enum NocImpl {
    Mesh(MeshNoc<ChipMsg>),
    NocOut(NocOutNoc<ChipMsg>),
}

impl NocImpl {
    fn as_dyn(&mut self) -> &mut dyn Interconnect<ChipMsg> {
        match self {
            NocImpl::Mesh(m) => m,
            NocImpl::NocOut(n) => n,
        }
    }
    fn as_ref_dyn(&self) -> &dyn Interconnect<ChipMsg> {
        match self {
            NocImpl::Mesh(m) => m,
            NocImpl::NocOut(n) => n,
        }
    }
    fn stats(&self) -> &NocStats {
        match self {
            NocImpl::Mesh(m) => m.stats(),
            NocImpl::NocOut(n) => n.stats(),
        }
    }
}

/// Co-located (latch) deliveries between components at the same node.
#[derive(Debug)]
enum Latch {
    Coh {
        dst: NocNode,
        kind: ClientKind,
        src: NocNode,
        msg: CohMsg,
    },
    Ni {
        dst: NocNode,
        msg: NiMsg,
    },
    NetResp {
        backend: usize,
        resp: RemoteResp,
    },
}

/// The simulated node.
pub struct Chip {
    cfg: ChipConfig,
    now: Cycle,
    noc: NocImpl,
    /// Tile complexes `[0..n_cores)`, then edge NI complexes (NIedge only).
    complexes: Vec<CacheComplex>,
    complex_index: BTreeMap<NocNode, usize>,
    dirs: Vec<DirectoryBank>,
    dir_index: BTreeMap<NocNode, usize>,
    mcs: Vec<MemoryController>,
    mc_pending: BTreeMap<u64, (NocNode, bool)>,
    mc_seq: u64,
    /// Queue pairs, one per core.
    pub qps: Vec<QueuePair>,
    /// Cores, one per tile.
    pub cores: Vec<Core>,
    frontends: Vec<NiFrontend>,
    fe_index: BTreeMap<NocNode, usize>,
    /// Frontend index serving each complex index (for NI completions).
    fe_of_complex: BTreeMap<usize, usize>,
    backends: Vec<NiBackend>,
    backend_index: BTreeMap<NocNode, usize>,
    rrpps: Vec<Rrpp>,
    /// This chip's node id in the rack.
    node_id: u16,
    /// The rack fabric behind the network router: the rate-matching
    /// emulator for single-node runs, or a buffered
    /// [`ni_fabric::FabricPort`] the multi-node rack driver exchanges with
    /// the real transport between cycles. `Send` so whole chips can tick on
    /// worker threads.
    fabric: Box<dyn Fabric + Send>,
    /// Collected latency tomography.
    pub traces: TraceTable,
    latch: DelayLine<Latch>,
    /// Packets that could not inject yet, FIFO per source node. Only the
    /// head of each queue can possibly inject (the source's injection port
    /// serializes), so retries cost one attempt per blocked source per
    /// cycle, and point-to-point ordering per source is preserved. Ordered
    /// map: retry order across sources must be deterministic for
    /// same-seed runs to reproduce under congestion.
    backlog: BTreeMap<NocNode, VecDeque<Packet<ChipMsg>>>,
    /// Total packets across all backlog queues.
    backlog_len: usize,
    /// Every NOC endpoint with possible deliveries, precomputed once so the
    /// per-cycle drain never allocates.
    drain_nodes: Vec<NocNode>,
    /// Per-class wake timestamps ([`TickMode::Event`]): component `i` of a
    /// class is visited in its subphase iff `wake[i] <= now`. After a visit
    /// the slot is refreshed from the component's `next_activity`; every
    /// delivery path lowers the target's slot to the delivery cycle, so a
    /// message can never out-sleep its addressee. [`NEVER`] marks a
    /// component only external input can revive. Cores have no slot: their
    /// activity predicate is rescanned every cycle (see
    /// [`Chip::tick`]'s external-mutation note).
    wake_fes: Vec<Cycle>,
    wake_bes: Vec<Cycle>,
    wake_rrpps: Vec<Cycle>,
    wake_cxs: Vec<Cycle>,
    wake_dirs: Vec<Cycle>,
    /// Cycle before which the dormant fast path may skip whole ticks: the
    /// earliest self-driven event of any non-core component, recomputed at
    /// the end of every full event tick. `<= now` disables the skip.
    dormant_until: Cycle,
    /// Monotonic stamp bumped whenever a tick (or an external entry point
    /// like [`Chip::wake`]/[`Chip::poke_block`]) may have changed chip
    /// state; keys the memoized pipeline-quiescence scan below.
    activity: u64,
    /// Memoized "all non-core pipelines drained" verdict, as
    /// `(activity stamp it was computed at, verdict)`.
    pipelines_memo: (u64, bool),
    /// Memoized earliest core self-activity (min over cores of
    /// [`Core::next_activity`]), as `(activity stamp, horizon)`. Core
    /// state only changes inside full ticks and through external entry
    /// points, all of which bump the stamp, so the horizon stays exact
    /// between recomputes — this turns the dormant fast path's per-cycle
    /// core scan into one compare.
    cores_memo: (u64, Cycle),
}

// The whole node must stay `Send`: the rack driver farms chips out across
// worker threads. This fails to compile if any component regresses.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Chip>()
};

impl Chip {
    /// Build a node behind the paper's rate-matching rack emulator: every
    /// core runs `workload`, cores `>= active_cores` idle. Thin wrapper over
    /// [`Chip::with_scenario`] with a [`Synthetic`] generator.
    pub fn new(cfg: ChipConfig, workload: Workload) -> Chip {
        Chip::with_scenario(cfg, &Synthetic::from_workload(workload))
    }

    /// Build a node behind the paper's rate-matching rack emulator, every
    /// active core driven by its own generator from `scenario`.
    pub fn with_scenario(cfg: ChipConfig, scenario: &dyn Scenario) -> Chip {
        // The chip-level seed is authoritative (reproducible from the
        // ChipConfig alone, emulated or multi-node).
        let emulator = RackEmulator::new(RackConfig {
            seed: cfg.seed,
            ..cfg.rack
        });
        // The emulated rack looks like one remote peer: node 1.
        Chip::with_scenario_on(cfg, scenario, Box::new(emulator), 2, None)
    }

    /// Build a node whose network router hands traffic to `fabric` — the
    /// pre-scenario multi-node entry point, kept as a thin wrapper.
    pub fn with_fabric(
        cfg: ChipConfig,
        workload: Workload,
        fabric: Box<dyn Fabric + Send>,
    ) -> Chip {
        Chip::with_scenario_on(cfg, &Synthetic::from_workload(workload), fabric, 2, None)
    }

    /// Build a node whose network router hands traffic to `fabric`, every
    /// active core driven by its own generator from `scenario` bound with
    /// the rack geometry (`nodes` peers, `torus` when the fabric is a real
    /// [`ni_fabric::TorusFabric`]). [`crate::Rack`] is the usual caller.
    pub fn with_scenario_on(
        cfg: ChipConfig,
        scenario: &dyn Scenario,
        fabric: Box<dyn Fabric + Send>,
        nodes: u32,
        torus: Option<Torus3D>,
    ) -> Chip {
        let n = cfg.n_cores();
        let n_banks = cfg.n_banks();
        let n_edge = cfg.n_edge();
        let home: fn(BlockAddr, u32) -> NocNode = match cfg.topology {
            Topology::Mesh => home_mesh,
            Topology::NocOut => home_nocout,
        };
        let tile_node = |i: usize| -> NocNode {
            match cfg.topology {
                Topology::Mesh => NocNode::Tile(Coord::new((i % 8) as u8, (i / 8) as u8)),
                Topology::NocOut => NocNode::Tile(Coord::new((i % 8) as u8, (i / 8) as u8)),
            }
        };
        // The NI block a tile's traffic exits through: its mesh row, or its
        // NOC-Out column.
        let edge_of_tile = |i: usize| -> u8 {
            match cfg.topology {
                Topology::Mesh => (i / 8) as u8,
                Topology::NocOut => (i % 8) as u8,
            }
        };

        let noc = match cfg.topology {
            Topology::Mesh => {
                let mut m = cfg.mesh;
                m.policy = cfg.routing;
                NocImpl::Mesh(MeshNoc::new(m))
            }
            Topology::NocOut => NocImpl::NocOut(NocOutNoc::new(cfg.nocout)),
        };

        // Tile complexes: NI cache present when frontends are per tile.
        let per_tile_fe = cfg.placement.frontend_per_tile();
        let mut complexes = Vec::new();
        let mut complex_index = BTreeMap::new();
        for i in 0..n {
            let node = tile_node(i);
            complex_index.insert(node, complexes.len());
            complexes.push(CacheComplex::new(
                cfg.coherence,
                node,
                per_tile_fe,
                home,
                n_banks,
            ));
        }
        // Edge NI complexes (NIedge): the NI cache participating in
        // coherence as its own client at the NI block.
        if cfg.placement == NiPlacement::Edge {
            for r in 0..n_edge {
                let node = NocNode::NiBlock(r as u8);
                complex_index.insert(node, complexes.len());
                complexes.push(CacheComplex::new(cfg.coherence, node, true, home, n_banks));
            }
        }

        // Directory banks.
        let mut dirs = Vec::new();
        let mut dir_index = BTreeMap::new();
        for b in 0..n_banks {
            let (node, mc) = match cfg.topology {
                Topology::Mesh => {
                    let node = home_mesh(BlockAddr(u64::from(b)), n_banks);
                    let row = match node {
                        NocNode::Tile(c) => c.y,
                        _ => unreachable!(),
                    };
                    (node, NocNode::Mc(row))
                }
                Topology::NocOut => (NocNode::Llc(b as u8), NocNode::Mc(b as u8)),
            };
            dir_index.insert(node, dirs.len());
            dirs.push(DirectoryBank::new(cfg.coherence, node, mc));
        }

        let mcs = (0..n_edge)
            .map(|_| MemoryController::new(cfg.mem))
            .collect();

        // Queue pairs and cores: one per-core generator each, bound to the
        // core's place in the rack and its decorrelated seed.
        let mut qps = Vec::new();
        let mut cores = Vec::new();
        for i in 0..n {
            let wq = Addr(QP_BASE + i as u64 * QP_STRIDE);
            let cq = Addr(QP_BASE + i as u64 * QP_STRIDE + QP_STRIDE / 2);
            qps.push(QueuePair::new(i as u32, cfg.qp, wq, cq));
            let mut ctx = OpCtx::bind(cfg.node_id, i, nodes, torus, core_seed(cfg.seed, i));
            ctx.replication = cfg.rmc.replication;
            let gen: Box<dyn Scenario> = if i < cfg.active_cores {
                scenario.for_core(&ctx)
            } else {
                Synthetic::from_workload(Workload::Idle).for_core(&ctx)
            };
            cores.push(Core::new(
                i,
                i as u32,
                gen,
                ctx,
                cfg.qp,
                LBUF_BASE + i as u64 * LBUF_BYTES,
                LBUF_BYTES,
            ));
        }

        // Backends.
        let mut backends = Vec::new();
        let mut backend_index = BTreeMap::new();
        if cfg.placement.backend_per_tile() {
            for i in 0..n {
                let node = tile_node(i);
                backend_index.insert(node, backends.len());
                backends.push(NiBackend::new(
                    node,
                    i as u16,
                    cfg.rmc,
                    cfg.qp,
                    home,
                    n_banks,
                    Some(NocNode::NiBlock(edge_of_tile(i))),
                ));
            }
        } else if cfg.placement != NiPlacement::Numa {
            for r in 0..n_edge {
                let node = NocNode::NiBlock(r as u8);
                backend_index.insert(node, backends.len());
                backends.push(NiBackend::new(
                    node, r as u16, cfg.rmc, cfg.qp, home, n_banks, None,
                ));
            }
        }

        // K-way replication: every chip derives the identical placement
        // from (geometry, seed, k) — no coordination messages — and every
        // backend shares one read-only map. `k == 1` (the default) leaves
        // the map out entirely: the recovery paths stay off and runs stay
        // bit-identical with pre-replication builds.
        if cfg.rmc.replication.enabled() {
            let rep = cfg.rmc.replication;
            let map = std::sync::Arc::new(match torus {
                Some(t) => ReplicaMap::new(t, rep.seed, rep.k),
                None => ReplicaMap::ring(nodes, rep.seed, rep.k),
            });
            for be in &mut backends {
                be.set_replicas(Some(std::sync::Arc::clone(&map)));
            }
        }

        // Frontends.
        let mut frontends = Vec::new();
        let mut fe_index = BTreeMap::new();
        let mut fe_of_complex = BTreeMap::new();
        match cfg.placement {
            NiPlacement::Numa => {}
            NiPlacement::Edge => {
                for r in 0..n_edge {
                    let node = NocNode::NiBlock(r as u8);
                    let row_qps: Vec<u32> = (0..n as u32)
                        .filter(|&i| edge_of_tile(i as usize) == r as u8)
                        .collect();
                    fe_index.insert(node, frontends.len());
                    fe_of_complex.insert(complex_index[&node], frontends.len());
                    frontends.push(NiFrontend::new(node, node, row_qps, cfg.rmc));
                }
            }
            NiPlacement::PerTile | NiPlacement::Split => {
                for i in 0..n {
                    let node = tile_node(i);
                    let backend = if cfg.placement == NiPlacement::PerTile {
                        node
                    } else {
                        NocNode::NiBlock(edge_of_tile(i))
                    };
                    fe_index.insert(node, frontends.len());
                    fe_of_complex.insert(i, frontends.len());
                    frontends.push(NiFrontend::new(node, backend, vec![i as u32], cfg.rmc));
                }
            }
        }

        // RRPPs: always across the edge.
        let rrpps: Vec<Rrpp> = (0..n_edge)
            .map(|r| Rrpp::new(NocNode::NiBlock(r as u8), cfg.rmc, home, n_banks))
            .collect();

        // Every endpoint the per-cycle NOC drain must visit, computed once.
        let mut drain_nodes: Vec<NocNode> = Vec::with_capacity(96);
        for i in 0..n {
            drain_nodes.push(tile_node(i));
        }
        for r in 0..n_edge as u8 {
            drain_nodes.push(NocNode::NiBlock(r));
            drain_nodes.push(NocNode::Mc(r));
        }
        if cfg.topology == Topology::NocOut {
            for c in 0..cfg.nocout.columns {
                drain_nodes.push(NocNode::Llc(c));
            }
        }

        let wake_fes = vec![Cycle::ZERO; frontends.len()];
        let wake_bes = vec![Cycle::ZERO; backends.len()];
        let wake_rrpps = vec![Cycle::ZERO; rrpps.len()];
        let wake_cxs = vec![Cycle::ZERO; complexes.len()];
        let wake_dirs = vec![Cycle::ZERO; dirs.len()];
        Chip {
            cfg,
            now: Cycle::ZERO,
            noc,
            complexes,
            complex_index,
            dirs,
            dir_index,
            mcs,
            mc_pending: BTreeMap::new(),
            mc_seq: 0,
            qps,
            cores,
            frontends,
            fe_index,
            fe_of_complex,
            backends,
            backend_index,
            rrpps,
            node_id: cfg.node_id,
            fabric,
            traces: TraceTable::new(),
            latch: DelayLine::new(),
            backlog: BTreeMap::new(),
            backlog_len: 0,
            drain_nodes,
            wake_fes,
            wake_bes,
            wake_rrpps,
            wake_cxs,
            wake_dirs,
            dormant_until: Cycle::ZERO,
            activity: 0,
            // Stamps that can never match `activity`: first query computes.
            pipelines_memo: (u64::MAX, false),
            cores_memo: (u64::MAX, Cycle::ZERO),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// This chip's node id in the rack.
    pub fn node_id(&self) -> u16 {
        self.node_id
    }

    /// Traffic counters of the fabric endpoint behind the network router.
    /// Single-node chips see the emulator's totals; rack-driven chips see
    /// their own port's view (rack-wide totals come from
    /// [`Rack::fabric_stats`](crate::Rack::fabric_stats)).
    pub fn fabric_stats(&self) -> FabricStats {
        self.fabric.stats()
    }

    /// Directly install a token in this node's memory hierarchy, bypassing
    /// timing (experiment setup: seed the data a remote peer will fetch).
    /// Updates the home LLC bank's copy in place when one exists, else the
    /// backing store; private L1 copies are not touched.
    pub fn poke_block(&mut self, b: BlockAddr, value: u64) {
        // Direct state surgery: invalidate the quiescence memo. (Pokes
        // don't schedule work, but staleness here must never be possible.)
        self.activity = self.activity.wrapping_add(1);
        let home = self.home_of(b);
        if let Some(&d) = self.dir_index.get(&home) {
            if self.dirs[d].poke_llc(b, value) {
                return;
            }
        }
        let m = usize::from(self.edge_of_node(home));
        self.mcs[m].poke(b, value);
    }

    /// Directly read a token from this node's memory hierarchy, bypassing
    /// timing (end-to-end data verification): the home LLC bank's copy if
    /// resident (NUCA writes land there first), else the backing store.
    pub fn peek_block(&self, b: BlockAddr) -> u64 {
        let home = self.home_of(b);
        if let Some(&d) = self.dir_index.get(&home) {
            if let Some(v) = self.dirs[d].peek_llc(b) {
                return v;
            }
        }
        let m = usize::from(self.edge_of_node(home));
        self.mcs[m].peek(b)
    }

    /// Interconnect statistics.
    pub fn noc_stats(&self) -> &NocStats {
        self.noc.stats()
    }

    /// Application payload bytes moved so far: remote-read data delivered
    /// into local buffers by RCPs plus data sent out by RRPPs (§6.2's
    /// bandwidth definition).
    pub fn app_payload_bytes(&self) -> u64 {
        let be: u64 = self
            .backends
            .iter()
            .map(|b| b.stats().payload_bytes.get())
            .sum();
        let rr: u64 = self
            .rrpps
            .iter()
            .map(|r| r.stats().payload_bytes.get())
            .sum();
        be + rr
    }

    /// Total operations completed by all cores (successful and failed —
    /// see [`Chip::failed_ops`]).
    pub fn completed_ops(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.completed).sum()
    }

    /// Operations that completed with an error CQ status (the NI's ITT
    /// watchdog abandoned the transfer after a link or node death).
    pub fn failed_ops(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.failed).sum()
    }

    /// Remote *reads* that completed with an error CQ status — the
    /// user-visible request losses an availability study counts (writes
    /// are reported separately through the quorum counters).
    pub fn failed_reads(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.failed_reads).sum()
    }

    /// Operations that completed ok but through a recovery path: a WQ
    /// replay to an alternate replica, or a write quorum that absorbed a
    /// dead fan-out leg.
    pub fn degraded_ops(&self) -> u64 {
        self.cores.iter().map(|c| c.stats.degraded).sum()
    }

    /// Aggregate RGP/RCP backend statistics over every backend of this
    /// chip — the per-node view of ITT pressure, timeouts, and retries.
    pub fn backend_stats(&self) -> ni_rmc::BackendStats {
        let mut total = ni_rmc::BackendStats::default();
        for b in &self.backends {
            total.merge(b.stats());
        }
        total
    }

    /// Chip-wide distribution of end-to-end remote-read latencies, merged
    /// over all cores (see [`Core::read_latency_histogram`] — covers sync,
    /// async, and NUMA reads alike).
    pub fn read_latency_histogram(&self) -> ni_engine::Histogram {
        let mut h = ni_engine::Histogram::new();
        for c in &self.cores {
            h.merge(c.read_latency_histogram());
        }
        h
    }

    /// Chip-wide latency distribution of *degraded* remote reads — those
    /// that completed only through a recovery path — kept apart from
    /// [`Chip::read_latency_histogram`] so failover cost is measurable
    /// instead of smearing the healthy tail.
    pub fn degraded_read_latency_histogram(&self) -> ni_engine::Histogram {
        let mut h = ni_engine::Histogram::new();
        for c in &self.cores {
            h.merge(c.degraded_read_latency_histogram());
        }
        h
    }

    /// Per-tenant SLO accumulators: every core's application-level counts
    /// and read-latency distribution, grouped by the tenant tag its bound
    /// generator reports ([`Scenario::tenant`]).
    /// Single-tenant scenarios land under tag 0; a
    /// [`TenantMix`](crate::TenantMix) splits cores across its tags. Merge
    /// chip maps rack-wide with [`ni_metrics::merge_tenant_stats`].
    pub fn tenant_stats(&self) -> ni_metrics::TenantStats {
        let mut map = ni_metrics::TenantStats::new();
        for c in &self.cores {
            let acc = map.entry(c.scenario().tenant()).or_default();
            acc.issued += c.stats.issued;
            acc.completed += c.stats.completed;
            acc.failed += c.stats.failed;
            acc.degraded += c.stats.degraded;
            acc.bytes += c.stats.bytes_completed;
            acc.latency.merge(c.read_latency_histogram());
        }
        map
    }

    /// Rebind every active core to a fresh generator from the prototype
    /// `scenario` (idle filler cores stay idle) and wake the chip. The
    /// phase-change entry point for diurnal/bursty serving studies:
    /// in-flight operations drain normally, new issues come from the new
    /// phase's generators, per-core seeds are unchanged.
    pub fn reset_scenario(&mut self, scenario: &dyn Scenario) {
        let active = self.cfg.active_cores;
        for c in self.cores.iter_mut().take(active) {
            c.rebind_scenario(scenario);
        }
        self.wake();
    }

    /// Mean zero-load RRPP service latency measured so far.
    pub fn rrpp_mean_latency(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0u32;
        for r in &self.rrpps {
            let s = r.stats().serviced.get();
            if s > 0 {
                sum += r.mean_latency() * s as f64;
                n += s as u32;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    }

    /// True when ticking this chip cannot change any observable state: all
    /// cores are permanently idle ([`Core::is_quiescent`]), every pipeline
    /// (frontends, backends, RRPPs, caches, directories, memory) is
    /// drained, and nothing is in flight on the NOC or the internal
    /// latches. A quiescent chip's only residual activity would be the NI
    /// frontends' self-absorbing WQ poll loop, which can produce no
    /// operations, no fabric traffic, and no completions — so the rack
    /// driver's fast path skips such chips wholesale (provided their fabric
    /// endpoint is also idle).
    pub fn is_quiescent(&self) -> bool {
        self.backlog_len == 0
            && self.latch.is_empty()
            && self.cores.iter().all(Core::is_quiescent)
            && self.mc_pending.is_empty()
            && self.noc.as_ref_dyn().is_idle()
            && self.frontends.iter().all(NiFrontend::is_quiescent)
            && self.backends.iter().all(NiBackend::is_quiescent)
            && self.rrpps.iter().all(Rrpp::is_quiescent)
            && self.complexes.iter().all(CacheComplex::is_quiescent)
            && self.dirs.iter().all(DirectoryBank::is_quiescent)
            && self.mcs.iter().all(|m| m.inflight() == 0)
    }

    /// Advance the node by one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        // Advance the fabric first so this cycle's arrivals are visible.
        // For a chip-owned fabric (emulator, direct TorusFabric) this is
        // the once-per-cycle advance; a rack-driven chip holds a buffered
        // port whose tick is a no-op (the driver ticks the shared fabric).
        self.fabric.tick(now);
        match self.cfg.tick_mode {
            TickMode::Poll => self.tick_poll(now),
            TickMode::Event => self.tick_event(now),
        }
    }

    /// The poll-everything reference tick: every component of every class
    /// is visited every cycle.
    fn tick_poll(&mut self, now: Cycle) {
        // Quiesced-chip fast path: nothing to do and nothing arriving —
        // just let time pass. The core scan is recomputed every cycle
        // (cheap: it exits at the first active core) so external mutation
        // through `cores`/`chip_mut` can never be masked by a stale cache;
        // the pipeline scan is memoized on the activity stamp, which every
        // external entry point bumps.
        if self.fabric.is_idle()
            && self.cores.iter().all(Core::is_quiescent)
            && self.pipelines_quiescent_cached()
        {
            self.now += 1;
            return;
        }
        self.retry_backlog(now);
        self.pump_fabric(now);
        self.pump_latch(now);
        self.tick_cores(now, false);
        self.tick_frontends(now, false);
        self.tick_rmc_backends(now, false);
        self.tick_complexes(now, false);
        self.tick_dirs(now, false);
        self.tick_mcs(now);
        self.noc.as_dyn().tick(now);
        self.drain_noc(now);
        self.now += 1;
        self.activity = self.activity.wrapping_add(1);
    }

    /// The event-driven tick: identical subphase order to
    /// [`Chip::tick_poll`], but each non-core component is visited only
    /// when its wake timestamp is due, and a chip whose every self-driven
    /// event lies in the future skips the cycle outright. Every skipped
    /// visit is provably the no-op the poll loop would have performed, so
    /// the two modes stay bit-identical in all observables.
    fn tick_event(&mut self, now: Cycle) {
        // Dormant fast path: all pipeline work is scheduled past `now`, the
        // fabric endpoint is silent, and every core is inert this cycle
        // (declared-idle window, passively awaiting a completion, or done).
        // The core horizon is memoized on the activity stamp, which every
        // full tick and external entry point bumps — same staleness
        // guarantee as the poll fast path's pipeline memo above.
        if now < self.dormant_until && now < self.cores_horizon(now) && self.fabric.is_idle() {
            self.now += 1;
            return;
        }
        self.retry_backlog(now);
        self.pump_fabric(now);
        self.pump_latch(now);
        self.tick_cores(now, true);
        self.tick_frontends(now, true);
        self.tick_rmc_backends(now, true);
        self.tick_complexes(now, true);
        self.tick_dirs(now, true);
        self.tick_mcs(now);
        // The NOC ticks and drains unconditionally in a full tick, exactly
        // like the poll loop (an idle NOC tick is a strict no-op; skipping
        // happens at whole-cycle granularity in the dormant path instead).
        self.noc.as_dyn().tick(now);
        self.drain_noc(now);
        self.now += 1;
        self.activity = self.activity.wrapping_add(1);
        self.dormant_until = self.compute_dormant_until();
    }

    /// Number of *full* (non-skipped) ticks this chip has executed — the
    /// activity-stamp reading, which advances once per full tick plus once
    /// per external mutation. `now() - full_ticks()` is the cycles the
    /// fast paths absorbed; benches and the tick-cost table in
    /// ARCHITECTURE.md use the ratio to verify dormancy actually engages.
    pub fn full_ticks(&self) -> u64 {
        self.activity
    }

    /// Earliest cycle any core acts on its own, memoized on the activity
    /// stamp (`NEVER` when every core is passive). While the stamp is
    /// unchanged no core state has moved, so the absolute horizon computed
    /// once stays exact; a core active *right now* yields `horizon == now`,
    /// which forces the full tick that bumps the stamp.
    fn cores_horizon(&mut self, now: Cycle) -> Cycle {
        if self.cores_memo.0 == self.activity {
            return self.cores_memo.1;
        }
        let mut h = NEVER;
        for c in &self.cores {
            if let Some(t) = c.next_activity(now) {
                h = h.min(t.max(now));
            }
        }
        self.cores_memo = (self.activity, h);
        h
    }

    /// Earliest future cycle any non-core component acts on its own, seen
    /// from `self.now` (the next cycle to simulate). `self.now` itself when
    /// backlogged or mid-NOC-flight — those need the full per-cycle loop.
    fn compute_dormant_until(&self) -> Cycle {
        if self.backlog_len != 0 || !self.noc.as_ref_dyn().is_idle() {
            return self.now;
        }
        let mut next = NEVER;
        for &w in self
            .wake_fes
            .iter()
            .chain(&self.wake_bes)
            .chain(&self.wake_rrpps)
            .chain(&self.wake_cxs)
            .chain(&self.wake_dirs)
        {
            next = next.min(w);
        }
        if let Some(t) = self.latch.next_ready_at() {
            next = next.min(t);
        }
        for m in &self.mcs {
            if let Some(t) = m.next_ready_at() {
                next = next.min(t);
            }
        }
        next
    }

    /// Earliest cycle at which this chip does anything on its own: pending
    /// pipeline or NOC work now, a scheduled component event, or a core
    /// leaving its declared-idle window. `None` means only external input
    /// (fabric arrivals, [`Chip::wake`]-style mutation) re-activates it.
    /// Only meaningful under [`TickMode::Event`], where the wake
    /// timestamps are maintained; the rack driver and benches use it to
    /// reason about idle-until-X chips.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        let mut next = if self.dormant_until <= self.now {
            // Pipeline/NOC work this very cycle (or stale after external
            // mutation — conservative either way).
            return Some(self.now);
        } else {
            self.dormant_until
        };
        for c in &self.cores {
            if let Some(t) = c.next_activity(self.now) {
                next = next.min(t.max(self.now));
            }
        }
        (next != NEVER).then_some(next)
    }

    /// Re-activate everything after external mutation: reset every wake
    /// timestamp and the dormant horizon, and bump the activity stamp so
    /// the memoized quiescence verdict is recomputed. The rack driver
    /// calls this from `chip_mut`; anything else that reaches around the
    /// public API to mutate components directly should too.
    pub fn wake(&mut self) {
        self.dormant_until = Cycle::ZERO;
        for w in self
            .wake_fes
            .iter_mut()
            .chain(&mut self.wake_bes)
            .chain(&mut self.wake_rrpps)
            .chain(&mut self.wake_cxs)
            .chain(&mut self.wake_dirs)
        {
            *w = Cycle::ZERO;
        }
        self.activity = self.activity.wrapping_add(1);
    }

    /// Memoized non-core half of [`Chip::is_quiescent`], keyed on the
    /// activity stamp: in the steady quiesced state the full pipeline scan
    /// runs once and each later cycle pays two loads. Any tick or external
    /// entry point bumps the stamp and forces a recompute.
    fn pipelines_quiescent_cached(&mut self) -> bool {
        if self.pipelines_memo.0 == self.activity {
            return self.pipelines_memo.1;
        }
        let q = self.pipelines_quiescent();
        self.pipelines_memo = (self.activity, q);
        q
    }

    /// Fresh scan: every non-core pipeline, buffer, and queue is drained.
    fn pipelines_quiescent(&self) -> bool {
        self.backlog_len == 0
            && self.latch.is_empty()
            && self.mc_pending.is_empty()
            && self.noc.as_ref_dyn().is_idle()
            && self.frontends.iter().all(NiFrontend::is_quiescent)
            && self.backends.iter().all(NiBackend::is_quiescent)
            && self.rrpps.iter().all(Rrpp::is_quiescent)
            && self.complexes.iter().all(CacheComplex::is_quiescent)
            && self.dirs.iter().all(DirectoryBank::is_quiescent)
            && self.mcs.iter().all(|m| m.inflight() == 0)
    }

    /// Run for `cycles`. Under [`TickMode::Event`] with a fabric that
    /// reports no upcoming self-driven events ([`Fabric::next_event`]
    /// `None`), idle-until-X stretches are jumped in one step instead of
    /// being skipped cycle by cycle.
    pub fn run(&mut self, cycles: u64) {
        let end = Cycle(self.now.0.saturating_add(cycles));
        while self.now < end {
            if self.cfg.tick_mode == TickMode::Event
                && self.now < self.dormant_until
                && self.fabric.next_event(self.now).is_none()
            {
                if let Some(to) = self.jump_target(end) {
                    self.now = to;
                    continue;
                }
            }
            self.tick();
        }
    }

    /// Next cycle `<= end` this chip must actually simulate, when strictly
    /// ahead of `self.now`: the earlier of the pipelines' dormant horizon
    /// and every core's own next-activity time. `None` when something acts
    /// this very cycle (no jump). Caller guarantees the fabric stays
    /// silent for the whole window.
    fn jump_target(&self, end: Cycle) -> Option<Cycle> {
        let now = self.now;
        let mut next = self.dormant_until;
        for c in &self.cores {
            match c.next_activity(now) {
                None => {}
                Some(t) if t > now => next = next.min(t),
                Some(_) => return None,
            }
        }
        Some(next.min(end))
    }

    // ---- plumbing ---------------------------------------------------------

    fn inject(&mut self, pkt: Packet<ChipMsg>) {
        // Same-node delivery short-circuits the NOC (components on a tile
        // talk through the tile's crossbar, one cycle).
        if pkt.src == pkt.dst {
            let lat = match pkt.payload {
                ChipMsg::Coh { kind, msg } => Latch::Coh {
                    dst: pkt.dst,
                    kind,
                    src: pkt.src,
                    msg,
                },
                ChipMsg::Ni(msg) => Latch::Ni { dst: pkt.dst, msg },
            };
            self.latch.push_after(self.now, 1, lat);
            return;
        }
        // Preserve per-source FIFO order: a fresh packet must queue behind
        // any packets from the same source still waiting to inject.
        if let Some(q) = self.backlog.get_mut(&pkt.src) {
            if !q.is_empty() {
                q.push_back(pkt);
                self.backlog_len += 1;
                return;
            }
        }
        if let Err(p) = self.noc.as_dyn().try_inject(self.now, pkt) {
            self.backlog.entry(p.src).or_default().push_back(p);
            self.backlog_len += 1;
        }
    }

    fn retry_backlog(&mut self, now: Cycle) {
        if self.backlog_len == 0 {
            return;
        }
        for q in self.backlog.values_mut() {
            // Drain each source head-first; stop at the first rejection
            // (the injection port is serialized, so the rest cannot go
            // either).
            while let Some(pkt) = q.pop_front() {
                match self.noc.as_dyn().try_inject(now, pkt) {
                    Ok(()) => self.backlog_len -= 1,
                    Err(p) => {
                        q.push_front(p);
                        break;
                    }
                }
            }
        }
    }

    fn coh_packet(src: NocNode, e: Egress, from_dir: bool) -> Packet<ChipMsg> {
        let meta = wire_of(&e.msg, from_dir);
        let mut pkt = Packet::new(
            src,
            e.dst,
            meta.class,
            meta.flits,
            ChipMsg::Coh {
                kind: e.kind,
                msg: e.msg,
            },
        );
        if meta.dir_sourced {
            pkt = pkt.dir_sourced();
        }
        pkt
    }

    fn ni_packet(src: NocNode, dst: NocNode, msg: NiMsg) -> Packet<ChipMsg> {
        let class = match msg {
            NiMsg::WqFwd { .. } | NiMsg::CqNotify { .. } => MessageClass::NiCmd,
            NiMsg::NetOut(_) | NiMsg::NetIn(_) => MessageClass::NiData,
        };
        Packet::new(src, dst, class, msg.flits(), ChipMsg::Ni(msg))
    }

    /// Responses and incoming remote requests arriving from the rack.
    fn pump_fabric(&mut self, now: Cycle) {
        while let Some(resp) = self.fabric.pop_response(now, self.node_id) {
            let bid = NiBackend::backend_of_tid(resp.tid) as usize;
            if resp.tid >= NUMA_TID_BASE {
                // NUMA-mode response: travels edge -> core tile over the NOC.
                let tile = (resp.tid & 0xffff_ffff) as usize;
                let row = self.edge_of_tile(tile);
                let pkt = Self::ni_packet(
                    NocNode::NiBlock(row),
                    self.tile_node(tile),
                    NiMsg::NetIn(resp),
                );
                self.inject(pkt);
            } else if self.cfg.placement.backend_per_tile() {
                // NIper-tile indirection: the response detours via the edge
                // NI to the issuing tile's backend (§6.2).
                let row = self.edge_of_tile(bid);
                let pkt = Self::ni_packet(
                    NocNode::NiBlock(row),
                    self.tile_node(bid),
                    NiMsg::NetIn(resp),
                );
                self.inject(pkt);
            } else {
                // Backend co-located with the network router.
                self.latch
                    .push_after(now, 2, Latch::NetResp { backend: bid, resp });
            }
        }
        while let Some(req) = self.fabric.pop_incoming(now, self.node_id) {
            // Address-interleaved to the RRPP nearest the home bank (§4.3).
            let home = self.home_of(req.remote_block);
            let r = usize::from(self.edge_of_node(home));
            self.rrpps[r].on_request(now, req);
            self.wake_rrpps[r] = self.wake_rrpps[r].min(now);
        }
    }

    fn pump_latch(&mut self, now: Cycle) {
        while let Some(l) = self.latch.pop_ready(now) {
            match l {
                Latch::Coh {
                    dst,
                    kind,
                    src,
                    msg,
                } => self.deliver_coh(now, dst, kind, src, msg),
                Latch::Ni { dst, msg } => self.deliver_ni(now, dst, msg),
                Latch::NetResp { backend, resp } => {
                    self.backends[backend].on_response(now, resp);
                    self.wake_bes[backend] = self.wake_bes[backend].min(now);
                }
            }
        }
    }

    fn tick_cores(&mut self, now: Cycle, gated: bool) {
        for i in 0..self.cores.len() {
            // Event mode skips cores that provably do nothing this cycle
            // (the predicate is exact, never late — see
            // [`Core::next_activity`]). A ticked core may have submitted
            // into its tile complex, so that complex must be visited too.
            if gated && self.cores[i].next_activity(now).is_none_or(|t| t > now) {
                continue;
            }
            self.cores[i].tick(now, &mut self.qps[i], &mut self.complexes[i]);
            self.wake_cxs[i] = self.wake_cxs[i].min(now);
            if let Some(req) = self.cores[i].take_numa_request() {
                // NUMA issue: request packet core tile -> edge -> rack.
                let row = self.edge_of_tile(i);
                let pkt =
                    Self::ni_packet(self.tile_node(i), NocNode::NiBlock(row), NiMsg::NetOut(req));
                self.inject(pkt);
            }
            for t in self.cores[i].drain_traces() {
                self.traces.record(t);
            }
        }
    }

    fn tick_frontends(&mut self, now: Cycle, gated: bool) {
        for f in 0..self.frontends.len() {
            if gated && self.wake_fes[f] > now {
                continue;
            }
            let fe_node = self.frontends[f].node();
            let cx = self.complex_index[&fe_node];
            self.frontends[f].tick(now, &mut self.qps, &mut self.complexes[cx]);
            while let Some(e) = self.frontends[f].pop_egress() {
                self.dispatch_rmc(now, fe_node, e);
            }
            if gated {
                // The frontend may have submitted into its complex; the
                // complex subphase runs later this same cycle.
                self.wake_cxs[cx] = self.wake_cxs[cx].min(now);
                self.wake_fes[f] = self.frontends[f].next_activity(now + 1).unwrap_or(NEVER);
            }
        }
    }

    fn tick_rmc_backends(&mut self, now: Cycle, gated: bool) {
        for b in 0..self.backends.len() {
            if gated && self.wake_bes[b] > now {
                continue;
            }
            self.backends[b].tick(now);
            let node = self.backends[b].node();
            while let Some(e) = self.backends[b].pop_egress() {
                self.dispatch_rmc(now, node, e);
            }
            if gated {
                self.wake_bes[b] = self.backends[b].next_activity(now + 1).unwrap_or(NEVER);
            }
        }
        for r in 0..self.rrpps.len() {
            if gated && self.wake_rrpps[r] > now {
                continue;
            }
            self.rrpps[r].tick(now);
            let node = self.rrpps[r].node();
            while let Some(e) = self.rrpps[r].pop_egress() {
                self.dispatch_rmc(now, node, e);
            }
            while let Some(s) = self.rrpps[r].pop_latency_sample() {
                self.fabric.record_rrpp_latency(self.node_id, s);
            }
            if gated {
                self.wake_rrpps[r] = self.rrpps[r].next_activity(now + 1).unwrap_or(NEVER);
            }
        }
    }

    fn dispatch_rmc(&mut self, now: Cycle, src: NocNode, e: RmcEgress) {
        match e {
            RmcEgress::Coh(eg) => {
                let pkt = Self::coh_packet(src, eg, false);
                self.inject(pkt);
            }
            RmcEgress::Ni { dst, msg } => {
                if dst == src {
                    self.latch.push_after(now, 1, Latch::Ni { dst, msg });
                } else {
                    let pkt = Self::ni_packet(src, dst, msg);
                    self.inject(pkt);
                }
            }
            RmcEgress::Net(req) => {
                self.fabric.inject(now, self.node_id, req);
            }
            RmcEgress::NetResp(resp) => {
                // Response leaves for the remote requester. The emulator
                // backend drops it (bandwidth already accounted by RRPP
                // stats); a real fabric routes it home.
                self.fabric.inject_resp(now, self.node_id, resp);
            }
            RmcEgress::Trace(t) => self.traces.record(t),
        }
    }

    fn tick_complexes(&mut self, now: Cycle, gated: bool) {
        for c in 0..self.complexes.len() {
            if gated && self.wake_cxs[c] > now {
                continue;
            }
            self.complexes[c].tick(now);
            let node = self.complexes[c].node();
            while let Some(e) = self.complexes[c].pop_egress() {
                let pkt = Self::coh_packet(node, e, false);
                self.inject(pkt);
            }
            while let Some(done) = self.complexes[c].pop_completion() {
                match done.origin {
                    ni_coherence::AccessOrigin::Core => {
                        let i = c; // tile complexes come first
                        self.cores[i].on_cache_completion(
                            done.at,
                            done.tag,
                            done.value,
                            &mut self.qps[i],
                        );
                    }
                    ni_coherence::AccessOrigin::Ni => {
                        let f = self.fe_of_complex[&c];
                        self.frontends[f].on_cache_completion(
                            done.at,
                            done.tag,
                            done.value,
                            &mut self.qps,
                        );
                        let fe_node = self.frontends[f].node();
                        while let Some(e) = self.frontends[f].pop_egress() {
                            self.dispatch_rmc(now, fe_node, e);
                        }
                        // The completion may have queued frontend work
                        // (CQ stores); its subphase already ran this
                        // cycle, so it wakes next cycle — exactly when
                        // the poll loop would next act on it.
                        self.wake_fes[f] = self.wake_fes[f].min(now);
                    }
                }
            }
            if gated {
                self.wake_cxs[c] = self.complexes[c].next_activity(now + 1).unwrap_or(NEVER);
            }
        }
    }

    fn tick_dirs(&mut self, now: Cycle, gated: bool) {
        for d in 0..self.dirs.len() {
            if gated && self.wake_dirs[d] > now {
                continue;
            }
            self.dirs[d].tick(now);
            let node = self.dirs[d].node();
            while let Some(e) = self.dirs[d].pop_egress() {
                let pkt = Self::coh_packet(node, e, true);
                self.inject(pkt);
            }
            if gated {
                self.wake_dirs[d] = self.dirs[d].next_activity(now + 1).unwrap_or(NEVER);
            }
        }
    }

    fn tick_mcs(&mut self, now: Cycle) {
        for m in 0..self.mcs.len() {
            while let Some(reply) = self.mcs[m].pop_ready(now) {
                let (to, _) = self.mc_pending.remove(&reply.tag).expect("tracked request");
                let msg = match reply.kind {
                    MemRequestKind::Read => CohMsg::NcData {
                        block: reply.block,
                        value: reply.value,
                    },
                    MemRequestKind::Write => CohMsg::NcWAck { block: reply.block },
                };
                let pkt = Self::coh_packet(
                    NocNode::Mc(m as u8),
                    Egress {
                        dst: to,
                        kind: ClientKind::Directory,
                        msg,
                    },
                    false,
                );
                self.inject(pkt);
            }
        }
    }

    fn drain_noc(&mut self, now: Cycle) {
        // Visit every endpoint that may have deliveries (list precomputed
        // at construction: this runs every cycle).
        for i in 0..self.drain_nodes.len() {
            let node = self.drain_nodes[i];
            while let Some(pkt) = self.noc.as_dyn().eject(node) {
                self.dispatch_packet(now, pkt);
            }
        }
    }

    fn dispatch_packet(&mut self, now: Cycle, pkt: Packet<ChipMsg>) {
        match pkt.payload {
            ChipMsg::Coh { kind, msg } => self.deliver_coh(now, pkt.dst, kind, pkt.src, msg),
            ChipMsg::Ni(msg) => self.deliver_ni(now, pkt.dst, msg),
        }
    }

    fn deliver_coh(
        &mut self,
        now: Cycle,
        dst: NocNode,
        kind: ClientKind,
        src: NocNode,
        msg: CohMsg,
    ) {
        match (dst, kind) {
            (NocNode::Mc(m), _) => {
                // Memory controller: service NcRead/NcWrite from a bank.
                let tag = self.mc_seq;
                self.mc_seq += 1;
                let (block, kind_req, value) = match msg {
                    CohMsg::NcRead { block } => (block, MemRequestKind::Read, 0),
                    CohMsg::NcWrite { block, value } => (block, MemRequestKind::Write, value),
                    other => panic!("MC received {other:?}"),
                };
                self.mc_pending.insert(tag, (src, true));
                self.mcs[usize::from(m)]
                    .push(now, block, kind_req, value, tag)
                    .expect("uncapped memory controller");
            }
            (_, ClientKind::Directory) => {
                let d = self.dir_index[&dst];
                self.dirs[d].deliver(now, src, msg);
                self.wake_dirs[d] = self.wake_dirs[d].min(now);
            }
            (_, ClientKind::Cache) => {
                let c = self.complex_index[&dst];
                self.complexes[c].deliver(now, msg);
                self.wake_cxs[c] = self.wake_cxs[c].min(now);
            }
            (_, ClientKind::NiData) => {
                // RRPP or backend data path at this node.
                let (block, value, is_data) = match msg {
                    CohMsg::NcData { block, value } | CohMsg::DataS { block, value } => {
                        (block, value, true)
                    }
                    CohMsg::NcWAck { block } => (block, 0, false),
                    other => panic!("NiData client received {other:?}"),
                };
                let r = usize::from(self.edge_of_node(dst));
                let rrpp_has = self.rrpps[r].has_pending(block);
                if rrpp_has {
                    if is_data {
                        self.rrpps[r].on_nc_data(now, block, value);
                    } else {
                        self.rrpps[r].on_nc_wack(now, block);
                    }
                    self.wake_rrpps[r] = self.wake_rrpps[r].min(now);
                } else if let Some(&b) = self.backend_index.get(&dst) {
                    if is_data {
                        self.backends[b].on_nc_data(now, block, value);
                    } else {
                        self.backends[b].on_nc_wack(now, block);
                    }
                    self.wake_bes[b] = self.wake_bes[b].min(now);
                }
            }
        }
    }

    fn deliver_ni(&mut self, now: Cycle, dst: NocNode, msg: NiMsg) {
        match msg {
            NiMsg::WqFwd { entry, qp, fe } => {
                let b = self.backend_index[&dst];
                self.backends[b].on_wq_entry(now, entry, qp, fe);
                self.wake_bes[b] = self.wake_bes[b].min(now);
            }
            NiMsg::CqNotify {
                qp,
                wq_id,
                ok,
                degraded,
            } => {
                let f = self.fe_index[&dst];
                self.frontends[f].on_notify(qp, wq_id, ok, degraded);
                self.wake_fes[f] = self.wake_fes[f].min(now);
            }
            NiMsg::NetOut(req) => {
                // Arrived at the edge: hand to the network router / rack.
                self.fabric.inject(now, self.node_id, req);
            }
            NiMsg::NetIn(resp) => {
                if resp.tid >= NUMA_TID_BASE {
                    let tile = (resp.tid & 0xffff_ffff) as usize;
                    self.cores[tile].on_numa_response(now);
                } else {
                    let b = self.backend_index[&dst];
                    self.backends[b].on_response(now, resp);
                    self.wake_bes[b] = self.wake_bes[b].min(now);
                }
            }
        }
    }

    // ---- geometry helpers --------------------------------------------------

    fn tile_node(&self, i: usize) -> NocNode {
        NocNode::Tile(Coord::new((i % 8) as u8, (i / 8) as u8))
    }

    fn edge_of_tile(&self, i: usize) -> u8 {
        match self.cfg.topology {
            Topology::Mesh => (i / 8) as u8,
            Topology::NocOut => (i % 8) as u8,
        }
    }

    fn home_of(&self, b: BlockAddr) -> NocNode {
        match self.cfg.topology {
            Topology::Mesh => home_mesh(b, self.cfg.n_banks()),
            Topology::NocOut => home_nocout(b, self.cfg.n_banks()),
        }
    }

    /// NI-block row/column a node belongs to.
    fn edge_of_node(&self, node: NocNode) -> u8 {
        match (self.cfg.topology, node) {
            (Topology::Mesh, NocNode::Tile(c)) => c.y,
            (Topology::NocOut, NocNode::Tile(c)) => c.x,
            (_, NocNode::NiBlock(r)) | (_, NocNode::Mc(r)) | (_, NocNode::Llc(r)) => r,
        }
    }
}
