//! Multi-node rack simulation: N fully simulated chips in lock step over a
//! real [`TorusFabric`].
//!
//! This is the driver the paper's methodology could not afford (§5 simulates
//! one node and emulates the rest): every node of the rack is a complete
//! [`Chip`] — cores, caches, directories, RMC pipelines, NOC — and all
//! chip-to-chip traffic crosses the 3D torus hop-by-hop with finite link
//! bandwidth. Cross-node request/response flows are therefore *real*: node
//! A's RGP unrolls onto the fabric, node B's RRPP services against node B's
//! memory, and the response rides the torus back to node A's RCP.
//!
//! Workloads come from a [`Scenario`]: [`Rack::with_scenario`] hands every
//! active core of every node its own seeded generator. The pre-scenario
//! [`Rack::new`]`(cfg, workload)` constructor survives as a thin wrapper
//! over [`Synthetic`] with the config's [`TrafficPattern`].

use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

use ni_engine::Cycle;
use ni_fabric::{
    link_report_csv, link_report_json, Fabric, LinkReport, SharedFabric, Torus3D, TorusFabric,
    TorusFabricConfig,
};

use crate::chip::Chip;
use crate::config::ChipConfig;
use crate::core_model::Workload;
use crate::scenario::{Scenario, Synthetic};

/// How active cores choose their remote destination node (the destination
/// vocabulary of the built-in [`Synthetic`] scenario).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every core on node `n` targets node `n+1` (mod N): a directed ring,
    /// one hop per request on the x-dimension where possible.
    Neighbor,
    /// Core `i` on node `n` targets `(n + 1 + (i mod (N-1))) mod N`: each
    /// node spreads its cores across all other nodes near-uniformly.
    Uniform,
    /// Every core on node `n` targets a torus antipode of `n`
    /// ([`Torus3D::antipode`]): maximal hop count per request, the
    /// worst-case bisection load. On odd dimensions the antipode is one of
    /// several equally distant peers; see the antipode docs.
    Opposite,
}

impl TrafficPattern {
    /// Destination node for core `core` of node `node` in `torus`.
    pub fn target(self, torus: Torus3D, node: u32, core: usize) -> u32 {
        let n = torus.nodes();
        if n == 1 {
            return node;
        }
        match self {
            TrafficPattern::Neighbor => (node + 1) % n,
            TrafficPattern::Uniform => (node + 1 + (core as u32 % (n - 1))) % n,
            TrafficPattern::Opposite => torus.antipode(node),
        }
    }
}

/// Serialization format for [`Rack::write_link_report`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkReportFormat {
    /// One header line plus one comma-separated row per directed link.
    Csv,
    /// A JSON array of per-link objects.
    Json,
}

/// Multi-node rack configuration.
#[derive(Clone, Copy, Debug)]
pub struct RackSimConfig {
    /// Rack geometry (also sets the node count).
    pub torus: Torus3D,
    /// Per-node chip configuration. `node_id` is assigned per chip and the
    /// per-chip seed is derived from `chip.seed` and the node id; the
    /// emulator-specific `rack` settings are unused.
    pub chip: ChipConfig,
    /// Wire latency per torus hop in cycles (35ns = 70 cycles at 2 GHz).
    pub hop_cycles: u64,
    /// Link bandwidth in bytes per cycle.
    pub link_bytes_per_cycle: u64,
    /// Window length for per-link peak-bandwidth tracking, in cycles.
    pub stats_window: u64,
    /// Destination assignment used by the [`Workload`]-based [`Rack::new`]
    /// constructor; scenario-driven racks pick destinations per op instead.
    pub traffic: TrafficPattern,
}

impl Default for RackSimConfig {
    fn default() -> Self {
        let fabric = TorusFabricConfig::default();
        RackSimConfig {
            torus: fabric.torus,
            chip: ChipConfig::default(),
            hop_cycles: fabric.hop_cycles,
            link_bytes_per_cycle: fabric.link_bytes_per_cycle,
            stats_window: fabric.stats_window,
            traffic: TrafficPattern::Uniform,
        }
    }
}

/// A lock-stepped multi-node rack.
pub struct Rack {
    cfg: RackSimConfig,
    chips: Vec<Chip>,
    fabric: Rc<RefCell<TorusFabric>>,
    scenario_name: String,
    now: Cycle,
}

impl Rack {
    /// Build a rack of `cfg.torus.nodes()` chips, every active core running
    /// `workload` against the destination chosen by `cfg.traffic` — the
    /// pre-scenario constructor, now a wrapper over [`Rack::with_scenario`].
    pub fn new(cfg: RackSimConfig, workload: Workload) -> Rack {
        let scenario = Synthetic::from_workload(workload).with_pattern(cfg.traffic);
        Rack::with_scenario(cfg, &scenario)
    }

    /// Build a rack of `cfg.torus.nodes()` chips, every active core of every
    /// node driven by its own generator from `scenario` (see
    /// [`Scenario::for_core`]).
    pub fn with_scenario(cfg: RackSimConfig, scenario: &dyn Scenario) -> Rack {
        let fabric = Rc::new(RefCell::new(TorusFabric::new(TorusFabricConfig {
            torus: cfg.torus,
            hop_cycles: cfg.hop_cycles,
            link_bytes_per_cycle: cfg.link_bytes_per_cycle,
            stats_window: cfg.stats_window,
        })));
        let nodes = cfg.torus.nodes();
        assert!(nodes <= u32::from(u16::MAX), "node ids are u16 on the wire");
        let mut chips = Vec::with_capacity(nodes as usize);
        for node in 0..nodes {
            let chip_cfg = ChipConfig {
                node_id: node as u16,
                // Distinct, reproducible per-node streams from one master
                // seed (splitmix-style odd multiplier keeps them decorrelated).
                seed: cfg
                    .chip
                    .seed
                    .wrapping_add(u64::from(node).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                ..cfg.chip
            };
            chips.push(Chip::with_scenario_on(
                chip_cfg,
                scenario,
                Box::new(SharedFabric::new(Rc::clone(&fabric))),
                nodes,
                Some(cfg.torus),
            ));
        }
        Rack {
            cfg,
            chips,
            fabric,
            scenario_name: scenario.name().to_string(),
            now: Cycle::ZERO,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &RackSimConfig {
        &self.cfg
    }

    /// Name of the scenario driving this rack's cores.
    pub fn scenario_name(&self) -> &str {
        &self.scenario_name
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The simulated chips, in node-id order.
    pub fn chips(&self) -> &[Chip] {
        &self.chips
    }

    /// Mutable access to one chip (workload resets, memory pokes).
    pub fn chip_mut(&mut self, node: u32) -> &mut Chip {
        &mut self.chips[node as usize]
    }

    /// Advance every chip (and the shared fabric, exactly once) by a cycle.
    pub fn tick(&mut self) {
        for chip in &mut self.chips {
            chip.tick();
        }
        self.now += 1;
    }

    /// Run for `cycles`.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Total operations completed across all nodes.
    pub fn completed_ops(&self) -> u64 {
        self.chips.iter().map(Chip::completed_ops).sum()
    }

    /// Application payload bytes moved rack-wide (RCP deliveries plus RRPP
    /// services, summed over nodes — §6.2's definition per node).
    pub fn app_payload_bytes(&self) -> u64 {
        self.chips.iter().map(Chip::app_payload_bytes).sum()
    }

    /// Fabric-wide traffic counters.
    pub fn fabric_stats(&self) -> ni_fabric::FabricStats {
        self.fabric.borrow().stats()
    }

    /// Per-directed-link traffic report of the shared fabric.
    pub fn link_report(&self) -> Vec<LinkReport> {
        self.fabric.borrow().link_report()
    }

    /// Write the per-directed-link report to `w` in the given `format` —
    /// machine-readable output for hotspot and congestion studies.
    pub fn write_link_report(&self, w: &mut dyn Write, format: LinkReportFormat) -> io::Result<()> {
        let links = self.link_report();
        let body = match format {
            LinkReportFormat::Csv => link_report_csv(&links),
            LinkReportFormat::Json => link_report_json(&links),
        };
        w.write_all(body.as_bytes())
    }

    /// Mean RRPP service latency of each node, in node-id order — skewed
    /// scenarios show queueing on the hot node here.
    pub fn rrpp_mean_latencies(&self) -> Vec<f64> {
        self.chips.iter().map(Chip::rrpp_mean_latency).collect()
    }

    /// Largest per-link peak bandwidth seen so far, GB/s.
    pub fn peak_link_gbps(&self) -> f64 {
        self.fabric.borrow().peak_link_gbps()
    }

    /// Total torus link traversals completed.
    pub fn hops_traversed(&self) -> u64 {
        self.fabric.borrow().hops_traversed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_patterns_stay_in_range_and_avoid_self() {
        // Even and odd dimensions: the Opposite antipode must never
        // self-target on a 3x3x3 rack either (regression for odd rings).
        for t in [Torus3D::new(2, 2, 2), Torus3D::new(3, 3, 3)] {
            for p in [
                TrafficPattern::Neighbor,
                TrafficPattern::Uniform,
                TrafficPattern::Opposite,
            ] {
                for node in 0..t.nodes() {
                    for core in 0..64 {
                        let d = p.target(t, node, core);
                        assert!(d < t.nodes());
                        assert_ne!(d, node, "{p:?} node {node} core {core} targets itself");
                    }
                }
            }
        }
    }

    #[test]
    fn opposite_is_the_antipode() {
        let t = Torus3D::new(4, 4, 2);
        let d = TrafficPattern::Opposite.target(t, 0, 0);
        assert_eq!(t.hops(0, d), t.max_hops());
    }

    /// Regression: on odd torus dimensions (3x3x3) every node's Opposite
    /// target must still be at the full network diameter.
    #[test]
    fn opposite_is_lee_maximal_on_odd_dimensions() {
        let t = Torus3D::new(3, 3, 3);
        for node in 0..t.nodes() {
            let d = TrafficPattern::Opposite.target(t, node, 0);
            assert_eq!(
                t.hops(node, d),
                t.max_hops(),
                "node {node}: target {d} is not Lee-maximal"
            );
        }
    }

    #[test]
    fn link_report_serializes_to_csv_and_json() {
        let cfg = RackSimConfig {
            torus: Torus3D::new(2, 1, 1),
            chip: ChipConfig {
                active_cores: 1,
                ..ChipConfig::default()
            },
            ..RackSimConfig::default()
        };
        let mut rack = Rack::new(cfg, Workload::SyncRead { size: 64 });
        rack.run(3_000);
        let mut csv = Vec::new();
        rack.write_link_report(&mut csv, LinkReportFormat::Csv)
            .expect("in-memory write");
        let csv = String::from_utf8(csv).expect("utf8");
        // Header plus one row per directed link (2 nodes x 6 directions).
        assert_eq!(csv.lines().count(), 1 + 12);
        assert!(csv.starts_with(LinkReport::CSV_HEADER));
        let mut json = Vec::new();
        rack.write_link_report(&mut json, LinkReportFormat::Json)
            .expect("in-memory write");
        let json = String::from_utf8(json).expect("utf8");
        assert_eq!(json.matches("\"node\":").count(), 12);
        assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
    }
}
