//! Multi-node rack simulation: N fully simulated chips in lock step over a
//! real [`TorusFabric`], ticked in parallel across host threads.
//!
//! This is the driver the paper's methodology could not afford (§5 simulates
//! one node and emulates the rest): every node of the rack is a complete
//! [`Chip`] — cores, caches, directories, RMC pipelines, NOC — and all
//! chip-to-chip traffic crosses the 3D torus hop-by-hop with finite link
//! bandwidth. Cross-node request/response flows are therefore *real*: node
//! A's RGP unrolls onto the fabric, node B's RRPP services against node B's
//! memory, and the response rides the torus back to node A's RCP.
//!
//! # Two-phase lock step
//!
//! Chips never touch the shared fabric directly. Each owns a buffered
//! [`FabricPort`] (outbox/inbox pair), and every rack cycle runs two phases:
//!
//! 1. **Compute** — all chips tick independently against their ports.
//!    [`Rack::run`] farms this across worker threads (chunked, one barrier
//!    pair per cycle); [`Rack::tick`] is the inline single-cycle form.
//! 2. **Exchange** — the driver merges every outbox into the [`TorusFabric`]
//!    in node-id order, advances the fabric exactly once at the start of
//!    the next cycle, and distributes arrivals back into per-chip inboxes.
//!
//! Chips share no state during compute and the exchange order is fixed, so
//! a run is **bit-identical at any thread count** — the serial path, one
//! worker, and N workers produce the same [`FabricStats`](ni_fabric::FabricStats), completed-op
//! counts, and latency distributions for the same seed. Quiesced chips
//! (permanently idle cores, drained pipelines, idle port) are skipped by
//! [`Chip::tick`]'s fast path, so huge racks with sparse activity stay
//! cheap.
//!
//! Worker count: [`RackSimConfig::threads`] (0 = the `RACKNI_THREADS`
//! environment variable, else [`std::thread::available_parallelism`]).
//!
//! Workloads come from a [`Scenario`]: [`Rack::with_scenario`] hands every
//! active core of every node its own seeded generator. The pre-scenario
//! [`Rack::new`]`(cfg, workload)` constructor survives as a thin wrapper
//! over [`Synthetic`] with the config's [`TrafficPattern`].

use std::io::{self, Write};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;

use ni_engine::parallel::{default_threads, par_map_threads};
use ni_engine::Cycle;
use ni_fabric::{
    link_report_csv, link_report_json, Fabric, FabricPort, FaultPlan, FaultStats, LinkReport,
    RoutingKind, Torus3D, TorusFabric, TorusFabricConfig,
};

use crate::chip::Chip;
use crate::config::ChipConfig;
use crate::core_model::Workload;
use crate::scenario::{Scenario, Synthetic};

/// How active cores choose their remote destination node (the destination
/// vocabulary of the built-in [`Synthetic`] scenario).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every core on node `n` targets node `n+1` (mod N): a directed ring,
    /// one hop per request on the x-dimension where possible.
    Neighbor,
    /// Core `i` on node `n` targets `(n + 1 + (i mod (N-1))) mod N`: each
    /// node spreads its cores across all other nodes near-uniformly.
    Uniform,
    /// Every core on node `n` targets a torus antipode of `n`
    /// ([`Torus3D::antipode`]): maximal hop count per request, the
    /// worst-case bisection load. On odd dimensions the antipode is one of
    /// several equally distant peers; see the antipode docs.
    Opposite,
}

impl TrafficPattern {
    /// Destination node for core `core` of node `node` in `torus`.
    pub fn target(self, torus: Torus3D, node: u32, core: usize) -> u32 {
        let n = torus.nodes();
        if n == 1 {
            return node;
        }
        match self {
            TrafficPattern::Neighbor => (node + 1) % n,
            TrafficPattern::Uniform => (node + 1 + (core as u32 % (n - 1))) % n,
            TrafficPattern::Opposite => torus.antipode(node),
        }
    }
}

/// Serialization format for [`Rack::write_link_report`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkReportFormat {
    /// One header line plus one comma-separated row per directed link.
    Csv,
    /// A JSON array of per-link objects.
    Json,
}

/// Multi-node rack configuration.
#[derive(Clone, Debug)]
pub struct RackSimConfig {
    /// Rack geometry (also sets the node count).
    pub torus: Torus3D,
    /// Per-node chip configuration. `node_id` is assigned per chip and the
    /// per-chip seed is derived from `chip.seed` and the node id; the
    /// emulator-specific `rack` settings are unused.
    pub chip: ChipConfig,
    /// Wire latency per torus hop in cycles (35ns = 70 cycles at 2 GHz).
    pub hop_cycles: u64,
    /// Link bandwidth in bytes per cycle.
    pub link_bytes_per_cycle: u64,
    /// Window length for per-link peak-bandwidth tracking, in cycles.
    pub stats_window: u64,
    /// Torus routing policy ([`RoutingKind::DimensionOrder`] by default):
    /// deterministic dimension order, congestion-aware minimal-adaptive, or
    /// the seeded random-minimal baseline. Custom
    /// [`RoutingPolicy`](ni_fabric::RoutingPolicy) implementations plug in
    /// at the fabric layer via
    /// [`TorusFabric::with_policy`](ni_fabric::TorusFabric::with_policy).
    pub routing: RoutingKind,
    /// Scheduled torus link/node failures (and repairs), applied by the
    /// shared fabric at their firing cycles — threaded to
    /// [`TorusFabricConfig::faults`] exactly like `routing`. Empty by
    /// default. Pair a non-empty plan with a non-zero
    /// [`RmcConfig::itt_timeout`](ni_rmc::RmcConfig::itt_timeout) in
    /// `chip.rmc`, or operations whose traffic a dead node erases will
    /// wait forever instead of error-completing.
    pub faults: FaultPlan,
    /// Destination assignment used by the [`Workload`]-based [`Rack::new`]
    /// constructor; scenario-driven racks pick destinations per op instead.
    pub traffic: TrafficPattern,
    /// Worker threads for the compute phase of [`Rack::run`] (and for chip
    /// construction). `0` resolves at run time via
    /// [`default_threads`] (the `RACKNI_THREADS` environment variable,
    /// else the host's available parallelism); `1` forces the serial path.
    /// Results are bit-identical at every setting.
    pub threads: usize,
}

impl Default for RackSimConfig {
    fn default() -> Self {
        let fabric = TorusFabricConfig::default();
        RackSimConfig {
            torus: fabric.torus,
            chip: ChipConfig::default(),
            hop_cycles: fabric.hop_cycles,
            link_bytes_per_cycle: fabric.link_bytes_per_cycle,
            stats_window: fabric.stats_window,
            routing: fabric.routing,
            faults: fabric.faults,
            traffic: TrafficPattern::Uniform,
            threads: 0,
        }
    }
}

impl RackSimConfig {
    /// The resolved compute-phase worker count: `threads`, or
    /// [`default_threads`] when zero.
    pub fn worker_threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }
}

/// A lock-stepped multi-node rack.
pub struct Rack {
    cfg: RackSimConfig,
    chips: Vec<Chip>,
    /// The shared transport. Owned directly — chips reach it only through
    /// their buffered ports, during the exchange phase.
    fabric: TorusFabric,
    /// Rack-side handles onto each chip's port, in node-id order.
    ports: Vec<FabricPort>,
    scenario_name: String,
    now: Cycle,
}

impl Rack {
    /// Build a rack of `cfg.torus.nodes()` chips, every active core running
    /// `workload` against the destination chosen by `cfg.traffic` — the
    /// pre-scenario constructor, now a wrapper over [`Rack::with_scenario`].
    pub fn new(cfg: RackSimConfig, workload: Workload) -> Rack {
        let scenario = Synthetic::from_workload(workload).with_pattern(cfg.traffic);
        Rack::with_scenario(cfg, &scenario)
    }

    /// Build a rack of `cfg.torus.nodes()` chips, every active core of every
    /// node driven by its own generator from `scenario` (see
    /// [`Scenario::for_core`]). Chip construction is farmed across the
    /// configured worker threads (chips are independent, so the result is
    /// identical to building them sequentially).
    pub fn with_scenario(cfg: RackSimConfig, scenario: &dyn Scenario) -> Rack {
        let fabric = TorusFabric::new(TorusFabricConfig {
            torus: cfg.torus,
            hop_cycles: cfg.hop_cycles,
            link_bytes_per_cycle: cfg.link_bytes_per_cycle,
            stats_window: cfg.stats_window,
            routing: cfg.routing,
            faults: cfg.faults.clone(),
        });
        let nodes = cfg.torus.nodes();
        assert!(nodes <= u32::from(u16::MAX), "node ids are u16 on the wire");
        let ports: Vec<FabricPort> = (0..nodes).map(|n| FabricPort::new(n as u16)).collect();
        let port_refs: Vec<FabricPort> = ports.clone();
        // Only the `Copy` pieces of the config cross into the construction
        // closure (the config itself holds the non-`Copy` fault plan).
        let (base_chip, torus) = (cfg.chip, cfg.torus);
        let chips = par_map_threads(
            (0..nodes).collect(),
            cfg.worker_threads(),
            move |node: u32| {
                let chip_cfg = ChipConfig {
                    node_id: node as u16,
                    // Distinct, reproducible per-node streams from one
                    // master seed (splitmix-style odd multiplier keeps them
                    // decorrelated).
                    seed: base_chip
                        .seed
                        .wrapping_add(u64::from(node).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    ..base_chip
                };
                Chip::with_scenario_on(
                    chip_cfg,
                    scenario,
                    Box::new(port_refs[node as usize].clone()),
                    nodes,
                    Some(torus),
                )
            },
        );
        Rack {
            cfg,
            chips,
            fabric,
            ports,
            scenario_name: scenario.name().to_string(),
            now: Cycle::ZERO,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &RackSimConfig {
        &self.cfg
    }

    /// Name of the scenario driving this rack's cores.
    pub fn scenario_name(&self) -> &str {
        &self.scenario_name
    }

    /// Short name of the torus routing policy in use (`"dor"`,
    /// `"adaptive"`, `"random"`).
    pub fn routing_name(&self) -> &'static str {
        self.fabric.routing_name()
    }

    /// Compute-phase workers [`Rack::run`] will actually use: the
    /// configured [`RackSimConfig::worker_threads`] clamped to the chip
    /// count (a 8-chip rack never runs more than 8 workers). Report this —
    /// not the raw config — in throughput trajectories.
    pub fn worker_count(&self) -> usize {
        self.cfg.worker_threads().min(self.chips.len()).max(1)
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The simulated chips, in node-id order.
    pub fn chips(&self) -> &[Chip] {
        &self.chips
    }

    /// Mutable access to one chip (workload resets, memory pokes). The
    /// chip is [woken](Chip::wake) first: direct mutation bypasses the
    /// event-driven bookkeeping, so every wake timestamp and the memoized
    /// quiescence verdict are conservatively reset.
    pub fn chip_mut(&mut self, node: u32) -> &mut Chip {
        let chip = &mut self.chips[node as usize];
        chip.wake();
        chip
    }

    /// Rebind every active core of every chip to a fresh generator from
    /// the prototype `scenario` (see [`Chip::reset_scenario`]): the
    /// rack-wide phase change used by diurnal serving studies. In-flight
    /// operations drain normally under the new phase.
    pub fn reset_scenario(&mut self, scenario: &dyn Scenario) {
        for chip in &mut self.chips {
            chip.reset_scenario(scenario);
        }
    }

    /// Exchange-phase prologue for cycle `now`: advance the shared fabric
    /// exactly once, then distribute its freshly delivered arrivals into
    /// the per-chip port inboxes in node-id order.
    fn fabric_advance_and_distribute(fabric: &mut TorusFabric, ports: &[FabricPort], now: Cycle) {
        fabric.tick(now);
        // On quiet cycles (nothing landed anywhere this tick and no
        // leftovers from earlier ones) the whole per-node collection scan
        // is one counter check — the common case on an idle-heavy rack.
        if !fabric.has_deliveries() {
            return;
        }
        for port in ports {
            port.collect_arrivals(now, fabric);
        }
    }

    /// Exchange-phase epilogue for cycle `now`: merge every chip's outbox
    /// into the shared fabric in node-id order (FIFO within a node), which
    /// reproduces the injection order of a serial run exactly. Ports with
    /// an empty outbox cost one lock-free flag load each
    /// ([`FabricPort::outbox_pending`] inside `flush_outbox`).
    fn fabric_merge_outboxes(fabric: &mut TorusFabric, ports: &[FabricPort], now: Cycle) {
        for port in ports {
            port.flush_outbox(now, fabric);
        }
    }

    /// Advance the whole rack by one cycle — the inline (serial) form of
    /// the two-phase loop: advance the fabric exactly once and distribute
    /// arrivals, tick every chip against its port, merge outboxes in
    /// node-id order. [`Rack::run`] executes the identical schedule with
    /// the chip ticks farmed across worker threads.
    pub fn tick(&mut self) {
        let now = self.now;
        Self::fabric_advance_and_distribute(&mut self.fabric, &self.ports, now);
        for chip in &mut self.chips {
            chip.tick();
        }
        Self::fabric_merge_outboxes(&mut self.fabric, &self.ports, now);
        self.now += 1;
    }

    /// Run for `cycles`, ticking chips in parallel across the configured
    /// worker threads (see [`RackSimConfig::threads`]).
    ///
    /// The thread pool lives for the whole call: workers are spawned once,
    /// own static chip chunks, and synchronize on one barrier pair per
    /// cycle while the driver thread performs the exchange phase. Results
    /// are bit-identical to calling [`Rack::tick`] `cycles` times.
    ///
    /// # Panics
    /// Propagates the first panic raised inside any chip's tick.
    pub fn run(&mut self, cycles: u64) {
        let workers = self.worker_count();
        if cycles == 0 {
            return;
        }
        if workers <= 1 {
            for _ in 0..cycles {
                self.tick();
            }
            return;
        }
        // Split borrows: workers own disjoint chip chunks for the whole
        // run; the driver keeps the fabric and the port handles.
        let Rack {
            chips,
            fabric,
            ports,
            now,
            ..
        } = self;
        let chunk_len = chips.len().div_ceil(workers);
        // Ceil-divided chunks can come out fewer than `workers` (e.g. 5
        // chips over 4 workers yield 3 chunks of <=2): the barrier must be
        // sized to the threads that actually exist or everyone deadlocks.
        let chunks: Vec<&mut [Chip]> = chips.chunks_mut(chunk_len).collect();
        // Two rendezvous per cycle: one releasing the compute phase, one
        // closing it. A panicking participant — worker *or* driver — keeps
        // honoring the barrier protocol for the remaining cycles (skipping
        // its work) so no thread is ever left waiting, and re-raises its
        // payload once every barrier pair has been served.
        let barrier = Barrier::new(chunks.len() + 1);
        let poisoned = AtomicBool::new(false);
        let mut driver_payload = None;
        std::thread::scope(|s| {
            for chunk in chunks {
                s.spawn(|| {
                    let mut payload = None;
                    for _ in 0..cycles {
                        barrier.wait();
                        if payload.is_none() && !poisoned.load(Ordering::Acquire) {
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                for chip in chunk.iter_mut() {
                                    chip.tick();
                                }
                            }));
                            if let Err(p) = r {
                                poisoned.store(true, Ordering::Release);
                                payload = Some(p);
                            }
                        }
                        barrier.wait();
                    }
                    if let Some(p) = payload {
                        resume_unwind(p);
                    }
                });
            }
            // Driver loop. Exchange-phase panics (e.g. a hard assert on an
            // out-of-range destination inside the fabric merge) must not
            // unwind past the barrier protocol: workers would block on a
            // rendezvous the driver never reaches and the scope join would
            // deadlock. Trap them, finish the barrier schedule, re-raise
            // after the scope.
            let trap = |driver_payload: &mut Option<_>, f: &mut dyn FnMut()| {
                if driver_payload.is_none() && !poisoned.load(Ordering::Acquire) {
                    if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
                        poisoned.store(true, Ordering::Release);
                        *driver_payload = Some(p);
                    }
                }
            };
            for _ in 0..cycles {
                trap(&mut driver_payload, &mut || {
                    Self::fabric_advance_and_distribute(fabric, ports, *now);
                });
                barrier.wait(); // open the compute phase
                barrier.wait(); // close the compute phase
                trap(&mut driver_payload, &mut || {
                    Self::fabric_merge_outboxes(fabric, ports, *now);
                    *now += 1;
                });
            }
        });
        if let Some(p) = driver_payload {
            resume_unwind(p);
        }
    }

    /// Total operations completed across all nodes (successful and failed
    /// — see [`Rack::failed_ops`]).
    pub fn completed_ops(&self) -> u64 {
        self.chips.iter().map(Chip::completed_ops).sum()
    }

    /// Operations rack-wide that completed with an error CQ status (the
    /// NI gave up after a link or node death) — the blast radius the
    /// failure sweep reports.
    pub fn failed_ops(&self) -> u64 {
        self.chips.iter().map(Chip::failed_ops).sum()
    }

    /// Remote reads rack-wide that completed with an error CQ status —
    /// the user-visible losses the availability sweep reports. At `k >= 2`
    /// with replay enabled this should stay zero for reads issued by
    /// surviving nodes (a dead node's own in-flight work is not counted as
    /// lost user traffic by the sweep; see `Chip::failed_reads` per node).
    pub fn failed_reads(&self) -> u64 {
        self.chips.iter().map(Chip::failed_reads).sum()
    }

    /// Operations rack-wide that completed ok but through a recovery path
    /// (WQ replay or a quorum that absorbed a dead leg) — the degraded-mode
    /// work an availability study weighs against outright losses.
    pub fn degraded_ops(&self) -> u64 {
        self.chips.iter().map(Chip::degraded_ops).sum()
    }

    /// Aggregate RGP/RCP backend statistics over every backend of every
    /// node — rack-wide ITT timeout/retry pressure.
    pub fn backend_stats(&self) -> ni_rmc::BackendStats {
        let mut total = ni_rmc::BackendStats::default();
        for chip in &self.chips {
            total.merge(&chip.backend_stats());
        }
        total
    }

    /// Fault-path counters of the shared fabric (packets dropped by dead
    /// nodes, forward attempts stalled at dead links, escape hops taken).
    pub fn fault_stats(&self) -> FaultStats {
        self.fabric.fault_stats()
    }

    /// Application payload bytes moved rack-wide (RCP deliveries plus RRPP
    /// services, summed over nodes — §6.2's definition per node).
    pub fn app_payload_bytes(&self) -> u64 {
        self.chips.iter().map(Chip::app_payload_bytes).sum()
    }

    /// Fabric-wide traffic counters.
    pub fn fabric_stats(&self) -> ni_fabric::FabricStats {
        self.fabric.stats()
    }

    /// Per-directed-link traffic report of the shared fabric.
    pub fn link_report(&self) -> Vec<LinkReport> {
        self.fabric.link_report()
    }

    /// As [`link_report`](Rack::link_report), reusing `out`'s allocation —
    /// for periodic sampling inside measurement loops.
    pub fn link_report_into(&self, out: &mut Vec<LinkReport>) {
        self.fabric.link_report_into(out);
    }

    /// Per-link load imbalance: busiest link's total bytes over the mean of
    /// all loaded links (1.0 when balanced or idle); allocation-free.
    pub fn link_byte_skew(&self) -> f64 {
        self.fabric.link_byte_skew()
    }

    /// Write the per-directed-link report to `w` in the given `format` —
    /// machine-readable output for hotspot and congestion studies.
    pub fn write_link_report(&self, w: &mut dyn Write, format: LinkReportFormat) -> io::Result<()> {
        let links = self.link_report();
        let body = match format {
            LinkReportFormat::Csv => link_report_csv(&links),
            LinkReportFormat::Json => link_report_json(&links),
        };
        w.write_all(body.as_bytes())
    }

    /// Mean RRPP service latency of each node, in node-id order — skewed
    /// scenarios show queueing on the hot node here.
    pub fn rrpp_mean_latencies(&self) -> Vec<f64> {
        self.chips.iter().map(Chip::rrpp_mean_latency).collect()
    }

    /// Rack-wide distribution of end-to-end remote-read latencies (sync,
    /// async, and NUMA reads), merged over every core of every node in
    /// node-id order — `p99` of this is the tail metric the routing and
    /// congestion sweeps report.
    pub fn read_latency_histogram(&self) -> ni_engine::Histogram {
        let mut h = ni_engine::Histogram::new();
        for chip in &self.chips {
            h.merge(&chip.read_latency_histogram());
        }
        h
    }

    /// Rack-wide latency distribution of *degraded* remote reads — those
    /// completed through a WQ replay to an alternate replica — merged over
    /// every node. Reported next to [`Rack::read_latency_histogram`] so
    /// failover cost is a distribution of its own, not a fattening of the
    /// healthy tail.
    pub fn degraded_read_latency_histogram(&self) -> ni_engine::Histogram {
        let mut h = ni_engine::Histogram::new();
        for chip in &self.chips {
            h.merge(&chip.degraded_read_latency_histogram());
        }
        h
    }

    /// Rack-wide per-tenant SLO accumulators: every chip's
    /// [`Chip::tenant_stats`] merged by tenant tag in node-id order. The
    /// input `experiments::serving_sweep` summarizes into per-tenant
    /// offered/achieved load, goodput, and latency percentiles.
    pub fn tenant_stats(&self) -> ni_metrics::TenantStats {
        let mut map = ni_metrics::TenantStats::new();
        for chip in &self.chips {
            ni_metrics::merge_tenant_stats(&mut map, &chip.tenant_stats());
        }
        map
    }

    /// Largest per-link peak bandwidth seen so far, GB/s.
    pub fn peak_link_gbps(&self) -> f64 {
        self.fabric.peak_link_gbps()
    }

    /// Total torus link traversals completed.
    pub fn hops_traversed(&self) -> u64 {
        self.fabric.hops_traversed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_patterns_stay_in_range_and_avoid_self() {
        // Even and odd dimensions: the Opposite antipode must never
        // self-target on a 3x3x3 rack either (regression for odd rings).
        for t in [Torus3D::new(2, 2, 2), Torus3D::new(3, 3, 3)] {
            for p in [
                TrafficPattern::Neighbor,
                TrafficPattern::Uniform,
                TrafficPattern::Opposite,
            ] {
                for node in 0..t.nodes() {
                    for core in 0..64 {
                        let d = p.target(t, node, core);
                        assert!(d < t.nodes());
                        assert_ne!(d, node, "{p:?} node {node} core {core} targets itself");
                    }
                }
            }
        }
    }

    #[test]
    fn opposite_is_the_antipode() {
        let t = Torus3D::new(4, 4, 2);
        let d = TrafficPattern::Opposite.target(t, 0, 0);
        assert_eq!(t.hops(0, d), t.max_hops());
    }

    /// Regression: on odd torus dimensions (3x3x3) every node's Opposite
    /// target must still be at the full network diameter.
    #[test]
    fn opposite_is_lee_maximal_on_odd_dimensions() {
        let t = Torus3D::new(3, 3, 3);
        for node in 0..t.nodes() {
            let d = TrafficPattern::Opposite.target(t, node, 0);
            assert_eq!(
                t.hops(node, d),
                t.max_hops(),
                "node {node}: target {d} is not Lee-maximal"
            );
        }
    }

    /// Regression: when ceil-divided chip chunks come out fewer than the
    /// requested workers (5 chips over 4 threads yield 3 chunks), the
    /// per-cycle barrier must be sized to the real thread count — this
    /// config used to deadlock. Also asserts the uneven split stays
    /// bit-identical to the serial path.
    #[test]
    fn uneven_chip_chunks_neither_deadlock_nor_diverge() {
        let build = |threads: usize| {
            let cfg = RackSimConfig {
                torus: Torus3D::new(5, 1, 1),
                chip: ChipConfig {
                    active_cores: 1,
                    ..ChipConfig::default()
                },
                traffic: TrafficPattern::Neighbor,
                threads,
                ..RackSimConfig::default()
            };
            Rack::new(cfg, Workload::SyncRead { size: 64 })
        };
        let mut serial = build(1);
        serial.run(1_200);
        let mut uneven = build(4);
        uneven.run(1_200);
        assert!(serial.completed_ops() > 0, "reference run must do work");
        assert_eq!(uneven.completed_ops(), serial.completed_ops());
        assert_eq!(uneven.hops_traversed(), serial.hops_traversed());
        assert_eq!(
            uneven.fabric_stats().sent.get(),
            serial.fabric_stats().sent.get()
        );
    }

    /// A panic on the *driver* thread during the exchange phase (here: the
    /// fabric's hard assert on an out-of-range destination firing inside
    /// the outbox merge) must propagate out of the threaded `Rack::run`
    /// instead of leaving the workers parked on a barrier the driver never
    /// reaches. Runs under a watchdog so a regression fails instead of
    /// hanging the suite.
    #[test]
    fn driver_phase_panic_propagates_instead_of_deadlocking() {
        use crate::core_model::REMOTE_BASE;
        use crate::scenario::{Op, OpCtx};
        use ni_mem::Addr;
        use ni_qp::RemoteOp;

        #[derive(Debug)]
        struct BadDest;
        impl Scenario for BadDest {
            fn name(&self) -> &str {
                "bad-dest"
            }
            fn for_core(&self, _ctx: &OpCtx) -> Box<dyn Scenario> {
                Box::new(BadDest)
            }
            fn next_op(&mut self, _ctx: &OpCtx) -> Op {
                // Destination far outside the 4-node torus: the injection
                // boundary's hard assert fires on the driver thread.
                Op::Remote {
                    op: RemoteOp::Read,
                    to: 999,
                    addr: Addr(REMOTE_BASE),
                    size: 64,
                    sync: true,
                }
            }
        }

        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let cfg = RackSimConfig {
                torus: Torus3D::new(4, 1, 1),
                chip: ChipConfig {
                    active_cores: 1,
                    ..ChipConfig::default()
                },
                threads: 2,
                ..RackSimConfig::default()
            };
            let mut rack = Rack::with_scenario(cfg, &BadDest);
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rack.run(500)));
            let _ = tx.send(r.is_err());
        });
        match rx.recv_timeout(std::time::Duration::from_secs(60)) {
            Ok(panicked) => assert!(panicked, "driver panic must surface to the caller"),
            Err(_) => panic!("threaded run deadlocked on a driver-phase panic"),
        }
    }

    /// A panic inside one chip's compute phase must propagate out of the
    /// threaded `Rack::run` instead of deadlocking the barrier protocol.
    #[test]
    fn worker_panic_propagates_out_of_the_threaded_run() {
        let cfg = RackSimConfig {
            torus: Torus3D::new(4, 1, 1),
            chip: ChipConfig {
                active_cores: 1,
                ..ChipConfig::default()
            },
            traffic: TrafficPattern::Neighbor,
            threads: 2,
            ..RackSimConfig::default()
        };
        let mut rack = Rack::new(cfg, Workload::SyncRead { size: 64 });
        // Arm node 3 with a generator that panics on first issue, so the
        // explosion happens inside a worker's compute phase.
        #[derive(Debug)]
        struct Bomb;
        impl Scenario for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn for_core(&self, _ctx: &crate::scenario::OpCtx) -> Box<dyn Scenario> {
                Box::new(Bomb)
            }
            fn next_op(&mut self, _ctx: &crate::scenario::OpCtx) -> crate::scenario::Op {
                panic!("bomb scenario detonated");
            }
        }
        rack.chip_mut(3).cores[0].reset_scenario(Box::new(Bomb));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| rack.run(50)));
        assert!(r.is_err(), "worker panic must surface to the caller");
    }

    #[test]
    fn link_report_serializes_to_csv_and_json() {
        let cfg = RackSimConfig {
            torus: Torus3D::new(2, 1, 1),
            chip: ChipConfig {
                active_cores: 1,
                ..ChipConfig::default()
            },
            ..RackSimConfig::default()
        };
        let mut rack = Rack::new(cfg, Workload::SyncRead { size: 64 });
        rack.run(3_000);
        let mut csv = Vec::new();
        rack.write_link_report(&mut csv, LinkReportFormat::Csv)
            .expect("in-memory write");
        let csv = String::from_utf8(csv).expect("utf8");
        // Header plus one row per directed link (2 nodes x 6 directions).
        assert_eq!(csv.lines().count(), 1 + 12);
        assert!(csv.starts_with(LinkReport::CSV_HEADER));
        let mut json = Vec::new();
        rack.write_link_report(&mut json, LinkReportFormat::Json)
            .expect("in-memory write");
        let json = String::from_utf8(json).expect("utf8");
        assert_eq!(json.matches("\"node\":").count(), 12);
        assert!(json.trim_start().starts_with('[') && json.trim_end().ends_with(']'));
    }
}
