//! Multi-node rack simulation: N fully simulated chips in lock step over a
//! real [`TorusFabric`].
//!
//! This is the driver the paper's methodology could not afford (§5 simulates
//! one node and emulates the rest): every node of the rack is a complete
//! [`Chip`] — cores, caches, directories, RMC pipelines, NOC — and all
//! chip-to-chip traffic crosses the 3D torus hop-by-hop with finite link
//! bandwidth. Cross-node request/response flows are therefore *real*: node
//! A's RGP unrolls onto the fabric, node B's RRPP services against node B's
//! memory, and the response rides the torus back to node A's RCP.

use std::cell::RefCell;
use std::rc::Rc;

use ni_engine::Cycle;
use ni_fabric::{Fabric, LinkReport, SharedFabric, Torus3D, TorusFabric, TorusFabricConfig};

use crate::chip::Chip;
use crate::config::ChipConfig;
use crate::core_model::Workload;

/// How active cores choose their remote destination node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Every core on node `n` targets node `n+1` (mod N): a directed ring,
    /// one hop per request on the x-dimension where possible.
    Neighbor,
    /// Core `i` on node `n` targets `(n + 1 + (i mod (N-1))) mod N`: each
    /// node spreads its cores across all other nodes near-uniformly.
    Uniform,
    /// Every core on node `n` targets the torus antipode of `n`: maximal
    /// hop count per request, the worst-case bisection load.
    Opposite,
}

impl TrafficPattern {
    /// Destination node for core `core` of node `node` in `torus`.
    pub fn target(self, torus: Torus3D, node: u32, core: usize) -> u32 {
        let n = torus.nodes();
        if n == 1 {
            return node;
        }
        match self {
            TrafficPattern::Neighbor => (node + 1) % n,
            TrafficPattern::Uniform => (node + 1 + (core as u32 % (n - 1))) % n,
            TrafficPattern::Opposite => {
                let (dx, dy, dz) = torus.dims();
                let (x, y, z) = torus.coords(node);
                torus.id(((x + dx / 2) % dx, (y + dy / 2) % dy, (z + dz / 2) % dz))
            }
        }
    }
}

/// Multi-node rack configuration.
#[derive(Clone, Copy, Debug)]
pub struct RackSimConfig {
    /// Rack geometry (also sets the node count).
    pub torus: Torus3D,
    /// Per-node chip configuration. `node_id` is assigned per chip and the
    /// per-chip seed is derived from `chip.seed` and the node id; the
    /// emulator-specific `rack` settings are unused.
    pub chip: ChipConfig,
    /// Wire latency per torus hop in cycles (35ns = 70 cycles at 2 GHz).
    pub hop_cycles: u64,
    /// Link bandwidth in bytes per cycle.
    pub link_bytes_per_cycle: u64,
    /// Window length for per-link peak-bandwidth tracking, in cycles.
    pub stats_window: u64,
    /// Destination assignment for active cores.
    pub traffic: TrafficPattern,
}

impl Default for RackSimConfig {
    fn default() -> Self {
        let fabric = TorusFabricConfig::default();
        RackSimConfig {
            torus: fabric.torus,
            chip: ChipConfig::default(),
            hop_cycles: fabric.hop_cycles,
            link_bytes_per_cycle: fabric.link_bytes_per_cycle,
            stats_window: fabric.stats_window,
            traffic: TrafficPattern::Uniform,
        }
    }
}

/// A lock-stepped multi-node rack.
pub struct Rack {
    cfg: RackSimConfig,
    chips: Vec<Chip>,
    fabric: Rc<RefCell<TorusFabric>>,
    now: Cycle,
}

impl Rack {
    /// Build a rack of `cfg.torus.nodes()` chips, every active core running
    /// `workload` against the destination chosen by `cfg.traffic`.
    pub fn new(cfg: RackSimConfig, workload: Workload) -> Rack {
        let fabric = Rc::new(RefCell::new(TorusFabric::new(TorusFabricConfig {
            torus: cfg.torus,
            hop_cycles: cfg.hop_cycles,
            link_bytes_per_cycle: cfg.link_bytes_per_cycle,
            stats_window: cfg.stats_window,
        })));
        let nodes = cfg.torus.nodes();
        assert!(nodes <= u32::from(u16::MAX), "node ids are u16 on the wire");
        let mut chips = Vec::with_capacity(nodes as usize);
        for node in 0..nodes {
            let chip_cfg = ChipConfig {
                node_id: node as u16,
                // Distinct, reproducible per-node streams from one master
                // seed (splitmix-style odd multiplier keeps them decorrelated).
                seed: cfg
                    .chip
                    .seed
                    .wrapping_add(u64::from(node).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                ..cfg.chip
            };
            let mut chip = Chip::with_fabric(
                chip_cfg,
                workload,
                Box::new(SharedFabric::new(Rc::clone(&fabric))),
            );
            for core in 0..chip.cores.len() {
                let t = cfg.traffic.target(cfg.torus, node, core);
                chip.cores[core].set_target(t as u16);
            }
            chips.push(chip);
        }
        Rack {
            cfg,
            chips,
            fabric,
            now: Cycle::ZERO,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &RackSimConfig {
        &self.cfg
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The simulated chips, in node-id order.
    pub fn chips(&self) -> &[Chip] {
        &self.chips
    }

    /// Mutable access to one chip (workload resets, memory pokes).
    pub fn chip_mut(&mut self, node: u32) -> &mut Chip {
        &mut self.chips[node as usize]
    }

    /// Advance every chip (and the shared fabric, exactly once) by a cycle.
    pub fn tick(&mut self) {
        for chip in &mut self.chips {
            chip.tick();
        }
        self.now += 1;
    }

    /// Run for `cycles`.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Total operations completed across all nodes.
    pub fn completed_ops(&self) -> u64 {
        self.chips.iter().map(Chip::completed_ops).sum()
    }

    /// Application payload bytes moved rack-wide (RCP deliveries plus RRPP
    /// services, summed over nodes — §6.2's definition per node).
    pub fn app_payload_bytes(&self) -> u64 {
        self.chips.iter().map(Chip::app_payload_bytes).sum()
    }

    /// Fabric-wide traffic counters.
    pub fn fabric_stats(&self) -> ni_fabric::FabricStats {
        self.fabric.borrow().stats()
    }

    /// Per-directed-link traffic report of the shared fabric.
    pub fn link_report(&self) -> Vec<LinkReport> {
        self.fabric.borrow().link_report()
    }

    /// Largest per-link peak bandwidth seen so far, GB/s.
    pub fn peak_link_gbps(&self) -> f64 {
        self.fabric.borrow().peak_link_gbps()
    }

    /// Total torus link traversals completed.
    pub fn hops_traversed(&self) -> u64 {
        self.fabric.borrow().hops_traversed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_patterns_stay_in_range_and_avoid_self() {
        let t = Torus3D::new(2, 2, 2);
        for p in [
            TrafficPattern::Neighbor,
            TrafficPattern::Uniform,
            TrafficPattern::Opposite,
        ] {
            for node in 0..t.nodes() {
                for core in 0..64 {
                    let d = p.target(t, node, core);
                    assert!(d < t.nodes());
                    assert_ne!(d, node, "{p:?} node {node} core {core} targets itself");
                }
            }
        }
    }

    #[test]
    fn opposite_is_the_antipode() {
        let t = Torus3D::new(4, 4, 2);
        let d = TrafficPattern::Opposite.target(t, 0, 0);
        assert_eq!(t.hops(0, d), t.max_hops());
    }
}
