//! Core model: an issue-cost sequencer driven by a pluggable [`Scenario`].
//!
//! The paper's cores are ARM Cortex-A15-like OoO machines, but its
//! microbenchmark analysis (§3.1, Table 3) reduces the software side to
//! instruction-issue costs: composing a WQ entry is "roughly a dozen
//! arithmetic instructions plus two stores to the same cache block"; a CQ
//! poll is "four instructions including a load". The core model issues
//! exactly those memory operations through its cache complex with the
//! configured compute gaps, which is the granularity at which software
//! appears in every latency breakdown of the paper.
//!
//! *What* the core issues — read or write, destination node, remote address
//! and size, synchronous or asynchronous — comes from its [`Scenario`]
//! generator, consulted whenever the core is ready for the next operation.
//! The closed [`Workload`] enum survives as the parameter vocabulary of the
//! built-in [`Synthetic`](crate::Synthetic) scenario and of the thin
//! compatibility constructors ([`Chip::new`](crate::Chip::new),
//! [`Rack::new`](crate::Rack::new)).

use ni_coherence::{Access, AccessKind, AccessOrigin, CacheComplex};
use ni_engine::{Cycle, DelayLine, Histogram, RunningMean};
use ni_fabric::RemoteReq;
use ni_mem::{Addr, BlockAddr};
use ni_qp::{QpConfig, QueuePair, RemoteOp};
use ni_rmc::{Stage, TraceEvent};

use crate::scenario::{Op, OpCtx, Scenario};

/// Base of the NUMA-mode transfer-tag space (`tid >> 32` of 256+ marks a
/// core-issued load/store rather than a backend transfer).
pub const NUMA_TID_BASE: u64 = 256 << 32;

/// Remote region targeted by the microbenchmarks (bytes).
pub const REMOTE_BASE: u64 = 1 << 40;

/// What a core runs: the parameter vocabulary of the built-in
/// [`Synthetic`](crate::Synthetic) scenario (the paper's microbenchmarks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Do nothing.
    Idle,
    /// Synchronous remote reads of `size` bytes: issue one, spin on the CQ,
    /// repeat (§5 latency microbenchmark).
    SyncRead {
        /// Transfer size in bytes.
        size: u64,
    },
    /// Asynchronous remote reads of `size` bytes: enqueue while the WQ has
    /// space, polling the CQ occasionally; spin when full (§5 bandwidth
    /// microbenchmark).
    AsyncRead {
        /// Transfer size in bytes.
        size: u64,
        /// Poll the CQ after this many issues even when not full.
        poll_every: u32,
    },
    /// Synchronous remote writes of `size` bytes: the RGP backend loads the
    /// payload from local memory before shipping each block (Fig. 4a's
    /// "Memory Read" stage).
    SyncWrite {
        /// Transfer size in bytes.
        size: u64,
    },
    /// Asynchronous remote writes of `size` bytes.
    AsyncWrite {
        /// Transfer size in bytes.
        size: u64,
        /// Poll the CQ after this many issues even when not full.
        poll_every: u32,
    },
    /// Idealized NUMA: single-block remote loads issued directly from the
    /// core with no QP machinery (Table 1 baseline).
    NumaRead,
}

impl Workload {
    /// The one-sided operation this workload issues through the QP, if any.
    pub fn remote_op(self) -> Option<RemoteOp> {
        match self {
            Workload::SyncRead { .. } | Workload::AsyncRead { .. } => Some(RemoteOp::Read),
            Workload::SyncWrite { .. } | Workload::AsyncWrite { .. } => Some(RemoteOp::Write),
            Workload::Idle | Workload::NumaRead => None,
        }
    }

    /// True for workloads that spin on the CQ after each issue.
    pub fn is_synchronous(self) -> bool {
        matches!(self, Workload::SyncRead { .. } | Workload::SyncWrite { .. })
    }
}

/// Per-core workload statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    /// Completed operations — successful *and* failed: every reaped CQ
    /// entry counts, so capped jobs terminate even on a degraded rack.
    pub completed: u64,
    /// Operations that completed with an error CQ status
    /// ([`ni_qp::CqEntry::ok`]` == false`): the NI's ITT watchdog gave up
    /// on the transfer after a link or node death. Always `<= completed`.
    pub failed: u64,
    /// Failed operations that were remote *reads* — the request losses an
    /// availability study reports (replicated writes are covered by the
    /// quorum counters instead). Always `<= failed`.
    pub failed_reads: u64,
    /// Operations that completed ok but only through a recovery path
    /// ([`ni_qp::CqEntry::degraded`]): a WQ replay to an alternate replica
    /// or a write quorum that absorbed a dead leg. Always `<= completed`.
    pub degraded: u64,
    /// Operations issued into the NI (QP enqueues and NUMA loads): the
    /// *offered* side of an offered-vs-achieved load comparison, counted at
    /// issue rather than reap.
    pub issued: u64,
    /// Payload bytes of successfully completed operations — goodput, as
    /// distinct from the transport-level payload counters which also see
    /// retried and failed traffic.
    pub bytes_completed: u64,
    /// End-to-end latency of synchronous operations (cycles).
    pub latency: RunningMean,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Begin the first WQ store (after entry-composition compute).
    Store1,
    /// Begin a CQ poll load (after poll compute).
    Poll,
    /// Issue a NUMA remote load of `block` at node `to`.
    NumaIssue {
        /// Destination node.
        to: u16,
        /// Remote block to load.
        block: BlockAddr,
    },
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Idle,
    WaitStore1,
    WaitStore2,
    WaitPoll,
    WaitNuma,
}

/// One core.
#[derive(Debug)]
pub struct Core {
    tile: usize,
    qp_id: u32,
    target_node: u16,
    scenario: Box<dyn Scenario>,
    /// Context template refreshed (issue count, time) before every
    /// [`Scenario::next_op`] call.
    ctx: OpCtx,
    qp_cfg: QpConfig,
    local_buf_base: u64,
    local_buf_bytes: u64,
    phase: Phase,
    events: DelayLine<Ev>,
    seq: u64,
    iter_start: Cycle,
    reaped: u64,
    issued: u64,
    /// QP ops issued but not yet reaped. Unlike `issued` this survives
    /// [`reset_scenario`](Core::reset_scenario), so cadence polls and the
    /// idle drain keep firing for pre-reset completions.
    inflight: u64,
    /// Total ops fetched from the scenario (QP and NUMA alike); exposed to
    /// generators as [`OpCtx::issued`].
    op_seq: u64,
    /// NUMA request ready for the chip to pick up.
    numa_out: Option<RemoteReq>,
    traces: Vec<TraceEvent>,
    /// WQ id currently being timed (sync workloads).
    cur_id: u64,
    /// WQ id of the synchronous op the core is spinning for, if any.
    awaiting_sync: Option<u64>,
    /// Second WQ store waiting to issue one cycle after the first.
    pending_second_store: Option<(Cycle, Access)>,
    /// Issue count at the last opportunistic poll (prevents poll loops).
    last_poll_at_issue: u64,
    /// End of the current declared idle window ([`Op::IdleFor`]); the core
    /// does nothing — not even consult the scenario — while `now` is below
    /// it.
    idle_until: Cycle,
    /// Public statistics.
    pub stats: CoreStats,
    /// Full latency distribution of synchronous operations.
    latency_hist: Histogram,
    /// Issue timestamps of in-flight QP ops (`wq_id`, issue cycle, kind,
    /// size), bounded by the WQ depth. Feeds the per-op read-latency
    /// distribution — which unlike `latency_hist` also covers asynchronous
    /// reads — and the goodput byte count.
    issue_times: Vec<(u64, Cycle, RemoteOp, u64)>,
    /// End-to-end latency of every completed remote read, sync or async
    /// (plus NUMA loads) — the tail-latency view congestion studies need,
    /// since bandwidth-bound workloads issue asynchronously.
    read_latency_hist: Histogram,
    /// End-to-end latency of *degraded* remote reads (completed through a
    /// recovery path), kept out of `read_latency_hist` so failover cost
    /// shows as its own distribution instead of fattening the healthy
    /// tail.
    degraded_read_latency_hist: Histogram,
}

impl Core {
    /// Create the core of `tile` using queue pair `qp_id`, driven by the
    /// per-core generator `scenario` bound to `ctx`.
    pub fn new(
        tile: usize,
        qp_id: u32,
        scenario: Box<dyn Scenario>,
        ctx: OpCtx,
        qp_cfg: QpConfig,
        local_buf_base: u64,
        local_buf_bytes: u64,
    ) -> Core {
        let target_node = scenario.fixed_target().unwrap_or(1);
        Core {
            tile,
            qp_id,
            target_node,
            scenario,
            ctx,
            qp_cfg,
            local_buf_base,
            local_buf_bytes,
            phase: Phase::Idle,
            events: DelayLine::new(),
            seq: 0,
            iter_start: Cycle::ZERO,
            reaped: 0,
            issued: 0,
            inflight: 0,
            op_seq: 0,
            numa_out: None,
            traces: Vec::new(),
            cur_id: 0,
            awaiting_sync: None,
            pending_second_store: None,
            last_poll_at_issue: u64::MAX,
            idle_until: Cycle::ZERO,
            stats: CoreStats::default(),
            latency_hist: Histogram::new(),
            issue_times: Vec::new(),
            read_latency_hist: Histogram::new(),
            degraded_read_latency_hist: Histogram::new(),
        }
    }

    /// The tile this core sits on.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// The scenario generator driving this core.
    pub fn scenario(&self) -> &dyn Scenario {
        self.scenario.as_ref()
    }

    /// Drain accumulated trace events.
    pub fn drain_traces(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.traces)
    }

    /// Take a pending NUMA request, if any.
    pub fn take_numa_request(&mut self) -> Option<RemoteReq> {
        self.numa_out.take()
    }

    /// Rack node this core's remote operations target: the generator's
    /// fixed destination when it has one, else the destination of the most
    /// recently issued op.
    pub fn target(&self) -> u16 {
        self.target_node
    }

    /// Base address and size (bytes) of this core's local DMA buffer.
    pub fn local_buf(&self) -> (u64, u64) {
        (self.local_buf_base, self.local_buf_bytes)
    }

    /// Point subsequent ops at `node`: the pre-scenario retargeting API.
    /// Forwarded to the generator via [`Scenario::retarget`], so fixed-
    /// destination scenarios ([`crate::Synthetic`]) steer their traffic
    /// accordingly; randomized scenarios ignore it and keep choosing
    /// destinations per op.
    pub fn set_target(&mut self, node: u16) {
        self.target_node = node;
        self.scenario.retarget(node);
    }

    /// Switch to a new generator and restart the issue state: clears
    /// pending issue events and rewinds address generation, so multi-phase
    /// experiments (e.g. write a region, then read it back) revisit the
    /// same addresses. Safe between operations; pending completion
    /// counters (`reaped`) survive so CQ tokens stay consistent.
    pub fn reset_scenario(&mut self, scenario: Box<dyn Scenario>) {
        self.scenario = scenario;
        self.phase = Phase::Idle;
        self.events = DelayLine::new();
        self.pending_second_store = None;
        self.awaiting_sync = None;
        self.issued = 0;
        self.op_seq = 0;
        self.last_poll_at_issue = u64::MAX;
        self.idle_until = Cycle::ZERO;
        if let Some(t) = self.scenario.fixed_target() {
            self.target_node = t;
        }
    }

    /// Bind a fresh per-core generator from the prototype `scenario` —
    /// using the same binding context as construction (issue counters
    /// rewound to zero, identity and seed preserved) — and swap it in
    /// *without* disturbing the issue state machine. Unlike
    /// [`reset_scenario`](Core::reset_scenario) this is safe mid-operation:
    /// an op in flight (doorbell stores, CQ polls, a sync spin) keeps its
    /// scheduled events and drains normally; only *new* ops come from the
    /// new generator. This is how phase-changing experiments (diurnal
    /// load, burst arrival) swap the whole rack's workload mid-run.
    pub fn rebind_scenario(&mut self, scenario: &dyn Scenario) {
        let mut ctx = self.ctx;
        ctx.issued = 0;
        ctx.inflight = 0;
        ctx.now = Cycle::ZERO;
        self.scenario = scenario.for_core(&ctx);
        self.issued = 0;
        self.op_seq = 0;
        self.last_poll_at_issue = u64::MAX;
        // A pending IdleFor ends now: the new phase decides its own pacing.
        self.idle_until = Cycle::ZERO;
        if let Some(t) = self.scenario.fixed_target() {
            self.target_node = t;
        }
    }

    /// Switch to a new [`Workload`], keeping the current target node
    /// (compatibility wrapper over [`reset_scenario`](Core::reset_scenario)
    /// with a freshly bound [`Synthetic`](crate::Synthetic) generator).
    pub fn reset_workload(&mut self, workload: Workload) {
        let dest = self.target_node;
        self.reset_scenario(Box::new(
            crate::scenario::Synthetic::from_workload(workload).with_dest(dest),
        ));
    }

    /// A NUMA response reached the core.
    pub fn on_numa_response(&mut self, now: Cycle) {
        debug_assert_eq!(self.phase, Phase::WaitNuma);
        self.stats.completed += 1;
        self.stats.bytes_completed += ni_mem::BLOCK_BYTES;
        let lat = now.saturating_since(self.iter_start);
        self.stats.latency.record(lat);
        self.latency_hist.record(lat);
        self.read_latency_hist.record(lat);
        self.phase = Phase::Idle;
    }

    /// Distribution of synchronous end-to-end latencies (for tail studies).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency_hist
    }

    /// Distribution of end-to-end remote-*read* latencies over every
    /// completed read — synchronous, asynchronous (issue to CQ reap), and
    /// NUMA loads alike. [`latency_histogram`](Core::latency_histogram)
    /// only sees synchronous ops, which leaves bandwidth-bound (async)
    /// runs without a tail; this one is what routing/congestion studies
    /// report p99 from.
    pub fn read_latency_histogram(&self) -> &Histogram {
        &self.read_latency_hist
    }

    /// Distribution of end-to-end latencies of *degraded* remote reads —
    /// completions that needed a WQ replay to an alternate replica. Kept
    /// separate from [`read_latency_histogram`](Core::read_latency_histogram)
    /// (which holds first-try completions only) so availability studies can
    /// quote healthy and failover percentiles side by side.
    pub fn degraded_read_latency_histogram(&self) -> &Histogram {
        &self.degraded_read_latency_hist
    }

    /// True when this core will never act again without external input: no
    /// phase in progress, no scheduled events, no outstanding completions,
    /// no undrained outputs, and a generator that promises permanent
    /// idleness ([`Scenario::is_done`]). Backs the chip's quiesced-skip
    /// fast path; `false` is always the safe answer.
    pub fn is_quiescent(&self) -> bool {
        self.phase == Phase::Idle
            && self.inflight == 0
            && self.events.is_empty()
            && self.numa_out.is_none()
            && self.pending_second_store.is_none()
            && self.traces.is_empty()
            && self.scenario.is_done()
    }

    /// Earliest cycle (>= `now`) at which ticking this core does anything.
    /// `None` means the core only acts on external input (a cache or NUMA
    /// completion). The answer is exact, never late:
    ///
    /// - undrained traces or a parked NUMA request demand the chip's
    ///   post-tick drains immediately;
    /// - scheduled events and the deferred second WQ store are time-driven;
    /// - an idle core consults its scenario every cycle (the generator draw
    ///   is itself a state change), except inside a declared
    ///   [`Op::IdleFor`] window — the one idle shape the core may sleep
    ///   through — or once the generator promises permanent idleness with
    ///   nothing left in flight.
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.traces.is_empty() || self.numa_out.is_some() {
            return Some(now);
        }
        let mut next = self.events.next_ready_at();
        if let Some((at, _)) = self.pending_second_store {
            let at = at.max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        if self.phase == Phase::Idle && !(self.scenario.is_done() && self.inflight == 0) {
            let at = self.idle_until.max(now);
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        next
    }

    fn tag(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn local_addr(&self, size: u64) -> Addr {
        let span = size.max(64).next_multiple_of(64);
        Addr(self.local_buf_base + (self.issued * span) % self.local_buf_bytes)
    }

    /// Drive one cycle.
    pub fn tick(&mut self, now: Cycle, qp: &mut QueuePair, cx: &mut CacheComplex) {
        if let Some((at, a)) = self.pending_second_store.take() {
            if now >= at {
                cx.submit(now, a).expect("core access accepted");
            } else {
                self.pending_second_store = Some((at, a));
            }
        }
        while let Some(ev) = self.events.pop_ready(now) {
            match ev {
                Ev::Store1 => {
                    let block = self.pending_store_block(qp);
                    let tag = self.tag();
                    self.phase = Phase::WaitStore1;
                    // The entry becomes visible to the polling NI only when
                    // its *last* word lands (Fig. 2a); the first store must
                    // not advance the block token past the previous entry.
                    self.submit(
                        now,
                        cx,
                        AccessKind::Store,
                        block,
                        self.cur_id.saturating_sub(1),
                        tag,
                    );
                }
                Ev::Poll => {
                    let block = qp.cq_head_block();
                    let tag = self.tag();
                    self.phase = Phase::WaitPoll;
                    self.submit(now, cx, AccessKind::Load, block, 0, tag);
                }
                Ev::NumaIssue { to, block } => {
                    self.iter_start = now;
                    self.phase = Phase::WaitNuma;
                    self.numa_out = Some(RemoteReq {
                        tid: NUMA_TID_BASE | self.tile as u64,
                        is_read: true,
                        src_node: 0, // stamped by the fabric at the network router
                        target_node: to,
                        remote_block: block,
                        value: 0,
                        service: 0,
                    });
                }
            }
        }
        if self.phase != Phase::Idle {
            return;
        }
        // Inside a declared idle window the core does nothing at all —
        // identical in both tick modes, which is what lets the event-driven
        // chip skip these cycles without observable divergence.
        if now < self.idle_until {
            return;
        }
        // Asynchronous housekeeping first: poll the CQ when the WQ has no
        // room for another entry, or when completions are outstanding and
        // the scenario's poll cadence is due.
        let poll_every = u64::from(self.scenario.poll_every().max(1));
        let due = self.inflight > 0
            && self.issued > 0
            && self.issued.is_multiple_of(poll_every)
            && self.last_poll_at_issue != self.issued;
        if qp.wq_full() || due {
            // Poll: blocking when full, opportunistic otherwise.
            self.last_poll_at_issue = self.issued;
            self.phase = Phase::WaitPoll;
            self.events
                .push_after(now, self.qp_cfg.cq_read_compute, Ev::Poll);
            return;
        }
        // Ready for the next application operation: ask the scenario.
        self.ctx.issued = self.op_seq;
        self.ctx.inflight = self.inflight;
        self.ctx.now = now;
        let op = self.scenario.next_op(&self.ctx);
        self.op_seq += 1;
        match op {
            Op::Idle => {
                // Drain outstanding async completions while the scenario
                // idles: a finite scenario may stop issuing before its last
                // ops complete, and the cadence-based poll above only fires
                // at issue-count multiples of `poll_every`.
                if self.inflight > 0 {
                    self.phase = Phase::WaitPoll;
                    self.events
                        .push_after(now, self.qp_cfg.cq_read_compute, Ev::Poll);
                }
            }
            Op::IdleFor { cycles } => {
                self.idle_until = now + cycles;
                // Same completion-drain rule as Op::Idle: reap outstanding
                // async completions before going (and while staying) quiet.
                if self.inflight > 0 {
                    self.phase = Phase::WaitPoll;
                    self.events
                        .push_after(now, self.qp_cfg.cq_read_compute, Ev::Poll);
                }
            }
            Op::Remote {
                op,
                to,
                addr,
                size,
                sync,
            } => {
                self.target_node = to;
                self.begin_issue(now, qp, op, to, addr, size, 0, sync);
            }
            Op::Rpc {
                to,
                addr,
                size,
                service,
                sync,
            } => {
                // A two-sided request–response rides the read path — the
                // response payload is what comes back — with the remote
                // compute time carried in the WQ entry.
                self.target_node = to;
                self.begin_issue(now, qp, RemoteOp::Read, to, addr, size, service, sync);
            }
            Op::Numa { to, addr } => {
                self.target_node = to;
                self.phase = Phase::WaitNuma;
                self.stats.issued += 1;
                self.events.push_after(
                    now,
                    1,
                    Ev::NumaIssue {
                        to,
                        block: addr.block(),
                    },
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn begin_issue(
        &mut self,
        now: Cycle,
        qp: &mut QueuePair,
        op: RemoteOp,
        to: u16,
        remote: Addr,
        size: u64,
        service: u64,
        sync: bool,
    ) {
        let local = self.local_addr(size);
        // Record where the entry's stores land *before* enqueueing advances
        // the tail.
        let id = qp
            .enqueue_with_service(op, to, remote, local, size, service)
            .expect("caller checks wq_full");
        self.cur_id = id;
        self.awaiting_sync = sync.then_some(id);
        self.issued += 1;
        self.inflight += 1;
        self.stats.issued += 1;
        self.iter_start = now;
        self.issue_times.push((id, now, op, size));
        self.traces.push(TraceEvent {
            qp: self.qp_id,
            wq_id: id,
            stage: Stage::WqWriteStart,
            at: now,
        });
        self.phase = Phase::WaitStore1;
        self.events
            .push_after(now, self.qp_cfg.wq_write_compute, Ev::Store1);
    }

    fn pending_store_block(&self, qp: &QueuePair) -> ni_mem::BlockAddr {
        // The entry was already enqueued; its slot is tail - 1.
        qp.slot_block_of(self.cur_id)
    }

    fn submit(
        &mut self,
        now: Cycle,
        cx: &mut CacheComplex,
        kind: AccessKind,
        block: ni_mem::BlockAddr,
        value: u64,
        tag: u64,
    ) {
        let a = Access {
            origin: AccessOrigin::Core,
            kind,
            block,
            store_value: value,
            tag,
        };
        // Cores have a single outstanding access here; MSHR pressure from
        // one access cannot reject.
        cx.submit(now, a).expect("core access accepted");
    }

    /// A cache access completed (routed here by the chip).
    pub fn on_cache_completion(&mut self, now: Cycle, _tag: u64, value: u64, qp: &mut QueuePair) {
        match self.phase {
            Phase::WaitStore1 => {
                // Second store of the WQ entry, same block.
                let block = qp.slot_block_of(self.cur_id);
                let tag = self.tag();
                self.phase = Phase::WaitStore2;
                let a = Access {
                    origin: AccessOrigin::Core,
                    kind: AccessKind::Store,
                    block,
                    store_value: self.cur_id,
                    tag,
                };
                // Submit immediately: back-to-back stores.
                // (now + 1 to respect one store issued per cycle.)
                self.pending_second_store = Some((now + 1, a));
            }
            Phase::WaitStore2 => {
                self.traces.push(TraceEvent {
                    qp: self.qp_id,
                    wq_id: self.cur_id,
                    stage: Stage::WqWriteDone,
                    at: now,
                });
                if self.awaiting_sync.is_some() {
                    self.phase = Phase::WaitPoll;
                    self.events
                        .push_after(now, self.qp_cfg.cq_read_compute, Ev::Poll);
                } else {
                    self.phase = Phase::Idle;
                }
            }
            Phase::WaitPoll => {
                if value > self.reaped {
                    // New completions: reap them.
                    let newly = value - self.reaped;
                    for _ in 0..newly {
                        let c = qp.app_reap().expect("token promised a completion");
                        self.stats.completed += 1;
                        if !c.ok {
                            self.stats.failed += 1;
                        }
                        if c.ok && c.degraded {
                            self.stats.degraded += 1;
                        }
                        self.inflight = self.inflight.saturating_sub(1);
                        if let Some(i) = self
                            .issue_times
                            .iter()
                            .position(|&(id, _, _, _)| id == c.wq_id)
                        {
                            let (_, issued_at, op, size) = self.issue_times.swap_remove(i);
                            if !c.ok && op == RemoteOp::Read {
                                self.stats.failed_reads += 1;
                            }
                            if c.ok {
                                self.stats.bytes_completed += size;
                            }
                            // Failed ops would only record the watchdog's
                            // timeout; keep the read-latency distributions a
                            // property of *successful* transfers and report
                            // failures separately. Degraded completions get
                            // their own histogram.
                            if op == RemoteOp::Read && c.ok {
                                let lat = now.saturating_since(issued_at);
                                if c.degraded {
                                    self.degraded_read_latency_hist.record(lat);
                                } else {
                                    self.read_latency_hist.record(lat);
                                }
                            }
                        }
                        self.traces.push(TraceEvent {
                            qp: self.qp_id,
                            wq_id: c.wq_id,
                            stage: Stage::CqReadDone,
                            at: now,
                        });
                        if self.awaiting_sync == Some(c.wq_id) {
                            // Always release the spin — a failed sync op
                            // must not wedge the core — but only successful
                            // ops contribute latency samples.
                            if c.ok {
                                let lat = now.saturating_since(self.iter_start);
                                self.stats.latency.record(lat);
                                self.latency_hist.record(lat);
                            }
                            self.awaiting_sync = None;
                        }
                    }
                    self.reaped = value;
                    if self.awaiting_sync.is_some() {
                        // The awaited synchronous op is still in flight
                        // (earlier async completions drained): keep spinning.
                        self.events
                            .push_after(now, self.qp_cfg.cq_read_compute, Ev::Poll);
                    } else {
                        self.phase = Phase::Idle;
                    }
                } else {
                    // Sync (and full-WQ async): keep spinning.
                    if self.awaiting_sync.is_some() || qp.wq_full() {
                        self.events
                            .push_after(now, self.qp_cfg.cq_read_compute, Ev::Poll);
                    } else {
                        self.phase = Phase::Idle;
                    }
                }
            }
            Phase::Idle | Phase::WaitNuma => {
                panic!("unexpected cache completion in phase {:?}", self.phase)
            }
        }
    }
}
