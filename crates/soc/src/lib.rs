//! # ni-soc — full-node assembly of the manycore-NI simulator
//!
//! Wires every substrate into the evaluated node: 64 ARM-like cores with
//! L1+NI-cache complexes, a block-interleaved NUCA LLC with directory banks,
//! memory controllers, the RMC pipelines in any of the paper's three
//! placements (plus the idealized NUMA baseline), a mesh or NOC-Out
//! interconnect, the chip-to-chip network router, and the rate-matching
//! rack emulator (§5 methodology).
//!
//! [`chip::Chip`] is the cycle-stepped top level; [`mod@bench`] contains the
//! experiment drivers (synchronous latency, asynchronous bandwidth) used by
//! the benchmark harness to regenerate the paper's tables and figures.
//!
//! The chip's network router hands rack traffic to a pluggable
//! [`ni_fabric::Fabric`]: single-node runs keep the paper's rate-matching
//! emulator, while [`rack::Rack`] instantiates N full chips in lock step
//! over a real [`ni_fabric::TorusFabric`] — actual hop-by-hop multi-node
//! simulation with per-link bandwidth accounting.

pub mod bench;
pub mod chip;
pub mod config;
pub mod core_model;
pub mod rack;

pub use bench::{
    run_bandwidth, run_sync_latency, run_sync_write_latency, run_write_bandwidth, stage_breakdown,
    BandwidthResult, LatencyResult, StageBreakdown,
};
pub use chip::{Chip, ChipMsg};
pub use config::{ChipConfig, Topology};
pub use core_model::{Core, CoreStats, Workload};
pub use rack::{Rack, RackSimConfig, TrafficPattern};
