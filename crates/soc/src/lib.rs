//! # ni-soc — full-node assembly of the manycore-NI simulator
//!
//! Wires every substrate into the evaluated node: 64 ARM-like cores with
//! L1+NI-cache complexes, a block-interleaved NUCA LLC with directory banks,
//! memory controllers, the RMC pipelines in any of the paper's three
//! placements (plus the idealized NUMA baseline), a mesh or NOC-Out
//! interconnect, the chip-to-chip network router, and the rate-matching
//! rack emulator (§5 methodology).
//!
//! [`chip::Chip`] is the cycle-stepped top level; [`mod@bench`] contains the
//! experiment drivers (synchronous latency, asynchronous bandwidth) used by
//! the benchmark harness to regenerate the paper's tables and figures.
//!
//! The chip's network router hands rack traffic to a pluggable
//! [`ni_fabric::Fabric`]: single-node runs keep the paper's rate-matching
//! emulator, while [`rack::Rack`] instantiates N full chips in lock step
//! over a real [`ni_fabric::TorusFabric`] — actual hop-by-hop multi-node
//! simulation with per-link bandwidth accounting.
//!
//! Workload generation is the open [`scenario::Scenario`] trait: a seeded
//! per-core operation generator consumed uniformly by the single-chip and
//! multi-node paths. Four built-ins ship with the crate
//! ([`scenario::Synthetic`], [`scenario::ZipfHotspot`],
//! [`scenario::KvStore`], [`scenario::GraphShard`]); the pre-scenario
//! [`core_model::Workload`]/[`rack::TrafficPattern`] enums survive as
//! [`scenario::Synthetic`]'s parameter vocabulary and thin constructors.

#![warn(missing_docs)]

pub mod bench;
pub mod chip;
pub mod config;
pub mod core_model;
pub mod rack;
pub mod scenario;

pub use bench::{
    run_bandwidth, run_chip_scenario, run_sync_latency, run_sync_write_latency,
    run_write_bandwidth, stage_breakdown, BandwidthResult, LatencyResult, ScenarioRunResult,
    StageBreakdown,
};
pub use chip::{Chip, ChipMsg};
pub use config::{ChipConfig, TickMode, Topology};
pub use core_model::{Core, CoreStats, Workload, REMOTE_BASE};
pub use ni_fabric::RoutingKind;
pub use rack::{LinkReportFormat, Rack, RackSimConfig, TrafficPattern};
pub use scenario::{
    builtin_scenarios, core_seed, Bursty, Capped, ClosedLoop, GraphShard, KvStore, Op, OpCtx,
    Scenario, Synthetic, TenantMix, TenantSpec, Zipf, ZipfHotspot,
};
