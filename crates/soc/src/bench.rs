//! Experiment drivers: the paper's latency and bandwidth microbenchmarks,
//! plus the fixed-horizon scenario runner.

use ni_engine::{ConvergenceMonitor, Frequency, Histogram, RunningMean, WindowStatus};
use ni_rmc::Stage;

use crate::chip::Chip;
use crate::config::ChipConfig;
use crate::core_model::Workload;
use crate::scenario::Scenario;

/// Result of a synchronous-read latency run.
#[derive(Clone, Copy, Debug)]
pub struct LatencyResult {
    /// Transfer size in bytes.
    pub size: u64,
    /// Mean end-to-end latency in cycles (WQ write start to CQ read done).
    pub mean_cycles: f64,
    /// Mean end-to-end latency in nanoseconds at 2 GHz.
    pub mean_ns: f64,
    /// Operations measured.
    pub ops: u64,
    /// Mean measured RRPP service latency (cycles).
    pub rrpp_cycles: f64,
    /// Median end-to-end latency (cycles).
    pub p50_cycles: u64,
    /// 95th-percentile end-to-end latency (cycles).
    pub p95_cycles: u64,
    /// 99th-percentile end-to-end latency (cycles).
    pub p99_cycles: u64,
}

/// Run the unloaded synchronous remote-read microbenchmark (§5): one core
/// issues `ops` synchronous reads of `size` bytes; everything else idles.
///
/// With [`ni_rmc::NiPlacement::Numa`] the core issues direct single-block loads (the
/// Table 1 baseline); `size` is ignored because the hardware NUMA interface
/// supports one cache block per operation (§3.1).
pub fn run_sync_latency(cfg: ChipConfig, size: u64, ops: u64) -> LatencyResult {
    let workload = if cfg.placement == ni_rmc::NiPlacement::Numa {
        Workload::NumaRead
    } else {
        Workload::SyncRead { size }
    };
    run_latency_workload(cfg, workload, size, ops)
}

/// As [`run_sync_latency`] but issuing synchronous remote *writes*: the RGP
/// backend loads each payload block from local memory before shipping it
/// (Fig. 4a), so write latency carries an extra local memory access over
/// the read path.
pub fn run_sync_write_latency(cfg: ChipConfig, size: u64, ops: u64) -> LatencyResult {
    run_latency_workload(cfg, Workload::SyncWrite { size }, size, ops)
}

fn run_latency_workload(
    mut cfg: ChipConfig,
    workload: Workload,
    size: u64,
    ops: u64,
) -> LatencyResult {
    cfg.active_cores = 1;
    let mut chip = Chip::new(cfg, workload);
    let limit = 40_000_000u64;
    let mut guard = 0u64;
    while chip.completed_ops() < ops {
        chip.tick();
        guard += 1;
        assert!(guard < limit, "latency run did not complete {ops} ops");
    }
    let mean = chip.cores[0].stats.latency.mean();
    let hist = chip.cores[0].latency_histogram();
    LatencyResult {
        size,
        mean_cycles: mean,
        mean_ns: mean * Frequency::GHZ2.nanos_per_cycle(),
        ops: chip.completed_ops(),
        rrpp_cycles: chip.rrpp_mean_latency(),
        p50_cycles: hist.percentile(0.50),
        p95_cycles: hist.percentile(0.95),
        p99_cycles: hist.percentile(0.99),
    }
}

/// Per-stage mean durations for the Table 1/3 tomography.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageBreakdown {
    /// WQ write (software + coherence), cycles.
    pub wq_write: f64,
    /// WQ observation by the NI (poll + transfer + frontend processing).
    pub wq_read_and_rgp: f64,
    /// Frontend-to-backend transfer plus backend processing.
    pub fe_to_net: f64,
    /// Network + remote service round trip.
    pub net_round_trip: f64,
    /// RCP processing and CQ entry write.
    pub rcp_and_cq_write: f64,
    /// CQ read by the core.
    pub cq_read: f64,
    /// End-to-end.
    pub total: f64,
}

/// Run a single-block sync workload and extract the stage tomography.
pub fn stage_breakdown(cfg: ChipConfig, ops: u64) -> StageBreakdown {
    let mut c = cfg;
    c.active_cores = 1;
    let mut chip = Chip::new(c, Workload::SyncRead { size: 64 });
    let mut guard = 0u64;
    while chip.completed_ops() < ops {
        chip.tick();
        guard += 1;
        assert!(guard < 20_000_000, "breakdown run stalled");
    }
    // Drain the final op's trace events so every stage mean covers the
    // same operation population (the deltas then sum to the end-to-end).
    chip.run(16);
    let t = &chip.traces;
    let d = |a, b| t.mean_between(a, b).unwrap_or(0.0);
    StageBreakdown {
        wq_write: d(Stage::WqWriteStart, Stage::WqWriteDone),
        wq_read_and_rgp: d(Stage::WqWriteDone, Stage::BeReceived),
        fe_to_net: d(Stage::BeReceived, Stage::NetOut),
        net_round_trip: d(Stage::NetOut, Stage::NetIn),
        rcp_and_cq_write: d(Stage::NetIn, Stage::CqWritten),
        cq_read: d(Stage::CqWritten, Stage::CqReadDone),
        total: t.mean_end_to_end().unwrap_or(0.0),
    }
}

/// Result of an asynchronous bandwidth run.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthResult {
    /// Transfer size in bytes.
    pub size: u64,
    /// Aggregate application bandwidth in GBps (both directions, §6.2).
    pub app_gbps: f64,
    /// Aggregate NOC traffic in GBps over the same window.
    pub noc_gbps: f64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Whether the §5 convergence criterion was met (vs. hitting the cap).
    pub converged: bool,
}

/// Run the asynchronous bandwidth microbenchmark (§5): all active cores
/// enqueue `size`-byte reads as fast as the WQ allows; the rack emulator
/// mirrors the rate as incoming requests. Bandwidth is measured in windows
/// until the delta between consecutive windows is below 1%.
pub fn run_bandwidth(cfg: ChipConfig, size: u64, window: u64, max_windows: u32) -> BandwidthResult {
    run_bandwidth_workload(
        cfg,
        Workload::AsyncRead {
            size,
            poll_every: 4,
        },
        size,
        window,
        max_windows,
    )
}

/// As [`run_bandwidth`] but issuing asynchronous remote *writes*.
pub fn run_write_bandwidth(
    cfg: ChipConfig,
    size: u64,
    window: u64,
    max_windows: u32,
) -> BandwidthResult {
    run_bandwidth_workload(
        cfg,
        Workload::AsyncWrite {
            size,
            poll_every: 4,
        },
        size,
        window,
        max_windows,
    )
}

/// Result of a fixed-horizon scenario run on one chip.
#[derive(Clone, Debug)]
pub struct ScenarioRunResult {
    /// Name of the scenario that ran.
    pub scenario: String,
    /// Cycles simulated.
    pub cycles: u64,
    /// Operations completed across all cores.
    pub ops: u64,
    /// Aggregate application bandwidth over the run, GBps (both directions,
    /// §6.2).
    pub app_gbps: f64,
    /// End-to-end latency of synchronous operations, merged over all cores
    /// (cycles); empty when the scenario issues only asynchronous ops.
    pub sync_latency: RunningMean,
    /// 99th-percentile synchronous latency in cycles (0 without sync ops).
    pub p99_sync_cycles: u64,
}

impl ScenarioRunResult {
    /// Mean synchronous latency in nanoseconds at 2 GHz.
    pub fn mean_sync_ns(&self) -> f64 {
        self.sync_latency.mean() * Frequency::GHZ2.nanos_per_cycle()
    }

    /// Completed operations per second at 2 GHz.
    pub fn ops_per_sec(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.cycles as f64 * 2e9
        }
    }
}

/// Run `scenario` on a single chip (behind the paper's rack emulator) for a
/// fixed horizon of `cycles` and aggregate the per-core statistics. The
/// uniform counterpart for multi-node racks is
/// [`Rack::with_scenario`](crate::Rack::with_scenario) plus the rack's own
/// accessors.
pub fn run_chip_scenario(
    cfg: ChipConfig,
    scenario: &dyn Scenario,
    cycles: u64,
) -> ScenarioRunResult {
    let mut chip = Chip::with_scenario(cfg, scenario);
    chip.run(cycles);
    let mut sync_latency = RunningMean::new();
    let mut hist = Histogram::new();
    for core in &chip.cores {
        sync_latency.merge(&core.stats.latency);
        hist.merge(core.latency_histogram());
    }
    ScenarioRunResult {
        scenario: scenario.name().to_string(),
        cycles,
        ops: chip.completed_ops(),
        app_gbps: Frequency::GHZ2
            .gbps_from_bytes_per_cycle(chip.app_payload_bytes() as f64 / cycles.max(1) as f64),
        sync_latency,
        p99_sync_cycles: hist.percentile(0.99),
    }
}

fn run_bandwidth_workload(
    cfg: ChipConfig,
    workload: Workload,
    size: u64,
    window: u64,
    max_windows: u32,
) -> BandwidthResult {
    let mut chip = Chip::new(cfg, workload);
    let mut monitor = ConvergenceMonitor::new(window, 0.01, 2);
    let freq = Frequency::GHZ2;
    let mut last_bytes = 0u64;
    let mut last_noc_bytes = 0u64;
    let mut windows = 0u32;
    let mut next_boundary = window;
    let (app_gbps, noc_gbps, converged) = loop {
        chip.tick();
        let now = chip.now();
        if now.0 < next_boundary {
            continue;
        }
        next_boundary += window;
        // Per-window application bandwidth is the metric the paper's
        // convergence criterion applies to.
        let bytes = chip.app_payload_bytes();
        let noc_bytes = chip.noc_stats().delivered_bytes();
        let window_gbps =
            freq.gbps_from_bytes_per_cycle((bytes - last_bytes) as f64 / window as f64);
        let window_noc =
            freq.gbps_from_bytes_per_cycle((noc_bytes - last_noc_bytes) as f64 / window as f64);
        last_bytes = bytes;
        last_noc_bytes = noc_bytes;
        windows += 1;
        if let Some(WindowStatus::Converged { .. }) = monitor.observe(now, window_gbps) {
            break (window_gbps, window_noc, true);
        }
        if windows >= max_windows {
            break (window_gbps, window_noc, false);
        }
    };
    BandwidthResult {
        size,
        app_gbps,
        noc_gbps,
        cycles: chip.now().0,
        converged,
    }
}
