//! Node configuration (Table 2 defaults).

use ni_coherence::CoherenceConfig;
use ni_fabric::RackConfig;
use ni_mem::MemConfig;
use ni_noc::{MeshConfig, NocOutConfig, RoutingPolicy};
use ni_qp::QpConfig;
use ni_rmc::{NiPlacement, RmcConfig};

/// On-chip interconnect organization.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Topology {
    /// 2D mesh, one tile per core (Table 2).
    #[default]
    Mesh,
    /// NOC-Out: flattened-butterfly LLC row plus per-column trees (§6.3).
    NocOut,
}

/// How [`Chip::tick`](crate::Chip::tick) visits its components.
///
/// Both modes are bit-identical in every observable (fingerprints, stats,
/// traces): `Event` skips only ticks that are provably no-ops. `Poll` is
/// kept as the reference implementation the fingerprint tests compare
/// against.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TickMode {
    /// Event-driven (default): per-class activity timestamps gate each
    /// component visit, and a chip whose next self-driven event is in the
    /// future skips whole cycles in its dormant fast path.
    #[default]
    Event,
    /// Poll everything: every component of every class is visited every
    /// cycle (the pre-event-driven reference behavior).
    Poll,
}

/// Full node configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChipConfig {
    /// Interconnect organization.
    pub topology: Topology,
    /// NI placement design point.
    pub placement: NiPlacement,
    /// Mesh routing policy (ignored by NOC-Out, which is source-routed).
    pub routing: RoutingPolicy,
    /// Cache hierarchy parameters.
    pub coherence: CoherenceConfig,
    /// Memory controller parameters.
    pub mem: MemConfig,
    /// Queue-pair geometry and software costs.
    pub qp: QpConfig,
    /// RMC pipeline parameters.
    pub rmc: RmcConfig,
    /// Rack emulation parameters (hops, 35ns links, mirroring).
    pub rack: RackConfig,
    /// This chip's node id in the rack (0 for single-node runs; assigned by
    /// the multi-node [`crate::Rack`] driver otherwise).
    pub node_id: u16,
    /// Master RNG seed for this chip's run. Threaded into the rack
    /// emulator's traffic generator (overriding `rack.seed`) so every run —
    /// emulated or multi-node — is reproducible from its config alone.
    pub seed: u64,
    /// Mesh parameters.
    pub mesh: MeshConfig,
    /// NOC-Out parameters.
    pub nocout: NocOutConfig,
    /// Cores running the workload (the rest idle), from core 0 upward.
    pub active_cores: usize,
    /// Tick discipline: event-driven active sets (default) or the
    /// poll-everything reference loop.
    pub tick_mode: TickMode,
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig {
            topology: Topology::Mesh,
            placement: NiPlacement::Split,
            routing: RoutingPolicy::CdrNi,
            coherence: CoherenceConfig::default(),
            mem: MemConfig::default(),
            qp: QpConfig::default(),
            rmc: RmcConfig::default(),
            rack: RackConfig::default(),
            node_id: 0,
            seed: RackConfig::default().seed,
            mesh: MeshConfig::default(),
            nocout: NocOutConfig::default(),
            active_cores: 64,
            tick_mode: TickMode::default(),
        }
    }
}

impl ChipConfig {
    /// Total core count.
    pub fn n_cores(&self) -> usize {
        match self.topology {
            Topology::Mesh => usize::from(self.mesh.width) * usize::from(self.mesh.height),
            Topology::NocOut => {
                usize::from(self.nocout.columns) * usize::from(self.nocout.cores_per_column)
            }
        }
    }

    /// Number of LLC/directory banks (one per tile on the mesh, one per LLC
    /// tile on NOC-Out).
    pub fn n_banks(&self) -> u32 {
        match self.topology {
            Topology::Mesh => self.n_cores() as u32,
            Topology::NocOut => u32::from(self.nocout.columns),
        }
    }

    /// Number of NI blocks / RRPPs / memory controllers (one per mesh row or
    /// butterfly column).
    pub fn n_edge(&self) -> usize {
        match self.topology {
            Topology::Mesh => usize::from(self.mesh.height),
            Topology::NocOut => usize::from(self.nocout.columns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_describe_the_paper_chip() {
        let c = ChipConfig::default();
        assert_eq!(c.n_cores(), 64);
        assert_eq!(c.n_banks(), 64);
        assert_eq!(c.n_edge(), 8);
        assert_eq!(c.placement, NiPlacement::Split);
        assert_eq!(c.routing, RoutingPolicy::CdrNi);
    }

    #[test]
    fn nocout_has_eight_llc_banks() {
        let c = ChipConfig {
            topology: Topology::NocOut,
            ..ChipConfig::default()
        };
        assert_eq!(c.n_cores(), 64);
        assert_eq!(c.n_banks(), 8);
        assert_eq!(c.n_edge(), 8);
    }
}
