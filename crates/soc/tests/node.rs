//! Full-node integration tests: end-to-end remote reads through every NI
//! placement on both topologies.

use ni_rmc::NiPlacement;
use ni_soc::{run_sync_latency, Chip, ChipConfig, Topology, Workload};

fn cfg(placement: NiPlacement) -> ChipConfig {
    ChipConfig {
        placement,
        ..ChipConfig::default()
    }
}

#[test]
fn sync_read_completes_on_split() {
    let r = run_sync_latency(cfg(NiPlacement::Split), 64, 5);
    assert_eq!(r.ops, 5);
    // Sanity bounds: must exceed the bare network+service floor (~350) and
    // stay within a small multiple of the paper's 447.
    assert!(r.mean_cycles > 300.0, "too fast: {}", r.mean_cycles);
    assert!(r.mean_cycles < 1500.0, "too slow: {}", r.mean_cycles);
}

#[test]
fn sync_read_completes_on_edge_and_pertile() {
    let e = run_sync_latency(cfg(NiPlacement::Edge), 64, 5);
    let p = run_sync_latency(cfg(NiPlacement::PerTile), 64, 5);
    assert_eq!(e.ops, 5);
    assert_eq!(p.ops, 5);
    // The paper's core result: QP interactions make NIedge slower than
    // NIper-tile for single-block reads.
    assert!(
        e.mean_cycles > p.mean_cycles,
        "edge {} should exceed per-tile {}",
        e.mean_cycles,
        p.mean_cycles
    );
}

#[test]
fn numa_baseline_is_fastest() {
    let n = run_sync_latency(cfg(NiPlacement::Numa), 64, 5);
    let s = run_sync_latency(cfg(NiPlacement::Split), 64, 5);
    assert!(n.ops >= 5);
    assert!(
        n.mean_cycles < s.mean_cycles,
        "NUMA {} should undercut split {}",
        n.mean_cycles,
        s.mean_cycles
    );
}

#[test]
fn multiblock_transfer_completes() {
    let r = run_sync_latency(cfg(NiPlacement::Split), 1024, 3);
    assert_eq!(r.ops, 3);
    let small = run_sync_latency(cfg(NiPlacement::Split), 64, 3);
    assert!(r.mean_cycles > small.mean_cycles);
}

#[test]
fn nocout_topology_completes() {
    let mut c = cfg(NiPlacement::Split);
    c.topology = Topology::NocOut;
    let r = run_sync_latency(c, 64, 3);
    assert_eq!(r.ops, 3);
    assert!(
        r.mean_cycles > 300.0 && r.mean_cycles < 2000.0,
        "{}",
        r.mean_cycles
    );
}

#[test]
fn async_cores_make_progress_and_mirror_traffic() {
    let mut c = cfg(NiPlacement::Split);
    c.active_cores = 8;
    let mut chip = Chip::new(
        c,
        Workload::AsyncRead {
            size: 512,
            poll_every: 4,
        },
    );
    chip.run(60_000);
    assert!(
        chip.completed_ops() > 50,
        "only {} ops",
        chip.completed_ops()
    );
    assert!(chip.app_payload_bytes() > 0);
    // Rate matching: incoming requests were generated and serviced.
    assert!(chip.fabric_stats().incoming_generated.get() > 0);
    assert!(chip.rrpp_mean_latency() > 0.0);
}
