//! Workload-model tests: predicates, the NUMA flow, and regressions for
//! the frontend's entry-forwarding watermark.

use ni_qp::RemoteOp;
use ni_rmc::NiPlacement;
use ni_soc::{Chip, ChipConfig, Topology, Workload};

#[test]
fn workload_predicates() {
    assert_eq!(
        Workload::SyncRead { size: 64 }.remote_op(),
        Some(RemoteOp::Read)
    );
    assert_eq!(
        Workload::SyncWrite { size: 64 }.remote_op(),
        Some(RemoteOp::Write)
    );
    assert_eq!(
        Workload::AsyncRead {
            size: 64,
            poll_every: 4
        }
        .remote_op(),
        Some(RemoteOp::Read)
    );
    assert_eq!(
        Workload::AsyncWrite {
            size: 64,
            poll_every: 4
        }
        .remote_op(),
        Some(RemoteOp::Write)
    );
    assert_eq!(Workload::Idle.remote_op(), None);
    assert_eq!(Workload::NumaRead.remote_op(), None);
    assert!(Workload::SyncRead { size: 1 }.is_synchronous());
    assert!(Workload::SyncWrite { size: 1 }.is_synchronous());
    assert!(!Workload::AsyncRead {
        size: 1,
        poll_every: 1
    }
    .is_synchronous());
    assert!(!Workload::NumaRead.is_synchronous());
}

#[test]
fn numa_workload_round_trips_through_the_edge() {
    let cfg = ChipConfig {
        placement: NiPlacement::Numa,
        active_cores: 1,
        ..ChipConfig::default()
    };
    let mut chip = Chip::new(cfg, Workload::NumaRead);
    chip.run(10_000);
    let ops = chip.cores[0].stats.completed;
    assert!(ops > 10, "NUMA loads must stream: {ops}");
    // Latency floor: NOC to edge + 2 hops + remote service.
    let mean = chip.cores[0].stats.latency.mean();
    assert!(mean > 300.0 && mean < 420.0, "NUMA latency {mean}");
}

/// Regression: consecutive NI polls used to observe the same pending WQ
/// entries and double-forward them (panicking on the second `ni_take`).
/// A long synchronous run with back-to-back entries exercises exactly
/// that window.
#[test]
fn repeated_sync_ops_never_double_forward() {
    for p in NiPlacement::QP_DESIGNS {
        let cfg = ChipConfig {
            placement: p,
            active_cores: 1,
            ..ChipConfig::default()
        };
        let mut chip = Chip::new(cfg, Workload::SyncRead { size: 64 });
        let mut guard = 0u64;
        while chip.completed_ops() < 25 {
            chip.tick();
            guard += 1;
            assert!(guard < 2_000_000, "{p:?} stalled");
        }
        assert_eq!(chip.completed_ops(), 25, "{p:?}");
    }
}

/// Regression: a WQ entry must not be observable by the NI until its
/// second store lands (the first store must not advance the block token).
#[test]
fn entries_invisible_until_fully_written() {
    let cfg = ChipConfig {
        placement: NiPlacement::PerTile,
        active_cores: 1,
        ..ChipConfig::default()
    };
    let mut chip = Chip::new(cfg, Workload::SyncRead { size: 64 });
    let mut guard = 0u64;
    while chip.completed_ops() < 5 {
        chip.tick();
        guard += 1;
        assert!(guard < 2_000_000, "stalled");
    }
    chip.run(16);
    for wq_id in 1..=5u64 {
        let done = chip
            .traces
            .at(0, wq_id, ni_rmc::Stage::WqWriteDone)
            .expect("written");
        let seen = chip
            .traces
            .at(0, wq_id, ni_rmc::Stage::FeObserved)
            .expect("observed");
        assert!(
            seen >= done,
            "op {wq_id}: NI observed a half-written entry ({seen:?} < {done:?})"
        );
    }
}

#[test]
fn async_write_and_read_mix_designs_complete_on_nocout() {
    for wl in [
        Workload::AsyncRead {
            size: 256,
            poll_every: 4,
        },
        Workload::AsyncWrite {
            size: 256,
            poll_every: 4,
        },
    ] {
        let cfg = ChipConfig {
            topology: Topology::NocOut,
            active_cores: 8,
            ..ChipConfig::default()
        };
        let mut chip = Chip::new(cfg, wl);
        chip.run(40_000);
        assert!(
            chip.completed_ops() > 20,
            "{wl:?}: {}",
            chip.completed_ops()
        );
    }
}

#[test]
fn active_core_count_scales_throughput() {
    let mut ops = Vec::new();
    for n in [1usize, 8, 64] {
        let cfg = ChipConfig {
            active_cores: n,
            ..ChipConfig::default()
        };
        let mut chip = Chip::new(
            cfg,
            Workload::AsyncRead {
                size: 512,
                poll_every: 4,
            },
        );
        chip.run(20_000);
        ops.push(chip.completed_ops());
    }
    // Cores 0..8 share one mesh row, i.e. one RGP/RCP backend; scaling is
    // sublinear there. 8 -> 64 engages all eight backends.
    assert!(ops[1] as f64 > ops[0] as f64 * 1.5, "8 cores vs 1: {ops:?}");
    assert!(
        ops[2] as f64 > ops[1] as f64 * 2.0,
        "64 cores vs 8: {ops:?}"
    );
}
