//! Per-tenant SLO metrics: the workload-level observables a serving tier
//! is judged by, kept separate from the transport-level counters the NI
//! crates report.
//!
//! The simulator's transport statistics (requests sent, payload bytes,
//! link utilization) describe what the *hardware* did; an operator of a
//! multi-tenant rack asks a different question — what service did each
//! tenant get? This crate holds the aggregation types for that question:
//!
//! * [`TenantAccum`] — a mergeable per-tenant accumulator (issued /
//!   completed / failed counts, goodput bytes, and the full request
//!   latency distribution), filled from per-core statistics grouped by
//!   `Scenario::tenant` tags (an `ni_soc` trait method; the dependency
//!   points the other way) and merged core → chip → rack.
//! * [`SloSummary`] — the derived per-tenant report over a measured
//!   window: offered vs achieved load, goodput, and the p50/p99/p999
//!   latency tail.
//! * [`interference_index`] — the shared-run/solo-run p99 ratio that
//!   quantifies cross-tenant interference on a shared fabric.
//!
//! Determinism contract: this crate is pure aggregation over values the
//! simulation produced — no clocks, no hash-ordered iteration, no entropy.
//! Keyed tenant collections are `BTreeMap` so report ordering is stable.

#![warn(missing_docs)]

use std::collections::BTreeMap;

use ni_engine::Histogram;

/// Mergeable per-tenant accumulator of SLO observables.
///
/// One accumulator aggregates every core a tenant owns; chip- and
/// rack-level views are built with [`merge`](TenantAccum::merge). All
/// counts are application-level (operations and payload bytes as the
/// tenant sees them), not transport-level (block requests, retries).
#[derive(Clone, Debug)]
pub struct TenantAccum {
    /// Operations issued into the NI (offered load side).
    pub issued: u64,
    /// Operations completed — reaped from a CQ, successful or not.
    pub completed: u64,
    /// Operations that completed with an error status.
    pub failed: u64,
    /// Operations that completed ok but through a recovery path.
    pub degraded: u64,
    /// Payload bytes of successful completions (goodput numerator).
    pub bytes: u64,
    /// End-to-end request latency distribution (read/response ops),
    /// successful first-try completions.
    pub latency: Histogram,
}

impl Default for TenantAccum {
    fn default() -> Self {
        TenantAccum {
            issued: 0,
            completed: 0,
            failed: 0,
            degraded: 0,
            bytes: 0,
            // Histogram's derived Default has no buckets allocated;
            // `Histogram::new` is the recordable empty state.
            latency: Histogram::new(),
        }
    }
}

impl TenantAccum {
    /// A fresh, empty accumulator.
    pub fn new() -> TenantAccum {
        TenantAccum::default()
    }

    /// Accumulate another view of the same tenant (other cores, other
    /// chips) into this one.
    pub fn merge(&mut self, other: &TenantAccum) {
        self.issued += other.issued;
        self.completed += other.completed;
        self.failed += other.failed;
        self.degraded += other.degraded;
        self.bytes += other.bytes;
        self.latency.merge(&other.latency);
    }
}

/// Per-tenant accumulators keyed by tenant tag, in stable tag order.
pub type TenantStats = BTreeMap<u8, TenantAccum>;

/// Merge a chip's (or node's) per-tenant stats into a rack-level map.
pub fn merge_tenant_stats(into: &mut TenantStats, from: &TenantStats) {
    for (tag, accum) in from {
        into.entry(*tag).or_default().merge(accum);
    }
}

/// The derived per-tenant SLO report over a measured window.
///
/// Rates are per *kilocycle* — the natural magnitude for a rack where a
/// core issues an op every few hundred cycles — so a 2 GHz part maps one
/// op/kcycle to two million ops per second.
#[derive(Clone, Copy, Debug)]
pub struct SloSummary {
    /// Operations issued per kilocycle (offered load).
    pub offered_per_kcycle: f64,
    /// Operations completed per kilocycle (achieved load).
    pub achieved_per_kcycle: f64,
    /// Successful payload bytes per kilocycle (goodput).
    pub goodput_bytes_per_kcycle: f64,
    /// Fraction of completions that failed.
    pub failure_rate: f64,
    /// Median request latency, cycles.
    pub p50: u64,
    /// 99th-percentile request latency, cycles.
    pub p99: u64,
    /// 99.9th-percentile request latency, cycles.
    pub p999: u64,
    /// Requests in the latency distribution.
    pub samples: u64,
}

impl SloSummary {
    /// Summarize `accum` over a window of `window_cycles` simulated cycles.
    pub fn over(accum: &TenantAccum, window_cycles: u64) -> SloSummary {
        let kcycles = (window_cycles.max(1) as f64) / 1_000.0;
        SloSummary {
            offered_per_kcycle: accum.issued as f64 / kcycles,
            achieved_per_kcycle: accum.completed as f64 / kcycles,
            goodput_bytes_per_kcycle: accum.bytes as f64 / kcycles,
            failure_rate: if accum.completed == 0 {
                0.0
            } else {
                accum.failed as f64 / accum.completed as f64
            },
            p50: accum.latency.percentile(0.50),
            p99: accum.latency.percentile(0.99),
            p999: accum.latency.percentile(0.999),
            samples: accum.latency.stats().count(),
        }
    }
}

/// The interference index: a tenant's shared-fabric p99 over its solo-run
/// p99. 1.0 means perfect isolation; 2.0 means co-located tenants double
/// the tail. Returns `f64::NAN` when the solo baseline is empty.
pub fn interference_index(shared_p99: u64, solo_p99: u64) -> f64 {
    if solo_p99 == 0 {
        return f64::NAN;
    }
    shared_p99 as f64 / solo_p99 as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accum(lat: &[u64]) -> TenantAccum {
        let mut a = TenantAccum::new();
        for &l in lat {
            a.latency.record(l);
            a.issued += 1;
            a.completed += 1;
            a.bytes += 64;
        }
        a
    }

    #[test]
    fn merge_is_additive_in_counts_and_samples() {
        let mut a = accum(&[100, 200]);
        a.failed = 1;
        let mut b = accum(&[300]);
        b.degraded = 2;
        a.merge(&b);
        assert_eq!(a.issued, 3);
        assert_eq!(a.completed, 3);
        assert_eq!(a.failed, 1);
        assert_eq!(a.degraded, 2);
        assert_eq!(a.bytes, 192);
        assert_eq!(a.latency.stats().count(), 3);
    }

    #[test]
    fn tenant_maps_merge_by_tag() {
        let mut rack = TenantStats::new();
        let mut chip0 = TenantStats::new();
        chip0.insert(1, accum(&[100]));
        chip0.insert(2, accum(&[500, 600]));
        let mut chip1 = TenantStats::new();
        chip1.insert(1, accum(&[150]));
        merge_tenant_stats(&mut rack, &chip0);
        merge_tenant_stats(&mut rack, &chip1);
        assert_eq!(rack.len(), 2);
        assert_eq!(rack[&1].completed, 2);
        assert_eq!(rack[&2].completed, 2);
    }

    #[test]
    fn summary_rates_scale_with_the_window() {
        let a = accum(&[100; 10]);
        let s = SloSummary::over(&a, 5_000);
        assert!((s.offered_per_kcycle - 2.0).abs() < 1e-9);
        assert!((s.achieved_per_kcycle - 2.0).abs() < 1e-9);
        assert!((s.goodput_bytes_per_kcycle - 128.0).abs() < 1e-9);
        assert_eq!(s.samples, 10);
        assert_eq!(s.p50, 100);
    }

    #[test]
    fn percentiles_order_and_failure_rate() {
        let mut a = TenantAccum::new();
        for l in 1..=1000u64 {
            a.latency.record(l);
        }
        a.completed = 1000;
        a.failed = 10;
        let s = SloSummary::over(&a, 1_000);
        assert!(s.p50 <= s.p99 && s.p99 <= s.p999);
        assert!((s.failure_rate - 0.01).abs() < 1e-9);
    }

    #[test]
    fn interference_index_ratios_and_guards() {
        assert!((interference_index(200, 100) - 2.0).abs() < 1e-9);
        assert!((interference_index(100, 100) - 1.0).abs() < 1e-9);
        assert!(interference_index(100, 0).is_nan());
    }
}
