//! Property tests for the rack geometry and the rate-matching emulator.

use ni_engine::Cycle;
use ni_fabric::{
    FaultAdaptive, LinkView, MinimalAdaptive, RackConfig, RackEmulator, RemoteReq, RoutingPolicy,
    Torus3D,
};
use ni_mem::BlockAddr;
use proptest::prelude::*;

fn torus() -> impl Strategy<Value = Torus3D> {
    (1u16..9, 1u16..9, 1u16..9).prop_map(|(x, y, z)| Torus3D::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// On a fault-free fabric `FaultAdaptive` must be bit-identical to
    /// `MinimalAdaptive` — for every pair of nodes, under arbitrary
    /// serialization backlogs (every link up, full escape budget, as the
    /// fabric builds views on a healthy run). This is the contract that
    /// makes `fault-adaptive` a safe default: it costs nothing until
    /// something actually dies.
    #[test]
    fn fault_adaptive_is_minimal_adaptive_on_a_healthy_fabric(
        t in torus(),
        from in 0u32..10_000,
        dest in 0u32..10_000,
        backlog in prop::collection::vec(0u64..500, 6..7),
    ) {
        let (from, dest) = (from % t.nodes(), dest % t.nodes());
        let mut b = [0u64; 6];
        b.copy_from_slice(&backlog);
        let view = LinkView::new(b);
        let mut fault = FaultAdaptive::default();
        let mut minimal = MinimalAdaptive;
        prop_assert_eq!(
            fault.route(&t, from, dest, &view),
            minimal.route(&t, from, dest, &view),
            "{from}->{dest} on {:?} diverged",
            t.dims()
        );
    }

    #[test]
    fn torus_ids_and_coords_roundtrip(t in torus(), seed in 0u32..10_000) {
        let id = seed % t.nodes();
        prop_assert_eq!(t.id(t.coords(id)), id);
    }

    #[test]
    fn torus_hops_is_a_metric(t in torus(), a in 0u32..10_000, b in 0u32..10_000, c in 0u32..10_000) {
        let (a, b, c) = (a % t.nodes(), b % t.nodes(), c % t.nodes());
        prop_assert_eq!(t.hops(a, a), 0, "identity");
        prop_assert_eq!(t.hops(a, b), t.hops(b, a), "symmetry");
        prop_assert!(t.hops(a, b) <= t.hops(a, c) + t.hops(c, b), "triangle inequality");
        prop_assert!(t.hops(a, b) <= t.max_hops(), "bounded by the diameter");
    }

    #[test]
    fn torus_wraparound_shortens_paths(dim in 2u16..9) {
        // In a ring of n nodes, the farthest node is floor(n/2) away.
        let t = Torus3D::new(dim, 1, 1);
        let far = t.hops(0, u32::from(dim) - 1);
        prop_assert_eq!(far, 1, "last node is adjacent via wraparound");
        prop_assert_eq!(t.max_hops(), u32::from(dim / 2));
    }

    #[test]
    fn torus_average_matches_brute_force(t in (1u16..5, 1u16..5, 1u16..5)
        .prop_map(|(x, y, z)| Torus3D::new(x, y, z)))
    {
        // The paper's "average 6 hops" figure is the mean over all ordered
        // source/destination pairs (2 hops per dimension of an 8-ring, x3);
        // the implementation uses the same definition.
        let n = t.nodes();
        let mut sum = 0u64;
        for a in 0..n {
            for b in 0..n {
                sum += u64::from(t.hops(a, b));
            }
        }
        let brute = sum as f64 / f64::from(n) / f64::from(n);
        prop_assert!((t.average_hops() - brute).abs() < 1e-9);
    }

    #[test]
    fn emulator_response_timing_is_exact(
        hops in 1u32..13,
        sends in prop::collection::vec(0u64..1000, 1..30),
    ) {
        let mut cfg = RackConfig {
            hops,
            mirror_incoming: false,
            ..RackConfig::default()
        };
        cfg.initial_rrpp_estimate = 208;
        let mut r = RackEmulator::new(cfg);
        let mut sorted = sends.clone();
        sorted.sort_unstable();
        for (i, &t) in sorted.iter().enumerate() {
            r.send(
                Cycle(t),
                RemoteReq {
                    tid: i as u64,
                    is_read: true,
                    src_node: 0,
                    target_node: 1,
                    remote_block: BlockAddr(i as u64),
                    value: 0,
                    service: 0,
                },
            );
        }
        let rtt = 2 * u64::from(hops) * 70 + 208;
        let mut got = 0;
        for t in 0..(1000 + rtt + 2) {
            while let Some(resp) = r.pop_response(Cycle(t)) {
                let i = resp.tid as usize;
                prop_assert_eq!(t, sorted[i] + rtt, "response {} timing", i);
                prop_assert_eq!(
                    resp.value,
                    RackEmulator::remote_value(BlockAddr(i as u64))
                );
                got += 1;
            }
        }
        prop_assert_eq!(got, sorted.len());
        prop_assert!(r.is_idle());
    }

    #[test]
    fn emulator_mirrors_exactly_one_incoming_per_send(n in 1usize..100) {
        let mut r = RackEmulator::new(RackConfig::default());
        for i in 0..n {
            r.send(
                Cycle(i as u64),
                RemoteReq {
                    tid: i as u64,
                    is_read: true,
                    src_node: 0,
                    target_node: 1,
                    remote_block: BlockAddr(7),
                    value: 0,
                    service: 0,
                },
            );
        }
        let mut incoming = 0;
        for t in 0..(n as u64 + 200) {
            while let Some(req) = r.pop_incoming(Cycle(t)) {
                prop_assert!(req.is_read);
                incoming += 1;
            }
        }
        prop_assert_eq!(incoming, n);
        prop_assert_eq!(r.stats().incoming_generated.get(), n as u64);
    }

    #[test]
    fn rrpp_feedback_moves_the_estimate_toward_samples(target in 100u64..5000) {
        let mut r = RackEmulator::new(RackConfig::default());
        for _ in 0..512 {
            r.record_rrpp_latency(target);
        }
        prop_assert!((r.rrpp_estimate() - target as f64).abs() < target as f64 * 0.05);
    }
}

// ---- TorusFabric: hop-by-hop transport properties --------------------------

use ni_fabric::{Fabric, RoutingKind, TorusFabric, TorusFabricConfig};

fn torus_fabric(t: Torus3D) -> TorusFabric {
    TorusFabric::new(TorusFabricConfig {
        torus: t,
        ..TorusFabricConfig::default()
    })
}

fn fabric_req(tid: u64, target: u16) -> RemoteReq {
    RemoteReq {
        tid,
        is_read: true,
        src_node: 0,
        target_node: target,
        remote_block: BlockAddr(tid),
        value: 0,
        service: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every packet's route length equals the Lee distance between its
    /// source and destination, for random pairs and torus dimensions — and
    /// the per-directed-link counters account exactly those traversals.
    #[test]
    fn torus_fabric_routes_are_lee_minimal(
        t in torus(),
        pairs in prop::collection::vec((0u32..10_000, 0u32..10_000), 1..20),
    ) {
        let mut f = torus_fabric(t);
        let mut expected_hops = 0u64;
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let (a, b) = (a % t.nodes(), b % t.nodes());
            expected_hops += u64::from(t.hops(a, b));
            f.inject(Cycle(0), a as u16, fabric_req(i as u64, b as u16));
        }
        let mut now = Cycle(0);
        let mut delivered = 0usize;
        while delivered < pairs.len() {
            f.tick(now);
            for n in 0..t.nodes() {
                while f.pop_incoming(now, n as u16).is_some() {
                    delivered += 1;
                }
            }
            now += 1;
            prop_assert!(now.0 < 1_000_000, "fabric never drained: {delivered}/{}", pairs.len());
        }
        prop_assert_eq!(f.hops_traversed(), expected_hops, "route length != Lee distance");
        let link_sum: u64 = f.link_report().iter().map(|l| l.packets).sum();
        prop_assert_eq!(link_sum, expected_hops, "link counters must sum to total hops");
        prop_assert!(f.is_idle());
    }

    /// An unloaded packet can never beat the physical floor of
    /// `hops x hop_cycles` (serialization only adds to it), and arrives
    /// within the floor plus per-hop serialization.
    #[test]
    fn torus_fabric_respects_the_wire_latency_floor(
        t in torus(),
        a in 0u32..10_000,
        b in 0u32..10_000,
    ) {
        let (a, b) = (a % t.nodes(), b % t.nodes());
        prop_assume!(a != b);
        let mut f = torus_fabric(t);
        let cfg = f.config().clone();
        f.inject(Cycle(0), a as u16, fabric_req(1, b as u16));
        let hops = u64::from(t.hops(a, b));
        let mut now = Cycle(0);
        let arrival = loop {
            f.tick(now);
            if f.pop_incoming(now, b as u16).is_some() {
                break now.0;
            }
            now += 1;
            prop_assert!(now.0 < 100_000, "undelivered after bound");
        };
        prop_assert!(arrival >= hops * cfg.hop_cycles, "{arrival} beats the floor");
        // Read requests are 32B; each hop adds its serialization delay.
        let ser = 32u64.div_ceil(cfg.link_bytes_per_cycle);
        prop_assert_eq!(arrival, hops * (cfg.hop_cycles + ser));
    }

    /// Delivery / livelock-freedom of the adaptive policies: because every
    /// built-in [`RoutingPolicy`](ni_fabric::RoutingPolicy) is *minimal*
    /// (each hop strictly reduces Lee distance — the escape bound over the
    /// minimal distance is zero by construction, enforced per hop by the
    /// fabric's productivity assertion), every packet must be delivered in
    /// exactly `hops(src, dest)` traversals, for random torus dimensions
    /// and random batches injected at the same cycle so serialization
    /// backlogs actually build and steer `MinimalAdaptive` off the
    /// dimension-order path.
    #[test]
    fn adaptive_and_random_routing_always_deliver_in_minimal_hops(
        t in torus(),
        pairs in prop::collection::vec((0u32..10_000, 0u32..10_000), 1..40),
        seed in 0u64..1_000,
    ) {
        for routing in [
            RoutingKind::MinimalAdaptive,
            RoutingKind::RandomMinimal { seed },
        ] {
            let mut f = TorusFabric::new(TorusFabricConfig {
                torus: t,
                routing,
                ..TorusFabricConfig::default()
            });
            let mut expected_hops = 0u64;
            for (i, &(a, b)) in pairs.iter().enumerate() {
                let (a, b) = (a % t.nodes(), b % t.nodes());
                expected_hops += u64::from(t.hops(a, b));
                f.inject(Cycle(0), a as u16, fabric_req(i as u64, b as u16));
            }
            let mut now = Cycle(0);
            let mut delivered = 0usize;
            while delivered < pairs.len() {
                f.tick(now);
                for n in 0..t.nodes() {
                    while f.pop_incoming(now, n as u16).is_some() {
                        delivered += 1;
                    }
                }
                now += 1;
                prop_assert!(
                    now.0 < 1_000_000,
                    "{routing:?} never drained: {delivered}/{}",
                    pairs.len()
                );
            }
            prop_assert_eq!(
                f.hops_traversed(),
                expected_hops,
                "{:?}: route length != Lee distance (escape bound is 0)",
                routing
            );
            prop_assert!(f.is_idle());
        }
    }

    /// A seeded `RandomMinimal` fabric is a pure function of its config:
    /// identical injections give bit-identical per-link traffic, and a
    /// different seed is allowed to (and on multi-path batches will)
    /// spread bytes differently.
    #[test]
    fn random_minimal_fabric_is_seed_deterministic(
        t in torus(),
        pairs in prop::collection::vec((0u32..10_000, 0u32..10_000), 1..20),
        seed in 0u64..1_000,
    ) {
        let run = |seed: u64| {
            let mut f = TorusFabric::new(TorusFabricConfig {
                torus: t,
                routing: RoutingKind::RandomMinimal { seed },
                ..TorusFabricConfig::default()
            });
            for (i, &(a, b)) in pairs.iter().enumerate() {
                let (a, b) = (a % t.nodes(), b % t.nodes());
                f.inject(Cycle(0), a as u16, fabric_req(i as u64, b as u16));
            }
            let mut now = Cycle(0);
            while !f.is_idle() {
                f.tick(now);
                for n in 0..t.nodes() {
                    while f.pop_incoming(now, n as u16).is_some() {}
                }
                now += 1;
                if now.0 >= 1_000_000 { break; }
            }
            f.link_report()
                .iter()
                .map(|l| (l.packets, l.bytes))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed), "same seed must replay identically");
    }

    /// Responses reach exactly the node named in `dst_node`.
    #[test]
    fn torus_fabric_delivers_responses_to_their_requester(
        t in torus(),
        from in 0u32..10_000,
        to in 0u32..10_000,
    ) {
        let (from, to) = (from % t.nodes(), to % t.nodes());
        let mut f = torus_fabric(t);
        f.inject_resp(Cycle(0), from as u16, ni_fabric::RemoteResp {
            tid: 7,
            dst_node: to as u16,
            remote_block: BlockAddr(3),
            value: 99,
            is_read: true,
        });
        let mut now = Cycle(0);
        while !f.is_idle() {
            f.tick(now);
            for n in 0..t.nodes() {
                if let Some(resp) = f.pop_response(now, n as u16) {
                    prop_assert_eq!(n, to, "response surfaced at the wrong node");
                    prop_assert_eq!(resp.value, 99);
                }
            }
            now += 1;
            prop_assert!(now.0 < 100_000);
        }
        prop_assert_eq!(f.hops_traversed(), u64::from(t.hops(from, to)));
    }
}
