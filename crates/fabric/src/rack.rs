//! Rate-matching rack emulator (the paper's single-node methodology, §5).
//!
//! "We focus our study on a single node, with remote ends emulated by a
//! traffic generator that matches the outgoing request rate of the node
//! that is simulated by generating incoming request traffic at the same
//! rate. [...] We assume a fixed chip-to-chip network latency of 35ns per
//! hop and monitor the average servicing latency of local RRPPs that are
//! simulated in detail. This RRPP latency is added to the network latency,
//! thus providing the roundtrip latency of a request once it leaves the
//! local node."

use ni_engine::{Counter, Cycle, DelayLine, RunningMean};
use ni_mem::BlockAddr;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One cache-block-sized remote request leaving (or entering) the node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteReq {
    /// Transfer tag echoed in the response (RCP backend ITT slot).
    pub tid: u64,
    /// True for remote reads, false for remote writes.
    pub is_read: bool,
    /// Requesting node id in the rack. Stamped by the fabric at injection
    /// time ([`crate::Fabric::inject`]); producers may leave it zero.
    pub src_node: u16,
    /// Destination node id in the rack.
    pub target_node: u16,
    /// Block address at the servicing node.
    pub remote_block: BlockAddr,
    /// Write payload (ignored for reads).
    pub value: u64,
    /// Remote compute cycles the servicing RRPP spends on this block before
    /// replying (two-sided request–response ops). Zero for one-sided
    /// remote-memory operations.
    pub service: u64,
}

/// Response to a [`RemoteReq`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteResp {
    /// Echoed transfer tag.
    pub tid: u64,
    /// Requesting node this response returns to (the request's `src_node`,
    /// echoed by the servicing RRPP so the fabric can route it home).
    pub dst_node: u16,
    /// Echoed block address.
    pub remote_block: BlockAddr,
    /// Read data (write responses carry 0).
    pub value: u64,
    /// True when this answers a read.
    pub is_read: bool,
}

/// Emulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct RackConfig {
    /// Network hops to the (emulated) remote node, each direction.
    pub hops: u32,
    /// Cycles per hop (35ns = 70 cycles at 2 GHz, §5).
    pub hop_cycles: u64,
    /// Seed latency assumed for remote RRPPs before local measurements
    /// accumulate (the paper's zero-load RRPP service time, ~208 cycles).
    pub initial_rrpp_estimate: u64,
    /// First block of the locally-exported region incoming requests hit.
    pub incoming_base: BlockAddr,
    /// Size of that region in blocks (sized to exceed on-chip caches, §5).
    pub incoming_region_blocks: u64,
    /// Generate mirrored incoming traffic (true for bandwidth experiments;
    /// latency experiments run unloaded).
    pub mirror_incoming: bool,
    /// RNG seed for incoming-address bursts.
    pub seed: u64,
}

impl Default for RackConfig {
    fn default() -> Self {
        RackConfig {
            hops: 1,
            hop_cycles: 70,
            initial_rrpp_estimate: 208,
            incoming_base: BlockAddr(1 << 24),
            incoming_region_blocks: 1 << 20, // 64 MiB: far beyond the 16MB LLC
            mirror_incoming: true,
            seed: 0x5eed,
        }
    }
}

/// Emulator statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct RackStats {
    /// Requests sent into the rack.
    pub sent: Counter,
    /// Responses returned to the node.
    pub responded: Counter,
    /// Incoming requests generated.
    pub incoming_generated: Counter,
}

/// The rate-matching remote-end emulator.
#[derive(Debug)]
pub struct RackEmulator {
    cfg: RackConfig,
    responses: DelayLine<RemoteResp>,
    incoming: DelayLine<RemoteReq>,
    /// EWMA of locally measured RRPP service latency.
    rrpp_estimate: f64,
    rrpp_samples: RunningMean,
    cursor: u64,
    burst_left: u32,
    rng: SmallRng,
    next_tid: u64,
    stats: RackStats,
}

impl RackEmulator {
    /// Create an emulator.
    pub fn new(cfg: RackConfig) -> RackEmulator {
        RackEmulator {
            cfg,
            responses: DelayLine::new(),
            incoming: DelayLine::new(),
            rrpp_estimate: cfg.initial_rrpp_estimate as f64,
            rrpp_samples: RunningMean::new(),
            cursor: 0,
            burst_left: 0,
            rng: SmallRng::seed_from_u64(cfg.seed),
            next_tid: 1 << 62, // distinct from local ITT tags
            stats: RackStats::default(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &RackConfig {
        &self.cfg
    }

    /// Statistics.
    pub fn stats(&self) -> &RackStats {
        &self.stats
    }

    /// Current one-way network latency in cycles.
    pub fn network_latency(&self) -> u64 {
        u64::from(self.cfg.hops) * self.cfg.hop_cycles
    }

    /// Deterministic synthetic contents of remote memory.
    pub fn remote_value(block: BlockAddr) -> u64 {
        // splitmix64 of the block index: stable, collision-poor.
        let mut z = block.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// An outgoing request leaves through the network router at `now`.
    ///
    /// The response is scheduled after two network traversals plus the
    /// current RRPP-latency estimate; if mirroring is enabled, a matching
    /// incoming request is generated one network traversal from now.
    pub fn send(&mut self, now: Cycle, req: RemoteReq) {
        self.stats.sent.incr();
        // Two-sided ops also wait out the remote compute time before the
        // emulated peer replies.
        let rtt = 2 * self.network_latency() + self.rrpp_estimate.round() as u64 + req.service;
        let value = if req.is_read {
            Self::remote_value(req.remote_block)
        } else {
            0
        };
        self.responses.push_after(
            now,
            rtt,
            RemoteResp {
                tid: req.tid,
                dst_node: req.src_node,
                remote_block: req.remote_block,
                value,
                is_read: req.is_read,
            },
        );
        if self.cfg.mirror_incoming {
            self.generate_incoming(now, req.is_read);
        }
    }

    fn generate_incoming(&mut self, now: Cycle, is_read: bool) {
        self.stats.incoming_generated.incr();
        if self.burst_left == 0 {
            // Start a new burst at a random region offset: bulk transfers
            // arrive as runs of consecutive blocks, like local unrolls.
            self.cursor = self.rng.gen_range(0..self.cfg.incoming_region_blocks);
            self.burst_left = 128;
        }
        let block =
            BlockAddr(self.cfg.incoming_base.0 + (self.cursor % self.cfg.incoming_region_blocks));
        self.cursor += 1;
        self.burst_left -= 1;
        let tid = self.next_tid;
        self.next_tid += 1;
        self.incoming.push_after(
            now,
            self.network_latency(),
            RemoteReq {
                tid,
                is_read,
                src_node: 1, // the emulated peer
                target_node: 0,
                remote_block: block,
                value: Self::remote_value(block),
                service: 0,
            },
        );
    }

    /// Next response to one of the node's own requests, if due.
    pub fn pop_response(&mut self, now: Cycle) -> Option<RemoteResp> {
        let r = self.responses.pop_ready(now);
        if r.is_some() {
            self.stats.responded.incr();
        }
        r
    }

    /// Next incoming remote request for the local RRPPs, if due.
    pub fn pop_incoming(&mut self, now: Cycle) -> Option<RemoteReq> {
        self.incoming.pop_ready(now)
    }

    /// Record a measured local RRPP service latency; refines the emulated
    /// remote service time (EWMA, symmetric-rack assumption).
    pub fn record_rrpp_latency(&mut self, cycles: u64) {
        self.rrpp_samples.record(cycles);
        const ALPHA: f64 = 1.0 / 64.0;
        self.rrpp_estimate = self.rrpp_estimate * (1.0 - ALPHA) + cycles as f64 * ALPHA;
    }

    /// Current RRPP service-latency estimate in cycles.
    pub fn rrpp_estimate(&self) -> f64 {
        self.rrpp_estimate
    }

    /// All recorded local RRPP samples.
    pub fn rrpp_samples(&self) -> &RunningMean {
        &self.rrpp_samples
    }

    /// True when no responses or incoming requests are in flight.
    pub fn is_idle(&self) -> bool {
        self.responses.is_empty() && self.incoming.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(tid: u64) -> RemoteReq {
        RemoteReq {
            tid,
            is_read: true,
            src_node: 0,
            target_node: 1,
            remote_block: BlockAddr(42),
            value: 0,
            service: 0,
        }
    }

    #[test]
    fn response_arrives_after_rtt_plus_service() {
        let mut r = RackEmulator::new(RackConfig {
            mirror_incoming: false,
            ..RackConfig::default()
        });
        r.send(Cycle(0), req(7));
        // 2 x 70 + 208 = 348.
        assert!(r.pop_response(Cycle(347)).is_none());
        let resp = r.pop_response(Cycle(348)).expect("due");
        assert_eq!(resp.tid, 7);
        assert_eq!(resp.value, RackEmulator::remote_value(BlockAddr(42)));
    }

    #[test]
    fn service_time_extends_the_emulated_round_trip() {
        let mut r = RackEmulator::new(RackConfig {
            mirror_incoming: false,
            ..RackConfig::default()
        });
        let mut rq = req(9);
        rq.service = 500;
        r.send(Cycle(0), rq);
        // 2 x 70 + 208 + 500 = 848.
        assert!(r.pop_response(Cycle(847)).is_none());
        assert!(r.pop_response(Cycle(848)).is_some());
    }

    #[test]
    fn hop_count_scales_network_latency() {
        let mut r = RackEmulator::new(RackConfig {
            hops: 6,
            mirror_incoming: false,
            ..RackConfig::default()
        });
        r.send(Cycle(0), req(1));
        // 2 x 6 x 70 + 208 = 1048.
        assert!(r.pop_response(Cycle(1047)).is_none());
        assert!(r.pop_response(Cycle(1048)).is_some());
    }

    #[test]
    fn mirroring_generates_one_incoming_per_outgoing() {
        let mut r = RackEmulator::new(RackConfig::default());
        for i in 0..10 {
            r.send(Cycle(i), req(i));
        }
        let mut got = 0;
        for t in 0..1000u64 {
            if r.pop_incoming(Cycle(t)).is_some() {
                got += 1;
            }
        }
        assert_eq!(got, 10);
        assert_eq!(r.stats().incoming_generated.get(), 10);
    }

    #[test]
    fn rrpp_estimate_tracks_samples() {
        let mut r = RackEmulator::new(RackConfig::default());
        let before = r.rrpp_estimate();
        for _ in 0..256 {
            r.record_rrpp_latency(400);
        }
        assert!(r.rrpp_estimate() > before);
        assert!((r.rrpp_estimate() - 400.0).abs() < 10.0);
    }

    #[test]
    fn incoming_addresses_stay_in_region() {
        let cfg = RackConfig::default();
        let mut r = RackEmulator::new(cfg);
        for i in 0..300 {
            r.send(Cycle(i), req(i));
        }
        let mut n = 0;
        for t in 0..2000u64 {
            if let Some(inc) = r.pop_incoming(Cycle(t)) {
                n += 1;
                assert!(inc.remote_block.0 >= cfg.incoming_base.0);
                assert!(inc.remote_block.0 < cfg.incoming_base.0 + cfg.incoming_region_blocks);
            }
        }
        assert_eq!(n, 300);
    }

    #[test]
    fn remote_values_are_deterministic_and_distinct() {
        assert_eq!(
            RackEmulator::remote_value(BlockAddr(5)),
            RackEmulator::remote_value(BlockAddr(5))
        );
        assert_ne!(
            RackEmulator::remote_value(BlockAddr(5)),
            RackEmulator::remote_value(BlockAddr(6))
        );
    }
}
