//! # ni-fabric — rack-scale fabric substrate
//!
//! The paper evaluates a 512-node rack connected as an 8x8x8 3D torus with
//! 35ns-per-hop links (§1, §5), but simulates *one node* in detail: remote
//! ends are emulated by a traffic generator that (a) mirrors the node's
//! outgoing request rate as incoming remote requests, address-interleaved
//! across the local RRPPs, and (b) answers the node's own requests after
//! `2 x hops x 35ns` plus the measured service latency of the local RRPPs
//! (assumed symmetric). This crate implements both the torus topology
//! ([`torus::Torus3D`]) and that rate-matching emulator
//! ([`rack::RackEmulator`]).

pub mod rack;
pub mod torus;

pub use rack::{RackConfig, RackEmulator, RemoteReq, RemoteResp};
pub use torus::Torus3D;
