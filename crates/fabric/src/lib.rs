//! # ni-fabric — rack-scale fabric substrate
//!
//! The paper evaluates a 512-node rack connected as an 8x8x8 3D torus with
//! 35ns-per-hop links (§1, §5), but simulates *one node* in detail: remote
//! ends are emulated by a traffic generator that (a) mirrors the node's
//! outgoing request rate as incoming remote requests, address-interleaved
//! across the local RRPPs, and (b) answers the node's own requests after
//! `2 x hops x 35ns` plus the measured service latency of the local RRPPs
//! (assumed symmetric).
//!
//! This crate implements that chip ↔ rack boundary as a pluggable trait,
//! [`Fabric`], with two interchangeable backends:
//!
//! * [`rack::RackEmulator`] — the paper-faithful rate-matching emulator
//!   (single simulated node);
//! * [`torus_fabric::TorusFabric`] — a real transport carrying packets
//!   hop-by-hop between fully simulated chips over the 3D torus
//!   ([`torus::Torus3D`]), with per-directed-link occupancy counters and
//!   finite link bandwidth.
//!
//! Multi-node racks couple chips to the shared [`TorusFabric`] through
//! buffered per-node [`port::FabricPort`] endpoints, letting every chip of a
//! lock-step rack tick on its own host thread while the driver merges the
//! port buffers deterministically between cycles.
//!
//! Path selection on the torus is itself pluggable: the transport consults
//! a [`routing::RoutingPolicy`] on every hop, with deterministic dimension
//! order, congestion-aware minimal-adaptive, failure-aware adaptive, and
//! seeded random-minimal built-ins (see [`mod@routing`]).
//!
//! The transport also models failure: a deterministic [`fault::FaultPlan`]
//! schedules link/node kills (and repairs) that the [`TorusFabric`] applies
//! mid-run, with link health exposed to routing through
//! [`routing::LinkView`] (see [`mod@fault`]). The recovery side lives in
//! [`mod@replica`]: a deterministic node → replica-set placement
//! ([`replica::ReplicaMap`]) that the RMC backends rotate timed-out
//! transfers through and fan replicated writes out over.

#![warn(missing_docs)]

pub mod fabric;
pub mod fault;
pub mod port;
pub mod rack;
pub mod replica;
pub mod routing;
pub mod torus;
pub mod torus_fabric;

pub use fabric::{Fabric, FabricStats};
pub use fault::{Axis, FaultEvent, FaultPlan};
pub use port::FabricPort;
pub use rack::{RackConfig, RackEmulator, RemoteReq, RemoteResp};
pub use replica::{ReplicaCfg, ReplicaMap};
pub use routing::{
    DimensionOrder, FaultAdaptive, LinkView, MinimalAdaptive, RandomMinimal, RoutingKind,
    RoutingPolicy, ESCAPE_HOP_BUDGET,
};
pub use torus::{Dir, ProductiveDirs, Torus3D};
pub use torus_fabric::{
    link_report_csv, link_report_json, FaultStats, LinkReport, TorusFabric, TorusFabricConfig,
};
