//! Deterministic K-way replica placement over the torus.
//!
//! A [`ReplicaMap`] assigns every node a *replica set*: the K nodes that
//! hold a copy of its address space, the node itself always first. The
//! placement is a pure function of `(geometry, seed, k)` — no ambient
//! randomness, no I/O — so every chip of a rack derives the identical map
//! independently and a replicated run stays bit-identical across thread
//! counts and reruns.
//!
//! Placement rule (torus-distance-aware spread): starting from the primary,
//! each successive replica is the candidate that *maximizes the minimum
//! torus distance* to every member already chosen, ties broken by a
//! seed-derived hash and then by node id. Maximizing spread (rather than
//! packing replicas next to the primary) is what lets a replica set survive
//! region kills — an X/Y/Z slab failure takes out co-located nodes
//! together, and a farthest-point placement never co-locates a primary with
//! its own replicas.
//!
//! The layers that consume the map:
//!
//! * the RMC backend rotates a timed-out transfer through the destination's
//!   replica set (WQ replay / read failover) and fans replicated writes out
//!   to every member, completing on a quorum;
//! * scenarios see the active replication factor through their op context
//!   and may spread read load across a hot node's replicas.
//!
//! Re-balancing after repair is implicit: the map is static and every new
//! op starts at the primary (rank 0), so a repaired node resumes serving
//! its shard on the very next op addressed to it — failover state is
//! per-transfer, never sticky.

use crate::torus::Torus3D;

/// Replication knobs, as carried by configs (small and `Copy` so it rides
/// inside the `Copy` chip/RMC config structs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplicaCfg {
    /// Replication factor K: copies of each node's data, the node itself
    /// included. `1` (the default) means replication is off and every
    /// recovery path below is dead code.
    pub k: u8,
    /// Write quorum W: a replicated write completes once `W` of the `K`
    /// fan-out legs acknowledged (clamped to `1..=K` where used).
    pub w: u8,
    /// Placement seed: the tie-break entropy of the [`ReplicaMap`]. Must be
    /// identical on every node of a rack (it is carried by the shared
    /// config, not the per-node seed, for exactly that reason).
    pub seed: u64,
}

impl ReplicaCfg {
    /// Replication off: `K = 1`, `W = 1` — the default everywhere, keeping
    /// every existing run bit-identical.
    pub fn off() -> ReplicaCfg {
        ReplicaCfg {
            k: 1,
            w: 1,
            seed: 0,
        }
    }

    /// True when this config actually replicates (`K > 1`).
    pub fn enabled(&self) -> bool {
        self.k > 1
    }
}

impl Default for ReplicaCfg {
    fn default() -> ReplicaCfg {
        ReplicaCfg::off()
    }
}

/// The node → replica-set table (see the module docs for the placement
/// rule). Built once per chip and shared read-only by its backends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaMap {
    k: u8,
    /// `sets[node]` = the K nodes holding `node`'s data, primary first.
    sets: Vec<Vec<u16>>,
}

/// SplitMix64 finalizer: the deterministic tie-break hash of the placement
/// rule (a pure function, not an RNG — no hidden stream state).
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ReplicaMap {
    /// Build the map for `torus` with replication factor `k` (clamped to
    /// the node count) and tie-break `seed`. Pure: equal arguments yield an
    /// equal map, on every node, every run.
    pub fn new(torus: Torus3D, seed: u64, k: u8) -> ReplicaMap {
        let n = torus.nodes();
        Self::build(n, seed, k, |a, b| torus.hops(u32::from(a), u32::from(b)))
    }

    /// Geometry-free fallback for racks without a torus (the single-node
    /// emulator): distance is ring distance over node ids.
    pub fn ring(nodes: u32, seed: u64, k: u8) -> ReplicaMap {
        Self::build(nodes, seed, k, move |a, b| {
            let d = u32::from(a.abs_diff(b));
            d.min(nodes.saturating_sub(d))
        })
    }

    fn build(nodes: u32, seed: u64, k: u8, dist: impl Fn(u16, u16) -> u32) -> ReplicaMap {
        assert!(nodes <= 1 << 16, "replica map indexes nodes as u16");
        let k = usize::from(k.max(1)).min(nodes.max(1) as usize);
        let mut sets = Vec::with_capacity(nodes as usize);
        for node in 0..nodes as u16 {
            let mut set = Vec::with_capacity(k);
            set.push(node);
            while set.len() < k {
                // Farthest-point pick: maximize the minimum distance to the
                // members already chosen; break ties by seeded hash, then id.
                let best = (0..nodes as u16)
                    .filter(|m| !set.contains(m))
                    .max_by_key(|&m| {
                        let spread = set.iter().map(|&s| dist(s, m)).min().unwrap_or(0);
                        (
                            spread,
                            mix64(seed ^ (u64::from(node) << 32) ^ u64::from(m)),
                            std::cmp::Reverse(m),
                        )
                    })
                    .expect("k clamped to the node count");
                set.push(best);
            }
            sets.push(set);
        }
        ReplicaMap { k: k as u8, sets }
    }

    /// The replication factor this map was built with.
    pub fn k(&self) -> u8 {
        self.k
    }

    /// The replica set of `node`'s data: K distinct nodes, `node` first.
    pub fn replicas(&self, node: u16) -> &[u16] {
        &self.sets[usize::from(node)]
    }

    /// The `rank`-th failover target for data homed at `node` (rank 0 is
    /// the primary itself; ranks wrap, so rotation never runs out).
    pub fn alternate(&self, node: u16, rank: u32) -> u16 {
        let set = self.replicas(node);
        set[(rank as usize) % set.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_deterministic_distinct_and_primary_first() {
        let t = Torus3D::new(4, 4, 4);
        let a = ReplicaMap::new(t, 0xbeef, 3);
        let b = ReplicaMap::new(t, 0xbeef, 3);
        assert_eq!(a, b, "same (torus, seed, k) must yield the same map");
        for node in 0..t.nodes() as u16 {
            let set = a.replicas(node);
            assert_eq!(set.len(), 3);
            assert_eq!(set[0], node, "the primary leads its own set");
            let mut s = set.to_vec();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 3, "replicas of {node} must be distinct");
        }
        let c = ReplicaMap::new(t, 0xbee5, 3);
        // Same spread-first rule, different tie-breaks: at least one set
        // should move (the 4x4x4 torus has many equidistant candidates).
        assert_ne!(a, c, "different seeds should shuffle tie-broken picks");
    }

    #[test]
    fn placement_spreads_replicas_away_from_the_primary() {
        let t = Torus3D::new(4, 4, 4);
        let m = ReplicaMap::new(t, 7, 2);
        for node in 0..t.nodes() {
            let r = m.replicas(node as u16)[1];
            // Farthest-point: the first replica sits at the maximum torus
            // distance from its primary (the antipode distance).
            assert_eq!(
                t.hops(node, u32::from(r)),
                t.max_hops(),
                "replica of {node} is not maximally spread"
            );
        }
    }

    #[test]
    fn ring_fallback_and_k_clamping() {
        let m = ReplicaMap::ring(2, 0, 4);
        assert_eq!(m.k(), 2, "k clamps to the node count");
        assert_eq!(m.replicas(0), &[0, 1]);
        assert_eq!(m.alternate(0, 0), 0);
        assert_eq!(m.alternate(0, 1), 1);
        assert_eq!(m.alternate(0, 2), 0, "ranks wrap");
        let one = ReplicaMap::ring(1, 0, 3);
        assert_eq!(one.replicas(0), &[0], "a 1-node rack has no alternates");
    }
}
