//! Pluggable routing policies for the torus transport.
//!
//! [`TorusFabric`](crate::TorusFabric) used to hard-code deterministic
//! dimension-order routing ([`Torus3D::next_hop`]); this module makes the
//! per-hop decision an open trait, [`RoutingPolicy`], so congestion-aware
//! variants can be evaluated against the status quo without touching the
//! transport. Three built-ins ship with the crate:
//!
//! * [`DimensionOrder`] — the extracted status quo: resolve x, then y, then
//!   z, breaking exact antipode ties toward the positive ring. Bit-identical
//!   to the pre-trait fabric.
//! * [`MinimalAdaptive`] — congestion-aware minimal routing: among all
//!   *productive* directions (those on some minimal path), take the one
//!   whose directed link has the smallest serialization backlog right now,
//!   falling back to dimension order on ties. Under zero load it degenerates
//!   to [`DimensionOrder`] exactly; under congestion it spreads a flow over
//!   every minimal path.
//! * [`RandomMinimal`] — a seeded oblivious baseline: pick uniformly among
//!   the productive directions.
//!
//! A fourth built-in exists for degraded fabrics:
//!
//! * [`FaultAdaptive`] — [`MinimalAdaptive`] over the *live* productive
//!   links (the [`LinkView`] also carries per-direction health), plus a
//!   bounded non-minimal *escape hop* when no productive live link exists —
//!   the one policy allowed to break the all-minimal invariant, and only
//!   under a per-packet budget the fabric enforces.
//!
//! Every other policy must be **minimal**: each hop strictly reduces the
//! Lee distance to the destination, so a packet is delivered after exactly
//! [`Torus3D::hops`]`(src, dest)` traversals — delivery and
//! livelock-freedom hold structurally, with no escape-path bookkeeping. The
//! fabric enforces the contract with a debug assertion on every hop
//! (relaxed, but still debug-asserted and budget-bounded, for policies
//! that declare [`RoutingPolicy::strictly_minimal`]` == false`).
//! Deadlock is not a concern in this transport model: links are infinitely
//! buffered delay/serialization stations rather than credit-limited VCs, so
//! forward progress never depends on buffer cycles.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::torus::{Dir, ProductiveDirs, Torus3D};

/// Non-minimal escape hops a single packet may spend over its whole
/// journey. The fabric stamps every fresh packet with this budget and
/// decrements it on each unproductive hop, so a fault-avoiding detour
/// terminates structurally: once the budget is spent, only productive live
/// links (or a stall) remain. Generous enough to round any single dead
/// link or node; small enough that a pathological policy cannot livelock.
pub const ESCAPE_HOP_BUDGET: u8 = 8;

/// A per-hop snapshot of the six directed links leaving the node a packet
/// currently sits at: serialization backlog, liveness, and the packet's
/// remaining non-minimal escape budget.
///
/// This is the cheap view [`TorusFabric`](crate::TorusFabric) hands its
/// [`RoutingPolicy`] on every hop — six copied counters plus six health
/// bits, no allocation. The backlog of a link is how many cycles a packet
/// accepted *now* would wait before starting to serialize (0 on an idle
/// link). A link reads as down when it was killed by the fabric's
/// [`FaultPlan`](crate::FaultPlan) *or* when the neighbor it leads to is a
/// dead node (a dead node accepts nothing, so the distinction is moot for
/// routing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkView {
    backlog: [u64; 6],
    up: [bool; 6],
    escapes_left: u8,
}

impl Default for LinkView {
    fn default() -> Self {
        LinkView {
            backlog: [0; 6],
            up: [true; 6],
            escapes_left: ESCAPE_HOP_BUDGET,
        }
    }
}

impl LinkView {
    /// A view with the given per-direction backlogs, indexed by
    /// [`Dir::index`]; every link healthy, full escape budget.
    pub fn new(backlog: [u64; 6]) -> LinkView {
        LinkView {
            backlog,
            ..LinkView::default()
        }
    }

    /// An all-idle view (every backlog zero, every link up) — what a policy
    /// sees on an unloaded healthy fabric.
    pub fn idle() -> LinkView {
        LinkView::default()
    }

    /// Replace the per-direction health bits, indexed by [`Dir::index`].
    pub fn with_health(mut self, up: [bool; 6]) -> LinkView {
        self.up = up;
        self
    }

    /// Replace the remaining escape budget of the packet being routed.
    pub fn with_escapes(mut self, escapes_left: u8) -> LinkView {
        self.escapes_left = escapes_left;
        self
    }

    /// Serialization backlog, in cycles, of the directed link leaving in
    /// direction `d`.
    pub fn backlog(&self, d: Dir) -> u64 {
        self.backlog[d.index()]
    }

    /// True when the directed link leaving in direction `d` is alive (the
    /// link itself is up and its far end is not a dead node).
    pub fn is_up(&self, d: Dir) -> bool {
        self.up[d.index()]
    }

    /// Non-minimal escape hops the packet being routed may still spend
    /// (see [`ESCAPE_HOP_BUDGET`]). Policies with
    /// [`RoutingPolicy::strictly_minimal`]` == false` must not return an
    /// unproductive direction when this is zero.
    pub fn escapes_left(&self) -> u8 {
        self.escapes_left
    }
}

/// A per-hop routing decision procedure over the 3D torus.
///
/// The fabric consults the policy once per link traversal: given the node a
/// packet sits at, its destination, and a [`LinkView`] of the local links'
/// backlogs, the policy names the outgoing direction. Policies may keep
/// seeded internal state (e.g. [`RandomMinimal`]'s RNG) — the fabric calls
/// them in a deterministic order, so a run remains a pure function of its
/// configuration.
///
/// # Contract
///
/// * Return `None` if and only if `from == dest`.
/// * The returned direction must be *productive*: the neighbor in that
///   direction must be strictly closer (in [`Torus3D::hops`]) to `dest`
///   than `from` is. This keeps every route minimal and delivery bounded by
///   the Lee distance; the fabric debug-asserts it on every hop.
pub trait RoutingPolicy: fmt::Debug + Send {
    /// Short stable name for report tables (`"dor"`, `"adaptive"`, ...).
    fn name(&self) -> &'static str;

    /// Choose the next-hop direction for a packet at `from` headed to
    /// `dest`, given the backlogs of `from`'s six outgoing links.
    fn route(&mut self, torus: &Torus3D, from: u32, dest: u32, links: &LinkView) -> Option<Dir>;

    /// Whether [`route`](RoutingPolicy::route) reads its [`LinkView`].
    /// Congestion-blind policies override this to `false` so the fabric
    /// skips building the snapshot on their (per-link-traversal) hot path;
    /// they then receive [`LinkView::idle`]. Defaults to `true` so a custom
    /// congestion-aware policy can never silently see an empty view.
    fn uses_link_view(&self) -> bool {
        true
    }

    /// Whether every direction this policy returns is productive. `true`
    /// (the default) keeps the fabric's per-hop minimality debug assertion
    /// armed. A policy that may take non-minimal escape hops (e.g.
    /// [`FaultAdaptive`] routing around a dead link) overrides this to
    /// `false`; it must then only return an unproductive direction while
    /// [`LinkView::escapes_left`] is non-zero — the fabric debug-asserts
    /// that weaker contract and decrements the packet's budget on every
    /// non-minimal hop.
    fn strictly_minimal(&self) -> bool {
        true
    }
}

/// Deterministic dimension-order routing — the extracted status quo.
///
/// Resolves the x offset first, then y, then z, breaking exact antipode
/// ties toward the positive ring direction; ignores congestion entirely.
/// Delegates to [`Torus3D::next_hop`], so a [`TorusFabric`] built with this
/// policy is bit-identical to the pre-[`RoutingPolicy`] fabric.
///
/// [`TorusFabric`]: crate::TorusFabric
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DimensionOrder;

impl RoutingPolicy for DimensionOrder {
    fn name(&self) -> &'static str {
        "dor"
    }

    fn route(&mut self, torus: &Torus3D, from: u32, dest: u32, _links: &LinkView) -> Option<Dir> {
        torus.next_hop(from, dest)
    }

    fn uses_link_view(&self) -> bool {
        false
    }
}

/// Congestion-aware minimal-adaptive routing.
///
/// Considers every productive direction ([`Torus3D::productive_dirs`]) and
/// takes the one with the smallest [`LinkView::backlog`]; ties resolve to
/// the earliest productive direction in dimension order — which is exactly
/// the [`DimensionOrder`] choice, so the dimension-order *escape rule* is
/// built into the tie-break: an unloaded fabric routes identically to DOR,
/// and any congestion-driven deviation still rides a minimal path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MinimalAdaptive;

impl RoutingPolicy for MinimalAdaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn route(&mut self, torus: &Torus3D, from: u32, dest: u32, links: &LinkView) -> Option<Dir> {
        let mut best: Option<(Dir, u64)> = None;
        for &d in torus.productive_dirs(from, dest).as_slice() {
            let b = links.backlog(d);
            // Strictly-less keeps the first (dimension-order) minimum.
            if best.is_none_or(|(_, bb)| b < bb) {
                best = Some((d, b));
            }
        }
        best.map(|(d, _)| d)
    }
}

/// Failure-aware adaptive routing: [`MinimalAdaptive`] over the *live*
/// productive links, with a bounded non-minimal escape hop when none
/// exists.
///
/// On a healthy fabric this is bit-identical to [`MinimalAdaptive`]: every
/// link reads as up, so the live-productive scan degenerates to the same
/// least-backlogged / dimension-order-tie-break choice (property-tested).
/// When a [`FaultPlan`](crate::FaultPlan) has killed links or nodes:
///
/// * productive directions whose link is dead are skipped — traffic
///   reroutes over the surviving minimal paths;
/// * when *no* productive direction is live (the packet sits right behind
///   the fault), it spends one hop of its escape budget
///   ([`ESCAPE_HOP_BUDGET`]) on the least-backlogged live unproductive
///   link — a controlled break of the all-minimal invariant
///   ([`strictly_minimal`](RoutingPolicy::strictly_minimal)` == false`),
///   debug-asserted and budget-bounded by the fabric;
/// * a packet that has escaped before (its budget is no longer full)
///   breaks equal-backlog ties with a deterministic *rotating* pick
///   instead of fixed dimension order — successive decisions spread over
///   the tied candidates, so a detour cannot ping-pong forever between a
///   fault-adjacent node and its neighbor (each bounce burns budget, and
///   the rotation soon points the packet down a surviving path);
/// * with the budget spent and nothing live and productive, it returns the
///   dimension-order choice and lets the fabric stall the packet — which
///   is also what happens to traffic whose destination is unreachable
///   (e.g. fully cut off), leaving recovery to the RMC's ITT timeout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultAdaptive {
    /// Deterministic tie-break rotation for packets that have escaped
    /// before — bumped only on those decisions, so a healthy fabric never
    /// consults (or advances) it.
    rotation: u64,
}

impl FaultAdaptive {
    /// Rotating pick among the live candidates in `dirs` whose backlog
    /// equals the minimum: deterministic, but successive calls walk the
    /// tied set instead of always taking the first — which is what stops
    /// a detouring packet from bouncing forever between two nodes that
    /// keep offering it the same tied choice.
    fn rotate_pick(&mut self, dirs: &[Dir], links: &LinkView) -> Option<Dir> {
        let mut minb: Option<u64> = None;
        for &d in dirs {
            if !links.is_up(d) {
                continue;
            }
            let b = links.backlog(d);
            minb = Some(minb.map_or(b, |m: u64| m.min(b)));
        }
        let minb = minb?;
        let tied = dirs
            .iter()
            .filter(|&&d| links.is_up(d) && links.backlog(d) == minb)
            .count();
        let pick = (self.rotation % tied as u64) as usize;
        self.rotation = self.rotation.wrapping_add(1);
        dirs.iter()
            .filter(|&&d| links.is_up(d) && links.backlog(d) == minb)
            .nth(pick)
            .copied()
    }
}

impl RoutingPolicy for FaultAdaptive {
    fn name(&self) -> &'static str {
        "fault-adaptive"
    }

    fn route(&mut self, torus: &Torus3D, from: u32, dest: u32, links: &LinkView) -> Option<Dir> {
        let prod = torus.productive_dirs(from, dest);
        if prod.is_empty() {
            return None;
        }
        let escaped_before = links.escapes_left() < ESCAPE_HOP_BUDGET;
        if !escaped_before {
            // Never-escaped packets: minimal-adaptive over the live
            // productive links, dimension-order tie-break — on a healthy
            // fabric (all links up, full budgets everywhere) this branch
            // is the whole policy and is bit-identical to MinimalAdaptive.
            let mut best: Option<(Dir, u64)> = None;
            for &d in prod.as_slice() {
                if !links.is_up(d) {
                    continue;
                }
                let b = links.backlog(d);
                // Strictly-less keeps the first (dimension-order) minimum.
                if best.is_none_or(|(_, bb)| b < bb) {
                    best = Some((d, b));
                }
            }
            if let Some((d, _)) = best {
                return Some(d);
            }
        } else if let Some(d) = self.rotate_pick(prod.as_slice(), links) {
            // Detouring packets rotate over tied minimal choices so they
            // cannot oscillate back into the fault indefinitely.
            return Some(d);
        }
        // Every minimal first hop is dead. Escape sideways if the packet
        // still has budget: rotating pick over the least-backlogged live
        // unproductive links.
        if links.escapes_left() > 0 {
            let mut all = [Dir::XPlus; 6];
            let mut n = 0;
            for d in Dir::ALL {
                if links.is_up(d) && torus.neighbor(from, d) != from {
                    all[n] = d;
                    n += 1;
                }
            }
            if let Some(d) = self.rotate_pick(&all[..n], links) {
                return Some(d);
            }
        }
        // Nothing live at all (isolated node) or budget spent: hand back
        // the dimension-order choice and let the fabric stall the packet
        // at the dead link until a repair (or an ITT timeout upstream)
        // resolves it.
        Some(prod.as_slice()[0])
    }

    fn strictly_minimal(&self) -> bool {
        false
    }
}

/// Seeded oblivious baseline: a uniformly random productive direction.
///
/// Congestion-blind like [`DimensionOrder`] but path-diverse like
/// [`MinimalAdaptive`] — separating how much of adaptive routing's gain
/// comes from *reacting* to load versus merely *spreading* over minimal
/// paths. Deterministic for a given seed and packet order.
#[derive(Clone, Debug)]
pub struct RandomMinimal {
    rng: SmallRng,
}

impl RandomMinimal {
    /// A policy drawing directions from the given seed.
    pub fn seeded(seed: u64) -> RandomMinimal {
        RandomMinimal {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl RoutingPolicy for RandomMinimal {
    fn name(&self) -> &'static str {
        "random"
    }

    fn route(&mut self, torus: &Torus3D, from: u32, dest: u32, _links: &LinkView) -> Option<Dir> {
        let p: ProductiveDirs = torus.productive_dirs(from, dest);
        let dirs = p.as_slice();
        match dirs.len() {
            0 => None,
            1 => Some(dirs[0]),
            n => Some(dirs[self.rng.gen_range(0..n as u32) as usize]),
        }
    }

    fn uses_link_view(&self) -> bool {
        false
    }
}

/// Config-friendly name of a built-in [`RoutingPolicy`] (the open trait
/// stays available through
/// [`TorusFabric::with_policy`](crate::TorusFabric::with_policy)).
///
/// `Copy`, so it can live in the plain-data
/// [`TorusFabricConfig`](crate::TorusFabricConfig) and rack configs and be
/// swept over in experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RoutingKind {
    /// [`DimensionOrder`].
    #[default]
    DimensionOrder,
    /// [`MinimalAdaptive`].
    MinimalAdaptive,
    /// [`FaultAdaptive`] (minimal-adaptive over live links, bounded
    /// non-minimal escape around faults).
    FaultAdaptive,
    /// [`RandomMinimal`] drawing from the given seed.
    RandomMinimal {
        /// RNG seed of the policy instance.
        seed: u64,
    },
}

impl RoutingKind {
    /// The three *minimal* built-ins at canonical parameters, in the stable
    /// order the routing sweeps use. [`RoutingKind::FaultAdaptive`] is
    /// deliberately not here: on a healthy fabric it duplicates
    /// [`MinimalAdaptive`] bit for bit, and the failure sweeps carry their
    /// own `{dor, fault-adaptive}` axis.
    pub const ALL: [RoutingKind; 3] = [
        RoutingKind::DimensionOrder,
        RoutingKind::MinimalAdaptive,
        RoutingKind::RandomMinimal { seed: 0x5eed },
    ];

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn RoutingPolicy> {
        match self {
            RoutingKind::DimensionOrder => Box::new(DimensionOrder),
            RoutingKind::MinimalAdaptive => Box::new(MinimalAdaptive),
            RoutingKind::FaultAdaptive => Box::new(FaultAdaptive::default()),
            RoutingKind::RandomMinimal { seed } => Box::new(RandomMinimal::seeded(seed)),
        }
    }

    /// The policy's short stable name (`"dor"`, `"adaptive"`,
    /// `"fault-adaptive"`, `"random"`).
    pub fn name(self) -> &'static str {
        match self {
            RoutingKind::DimensionOrder => "dor",
            RoutingKind::MinimalAdaptive => "adaptive",
            RoutingKind::FaultAdaptive => "fault-adaptive",
            RoutingKind::RandomMinimal { .. } => "random",
        }
    }
}

impl fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route_all(p: &mut dyn RoutingPolicy, t: &Torus3D, links: &LinkView) -> Vec<Option<Dir>> {
        let mut out = Vec::new();
        for from in 0..t.nodes() {
            for dest in 0..t.nodes() {
                out.push(p.route(t, from, dest, links));
            }
        }
        out
    }

    #[test]
    fn dimension_order_matches_next_hop_everywhere() {
        for t in [Torus3D::new(3, 3, 3), Torus3D::new(4, 2, 1)] {
            let mut p = DimensionOrder;
            for from in 0..t.nodes() {
                for dest in 0..t.nodes() {
                    assert_eq!(
                        p.route(&t, from, dest, &LinkView::idle()),
                        t.next_hop(from, dest)
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_degenerates_to_dor_on_an_idle_fabric() {
        let t = Torus3D::new(4, 4, 4);
        let idle = LinkView::idle();
        assert_eq!(
            route_all(&mut MinimalAdaptive, &t, &idle),
            route_all(&mut DimensionOrder, &t, &idle),
            "zero-load adaptive must be the dimension-order escape path"
        );
    }

    #[test]
    fn adaptive_dodges_a_congested_link() {
        let t = Torus3D::new(4, 4, 1);
        // From (0,0) to (1,1): +x and +y are the only productive dirs. Pile
        // backlog on +x; the adaptive policy must take +y, DOR stays on +x.
        let (from, dest) = (t.id((0, 0, 0)), t.id((1, 1, 0)));
        let mut backlog = [0u64; 6];
        backlog[Dir::XPlus.index()] = 100;
        let view = LinkView::new(backlog);
        assert_eq!(
            MinimalAdaptive.route(&t, from, dest, &view),
            Some(Dir::YPlus)
        );
        assert_eq!(
            DimensionOrder.route(&t, from, dest, &view),
            Some(Dir::XPlus)
        );
    }

    #[test]
    fn adaptive_never_takes_an_unproductive_dir() {
        let t = Torus3D::new(4, 3, 2);
        // Saturate every link: the policy must still pick a productive dir.
        let view = LinkView::new([7, 3, 9, 1, 4, 2]);
        for from in 0..t.nodes() {
            for dest in 0..t.nodes() {
                match MinimalAdaptive.route(&t, from, dest, &view) {
                    None => assert_eq!(from, dest),
                    Some(d) => {
                        let next = t.neighbor(from, d);
                        assert!(
                            t.hops(next, dest) < t.hops(from, dest),
                            "{from}->{dest} via {d} is unproductive"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn random_minimal_is_seed_deterministic_and_productive() {
        let t = Torus3D::new(3, 3, 3);
        let idle = LinkView::idle();
        let a = route_all(&mut RandomMinimal::seeded(9), &t, &idle);
        let b = route_all(&mut RandomMinimal::seeded(9), &t, &idle);
        assert_eq!(a, b, "same seed must replay the same choices");
        for (i, d) in a.iter().enumerate() {
            let (from, dest) = (i as u32 / t.nodes(), i as u32 % t.nodes());
            match d {
                None => assert_eq!(from, dest),
                Some(d) => assert!(t.hops(t.neighbor(from, *d), dest) < t.hops(from, dest)),
            }
        }
    }

    #[test]
    fn random_minimal_actually_diversifies() {
        let t = Torus3D::new(4, 4, 4);
        // A diagonal pair with several productive dims: over many draws the
        // policy must use more than one first hop.
        let (from, dest) = (t.id((0, 0, 0)), t.id((2, 2, 2)));
        let mut p = RandomMinimal::seeded(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(p.route(&t, from, dest, &LinkView::idle()).unwrap());
        }
        assert!(seen.len() > 1, "only ever chose {seen:?}");
    }

    #[test]
    fn kind_builds_matching_names() {
        for k in RoutingKind::ALL {
            assert_eq!(k.build().name(), k.name());
        }
        assert_eq!(
            RoutingKind::FaultAdaptive.build().name(),
            RoutingKind::FaultAdaptive.name()
        );
        assert_eq!(RoutingKind::default(), RoutingKind::DimensionOrder);
        assert_eq!(RoutingKind::MinimalAdaptive.to_string(), "adaptive");
        assert_eq!(RoutingKind::FaultAdaptive.to_string(), "fault-adaptive");
        assert!(!FaultAdaptive::default().strictly_minimal());
        assert!(MinimalAdaptive.strictly_minimal());
    }

    #[test]
    fn fault_adaptive_matches_minimal_adaptive_on_healthy_views() {
        let t = Torus3D::new(4, 3, 2);
        for view in [LinkView::idle(), LinkView::new([7, 3, 9, 1, 4, 2])] {
            assert_eq!(
                route_all(&mut FaultAdaptive::default(), &t, &view),
                route_all(&mut MinimalAdaptive, &t, &view),
                "healthy-fabric fault-adaptive must be minimal-adaptive exactly"
            );
        }
    }

    #[test]
    fn fault_adaptive_skips_a_dead_productive_link() {
        let t = Torus3D::new(4, 4, 1);
        // From (0,0) to (1,1): +x and +y productive. Kill +x; the policy
        // must take the surviving minimal path via +y even though +x has
        // less backlog.
        let (from, dest) = (t.id((0, 0, 0)), t.id((1, 1, 0)));
        let mut up = [true; 6];
        up[Dir::XPlus.index()] = false;
        let view = LinkView::new([0; 6]).with_health(up);
        assert_eq!(
            FaultAdaptive::default().route(&t, from, dest, &view),
            Some(Dir::YPlus)
        );
    }

    #[test]
    fn fault_adaptive_escapes_when_every_minimal_hop_is_dead() {
        let t = Torus3D::new(4, 1, 1);
        // From x=0 to x=1 on a pure ring: +x is the only productive dir.
        // Kill it; with budget the policy must step away over a live
        // unproductive link (-x), not stall.
        let (from, dest) = (t.id((0, 0, 0)), t.id((1, 0, 0)));
        let mut up = [true; 6];
        up[Dir::XPlus.index()] = false;
        let view = LinkView::new([0; 6]).with_health(up);
        assert_eq!(
            FaultAdaptive::default().route(&t, from, dest, &view),
            Some(Dir::XMinus)
        );
        // Budget spent: it hands back the (dead) dimension-order dir and
        // lets the fabric stall the packet.
        let spent = view.with_escapes(0);
        assert_eq!(
            FaultAdaptive::default().route(&t, from, dest, &spent),
            Some(Dir::XPlus)
        );
    }
}
