//! Buffered per-node fabric endpoints for parallel lock-step racks.
//!
//! A multi-node rack used to hand every chip an `Rc<RefCell<TorusFabric>>`
//! handle, serializing the whole rack behind one shared borrow. A
//! [`FabricPort`] cuts that dependency: it is a per-node *outbox/inbox pair*
//! implementing [`Fabric`], so a chip ticks entirely against local buffers
//! and never touches the shared transport. The rack driver then runs a
//! deterministic two-phase cycle:
//!
//! 1. **Compute** — every chip ticks independently (farmed across host
//!    threads), injecting into its port's outbox and draining arrivals from
//!    its port's inbox.
//! 2. **Exchange** — the driver merges all outboxes into the real fabric in
//!    node-id order, advances the fabric exactly once, and distributes the
//!    new arrivals back into per-node inboxes.
//!
//! Because the merge order is fixed (node id, FIFO within a node) and chips
//! share no state during the compute phase, the result is bit-identical to
//! ticking the chips serially against a shared fabric — at any worker-thread
//! count. Ports are cloneable handles over an `Arc<Mutex<_>>` (uncontended
//! by construction: a port is touched by exactly one thread in each phase),
//! which is what makes the owning [`Chip`](../../ni_soc) `Send`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ni_engine::Cycle;

use crate::fabric::{Fabric, FabricStats};
use crate::rack::{RemoteReq, RemoteResp};

/// One buffered event emitted by a chip during the compute phase, replayed
/// into the real fabric during the exchange phase. A single FIFO preserves
/// the chip's exact emission order across requests, responses, and latency
/// samples.
#[derive(Clone, Copy, Debug)]
enum PortEvent {
    /// An outgoing request ([`Fabric::inject`]).
    Req(RemoteReq),
    /// An outgoing response ([`Fabric::inject_resp`]).
    Resp(RemoteResp),
    /// A measured RRPP service latency ([`Fabric::record_rrpp_latency`]).
    RrppLatency(u64),
}

#[derive(Debug, Default)]
struct PortState {
    outbox: Vec<PortEvent>,
    inbox_reqs: VecDeque<RemoteReq>,
    inbox_resps: VecDeque<RemoteResp>,
    /// Port-local traffic counters (this node's view; rack-wide numbers
    /// come from the shared fabric the driver owns).
    stats: FabricStats,
}

/// The buffers plus lock-free occupancy flags. The flags let the hot
/// idle-port paths — the rack driver's per-cycle merge scan and the chip's
/// `is_idle` check — skip the mutex entirely: on a large mostly-idle rack
/// those run once per node per cycle. A flag may conservatively read `true`
/// for an empty buffer (the next locked pass clears it); it is never
/// `false` for a non-empty one.
#[derive(Debug, Default)]
struct PortShared {
    state: Mutex<PortState>,
    /// True whenever the outbox may hold undelivered events.
    outbox_pending: AtomicBool,
    /// True whenever either inbox may hold undrained arrivals.
    inbox_pending: AtomicBool,
}

/// A per-node buffered endpoint of a lock-step rack: the chip side injects
/// into the outbox and drains the inbox; the rack side exchanges both with
/// the real transport between compute phases. Cloning yields another handle
/// onto the same buffers.
#[derive(Clone, Debug)]
pub struct FabricPort {
    node: u16,
    shared: Arc<PortShared>,
}

impl FabricPort {
    /// Create the port for rack node `node`.
    pub fn new(node: u16) -> FabricPort {
        FabricPort {
            node,
            shared: Arc::new(PortShared::default()),
        }
    }

    /// The node this port belongs to.
    pub fn node(&self) -> u16 {
        self.node
    }

    fn lock(&self) -> MutexGuard<'_, PortState> {
        self.shared.state.lock().expect("port mutex never poisoned")
    }

    /// True when the outbox may hold events awaiting
    /// [`flush_outbox`](FabricPort::flush_outbox) — a lock-free peek the
    /// rack driver uses to skip the whole merge pass on quiet cycles.
    pub fn outbox_pending(&self) -> bool {
        self.shared.outbox_pending.load(Ordering::Acquire)
    }

    /// Exchange-phase step 1: replay this port's buffered outbox into
    /// `fabric` in emission order, stamped at `now`. Called by the rack
    /// driver for every node in node-id order, which reproduces the exact
    /// injection order of a serial run. Returns without locking when the
    /// outbox flag shows nothing pending.
    pub fn flush_outbox(&self, now: Cycle, fabric: &mut dyn Fabric) {
        if !self.outbox_pending() {
            return;
        }
        let mut s = self.lock();
        for ev in s.outbox.drain(..) {
            match ev {
                PortEvent::Req(req) => fabric.inject(now, self.node, req),
                PortEvent::Resp(resp) => fabric.inject_resp(now, self.node, resp),
                PortEvent::RrppLatency(cycles) => fabric.record_rrpp_latency(self.node, cycles),
            }
        }
        self.shared.outbox_pending.store(false, Ordering::Release);
    }

    /// Exchange-phase step 2: move every arrival addressed to this node out
    /// of `fabric` into the port inbox (FIFO order preserved), making it
    /// visible to the chip's next compute phase.
    pub fn collect_arrivals(&self, now: Cycle, fabric: &mut dyn Fabric) {
        let mut s = self.lock();
        let mut any = false;
        while let Some(r) = fabric.pop_response(now, self.node) {
            s.inbox_resps.push_back(r);
            any = true;
        }
        while let Some(r) = fabric.pop_incoming(now, self.node) {
            s.inbox_reqs.push_back(r);
            any = true;
        }
        if any {
            self.shared.inbox_pending.store(true, Ordering::Release);
        }
    }
}

impl Fabric for FabricPort {
    fn inject(&mut self, _now: Cycle, from: u16, req: RemoteReq) {
        debug_assert_eq!(from, self.node, "port used by a foreign node");
        let mut s = self.lock();
        s.stats.sent.incr();
        let mut req = req;
        req.src_node = from;
        s.outbox.push(PortEvent::Req(req));
        self.shared.outbox_pending.store(true, Ordering::Release);
    }

    fn inject_resp(&mut self, _now: Cycle, from: u16, resp: RemoteResp) {
        debug_assert_eq!(from, self.node, "port used by a foreign node");
        self.lock().outbox.push(PortEvent::Resp(resp));
        self.shared.outbox_pending.store(true, Ordering::Release);
    }

    fn tick(&mut self, _now: Cycle) {
        // Transport time passes in the shared fabric during the exchange
        // phase; the port itself has no clocked state.
    }

    fn pop_response(&mut self, _now: Cycle, node: u16) -> Option<RemoteResp> {
        debug_assert_eq!(node, self.node, "port used by a foreign node");
        let mut s = self.lock();
        let r = s.inbox_resps.pop_front();
        if r.is_some() {
            s.stats.responded.incr();
            if s.inbox_resps.is_empty() && s.inbox_reqs.is_empty() {
                self.shared.inbox_pending.store(false, Ordering::Release);
            }
        }
        r
    }

    fn pop_incoming(&mut self, _now: Cycle, node: u16) -> Option<RemoteReq> {
        debug_assert_eq!(node, self.node, "port used by a foreign node");
        let mut s = self.lock();
        let r = s.inbox_reqs.pop_front();
        if r.is_some() {
            s.stats.incoming_generated.incr();
            if s.inbox_resps.is_empty() && s.inbox_reqs.is_empty() {
                self.shared.inbox_pending.store(false, Ordering::Release);
            }
        }
        r
    }

    fn record_rrpp_latency(&mut self, node: u16, cycles: u64) {
        debug_assert_eq!(node, self.node, "port used by a foreign node");
        self.lock().outbox.push(PortEvent::RrppLatency(cycles));
        self.shared.outbox_pending.store(true, Ordering::Release);
    }

    fn stats(&self) -> FabricStats {
        self.lock().stats
    }

    fn is_idle(&self) -> bool {
        // Two lock-free loads: this runs in every chip's per-cycle fast
        // path. Conservative by construction (see [`PortShared`]).
        !self.shared.outbox_pending.load(Ordering::Acquire)
            && !self.shared.inbox_pending.load(Ordering::Acquire)
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // A port never acts on its own: its tick is a no-op and arrivals
        // only appear when the rack driver collects them between compute
        // phases. Undrained arrivals surface at the chip's next
        // `pop_*`, so report them as due now; otherwise stay silent.
        if self.shared.inbox_pending.load(Ordering::Acquire) {
            Some(now)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus_fabric::{TorusFabric, TorusFabricConfig};
    use crate::Torus3D;
    use ni_mem::BlockAddr;

    fn req(tid: u64, target: u16) -> RemoteReq {
        RemoteReq {
            tid,
            is_read: true,
            src_node: 0,
            target_node: target,
            remote_block: BlockAddr(5),
            value: 0,
            service: 0,
        }
    }

    #[test]
    fn outbox_replays_in_emission_order_and_inbox_preserves_fifo() {
        let mut fabric = TorusFabric::new(TorusFabricConfig {
            torus: Torus3D::new(2, 1, 1),
            ..TorusFabricConfig::default()
        });
        let mut port0 = FabricPort::new(0);
        let port1 = FabricPort::new(1);
        port0.inject(Cycle(0), 0, req(1, 1));
        port0.inject(Cycle(0), 0, req(2, 1));
        assert!(!port0.is_idle());
        port0.flush_outbox(Cycle(0), &mut fabric);
        assert!(port0.is_idle());
        assert_eq!(fabric.stats().sent.get(), 2);
        // 32B at 16 B/cycle = 2 cycles serialization + 70 wire; the second
        // request queues 2 more cycles behind the first.
        for now in 1..=74 {
            fabric.tick(Cycle(now));
        }
        port1.collect_arrivals(Cycle(74), &mut fabric);
        let mut chip_side = port1.clone();
        let a = chip_side.pop_incoming(Cycle(74), 1).expect("first arrival");
        let b = chip_side
            .pop_incoming(Cycle(74), 1)
            .expect("second arrival");
        assert_eq!((a.tid, b.tid), (1, 2), "FIFO order preserved end to end");
        assert!(chip_side.pop_incoming(Cycle(74), 1).is_none());
        assert_eq!(chip_side.stats().incoming_generated.get(), 2);
    }

    #[test]
    fn clones_share_the_same_buffers() {
        let mut a = FabricPort::new(3);
        let b = a.clone();
        a.inject(Cycle(0), 3, req(9, 0));
        assert!(!b.is_idle());
        assert_eq!(b.stats().sent.get(), 1);
    }
}
