//! The chip ↔ rack boundary as a trait.
//!
//! A simulated node used to be hardwired to the rate-matching
//! [`RackEmulator`]: every outgoing request went
//! straight into the emulator and every arrival came straight out of it.
//! [`Fabric`] makes that boundary pluggable. A chip *injects* outgoing
//! requests and responses, *ticks* the fabric once per cycle, and *drains*
//! arrivals addressed to its node id. Two interchangeable backends exist:
//!
//! * [`RackEmulator`] — the paper's single-node
//!   methodology (§5): remote ends answered after `2 × hops × 35ns` plus a
//!   measured-RRPP estimate, with mirrored incoming traffic.
//! * [`TorusFabric`](crate::TorusFabric) — a real multi-node transport:
//!   packets travel hop-by-hop over the 3D torus between fully simulated
//!   chips, with per-directed-link occupancy and finite link bandwidth.
//!
//! Multi-node racks do not share a backend instance across chips: each chip
//! owns a buffered [`FabricPort`](crate::FabricPort) and the rack driver
//! exchanges the port buffers with one [`TorusFabric`](crate::TorusFabric)
//! between compute phases, which is what lets chips tick on separate host
//! threads.

use ni_engine::{Counter, Cycle};

use crate::rack::{RackEmulator, RemoteReq, RemoteResp};

/// Backend-independent traffic counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    /// Requests injected into the rack by local nodes.
    pub sent: Counter,
    /// Responses delivered back to requesting nodes.
    pub responded: Counter,
    /// Incoming requests delivered to servicing nodes (for the emulator:
    /// mirrored traffic generated).
    pub incoming_generated: Counter,
}

/// The chip ↔ rack boundary.
///
/// All methods take the acting node's id so one fabric instance can serve a
/// whole rack; the single-node emulator simply ignores it.
pub trait Fabric {
    /// Node `from`'s network router hands over an outgoing request at `now`.
    /// The fabric stamps `req.src_node = from` before routing.
    fn inject(&mut self, now: Cycle, from: u16, req: RemoteReq);

    /// Node `from`'s RRPP hands over a response at `now`, routed to
    /// `resp.dst_node`.
    fn inject_resp(&mut self, now: Cycle, from: u16, resp: RemoteResp);

    /// Advance internal transport state to `now`. The driving loop calls
    /// this exactly once per cycle per fabric instance (a chip ticks the
    /// fabric it owns; a rack driver ticks the shared transport itself and
    /// hands each chip a buffered [`FabricPort`](crate::FabricPort) whose
    /// `tick` is a no-op).
    fn tick(&mut self, now: Cycle);

    /// Next response due at `node` by `now`, if any.
    fn pop_response(&mut self, now: Cycle, node: u16) -> Option<RemoteResp>;

    /// Next incoming remote request due at `node` by `now`, if any.
    fn pop_incoming(&mut self, now: Cycle, node: u16) -> Option<RemoteReq>;

    /// Node `node` measured one local RRPP service latency (feeds the
    /// emulator's symmetric-rack estimate; real transports ignore it).
    fn record_rrpp_latency(&mut self, node: u16, cycles: u64);

    /// Aggregate traffic counters.
    fn stats(&self) -> FabricStats;

    /// True when no traffic is in flight anywhere in the fabric.
    fn is_idle(&self) -> bool;

    /// Earliest cycle `>= now` at which this fabric may do anything on its
    /// own — deliver a response or incoming request, or otherwise change
    /// state in [`Fabric::tick`]. `None` promises the fabric stays silent
    /// at *every* future cycle unless the owning chip injects first, which
    /// is what licenses event-driven chips to jump over whole idle
    /// stretches (the soc crate's next-event skip). The default is
    /// the conservative `Some(now)`: never skippable. Backends with
    /// self-driven schedules (fault plans, stats windows) must keep it.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now)
    }
}

impl Fabric for RackEmulator {
    fn inject(&mut self, now: Cycle, from: u16, req: RemoteReq) {
        let mut req = req;
        req.src_node = from;
        RackEmulator::send(self, now, req);
    }

    fn inject_resp(&mut self, _now: Cycle, _from: u16, _resp: RemoteResp) {
        // The emulated remote requester does not consume responses; RRPP
        // stats already account the bandwidth (§6.2's methodology).
    }

    fn tick(&mut self, _now: Cycle) {}

    fn pop_response(&mut self, now: Cycle, _node: u16) -> Option<RemoteResp> {
        RackEmulator::pop_response(self, now)
    }

    fn pop_incoming(&mut self, now: Cycle, _node: u16) -> Option<RemoteReq> {
        RackEmulator::pop_incoming(self, now)
    }

    fn record_rrpp_latency(&mut self, _node: u16, cycles: u64) {
        RackEmulator::record_rrpp_latency(self, cycles);
    }

    fn stats(&self) -> FabricStats {
        let s = RackEmulator::stats(self);
        FabricStats {
            sent: s.sent,
            responded: s.responded,
            incoming_generated: s.incoming_generated,
        }
    }

    fn is_idle(&self) -> bool {
        RackEmulator::is_idle(self)
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // The emulator's `tick` is empty and responses/mirrored requests
        // only ever stem from earlier injections, so an idle emulator is
        // silent forever. With traffic in flight stay conservative: the
        // per-cycle pops are time-gated anyway.
        if RackEmulator::is_idle(self) {
            None
        } else {
            Some(now)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rack::RackConfig;
    use ni_mem::BlockAddr;

    fn req(tid: u64) -> RemoteReq {
        RemoteReq {
            tid,
            is_read: true,
            src_node: 0,
            target_node: 1,
            remote_block: BlockAddr(9),
            value: 0,
            service: 0,
        }
    }

    #[test]
    fn emulator_works_through_the_trait_object() {
        let mut f: Box<dyn Fabric> = Box::new(RackEmulator::new(RackConfig {
            mirror_incoming: false,
            ..RackConfig::default()
        }));
        f.inject(Cycle(0), 3, req(7));
        assert!(!f.is_idle());
        // 2 x 70 + 208 = 348, as through the inherent API.
        assert!(f.pop_response(Cycle(347), 3).is_none());
        let resp = f.pop_response(Cycle(348), 3).expect("due");
        assert_eq!(resp.tid, 7);
        assert_eq!(resp.dst_node, 3, "emulator echoes the stamped source");
        assert_eq!(f.stats().sent.get(), 1);
        assert_eq!(f.stats().responded.get(), 1);
        assert!(f.is_idle());
    }

    #[test]
    fn boxed_fabrics_are_send() {
        fn assert_send<T: Send>(_t: &T) {}
        let f: Box<dyn Fabric + Send> = Box::new(RackEmulator::new(RackConfig::default()));
        assert_send(&f);
    }
}
