//! 3D torus topology of the rack (512 nodes = 8x8x8 in the paper).

/// One of the six directed link directions leaving every torus node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// +x ring direction.
    XPlus,
    /// -x ring direction.
    XMinus,
    /// +y ring direction.
    YPlus,
    /// -y ring direction.
    YMinus,
    /// +z ring direction.
    ZPlus,
    /// -z ring direction.
    ZMinus,
}

impl Dir {
    /// All six directions, in index order.
    pub const ALL: [Dir; 6] = [
        Dir::XPlus,
        Dir::XMinus,
        Dir::YPlus,
        Dir::YMinus,
        Dir::ZPlus,
        Dir::ZMinus,
    ];

    /// Stable index in `0..6` (for dense per-link arrays).
    pub fn index(self) -> usize {
        match self {
            Dir::XPlus => 0,
            Dir::XMinus => 1,
            Dir::YPlus => 2,
            Dir::YMinus => 3,
            Dir::ZPlus => 4,
            Dir::ZMinus => 5,
        }
    }
}

impl std::fmt::Display for Dir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Dir::XPlus => "+x",
            Dir::XMinus => "-x",
            Dir::YPlus => "+y",
            Dir::YMinus => "-y",
            Dir::ZPlus => "+z",
            Dir::ZMinus => "-z",
        };
        f.write_str(s)
    }
}

/// A 3D torus of `dims.0 x dims.1 x dims.2` nodes with wraparound links.
///
/// ```
/// use ni_fabric::Torus3D;
/// let t = Torus3D::paper_rack();
/// assert_eq!(t.nodes(), 512);
/// assert_eq!(t.max_hops(), 12);
/// assert!((t.average_hops() - 6.0).abs() < 0.02);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus3D {
    dims: (u16, u16, u16),
}

impl Torus3D {
    /// Create a torus with the given dimensions.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(x: u16, y: u16, z: u16) -> Torus3D {
        assert!(x > 0 && y > 0 && z > 0, "torus dimensions must be non-zero");
        Torus3D { dims: (x, y, z) }
    }

    /// The paper's 512-node deployment (§1: "512-node 3D-torus-connected
    /// rack"), 8 nodes per dimension.
    pub fn paper_rack() -> Torus3D {
        Torus3D::new(8, 8, 8)
    }

    /// Total node count.
    pub fn nodes(&self) -> u32 {
        u32::from(self.dims.0) * u32::from(self.dims.1) * u32::from(self.dims.2)
    }

    /// Coordinates of node `id` (x fastest).
    pub fn coords(&self, id: u32) -> (u16, u16, u16) {
        let (dx, dy, _) = self.dims;
        let x = (id % u32::from(dx)) as u16;
        let y = ((id / u32::from(dx)) % u32::from(dy)) as u16;
        let z = (id / (u32::from(dx) * u32::from(dy))) as u16;
        (x, y, z)
    }

    /// Node id of coordinates.
    pub fn id(&self, c: (u16, u16, u16)) -> u32 {
        let (dx, dy, _) = self.dims;
        u32::from(c.0) + u32::from(dx) * (u32::from(c.1) + u32::from(dy) * u32::from(c.2))
    }

    fn ring_dist(a: u16, b: u16, dim: u16) -> u32 {
        let d = a.abs_diff(b);
        u32::from(d.min(dim - d))
    }

    /// Minimal hop count between two nodes.
    pub fn hops(&self, a: u32, b: u32) -> u32 {
        let ca = self.coords(a);
        let cb = self.coords(b);
        Self::ring_dist(ca.0, cb.0, self.dims.0)
            + Self::ring_dist(ca.1, cb.1, self.dims.1)
            + Self::ring_dist(ca.2, cb.2, self.dims.2)
    }

    /// Network diameter (the paper quotes 12 for the 512-node rack).
    pub fn max_hops(&self) -> u32 {
        u32::from(self.dims.0 / 2) + u32::from(self.dims.1 / 2) + u32::from(self.dims.2 / 2)
    }

    /// Dimension sizes `(x, y, z)`.
    pub fn dims(&self) -> (u16, u16, u16) {
        self.dims
    }

    /// The node one hop from `id` in direction `d` (with wraparound).
    pub fn neighbor(&self, id: u32, d: Dir) -> u32 {
        let (dx, dy, dz) = self.dims;
        let (x, y, z) = self.coords(id);
        let step = |v: u16, dim: u16, up: bool| -> u16 {
            if up {
                if v + 1 == dim {
                    0
                } else {
                    v + 1
                }
            } else if v == 0 {
                dim - 1
            } else {
                v - 1
            }
        };
        let c = match d {
            Dir::XPlus => (step(x, dx, true), y, z),
            Dir::XMinus => (step(x, dx, false), y, z),
            Dir::YPlus => (x, step(y, dy, true), z),
            Dir::YMinus => (x, step(y, dy, false), z),
            Dir::ZPlus => (x, y, step(z, dz, true)),
            Dir::ZMinus => (x, y, step(z, dz, false)),
        };
        self.id(c)
    }

    /// The direction of the next hop on a minimal (Lee-distance) path from
    /// `from` to `to`, resolving dimensions in x, y, z order and breaking
    /// exact antipode ties toward the positive ring direction. `None` when
    /// already there.
    pub fn next_hop(&self, from: u32, to: u32) -> Option<Dir> {
        let (dx, dy, dz) = self.dims;
        let a = self.coords(from);
        let b = self.coords(to);
        let choose = |av: u16, bv: u16, dim: u16, plus: Dir, minus: Dir| -> Option<Dir> {
            if av == bv {
                return None;
            }
            // Distance moving upward along the ring vs downward.
            let up = (u32::from(bv) + u32::from(dim) - u32::from(av)) % u32::from(dim);
            let down = u32::from(dim) - up;
            Some(if up <= down { plus } else { minus })
        };
        choose(a.0, b.0, dx, Dir::XPlus, Dir::XMinus)
            .or_else(|| choose(a.1, b.1, dy, Dir::YPlus, Dir::YMinus))
            .or_else(|| choose(a.2, b.2, dz, Dir::ZPlus, Dir::ZMinus))
    }

    /// Every *productive* direction out of `from` toward `to`: the
    /// directions whose next hop strictly reduces the Lee distance, i.e.
    /// the first hops of all minimal paths. Listed in dimension order (x,
    /// y, z), positive ring first on exact antipode ties, so the first
    /// entry is always the [`next_hop`](Torus3D::next_hop) dimension-order
    /// choice. Empty iff `from == to`.
    pub fn productive_dirs(&self, from: u32, to: u32) -> ProductiveDirs {
        let (dx, dy, dz) = self.dims;
        let a = self.coords(from);
        let b = self.coords(to);
        let mut out = ProductiveDirs {
            dirs: [Dir::XPlus; 6],
            len: 0,
        };
        let mut push = |d: Dir| {
            out.dirs[out.len as usize] = d;
            out.len += 1;
        };
        let mut dim = |av: u16, bv: u16, dim: u16, plus: Dir, minus: Dir| {
            if av == bv {
                return;
            }
            let up = (u32::from(bv) + u32::from(dim) - u32::from(av)) % u32::from(dim);
            let down = u32::from(dim) - up;
            if up <= down {
                push(plus);
            }
            if down <= up {
                push(minus);
            }
        };
        dim(a.0, b.0, dx, Dir::XPlus, Dir::XMinus);
        dim(a.1, b.1, dy, Dir::YPlus, Dir::YMinus);
        dim(a.2, b.2, dz, Dir::ZPlus, Dir::ZMinus);
        out
    }

    /// A Lee-distance antipode of `id`: a node at maximal minimal-hop
    /// distance, i.e. exactly [`max_hops`](Torus3D::max_hops) away.
    ///
    /// Each coordinate moves `⌊d/2⌋` along its ring — the farthest any node
    /// can be on a `d`-ring. For *odd* `d` the antipode is not unique
    /// (offsets `+⌊d/2⌋` and `-⌊d/2⌋` are both maximal, `⌊d/2⌋ = (d-1)/2`
    /// hops away); the positive offset is chosen, so on odd rings the
    /// mapping is a rotation rather than an involution — A's antipode is B
    /// without B's being A. Worst-case *distance* is preserved either way,
    /// which is what antipodal (bisection-stress) traffic needs.
    pub fn antipode(&self, id: u32) -> u32 {
        let (dx, dy, dz) = self.dims;
        let (x, y, z) = self.coords(id);
        self.id(((x + dx / 2) % dx, (y + dy / 2) % dy, (z + dz / 2) % dz))
    }

    /// Average hop count between distinct nodes (the paper quotes 6).
    pub fn average_hops(&self) -> f64 {
        // Per-dimension mean ring distance, summed (dimensions independent).
        let mean_ring = |d: u16| -> f64 {
            let d = u32::from(d);
            let mut total = 0u64;
            for a in 0..d {
                for b in 0..d {
                    total += u64::from(Torus3D::ring_dist(a as u16, b as u16, d as u16));
                }
            }
            total as f64 / f64::from(d * d)
        };
        mean_ring(self.dims.0) + mean_ring(self.dims.1) + mean_ring(self.dims.2)
    }
}

/// The set of productive (minimal-path) first-hop directions between two
/// torus nodes, as returned by [`Torus3D::productive_dirs`]. At most two
/// per dimension (exact antipode), at most six total; fixed-size, so
/// building one allocates nothing.
#[derive(Clone, Copy, Debug)]
pub struct ProductiveDirs {
    dirs: [Dir; 6],
    len: u8,
}

impl ProductiveDirs {
    /// The productive directions, dimension order, positive ring first on
    /// ties.
    pub fn as_slice(&self) -> &[Dir] {
        &self.dirs[..self.len as usize]
    }

    /// Number of productive directions (0 iff source equals destination).
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// True when source equals destination (nowhere productive to go).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_rack_dimensions() {
        let t = Torus3D::paper_rack();
        assert_eq!(t.nodes(), 512);
        assert_eq!(t.max_hops(), 12);
        // §6.1.2: average hop count is 6.
        assert!(
            (t.average_hops() - 6.0).abs() < 0.02,
            "{}",
            t.average_hops()
        );
    }

    #[test]
    fn coords_roundtrip() {
        let t = Torus3D::paper_rack();
        for id in [0u32, 1, 63, 64, 255, 511] {
            assert_eq!(t.id(t.coords(id)), id);
        }
    }

    #[test]
    fn wraparound_shortens_paths() {
        let t = Torus3D::paper_rack();
        // Nodes at x=0 and x=7 in the same row: 1 hop via wraparound.
        let a = t.id((0, 0, 0));
        let b = t.id((7, 0, 0));
        assert_eq!(t.hops(a, b), 1);
    }

    /// Regression for odd torus dimensions: on a 3x3x3 rack the per-ring
    /// offset is `⌊3/2⌋ = 1`, and the antipode must still be Lee-maximal
    /// (`max_hops = 3`) and never the node itself — for every node, not
    /// just node 0.
    #[test]
    fn antipode_is_lee_maximal_on_odd_dimensions() {
        for t in [
            Torus3D::new(3, 3, 3),
            Torus3D::new(3, 1, 1),
            Torus3D::new(5, 3, 2),
        ] {
            for id in 0..t.nodes() {
                let a = t.antipode(id);
                assert_ne!(a, id, "{:?}: node {id} is its own antipode", t.dims());
                assert_eq!(
                    t.hops(id, a),
                    t.max_hops(),
                    "{:?}: antipode of {id} is {a}, only {} of {} hops away",
                    t.dims(),
                    t.hops(id, a),
                    t.max_hops()
                );
            }
        }
    }

    #[test]
    fn antipode_is_an_involution_on_even_dimensions() {
        let t = Torus3D::new(4, 4, 2);
        for id in 0..t.nodes() {
            assert_eq!(t.antipode(t.antipode(id)), id);
        }
    }

    /// `productive_dirs` must agree with the hop metric: a direction is
    /// listed iff stepping along it strictly reduces the distance, and the
    /// first listed direction is the dimension-order `next_hop` choice.
    #[test]
    fn productive_dirs_are_exactly_the_distance_reducing_ones() {
        for t in [
            Torus3D::new(3, 3, 3),
            Torus3D::new(4, 4, 2),
            Torus3D::new(2, 1, 5),
        ] {
            for from in 0..t.nodes() {
                for to in 0..t.nodes() {
                    let p = t.productive_dirs(from, to);
                    assert_eq!(p.is_empty(), from == to);
                    assert_eq!(p.as_slice().first().copied(), t.next_hop(from, to));
                    for d in Dir::ALL {
                        let closer = t.hops(t.neighbor(from, d), to) < t.hops(from, to);
                        assert_eq!(
                            p.as_slice().contains(&d),
                            closer,
                            "{:?}: {from}->{to} dir {d}",
                            t.dims()
                        );
                    }
                }
            }
        }
    }

    /// On even rings the exact antipode has both directions of a dimension
    /// productive — 6 on the 4x4x4 antipodal pair, positive rings first.
    #[test]
    fn antipodal_pairs_have_both_ring_directions() {
        let t = Torus3D::new(4, 4, 4);
        let p = t.productive_dirs(0, t.antipode(0));
        assert_eq!(p.len(), 6);
        assert_eq!(
            p.as_slice(),
            [
                Dir::XPlus,
                Dir::XMinus,
                Dir::YPlus,
                Dir::YMinus,
                Dir::ZPlus,
                Dir::ZMinus
            ]
        );
    }

    proptest! {
        #[test]
        fn hops_is_a_metric(a in 0u32..512, b in 0u32..512, c in 0u32..512) {
            let t = Torus3D::paper_rack();
            // Symmetry.
            prop_assert_eq!(t.hops(a, b), t.hops(b, a));
            // Identity.
            prop_assert_eq!(t.hops(a, a), 0);
            // Triangle inequality.
            prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
            // Bounded by the diameter.
            prop_assert!(t.hops(a, b) <= t.max_hops());
        }
    }
}
