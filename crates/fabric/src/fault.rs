//! Deterministic fault injection for the torus fabric.
//!
//! A [`FaultPlan`] is a schedule of link and node failures (and optional
//! repairs) that a [`TorusFabric`](crate::TorusFabric) applies at fixed
//! cycles: a dead link stops accepting and serializing flits in both
//! directions (packets routed at it park and retry), and a dead node drops
//! every packet it sources, holds in flight, or is addressed by, while its
//! incident links read as down to its neighbors. The plan is plain data — building one performs no
//! I/O and draws no randomness — so a faulted run remains a pure function
//! of its configuration, bit-identical at any thread count. For randomized
//! studies, [`FaultPlan::random_link_kills`] and
//! [`FaultPlan::random_node_kills`] derive schedules from an explicit seed,
//! [`FaultPlan::region_kill`] takes out a whole X/Y/Z slab at once, and
//! [`FaultPlan::fault_storm`] rolls seeded kill/repair waves — all keeping
//! the determinism contract.
//!
//! What the layers above do about a fault is their business: routing
//! policies see link health through
//! [`LinkView`](crate::routing::LinkView) (see
//! [`FaultAdaptive`](crate::routing::FaultAdaptive)), and requesters
//! recover dropped traffic through the RMC backend's ITT timeout/retry
//! machinery.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::torus::{Dir, Torus3D};

/// A torus dimension, for slab-shaped region kills
/// ([`FaultPlan::region_kill`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Axis {
    /// The X dimension (fastest-varying in node ids).
    X,
    /// The Y dimension.
    Y,
    /// The Z dimension.
    Z,
}

/// One scheduled fault (or repair) event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Kill the undirected link between neighbor nodes `a` and `b`: both
    /// directed links stop accepting packets at `at_cycle`.
    LinkDown {
        /// One endpoint node id.
        a: u32,
        /// The other endpoint node id (must be a torus neighbor of `a`).
        b: u32,
        /// Cycle the link dies.
        at_cycle: u64,
    },
    /// Repair the undirected link between `a` and `b`.
    LinkUp {
        /// One endpoint node id.
        a: u32,
        /// The other endpoint node id (must be a torus neighbor of `a`).
        b: u32,
        /// Cycle the link comes back.
        at_cycle: u64,
    },
    /// Kill node `node`: from `at_cycle` on, packets it would source,
    /// relay, or consume are dropped, and its incident links read as down
    /// in every neighbor's [`LinkView`](crate::routing::LinkView).
    NodeDown {
        /// The node that dies.
        node: u32,
        /// Cycle it dies.
        at_cycle: u64,
    },
    /// Repair node `node`.
    NodeUp {
        /// The node that comes back.
        node: u32,
        /// Cycle it comes back.
        at_cycle: u64,
    },
}

impl FaultEvent {
    /// The cycle this event fires at.
    pub fn at_cycle(&self) -> u64 {
        match *self {
            FaultEvent::LinkDown { at_cycle, .. }
            | FaultEvent::LinkUp { at_cycle, .. }
            | FaultEvent::NodeDown { at_cycle, .. }
            | FaultEvent::NodeUp { at_cycle, .. } => at_cycle,
        }
    }
}

/// A deterministic schedule of [`FaultEvent`]s, threaded through
/// [`TorusFabricConfig::faults`](crate::TorusFabricConfig) (and
/// `RackSimConfig::faults` at the rack layer) the same way the routing
/// policy is.
///
/// ```
/// use ni_fabric::FaultPlan;
/// // Kill the 0↔1 link at cycle 1000, the whole of node 5 at 2000, and
/// // repair the link at 8000.
/// let plan = FaultPlan::new()
///     .link_down(0, 1, 1_000)
///     .node_down(5, 2_000)
///     .link_up(0, 1, 8_000);
/// assert_eq!(plan.events().len(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (a healthy fabric).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in insertion order. The fabric applies them
    /// sorted by cycle (stable, so same-cycle events fire in insertion
    /// order).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Schedule an arbitrary event.
    pub fn with(mut self, event: FaultEvent) -> FaultPlan {
        self.events.push(event);
        self
    }

    /// Kill the undirected link between neighbors `a` and `b` at `at_cycle`.
    pub fn link_down(self, a: u32, b: u32, at_cycle: u64) -> FaultPlan {
        self.with(FaultEvent::LinkDown { a, b, at_cycle })
    }

    /// Repair the undirected link between `a` and `b` at `at_cycle`.
    pub fn link_up(self, a: u32, b: u32, at_cycle: u64) -> FaultPlan {
        self.with(FaultEvent::LinkUp { a, b, at_cycle })
    }

    /// Kill `node` at `at_cycle`.
    pub fn node_down(self, node: u32, at_cycle: u64) -> FaultPlan {
        self.with(FaultEvent::NodeDown { node, at_cycle })
    }

    /// Repair `node` at `at_cycle`.
    pub fn node_up(self, node: u32, at_cycle: u64) -> FaultPlan {
        self.with(FaultEvent::NodeUp { node, at_cycle })
    }

    /// A seeded schedule of `count` distinct random link kills, all firing
    /// at `at_cycle`: a pure function of `(torus, seed, count, at_cycle)`,
    /// so randomized blast-radius studies stay reproducible.
    ///
    /// # Panics
    /// Panics when `count` distinct links cannot be scheduled (more kills
    /// requested than the torus plausibly has links) — a short plan
    /// returned silently would make a study report fewer faults than it
    /// configured.
    pub fn random_link_kills(torus: Torus3D, seed: u64, count: usize, at_cycle: u64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let mut chosen: Vec<(u32, u32)> = Vec::with_capacity(count);
        // Bounded rejection sampling: duplicates are rare for count <<
        // links, and the loop bound keeps a tiny torus from spinning.
        let mut attempts = 0usize;
        while chosen.len() < count && attempts < count * 64 + 64 {
            attempts += 1;
            let a = rng.gen_range(0..torus.nodes());
            let d = Dir::ALL[rng.gen_range(0..6u32) as usize];
            let b = torus.neighbor(a, d);
            if a == b {
                continue; // degenerate 1-wide ring: a "link" back to itself
            }
            let key = (a.min(b), a.max(b));
            if chosen.contains(&key) {
                continue;
            }
            chosen.push(key);
            plan = plan.link_down(key.0, key.1, at_cycle);
        }
        assert!(
            chosen.len() == count,
            "only {} of {count} distinct link kills fit the {:?} torus",
            chosen.len(),
            torus.dims()
        );
        plan
    }

    /// A seeded schedule of `count` distinct random node kills, all firing
    /// at `at_cycle` — the node-granularity companion of
    /// [`random_link_kills`](FaultPlan::random_link_kills), and a pure
    /// function of `(torus, seed, count, at_cycle)`.
    ///
    /// # Panics
    /// Panics when `count` exceeds the torus node count (a short plan
    /// returned silently would make a study report fewer faults than it
    /// configured).
    pub fn random_node_kills(torus: Torus3D, seed: u64, count: usize, at_cycle: u64) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        let mut chosen: Vec<u32> = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while chosen.len() < count && attempts < count * 64 + 64 {
            attempts += 1;
            let node = rng.gen_range(0..torus.nodes());
            if chosen.contains(&node) {
                continue;
            }
            chosen.push(node);
            plan = plan.node_down(node, at_cycle);
        }
        assert!(
            chosen.len() == count,
            "only {} of {count} distinct node kills fit the {:?} torus",
            chosen.len(),
            torus.dims()
        );
        plan
    }

    /// Kill every node of one torus slab — all nodes whose `axis`
    /// coordinate equals `index` — at `at_cycle`: the correlated regional
    /// failure (a rack row losing power, a switch taking its column down)
    /// that single-node kills cannot model. The slab of a 4×4×4 torus is 16
    /// nodes; replica placements that pack copies next to their primary die
    /// with it, which is exactly what the spread-first
    /// [`ReplicaMap`](crate::replica::ReplicaMap) placement avoids.
    ///
    /// # Panics
    /// Panics when `index` is outside the torus extent along `axis`.
    pub fn region_kill(self, torus: Torus3D, axis: Axis, index: u16, at_cycle: u64) -> FaultPlan {
        let (dx, dy, dz) = torus.dims();
        let extent = match axis {
            Axis::X => dx,
            Axis::Y => dy,
            Axis::Z => dz,
        };
        assert!(
            index < extent,
            "slab {axis:?}={index} is outside the {:?} torus",
            torus.dims()
        );
        let mut plan = self;
        for node in 0..torus.nodes() {
            let (x, y, z) = torus.coords(node);
            let c = match axis {
                Axis::X => x,
                Axis::Y => y,
                Axis::Z => z,
            };
            if c == index {
                plan = plan.node_down(node, at_cycle);
            }
        }
        plan
    }

    /// A rolling "fault storm": `waves` seeded waves of `kills_per_wave`
    /// node kills, one wave every `period` cycles starting at `first_at`,
    /// each killed node repairing `repair_after` cycles after its death.
    /// Victims are distinct *while down* — a node is only eligible for a
    /// wave once any earlier kill of it has repaired — so the storm models
    /// churn (kill/repair/kill elsewhere) rather than monotone decay. A
    /// pure function of its arguments, like every other constructor here.
    ///
    /// # Panics
    /// Panics when a wave cannot find `kills_per_wave` eligible nodes
    /// (storm too dense for the torus).
    pub fn fault_storm(
        torus: Torus3D,
        seed: u64,
        waves: usize,
        kills_per_wave: usize,
        first_at: u64,
        period: u64,
        repair_after: u64,
    ) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        // Node -> cycle it comes back up (still-down nodes are ineligible).
        let mut up_at: Vec<u64> = vec![0; torus.nodes() as usize];
        for wave in 0..waves {
            let at = first_at + wave as u64 * period;
            let mut killed = 0usize;
            let mut attempts = 0usize;
            while killed < kills_per_wave && attempts < kills_per_wave * 64 + 64 {
                attempts += 1;
                let node = rng.gen_range(0..torus.nodes());
                if up_at[node as usize] > at {
                    continue; // still dead from an earlier wave
                }
                up_at[node as usize] = at + repair_after;
                plan = plan.node_down(node, at).node_up(node, at + repair_after);
                killed += 1;
            }
            assert!(
                killed == kills_per_wave,
                "wave {wave}: only {killed} of {kills_per_wave} kills fit the {:?} torus",
                torus.dims()
            );
        }
        plan
    }

    /// Every node this plan kills at any point (deduplicated, ascending).
    /// Availability studies use it to separate requests *lost by survivors*
    /// from the in-flight work that dies with a killed node itself.
    pub fn killed_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::NodeDown { node, .. } => Some(node),
                _ => None,
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The events sorted by firing cycle (stable: same-cycle events keep
    /// insertion order). Used by the fabric at construction.
    pub(crate) fn sorted_events(&self) -> Vec<FaultEvent> {
        let mut ev = self.events.clone();
        ev.sort_by_key(FaultEvent::at_cycle);
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_events_in_order() {
        let p = FaultPlan::new()
            .link_down(0, 1, 10)
            .node_down(3, 5)
            .link_up(0, 1, 20);
        assert!(!p.is_empty());
        assert_eq!(p.events().len(), 3);
        let sorted = p.sorted_events();
        assert_eq!(
            sorted[0],
            FaultEvent::NodeDown {
                node: 3,
                at_cycle: 5
            }
        );
        assert_eq!(sorted[2].at_cycle(), 20);
    }

    #[test]
    fn random_link_kills_are_seed_deterministic_and_distinct() {
        let t = Torus3D::new(4, 4, 4);
        let a = FaultPlan::random_link_kills(t, 7, 5, 100);
        let b = FaultPlan::random_link_kills(t, 7, 5, 100);
        assert_eq!(a, b, "same seed must reproduce the same plan");
        assert_eq!(a.events().len(), 5);
        let mut pairs: Vec<(u32, u32)> = a
            .events()
            .iter()
            .map(|e| match *e {
                FaultEvent::LinkDown { a, b, .. } => (a, b),
                ref other => panic!("unexpected {other:?}"),
            })
            .collect();
        for &(x, y) in &pairs {
            assert!(t.hops(x, y) == 1, "{x}<->{y} is not a torus link");
        }
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 5, "kills must hit distinct links");
        let c = FaultPlan::random_link_kills(t, 8, 5, 100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_node_kills_are_seed_deterministic_and_distinct() {
        let t = Torus3D::new(4, 4, 4);
        let a = FaultPlan::random_node_kills(t, 7, 5, 100);
        let b = FaultPlan::random_node_kills(t, 7, 5, 100);
        assert_eq!(a, b, "same seed must reproduce the same plan");
        assert_eq!(a.events().len(), 5);
        let mut nodes: Vec<u32> = a
            .events()
            .iter()
            .map(|e| match *e {
                FaultEvent::NodeDown { node, at_cycle } => {
                    assert_eq!(at_cycle, 100);
                    node
                }
                ref other => panic!("unexpected {other:?}"),
            })
            .collect();
        for &n in &nodes {
            assert!(n < t.nodes(), "node {n} is outside the torus");
        }
        nodes.sort_unstable();
        nodes.dedup();
        assert_eq!(nodes.len(), 5, "kills must hit distinct nodes");
        assert_eq!(a.killed_nodes(), nodes);
        let c = FaultPlan::random_node_kills(t, 8, 5, 100);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    #[should_panic(expected = "distinct node kills")]
    fn random_node_kills_panics_when_unsatisfiable() {
        let _ = FaultPlan::random_node_kills(Torus3D::new(2, 1, 1), 7, 3, 100);
    }

    #[test]
    fn region_kill_takes_exactly_one_slab() {
        let t = Torus3D::new(4, 3, 2);
        let p = FaultPlan::new().region_kill(t, Axis::Y, 1, 500);
        // A y=1 slab of a 4x3x2 torus is 4*2 = 8 nodes.
        assert_eq!(p.events().len(), 8);
        for e in p.events() {
            match *e {
                FaultEvent::NodeDown { node, at_cycle } => {
                    assert_eq!(at_cycle, 500);
                    assert_eq!(t.coords(node).1, 1, "node {node} is outside the slab");
                }
                ref other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(p.killed_nodes().len(), 8);
    }

    #[test]
    fn fault_storm_waves_are_deterministic_and_repair() {
        let t = Torus3D::new(4, 4, 1);
        let a = FaultPlan::fault_storm(t, 42, 3, 2, 1_000, 2_000, 1_500);
        let b = FaultPlan::fault_storm(t, 42, 3, 2, 1_000, 2_000, 1_500);
        assert_eq!(a, b, "same seed must reproduce the same storm");
        // 3 waves x 2 kills, each with a matching repair.
        assert_eq!(a.events().len(), 12);
        let downs: Vec<(u32, u64)> = a
            .events()
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::NodeDown { node, at_cycle } => Some((node, at_cycle)),
                _ => None,
            })
            .collect();
        assert_eq!(downs.len(), 6);
        for (i, &(node, at)) in downs.iter().enumerate() {
            assert_eq!(at, 1_000 + (i as u64 / 2) * 2_000, "waves fire on period");
            // Every down has its repair exactly repair_after later.
            assert!(
                a.events().contains(&FaultEvent::NodeUp {
                    node,
                    at_cycle: at + 1_500
                }),
                "node {node} killed at {at} never repairs"
            );
        }
        // Within any wave the two victims are distinct.
        for w in downs.chunks(2) {
            assert_ne!(w[0].0, w[1].0, "a wave must not kill one node twice");
        }
    }
}
