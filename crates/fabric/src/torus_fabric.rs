//! A real multi-node rack transport over the 3D torus.
//!
//! Where the rate-matching emulator *answers* a node's traffic,
//! [`TorusFabric`] *carries* it: every request and response is forwarded
//! hop-by-hop along a minimal (Lee-distance) path, paying per-hop wire
//! latency plus serialization on each directed link. Links have finite
//! bandwidth: a packet occupies its link for
//! `ceil(bytes / link_bytes_per_cycle)` cycles and later packets queue
//! behind it, so congestion emerges rather than being modeled by a rate
//! estimate. Every directed link keeps an occupancy/bandwidth accumulator
//! ([`LinkLoad`]) from which per-link peak GB/s reports are drawn.
//!
//! *Which* minimal path a packet takes is decided per hop by a pluggable
//! [`RoutingPolicy`]: deterministic dimension order
//! ([`DimensionOrder`](crate::routing::DimensionOrder), the default),
//! congestion-aware minimal-adaptive routing steered by each node's
//! [`LinkView`] of its links' backlogs
//! ([`MinimalAdaptive`](crate::routing::MinimalAdaptive)), a seeded random
//! oblivious baseline ([`RandomMinimal`](crate::routing::RandomMinimal)),
//! or any external implementation handed to
//! [`TorusFabric::with_policy`].
//!
//! The fabric implements [`Fabric`], making it a drop-in replacement for
//! the emulator behind any chip's network router.

use std::collections::VecDeque;

use ni_engine::{Counter, Cycle, DelayLine, Frequency, LinkLoad};

use crate::fabric::{Fabric, FabricStats};
use crate::rack::{RemoteReq, RemoteResp};
use crate::routing::{LinkView, RoutingKind, RoutingPolicy};
use crate::torus::{Dir, Torus3D};

/// Transport configuration.
#[derive(Clone, Copy, Debug)]
pub struct TorusFabricConfig {
    /// Rack geometry.
    pub torus: Torus3D,
    /// Wire latency per hop in cycles (35ns = 70 cycles at 2 GHz, §5).
    pub hop_cycles: u64,
    /// Link bandwidth in bytes per cycle (serialization rate). The paper's
    /// chips drive multiple tens of GB/s of rack traffic; 16 B/cycle
    /// (32 GB/s at 2 GHz, one NOC flit per cycle) is the default.
    pub link_bytes_per_cycle: u64,
    /// Window length in cycles for per-link peak-bandwidth tracking.
    pub stats_window: u64,
    /// Built-in routing policy ([`RoutingKind::DimensionOrder`] by
    /// default); custom [`RoutingPolicy`] implementations go through
    /// [`TorusFabric::with_policy`] instead.
    pub routing: RoutingKind,
}

impl Default for TorusFabricConfig {
    fn default() -> Self {
        TorusFabricConfig {
            torus: Torus3D::new(2, 2, 2),
            hop_cycles: 70,
            link_bytes_per_cycle: 16,
            stats_window: 10_000,
            routing: RoutingKind::DimensionOrder,
        }
    }
}

/// What travels the wires.
#[derive(Clone, Copy, Debug)]
enum TorusPkt {
    Req(RemoteReq),
    Resp(RemoteResp),
}

impl TorusPkt {
    fn dest(&self) -> u16 {
        match self {
            TorusPkt::Req(r) => r.target_node,
            TorusPkt::Resp(r) => r.dst_node,
        }
    }

    /// Wire size in bytes: 16-byte flits, two for a header-only packet and
    /// six when a 64-byte cache block rides along (§6.1.3).
    fn wire_bytes(&self) -> u64 {
        let data = match self {
            TorusPkt::Req(r) => !r.is_read,
            TorusPkt::Resp(r) => r.is_read,
        };
        if data {
            96
        } else {
            32
        }
    }
}

/// A packet parked at a node, waiting to cross its next link.
#[derive(Clone, Copy, Debug)]
struct Transit {
    at_node: u32,
    pkt: TorusPkt,
}

/// One directed link's state.
#[derive(Clone, Debug)]
struct Link {
    /// The cycle this link finishes serializing its last-accepted packet.
    busy_until: Cycle,
    load: LinkLoad,
}

/// Report row for one directed link.
#[derive(Clone, Debug)]
pub struct LinkReport {
    /// Source node of the directed link.
    pub node: u32,
    /// Ring direction the link points in.
    pub dir: Dir,
    /// Packets that crossed it.
    pub packets: u64,
    /// Bytes that crossed it.
    pub bytes: u64,
    /// Cycles spent serializing.
    pub busy_cycles: u64,
    /// Peak bandwidth over any stats window, GB/s at 2 GHz.
    pub peak_gbps: f64,
}

impl LinkReport {
    /// Column names of [`csv_row`](LinkReport::csv_row), comma-separated.
    pub const CSV_HEADER: &'static str = "node,dir,packets,bytes,busy_cycles,peak_gbps";

    /// This row in the [`CSV_HEADER`](LinkReport::CSV_HEADER) column order
    /// (no trailing newline).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.6}",
            self.node, self.dir, self.packets, self.bytes, self.busy_cycles, self.peak_gbps
        )
    }

    /// This row as a JSON object.
    pub fn json_row(&self) -> String {
        format!(
            r#"{{"node":{},"dir":"{}","packets":{},"bytes":{},"busy_cycles":{},"peak_gbps":{:.6}}}"#,
            self.node, self.dir, self.packets, self.bytes, self.busy_cycles, self.peak_gbps
        )
    }
}

/// Serialize a link report as CSV (header plus one row per directed link).
pub fn link_report_csv(links: &[LinkReport]) -> String {
    let mut out = String::from(LinkReport::CSV_HEADER);
    out.push('\n');
    for l in links {
        out.push_str(&l.csv_row());
        out.push('\n');
    }
    out
}

/// Serialize a link report as a JSON array of per-link objects.
pub fn link_report_json(links: &[LinkReport]) -> String {
    let rows: Vec<String> = links.iter().map(LinkReport::json_row).collect();
    format!("[\n  {}\n]\n", rows.join(",\n  "))
}

/// The multi-node torus transport.
pub struct TorusFabric {
    cfg: TorusFabricConfig,
    /// Packets in flight, keyed by arrival time at their next node.
    wires: DelayLine<Transit>,
    /// Per-node arrival queues.
    incoming: Vec<VecDeque<RemoteReq>>,
    responses: Vec<VecDeque<RemoteResp>>,
    /// Directed links, indexed `node * 6 + dir.index()`.
    links: Vec<Link>,
    /// Per-hop routing decision procedure (see [`RoutingPolicy`]).
    policy: Box<dyn RoutingPolicy>,
    stats: FabricStats,
    /// Total link traversals (= hops) completed, across all packets.
    hops_traversed: Counter,
}

impl TorusFabric {
    /// Build an idle fabric over `cfg.torus`, routing with the built-in
    /// policy named by `cfg.routing`.
    ///
    /// # Panics
    /// Panics if `link_bytes_per_cycle` or `stats_window` is zero.
    pub fn new(cfg: TorusFabricConfig) -> TorusFabric {
        let policy = cfg.routing.build();
        TorusFabric::with_policy(cfg, policy)
    }

    /// As [`new`](TorusFabric::new) with an arbitrary [`RoutingPolicy`] —
    /// the open extension point (`cfg.routing` is ignored).
    ///
    /// # Panics
    /// Panics if `link_bytes_per_cycle` or `stats_window` is zero.
    pub fn with_policy(cfg: TorusFabricConfig, policy: Box<dyn RoutingPolicy>) -> TorusFabric {
        assert!(
            cfg.link_bytes_per_cycle > 0,
            "links need non-zero bandwidth"
        );
        let n = cfg.torus.nodes() as usize;
        TorusFabric {
            cfg,
            wires: DelayLine::new(),
            incoming: (0..n).map(|_| VecDeque::new()).collect(),
            responses: (0..n).map(|_| VecDeque::new()).collect(),
            links: (0..n * 6)
                .map(|_| Link {
                    busy_until: Cycle::ZERO,
                    load: LinkLoad::new(cfg.stats_window),
                })
                .collect(),
            policy,
            stats: FabricStats::default(),
            hops_traversed: Counter::default(),
        }
    }

    /// Configuration.
    pub fn config(&self) -> &TorusFabricConfig {
        &self.cfg
    }

    /// Short name of the routing policy in use (`"dor"`, `"adaptive"`, ...).
    pub fn routing_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The [`LinkView`] a packet at `node` would be routed with at `now`:
    /// the serialization backlogs of the node's six outgoing links. Public
    /// for congestion monitors and policy tests; `forward` builds the same
    /// view on every hop.
    pub fn link_view(&self, node: u32, now: Cycle) -> LinkView {
        let base = node as usize * 6;
        let mut backlog = [0u64; 6];
        for (i, b) in backlog.iter_mut().enumerate() {
            *b = self.links[base + i].busy_until.saturating_since(now);
        }
        LinkView::new(backlog)
    }

    /// Total link traversals completed so far (one per packet per link).
    pub fn hops_traversed(&self) -> u64 {
        self.hops_traversed.get()
    }

    /// Per-directed-link traffic report, in `(node, dir)` order, links that
    /// never carried a packet included.
    pub fn link_report(&self) -> Vec<LinkReport> {
        let mut out = Vec::with_capacity(self.links.len());
        self.link_report_into(&mut out);
        out
    }

    /// As [`link_report`](TorusFabric::link_report), reusing `out`'s
    /// allocation — for callers sampling the report inside loops (periodic
    /// congestion monitors, per-window sweeps).
    pub fn link_report_into(&self, out: &mut Vec<LinkReport>) {
        out.clear();
        out.reserve(self.links.len());
        for node in 0..self.cfg.torus.nodes() {
            for d in Dir::ALL {
                let l = &self.links[node as usize * 6 + d.index()];
                out.push(LinkReport {
                    node,
                    dir: d,
                    packets: l.load.packets(),
                    bytes: l.load.total_bytes(),
                    busy_cycles: l.load.busy_cycles(),
                    peak_gbps: l.load.peak_gbps(Frequency::GHZ2),
                });
            }
        }
    }

    /// Largest per-link peak bandwidth in GB/s (0 when idle).
    pub fn peak_link_gbps(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.load.peak_gbps(Frequency::GHZ2))
            .fold(0.0, f64::max)
    }

    /// Per-link load imbalance: the busiest link's total bytes over the
    /// mean of all loaded links (1.0 when balanced or idle). Computed
    /// straight off the link accumulators — no report allocation — so it is
    /// safe to sample every cycle.
    pub fn link_byte_skew(&self) -> f64 {
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut loaded = 0u64;
        for l in &self.links {
            let b = l.load.total_bytes();
            if b > 0 {
                max = max.max(b);
                sum += b;
                loaded += 1;
            }
        }
        if loaded == 0 {
            return 1.0;
        }
        max as f64 / (sum as f64 / loaded as f64).max(1.0)
    }

    /// Bounds-check a node id at the injection boundary. This stays a hard
    /// assert: it runs once per packet (never per hop/forward), and an
    /// out-of-range destination admitted in release would bounce on the
    /// torus forever instead of failing loudly — custom scenarios are an
    /// advertised extension point and can hand us any id.
    #[inline]
    fn validate_node(&self, node: u16) -> u32 {
        assert!(
            u32::from(node) < self.cfg.torus.nodes(),
            "node {node} outside the {:?} torus",
            self.cfg.torus.dims()
        );
        u32::from(node)
    }

    /// Debug-only variant for the per-cycle pop paths, where an invalid id
    /// would fault on the queue index immediately anyway.
    #[inline]
    fn debug_validate_node(&self, node: u16) -> u32 {
        debug_assert!(
            u32::from(node) < self.cfg.torus.nodes(),
            "node {node} outside the {:?} torus",
            self.cfg.torus.dims()
        );
        u32::from(node)
    }

    /// Send `pkt` across its next link out of `from` — the direction chosen
    /// by the routing policy from a fresh [`LinkView`] — honoring the
    /// link's serialization backlog, and schedule its arrival at the
    /// neighbor.
    fn forward(&mut self, now: Cycle, from: u32, pkt: TorusPkt) {
        let dest = u32::from(pkt.dest());
        // Congestion-blind policies skip the six-counter snapshot on this
        // per-link-traversal hot path (see RoutingPolicy::uses_link_view).
        let view = if self.policy.uses_link_view() {
            self.link_view(from, now)
        } else {
            LinkView::idle()
        };
        let Some(dir) = self.policy.route(&self.cfg.torus, from, dest, &view) else {
            // Hard assert (rare path, O(1)): a custom policy returning None
            // off-destination would otherwise self-requeue this packet
            // every cycle — a silent livelock in release builds.
            assert!(
                from == dest,
                "policy {} returned None at {from} toward {dest}",
                self.policy.name()
            );
            // Already home (self-addressed traffic): deliver next cycle
            // without touching any link.
            self.wires
                .push_after(now, 1, Transit { at_node: from, pkt });
            return;
        };
        // Minimality contract: every hop must strictly close on the
        // destination, which is what bounds delivery at the Lee distance.
        debug_assert!(
            self.cfg
                .torus
                .hops(self.cfg.torus.neighbor(from, dir), dest)
                < self.cfg.torus.hops(from, dest),
            "policy {} picked unproductive {dir} at {from} toward {dest}",
            self.policy.name()
        );
        let bytes = pkt.wire_bytes();
        let ser = bytes.div_ceil(self.cfg.link_bytes_per_cycle);
        let link = &mut self.links[from as usize * 6 + dir.index()];
        let depart = now.max(link.busy_until);
        link.busy_until = depart + ser;
        link.load.record(depart, bytes, ser);
        let next = self.cfg.torus.neighbor(from, dir);
        let arrive_in = (depart - now) + ser + self.cfg.hop_cycles;
        self.hops_traversed.incr();
        self.wires
            .push_after(now, arrive_in, Transit { at_node: next, pkt });
    }

    fn deliver(&mut self, node: u32, pkt: TorusPkt) {
        match pkt {
            TorusPkt::Req(r) => {
                self.stats.incoming_generated.incr();
                self.incoming[node as usize].push_back(r);
            }
            TorusPkt::Resp(r) => {
                self.stats.responded.incr();
                self.responses[node as usize].push_back(r);
            }
        }
    }
}

impl Fabric for TorusFabric {
    fn inject(&mut self, now: Cycle, from: u16, req: RemoteReq) {
        let src = self.validate_node(from);
        self.validate_node(req.target_node);
        self.stats.sent.incr();
        let mut req = req;
        req.src_node = from;
        self.forward(now, src, TorusPkt::Req(req));
    }

    fn inject_resp(&mut self, now: Cycle, from: u16, resp: RemoteResp) {
        let src = self.validate_node(from);
        self.validate_node(resp.dst_node);
        self.forward(now, src, TorusPkt::Resp(resp));
    }

    fn tick(&mut self, now: Cycle) {
        // Naturally idempotent within a cycle: everything `forward` pushes
        // (relay hops included) arrives strictly after `now`, so a second
        // call at the same cycle pops nothing. No guard state needed.
        while let Some(t) = self.wires.pop_ready(now) {
            if u32::from(t.pkt.dest()) == t.at_node {
                self.deliver(t.at_node, t.pkt);
            } else {
                self.forward(now, t.at_node, t.pkt);
            }
        }
    }

    fn pop_response(&mut self, _now: Cycle, node: u16) -> Option<RemoteResp> {
        let n = self.debug_validate_node(node) as usize;
        self.responses[n].pop_front()
    }

    fn pop_incoming(&mut self, _now: Cycle, node: u16) -> Option<RemoteReq> {
        let n = self.debug_validate_node(node) as usize;
        self.incoming[n].pop_front()
    }

    fn record_rrpp_latency(&mut self, _node: u16, _cycles: u64) {
        // Real remote ends are simulated in detail; no estimate to refine.
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }

    fn is_idle(&self) -> bool {
        self.wires.is_empty()
            && self.incoming.iter().all(VecDeque::is_empty)
            && self.responses.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ni_mem::BlockAddr;

    fn fabric(x: u16, y: u16, z: u16) -> TorusFabric {
        TorusFabric::new(TorusFabricConfig {
            torus: Torus3D::new(x, y, z),
            ..TorusFabricConfig::default()
        })
    }

    fn req(tid: u64, target: u16) -> RemoteReq {
        RemoteReq {
            tid,
            is_read: true,
            src_node: 0,
            target_node: target,
            remote_block: BlockAddr(5),
            value: 0,
        }
    }

    fn run_until_idle(f: &mut TorusFabric, from: Cycle, limit: u64) -> Cycle {
        let mut now = from;
        while !f.wires.is_empty() {
            f.tick(now);
            now += 1;
            assert!(now.0 < limit, "fabric never drained");
        }
        now
    }

    #[test]
    fn one_hop_request_arrives_after_serialization_plus_wire() {
        let mut f = fabric(2, 1, 1);
        f.inject(Cycle(0), 0, req(1, 1));
        // 32B at 16B/cycle = 2 cycles serialization + 70 wire.
        f.tick(Cycle(71));
        assert!(f.pop_incoming(Cycle(71), 1).is_none());
        f.tick(Cycle(72));
        let got = f.pop_incoming(Cycle(72), 1).expect("arrived");
        assert_eq!(got.tid, 1);
        assert_eq!(got.src_node, 0, "fabric stamps the source");
        assert_eq!(f.hops_traversed(), 1);
    }

    #[test]
    fn multi_hop_routes_use_exactly_lee_distance_links() {
        let mut f = fabric(4, 4, 4);
        let t = f.config().torus;
        let (a, b) = (0u16, 63u16 - 21); // arbitrary pair
        f.inject(Cycle(0), a, req(9, b));
        run_until_idle(&mut f, Cycle(0), 100_000);
        assert_eq!(
            f.hops_traversed(),
            u64::from(t.hops(u32::from(a), u32::from(b)))
        );
        let link_sum: u64 = f.link_report().iter().map(|l| l.packets).sum();
        assert_eq!(link_sum, f.hops_traversed());
    }

    #[test]
    fn responses_route_back_to_the_requester() {
        let mut f = fabric(2, 2, 2);
        f.inject_resp(
            Cycle(0),
            7,
            RemoteResp {
                tid: 4,
                dst_node: 0,
                remote_block: BlockAddr(5),
                value: 1234,
                is_read: true,
            },
        );
        let end = run_until_idle(&mut f, Cycle(0), 100_000);
        let _ = end;
        // Drain at the destination only.
        for n in 1..8 {
            assert!(f.pop_response(Cycle(10_000), n).is_none());
        }
        let got = f.pop_response(Cycle(10_000), 0).expect("delivered");
        assert_eq!(got.value, 1234);
        // 3 hops from node 7 (1,1,1) to node 0, 96B data packets.
        assert_eq!(f.hops_traversed(), 3);
    }

    #[test]
    fn finite_link_bandwidth_serializes_back_to_back_packets() {
        let mut f = fabric(2, 1, 1);
        // Two 32B requests at the same cycle share the single +x link:
        // the second departs 2 cycles after the first.
        f.inject(Cycle(0), 0, req(1, 1));
        f.inject(Cycle(0), 0, req(2, 1));
        f.tick(Cycle(72));
        assert!(f.pop_incoming(Cycle(72), 1).is_some());
        assert!(
            f.pop_incoming(Cycle(72), 1).is_none(),
            "second still in flight"
        );
        f.tick(Cycle(74));
        assert!(f.pop_incoming(Cycle(74), 1).is_some());
        let report = f.link_report();
        let busy: u64 = report.iter().map(|l| l.busy_cycles).sum();
        assert_eq!(busy, 4, "two packets x two serialization cycles");
    }

    #[test]
    fn tick_is_naturally_idempotent_within_a_cycle() {
        let mut f = fabric(2, 1, 1);
        f.inject(Cycle(0), 0, req(1, 1));
        f.tick(Cycle(72));
        f.tick(Cycle(72));
        f.tick(Cycle(72));
        assert!(f.pop_incoming(Cycle(72), 1).is_some());
        assert!(f.pop_incoming(Cycle(72), 1).is_none());
    }

    #[test]
    fn link_report_into_reuses_the_buffer() {
        let mut f = fabric(2, 1, 1);
        f.inject(Cycle(0), 0, req(1, 1));
        run_until_idle(&mut f, Cycle(0), 100_000);
        let mut buf = Vec::new();
        f.link_report_into(&mut buf);
        assert_eq!(buf.len(), 12);
        let cap = buf.capacity();
        f.link_report_into(&mut buf);
        assert_eq!(buf.len(), 12);
        assert_eq!(buf.capacity(), cap, "second fill must not reallocate");
        assert_eq!(
            buf.iter().map(|l| l.packets).sum::<u64>(),
            f.hops_traversed()
        );
    }

    #[test]
    fn link_byte_skew_matches_the_report() {
        let mut f = fabric(2, 2, 1);
        f.inject(Cycle(0), 0, req(1, 1));
        f.inject(Cycle(0), 0, req(2, 1));
        f.inject(Cycle(0), 2, req(3, 3));
        run_until_idle(&mut f, Cycle(0), 100_000);
        let loaded: Vec<u64> = f
            .link_report()
            .iter()
            .map(|l| l.bytes)
            .filter(|&b| b > 0)
            .collect();
        let max = *loaded.iter().max().expect("traffic flowed") as f64;
        let mean = loaded.iter().sum::<u64>() as f64 / loaded.len() as f64;
        assert!((f.link_byte_skew() - max / mean).abs() < 1e-12);
    }

    /// The injection boundary must reject out-of-range destinations in
    /// every build profile: a bad id admitted here would relay on the torus
    /// forever instead of failing loudly.
    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_targets_are_rejected() {
        let mut f = fabric(2, 1, 1);
        f.inject(Cycle(0), 0, req(1, 9));
    }
}
