//! A real multi-node rack transport over the 3D torus.
//!
//! Where the rate-matching emulator *answers* a node's traffic,
//! [`TorusFabric`] *carries* it: every request and response is forwarded
//! hop-by-hop along a minimal (Lee-distance) path, paying per-hop wire
//! latency plus serialization on each directed link. Links have finite
//! bandwidth: a packet occupies its link for
//! `ceil(bytes / link_bytes_per_cycle)` cycles and later packets queue
//! behind it, so congestion emerges rather than being modeled by a rate
//! estimate. Every directed link keeps an occupancy/bandwidth accumulator
//! ([`LinkLoad`]) from which per-link peak GB/s reports are drawn.
//!
//! *Which* minimal path a packet takes is decided per hop by a pluggable
//! [`RoutingPolicy`]: deterministic dimension order
//! ([`DimensionOrder`](crate::routing::DimensionOrder), the default),
//! congestion-aware minimal-adaptive routing steered by each node's
//! [`LinkView`] of its links' backlogs
//! ([`MinimalAdaptive`](crate::routing::MinimalAdaptive)), a seeded random
//! oblivious baseline ([`RandomMinimal`](crate::routing::RandomMinimal)),
//! or any external implementation handed to
//! [`TorusFabric::with_policy`].
//!
//! The fabric can degrade mid-run: a [`FaultPlan`] in the config schedules
//! link and node kills (and repairs) at fixed cycles. Dead links stop
//! accepting and serializing flits — packets routed at them park and retry
//! each cycle — while dead nodes drop every packet they would source,
//! relay, or consume. Health is visible to routing through the per-hop
//! [`LinkView`], which is how
//! [`FaultAdaptive`](crate::routing::FaultAdaptive) steers around kills;
//! end-to-end recovery of erased traffic belongs to the RMC backend's ITT
//! timeout/retry machinery, not the fabric.
//!
//! The fabric implements [`Fabric`], making it a drop-in replacement for
//! the emulator behind any chip's network router.

use std::collections::VecDeque;

use ni_engine::{Counter, Cycle, DelayLine, Frequency, LinkLoad};

use crate::fabric::{Fabric, FabricStats};
use crate::fault::{FaultEvent, FaultPlan};
use crate::rack::{RemoteReq, RemoteResp};
use crate::routing::{LinkView, RoutingKind, RoutingPolicy, ESCAPE_HOP_BUDGET};
use crate::torus::{Dir, Torus3D};

/// Transport configuration.
#[derive(Clone, Debug)]
pub struct TorusFabricConfig {
    /// Rack geometry.
    pub torus: Torus3D,
    /// Wire latency per hop in cycles (35ns = 70 cycles at 2 GHz, §5).
    pub hop_cycles: u64,
    /// Link bandwidth in bytes per cycle (serialization rate). The paper's
    /// chips drive multiple tens of GB/s of rack traffic; 16 B/cycle
    /// (32 GB/s at 2 GHz, one NOC flit per cycle) is the default.
    pub link_bytes_per_cycle: u64,
    /// Window length in cycles for per-link peak-bandwidth tracking.
    pub stats_window: u64,
    /// Built-in routing policy ([`RoutingKind::DimensionOrder`] by
    /// default); custom [`RoutingPolicy`] implementations go through
    /// [`TorusFabric::with_policy`] instead.
    pub routing: RoutingKind,
    /// Scheduled link/node failures (and repairs), applied by the fabric
    /// at their firing cycles. Empty by default (a healthy fabric).
    pub faults: FaultPlan,
}

impl Default for TorusFabricConfig {
    fn default() -> Self {
        TorusFabricConfig {
            torus: Torus3D::new(2, 2, 2),
            hop_cycles: 70,
            link_bytes_per_cycle: 16,
            stats_window: 10_000,
            routing: RoutingKind::DimensionOrder,
            faults: FaultPlan::default(),
        }
    }
}

/// What travels the wires.
#[derive(Clone, Copy, Debug)]
enum TorusPkt {
    Req(RemoteReq),
    Resp(RemoteResp),
}

impl TorusPkt {
    fn dest(&self) -> u16 {
        match self {
            TorusPkt::Req(r) => r.target_node,
            TorusPkt::Resp(r) => r.dst_node,
        }
    }

    /// Wire size in bytes: 16-byte flits, two for a header-only packet and
    /// six when a 64-byte cache block rides along (§6.1.3).
    fn wire_bytes(&self) -> u64 {
        let data = match self {
            TorusPkt::Req(r) => !r.is_read,
            TorusPkt::Resp(r) => r.is_read,
        };
        if data {
            96
        } else {
            32
        }
    }
}

/// A packet parked at a node, waiting to cross its next link.
#[derive(Clone, Copy, Debug)]
struct Transit {
    at_node: u32,
    pkt: TorusPkt,
    /// Non-minimal escape hops this packet may still spend (see
    /// [`ESCAPE_HOP_BUDGET`]).
    escapes_left: u8,
}

/// One directed link's state.
#[derive(Clone, Debug)]
struct Link {
    /// The cycle this link finishes serializing its last-accepted packet.
    busy_until: Cycle,
    /// False while a [`FaultEvent::LinkDown`] is in effect: the link
    /// accepts and serializes nothing.
    up: bool,
    load: LinkLoad,
}

/// Fault-path counters of one [`TorusFabric`] (all zero on a healthy run).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultStats {
    /// Packets dropped because their source, current, or destination node
    /// was dead — the traffic a [`FaultEvent::NodeDown`] erases.
    pub packets_dropped: Counter,
    /// Forward attempts parked because the chosen link was dead (one per
    /// packet per cycle spent waiting — a measure of stall pressure, not
    /// of distinct packets).
    pub dead_link_stalls: Counter,
    /// Non-minimal escape hops actually taken (see [`ESCAPE_HOP_BUDGET`]).
    pub escape_hops: Counter,
}

/// Report row for one directed link.
#[derive(Clone, Debug)]
pub struct LinkReport {
    /// Source node of the directed link.
    pub node: u32,
    /// Ring direction the link points in.
    pub dir: Dir,
    /// Packets that crossed it.
    pub packets: u64,
    /// Bytes that crossed it.
    pub bytes: u64,
    /// Cycles spent serializing.
    pub busy_cycles: u64,
    /// Peak bandwidth over any stats window, GB/s at 2 GHz.
    pub peak_gbps: f64,
}

impl LinkReport {
    /// Column names of [`csv_row`](LinkReport::csv_row), comma-separated.
    pub const CSV_HEADER: &'static str = "node,dir,packets,bytes,busy_cycles,peak_gbps";

    /// This row in the [`CSV_HEADER`](LinkReport::CSV_HEADER) column order
    /// (no trailing newline).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.6}",
            self.node, self.dir, self.packets, self.bytes, self.busy_cycles, self.peak_gbps
        )
    }

    /// This row as a JSON object.
    pub fn json_row(&self) -> String {
        format!(
            r#"{{"node":{},"dir":"{}","packets":{},"bytes":{},"busy_cycles":{},"peak_gbps":{:.6}}}"#,
            self.node, self.dir, self.packets, self.bytes, self.busy_cycles, self.peak_gbps
        )
    }
}

/// Serialize a link report as CSV (header plus one row per directed link).
pub fn link_report_csv(links: &[LinkReport]) -> String {
    let mut out = String::from(LinkReport::CSV_HEADER);
    out.push('\n');
    for l in links {
        out.push_str(&l.csv_row());
        out.push('\n');
    }
    out
}

/// Serialize a link report as a JSON array of per-link objects.
pub fn link_report_json(links: &[LinkReport]) -> String {
    let rows: Vec<String> = links.iter().map(LinkReport::json_row).collect();
    format!("[\n  {}\n]\n", rows.join(",\n  "))
}

/// The multi-node torus transport.
pub struct TorusFabric {
    cfg: TorusFabricConfig,
    /// Packets in flight, keyed by arrival time at their next node.
    wires: DelayLine<Transit>,
    /// Per-node arrival queues.
    incoming: Vec<VecDeque<RemoteReq>>,
    responses: Vec<VecDeque<RemoteResp>>,
    /// Total entries across all arrival queues, maintained at the only
    /// push/pop sites ([`TorusFabric::deliver`] and the two `pop_*`s) so
    /// the rack driver can skip the whole per-node collection scan on
    /// cycles with nothing delivered.
    queued: usize,
    /// Directed links, indexed `node * 6 + dir.index()`.
    links: Vec<Link>,
    /// Per-node liveness (false while a [`FaultEvent::NodeDown`] is in
    /// effect).
    node_up: Vec<bool>,
    /// The fault schedule, sorted by firing cycle.
    fault_events: Vec<FaultEvent>,
    /// Index of the next unapplied event in `fault_events`.
    next_fault: usize,
    /// True when the config scheduled any fault at all — false skips every
    /// per-hop liveness check, so a healthy run pays nothing for the fault
    /// machinery.
    has_faults: bool,
    /// Per-hop routing decision procedure (see [`RoutingPolicy`]).
    policy: Box<dyn RoutingPolicy>,
    stats: FabricStats,
    fault_stats: FaultStats,
    /// Total link traversals (= hops) completed, across all packets.
    hops_traversed: Counter,
}

impl TorusFabric {
    /// Build an idle fabric over `cfg.torus`, routing with the built-in
    /// policy named by `cfg.routing`.
    ///
    /// # Panics
    /// Panics if `link_bytes_per_cycle` or `stats_window` is zero.
    pub fn new(cfg: TorusFabricConfig) -> TorusFabric {
        let policy = cfg.routing.build();
        TorusFabric::with_policy(cfg, policy)
    }

    /// As [`new`](TorusFabric::new) with an arbitrary [`RoutingPolicy`] —
    /// the open extension point (`cfg.routing` is ignored).
    ///
    /// # Panics
    /// Panics if `link_bytes_per_cycle` or `stats_window` is zero, or if
    /// `cfg.faults` names a node outside the torus or a link between
    /// non-neighbors.
    pub fn with_policy(cfg: TorusFabricConfig, policy: Box<dyn RoutingPolicy>) -> TorusFabric {
        assert!(
            cfg.link_bytes_per_cycle > 0,
            "links need non-zero bandwidth"
        );
        let fault_events = cfg.faults.sorted_events();
        for e in &fault_events {
            match *e {
                FaultEvent::LinkDown { a, b, .. } | FaultEvent::LinkUp { a, b, .. } => {
                    assert!(
                        a < cfg.torus.nodes() && b < cfg.torus.nodes(),
                        "fault plan link {a}<->{b} outside the {:?} torus",
                        cfg.torus.dims()
                    );
                    assert!(
                        cfg.torus.hops(a, b) == 1,
                        "fault plan link {a}<->{b} joins non-neighbors"
                    );
                }
                FaultEvent::NodeDown { node, .. } | FaultEvent::NodeUp { node, .. } => {
                    assert!(
                        node < cfg.torus.nodes(),
                        "fault plan node {node} outside the {:?} torus",
                        cfg.torus.dims()
                    );
                }
            }
        }
        let n = cfg.torus.nodes() as usize;
        TorusFabric {
            wires: DelayLine::new(),
            incoming: (0..n).map(|_| VecDeque::new()).collect(),
            responses: (0..n).map(|_| VecDeque::new()).collect(),
            queued: 0,
            links: (0..n * 6)
                .map(|_| Link {
                    busy_until: Cycle::ZERO,
                    up: true,
                    load: LinkLoad::new(cfg.stats_window),
                })
                .collect(),
            node_up: vec![true; n],
            has_faults: !fault_events.is_empty(),
            fault_events,
            next_fault: 0,
            policy,
            stats: FabricStats::default(),
            fault_stats: FaultStats::default(),
            hops_traversed: Counter::default(),
            cfg,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &TorusFabricConfig {
        &self.cfg
    }

    /// Short name of the routing policy in use (`"dor"`, `"adaptive"`, ...).
    pub fn routing_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Fault-path counters (packets dropped by dead nodes, forward
    /// attempts stalled at dead links, escape hops taken). All zero when
    /// the fault plan is empty.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// True when `node` is currently alive (no [`FaultEvent::NodeDown`] in
    /// effect for it).
    pub fn is_node_up(&self, node: u32) -> bool {
        self.node_up[node as usize]
    }

    /// True when the directed link leaving `from` toward `d` can carry
    /// traffic right now: the link itself is up and the neighbor it leads
    /// to is not a dead node.
    pub fn link_live(&self, from: u32, d: Dir) -> bool {
        self.links[from as usize * 6 + d.index()].up
            && self.node_up[self.cfg.torus.neighbor(from, d) as usize]
    }

    /// Apply every scheduled fault event due by `now` (idempotent; called
    /// from `tick` and the injection paths so link state is current before
    /// any routing decision).
    fn apply_faults(&mut self, now: Cycle) {
        while let Some(e) = self.fault_events.get(self.next_fault) {
            if e.at_cycle() > now.0 {
                break;
            }
            let e = *e;
            self.next_fault += 1;
            match e {
                FaultEvent::LinkDown { a, b, .. } => self.set_link(a, b, false),
                FaultEvent::LinkUp { a, b, .. } => self.set_link(a, b, true),
                FaultEvent::NodeDown { node, .. } => self.node_up[node as usize] = false,
                FaultEvent::NodeUp { node, .. } => self.node_up[node as usize] = true,
            }
        }
    }

    /// Set both directed links between neighbors `a` and `b` (on a 2-ring,
    /// where both ring directions join the same pair, all of them).
    fn set_link(&mut self, a: u32, b: u32, up: bool) {
        for d in Dir::ALL {
            if self.cfg.torus.neighbor(a, d) == b {
                self.links[a as usize * 6 + d.index()].up = up;
            }
            if self.cfg.torus.neighbor(b, d) == a {
                self.links[b as usize * 6 + d.index()].up = up;
            }
        }
    }

    /// The [`LinkView`] a packet at `node` would be routed with at `now`:
    /// the serialization backlogs and liveness of the node's six outgoing
    /// links (a fresh packet's full escape budget). Public for congestion
    /// monitors and policy tests; `forward` builds the same view on every
    /// hop, substituting the routed packet's remaining budget.
    pub fn link_view(&self, node: u32, now: Cycle) -> LinkView {
        let base = node as usize * 6;
        let mut backlog = [0u64; 6];
        for (i, b) in backlog.iter_mut().enumerate() {
            *b = self.links[base + i].busy_until.saturating_since(now);
        }
        let mut up = [true; 6];
        if self.has_faults {
            for (i, u) in up.iter_mut().enumerate() {
                *u = self.link_live(node, Dir::ALL[i]);
            }
        }
        LinkView::new(backlog).with_health(up)
    }

    /// Total link traversals completed so far (one per packet per link).
    pub fn hops_traversed(&self) -> u64 {
        self.hops_traversed.get()
    }

    /// Per-directed-link traffic report, in `(node, dir)` order, links that
    /// never carried a packet included.
    pub fn link_report(&self) -> Vec<LinkReport> {
        let mut out = Vec::with_capacity(self.links.len());
        self.link_report_into(&mut out);
        out
    }

    /// As [`link_report`](TorusFabric::link_report), reusing `out`'s
    /// allocation — for callers sampling the report inside loops (periodic
    /// congestion monitors, per-window sweeps).
    pub fn link_report_into(&self, out: &mut Vec<LinkReport>) {
        out.clear();
        out.reserve(self.links.len());
        for node in 0..self.cfg.torus.nodes() {
            for d in Dir::ALL {
                let l = &self.links[node as usize * 6 + d.index()];
                out.push(LinkReport {
                    node,
                    dir: d,
                    packets: l.load.packets(),
                    bytes: l.load.total_bytes(),
                    busy_cycles: l.load.busy_cycles(),
                    peak_gbps: l.load.peak_gbps(Frequency::GHZ2),
                });
            }
        }
    }

    /// Largest per-link peak bandwidth in GB/s (0 when idle).
    pub fn peak_link_gbps(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.load.peak_gbps(Frequency::GHZ2))
            .fold(0.0, f64::max)
    }

    /// Per-link load imbalance: the busiest link's total bytes over the
    /// mean of all loaded links (1.0 when balanced or idle). Computed
    /// straight off the link accumulators — no report allocation — so it is
    /// safe to sample every cycle.
    pub fn link_byte_skew(&self) -> f64 {
        let mut max = 0u64;
        let mut sum = 0u64;
        let mut loaded = 0u64;
        for l in &self.links {
            let b = l.load.total_bytes();
            if b > 0 {
                max = max.max(b);
                sum += b;
                loaded += 1;
            }
        }
        if loaded == 0 {
            return 1.0;
        }
        max as f64 / (sum as f64 / loaded as f64).max(1.0)
    }

    /// Bounds-check a node id at the injection boundary. This stays a hard
    /// assert: it runs once per packet (never per hop/forward), and an
    /// out-of-range destination admitted in release would bounce on the
    /// torus forever instead of failing loudly — custom scenarios are an
    /// advertised extension point and can hand us any id.
    #[inline]
    fn validate_node(&self, node: u16) -> u32 {
        assert!(
            u32::from(node) < self.cfg.torus.nodes(),
            "node {node} outside the {:?} torus",
            self.cfg.torus.dims()
        );
        u32::from(node)
    }

    /// Debug-only variant for the per-cycle pop paths, where an invalid id
    /// would fault on the queue index immediately anyway.
    #[inline]
    fn debug_validate_node(&self, node: u16) -> u32 {
        debug_assert!(
            u32::from(node) < self.cfg.torus.nodes(),
            "node {node} outside the {:?} torus",
            self.cfg.torus.dims()
        );
        u32::from(node)
    }

    /// Send `pkt` across its next link out of `from` — the direction chosen
    /// by the routing policy from a fresh [`LinkView`] — honoring the
    /// link's serialization backlog and health, and schedule its arrival at
    /// the neighbor. `escapes_left` is the packet's remaining non-minimal
    /// hop budget (see [`ESCAPE_HOP_BUDGET`]).
    fn forward(&mut self, now: Cycle, from: u32, pkt: TorusPkt, escapes_left: u8) {
        let dest = u32::from(pkt.dest());
        // Dead nodes drop their traffic: anything a dead node would source
        // or relay disappears, and traffic *to* a dead node is erased at
        // the first forward attempt rather than parked forever — recovery
        // is the requester's ITT timeout, not the fabric's.
        if self.has_faults && (!self.node_up[from as usize] || !self.node_up[dest as usize]) {
            self.fault_stats.packets_dropped.incr();
            return;
        }
        // Congestion-blind policies skip the six-counter snapshot on this
        // per-link-traversal hot path (see RoutingPolicy::uses_link_view).
        let view = if self.policy.uses_link_view() {
            self.link_view(from, now).with_escapes(escapes_left)
        } else {
            LinkView::idle()
        };
        let Some(dir) = self.policy.route(&self.cfg.torus, from, dest, &view) else {
            // Hard assert (rare path, O(1)): a custom policy returning None
            // off-destination would otherwise self-requeue this packet
            // every cycle — a silent livelock in release builds.
            assert!(
                from == dest,
                "policy {} returned None at {from} toward {dest}",
                self.policy.name()
            );
            // Already home (self-addressed traffic): deliver next cycle
            // without touching any link.
            self.wires.push_after(
                now,
                1,
                Transit {
                    at_node: from,
                    pkt,
                    escapes_left,
                },
            );
            return;
        };
        // No packet ever crosses a dead link, whatever the policy chose:
        // park it one cycle and retry — the measured stall of a
        // health-blind policy (DimensionOrder) at a kill site, and the
        // wait-for-repair path otherwise.
        if self.has_faults && !self.link_live(from, dir) {
            self.fault_stats.dead_link_stalls.incr();
            self.wires.push_after(
                now,
                1,
                Transit {
                    at_node: from,
                    pkt,
                    escapes_left,
                },
            );
            return;
        }
        // Minimality contract: every hop must strictly close on the
        // destination, which is what bounds delivery at the Lee distance.
        // Policies that declare themselves non-minimal may instead spend
        // the packet's bounded escape budget (fault avoidance), which is
        // what keeps even their detours livelock-free.
        let productive = self
            .cfg
            .torus
            .hops(self.cfg.torus.neighbor(from, dir), dest)
            < self.cfg.torus.hops(from, dest);
        let escapes_left = if productive {
            escapes_left
        } else {
            debug_assert!(
                !self.policy.strictly_minimal(),
                "policy {} picked unproductive {dir} at {from} toward {dest}",
                self.policy.name()
            );
            debug_assert!(
                escapes_left > 0,
                "policy {} escaped at {from} toward {dest} with no budget left",
                self.policy.name()
            );
            if escapes_left == 0 {
                // Release-mode safety net for a buggy policy: refuse the
                // unbudgeted non-minimal hop and park instead of
                // livelocking.
                self.fault_stats.dead_link_stalls.incr();
                self.wires.push_after(
                    now,
                    1,
                    Transit {
                        at_node: from,
                        pkt,
                        escapes_left,
                    },
                );
                return;
            }
            self.fault_stats.escape_hops.incr();
            escapes_left - 1
        };
        let bytes = pkt.wire_bytes();
        let ser = bytes.div_ceil(self.cfg.link_bytes_per_cycle);
        let link = &mut self.links[from as usize * 6 + dir.index()];
        let depart = now.max(link.busy_until);
        link.busy_until = depart + ser;
        link.load.record(depart, bytes, ser);
        let next = self.cfg.torus.neighbor(from, dir);
        let arrive_in = (depart - now) + ser + self.cfg.hop_cycles;
        self.hops_traversed.incr();
        self.wires.push_after(
            now,
            arrive_in,
            Transit {
                at_node: next,
                pkt,
                escapes_left,
            },
        );
    }

    fn deliver(&mut self, node: u32, pkt: TorusPkt) {
        self.queued += 1;
        match pkt {
            TorusPkt::Req(r) => {
                self.stats.incoming_generated.incr();
                self.incoming[node as usize].push_back(r);
            }
            TorusPkt::Resp(r) => {
                self.stats.responded.incr();
                self.responses[node as usize].push_back(r);
            }
        }
    }

    /// True when any node has undrained arrivals: the cue for the rack
    /// driver to run (or skip) its per-node collection scan.
    pub fn has_deliveries(&self) -> bool {
        self.queued != 0
    }
}

impl Fabric for TorusFabric {
    fn inject(&mut self, now: Cycle, from: u16, req: RemoteReq) {
        self.apply_faults(now);
        let src = self.validate_node(from);
        self.validate_node(req.target_node);
        self.stats.sent.incr();
        let mut req = req;
        req.src_node = from;
        self.forward(now, src, TorusPkt::Req(req), ESCAPE_HOP_BUDGET);
    }

    fn inject_resp(&mut self, now: Cycle, from: u16, resp: RemoteResp) {
        self.apply_faults(now);
        let src = self.validate_node(from);
        self.validate_node(resp.dst_node);
        self.forward(now, src, TorusPkt::Resp(resp), ESCAPE_HOP_BUDGET);
    }

    fn tick(&mut self, now: Cycle) {
        self.apply_faults(now);
        // Naturally idempotent within a cycle: everything `forward` pushes
        // (relay hops included) arrives strictly after `now`, so a second
        // call at the same cycle pops nothing. No guard state needed.
        while let Some(t) = self.wires.pop_ready(now) {
            if self.has_faults && !self.node_up[t.at_node as usize] {
                // In flight when its current node died: dropped with it.
                self.fault_stats.packets_dropped.incr();
            } else if u32::from(t.pkt.dest()) == t.at_node {
                self.deliver(t.at_node, t.pkt);
            } else {
                self.forward(now, t.at_node, t.pkt, t.escapes_left);
            }
        }
    }

    fn pop_response(&mut self, _now: Cycle, node: u16) -> Option<RemoteResp> {
        let n = self.debug_validate_node(node) as usize;
        let r = self.responses[n].pop_front();
        if r.is_some() {
            self.queued -= 1;
        }
        r
    }

    fn pop_incoming(&mut self, _now: Cycle, node: u16) -> Option<RemoteReq> {
        let n = self.debug_validate_node(node) as usize;
        let r = self.incoming[n].pop_front();
        if r.is_some() {
            self.queued -= 1;
        }
        r
    }

    fn record_rrpp_latency(&mut self, _node: u16, _cycles: u64) {
        // Real remote ends are simulated in detail; no estimate to refine.
    }

    fn stats(&self) -> FabricStats {
        self.stats
    }

    fn is_idle(&self) -> bool {
        self.wires.is_empty() && self.queued == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ni_mem::BlockAddr;

    fn fabric(x: u16, y: u16, z: u16) -> TorusFabric {
        TorusFabric::new(TorusFabricConfig {
            torus: Torus3D::new(x, y, z),
            ..TorusFabricConfig::default()
        })
    }

    fn req(tid: u64, target: u16) -> RemoteReq {
        RemoteReq {
            tid,
            is_read: true,
            src_node: 0,
            target_node: target,
            remote_block: BlockAddr(5),
            value: 0,
            service: 0,
        }
    }

    fn run_until_idle(f: &mut TorusFabric, from: Cycle, limit: u64) -> Cycle {
        let mut now = from;
        while !f.wires.is_empty() {
            f.tick(now);
            now += 1;
            assert!(now.0 < limit, "fabric never drained");
        }
        now
    }

    #[test]
    fn one_hop_request_arrives_after_serialization_plus_wire() {
        let mut f = fabric(2, 1, 1);
        f.inject(Cycle(0), 0, req(1, 1));
        // 32B at 16B/cycle = 2 cycles serialization + 70 wire.
        f.tick(Cycle(71));
        assert!(f.pop_incoming(Cycle(71), 1).is_none());
        f.tick(Cycle(72));
        let got = f.pop_incoming(Cycle(72), 1).expect("arrived");
        assert_eq!(got.tid, 1);
        assert_eq!(got.src_node, 0, "fabric stamps the source");
        assert_eq!(f.hops_traversed(), 1);
    }

    #[test]
    fn multi_hop_routes_use_exactly_lee_distance_links() {
        let mut f = fabric(4, 4, 4);
        let t = f.config().torus;
        let (a, b) = (0u16, 63u16 - 21); // arbitrary pair
        f.inject(Cycle(0), a, req(9, b));
        run_until_idle(&mut f, Cycle(0), 100_000);
        assert_eq!(
            f.hops_traversed(),
            u64::from(t.hops(u32::from(a), u32::from(b)))
        );
        let link_sum: u64 = f.link_report().iter().map(|l| l.packets).sum();
        assert_eq!(link_sum, f.hops_traversed());
    }

    #[test]
    fn responses_route_back_to_the_requester() {
        let mut f = fabric(2, 2, 2);
        f.inject_resp(
            Cycle(0),
            7,
            RemoteResp {
                tid: 4,
                dst_node: 0,
                remote_block: BlockAddr(5),
                value: 1234,
                is_read: true,
            },
        );
        let end = run_until_idle(&mut f, Cycle(0), 100_000);
        let _ = end;
        // Drain at the destination only.
        for n in 1..8 {
            assert!(f.pop_response(Cycle(10_000), n).is_none());
        }
        let got = f.pop_response(Cycle(10_000), 0).expect("delivered");
        assert_eq!(got.value, 1234);
        // 3 hops from node 7 (1,1,1) to node 0, 96B data packets.
        assert_eq!(f.hops_traversed(), 3);
    }

    #[test]
    fn finite_link_bandwidth_serializes_back_to_back_packets() {
        let mut f = fabric(2, 1, 1);
        // Two 32B requests at the same cycle share the single +x link:
        // the second departs 2 cycles after the first.
        f.inject(Cycle(0), 0, req(1, 1));
        f.inject(Cycle(0), 0, req(2, 1));
        f.tick(Cycle(72));
        assert!(f.pop_incoming(Cycle(72), 1).is_some());
        assert!(
            f.pop_incoming(Cycle(72), 1).is_none(),
            "second still in flight"
        );
        f.tick(Cycle(74));
        assert!(f.pop_incoming(Cycle(74), 1).is_some());
        let report = f.link_report();
        let busy: u64 = report.iter().map(|l| l.busy_cycles).sum();
        assert_eq!(busy, 4, "two packets x two serialization cycles");
    }

    #[test]
    fn tick_is_naturally_idempotent_within_a_cycle() {
        let mut f = fabric(2, 1, 1);
        f.inject(Cycle(0), 0, req(1, 1));
        f.tick(Cycle(72));
        f.tick(Cycle(72));
        f.tick(Cycle(72));
        assert!(f.pop_incoming(Cycle(72), 1).is_some());
        assert!(f.pop_incoming(Cycle(72), 1).is_none());
    }

    #[test]
    fn link_report_into_reuses_the_buffer() {
        let mut f = fabric(2, 1, 1);
        f.inject(Cycle(0), 0, req(1, 1));
        run_until_idle(&mut f, Cycle(0), 100_000);
        let mut buf = Vec::new();
        f.link_report_into(&mut buf);
        assert_eq!(buf.len(), 12);
        let cap = buf.capacity();
        f.link_report_into(&mut buf);
        assert_eq!(buf.len(), 12);
        assert_eq!(buf.capacity(), cap, "second fill must not reallocate");
        assert_eq!(
            buf.iter().map(|l| l.packets).sum::<u64>(),
            f.hops_traversed()
        );
    }

    #[test]
    fn link_byte_skew_matches_the_report() {
        let mut f = fabric(2, 2, 1);
        f.inject(Cycle(0), 0, req(1, 1));
        f.inject(Cycle(0), 0, req(2, 1));
        f.inject(Cycle(0), 2, req(3, 3));
        run_until_idle(&mut f, Cycle(0), 100_000);
        let loaded: Vec<u64> = f
            .link_report()
            .iter()
            .map(|l| l.bytes)
            .filter(|&b| b > 0)
            .collect();
        let max = *loaded.iter().max().expect("traffic flowed") as f64;
        let mean = loaded.iter().sum::<u64>() as f64 / loaded.len() as f64;
        assert!((f.link_byte_skew() - max / mean).abs() < 1e-12);
    }

    /// The injection boundary must reject out-of-range destinations in
    /// every build profile: a bad id admitted here would relay on the torus
    /// forever instead of failing loudly.
    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_targets_are_rejected() {
        let mut f = fabric(2, 1, 1);
        f.inject(Cycle(0), 0, req(1, 9));
    }

    fn faulted(x: u16, y: u16, z: u16, routing: RoutingKind, faults: FaultPlan) -> TorusFabric {
        TorusFabric::new(TorusFabricConfig {
            torus: Torus3D::new(x, y, z),
            routing,
            faults,
            ..TorusFabricConfig::default()
        })
    }

    /// A packet routed at a dead link by a health-blind policy parks and
    /// retries each cycle; after the scheduled repair it crosses and
    /// delivers.
    #[test]
    fn dor_stalls_at_a_dead_link_until_repair() {
        let plan = FaultPlan::new().link_down(0, 1, 0).link_up(0, 1, 500);
        let mut f = faulted(4, 1, 1, RoutingKind::DimensionOrder, plan);
        f.inject(Cycle(0), 0, req(1, 1));
        for c in 0..=499u64 {
            f.tick(Cycle(c));
            assert!(f.pop_incoming(Cycle(c), 1).is_none(), "delivered at {c}?");
        }
        assert!(f.fault_stats().dead_link_stalls.get() > 400);
        assert_eq!(f.hops_traversed(), 0, "nothing crossed while dead");
        // Repair at 500: 2 serialization + 70 wire cycles later it lands.
        for c in 500..=572u64 {
            f.tick(Cycle(c));
        }
        let got = f.pop_incoming(Cycle(572), 1).expect("arrived after repair");
        assert_eq!(got.tid, 1);
        assert_eq!(f.hops_traversed(), 1);
    }

    /// Fault-adaptive routing rides the surviving ring around a dead link:
    /// same delivery, more hops, zero stalls.
    #[test]
    fn fault_adaptive_routes_around_a_dead_link() {
        let plan = FaultPlan::new().link_down(0, 1, 0);
        let mut f = faulted(4, 1, 1, RoutingKind::FaultAdaptive, plan);
        f.inject(Cycle(0), 0, req(9, 1));
        let end = run_until_idle(&mut f, Cycle(0), 100_000);
        let got = f.pop_incoming(end, 1).expect("delivered the long way");
        assert_eq!(got.tid, 9);
        // 0 -> 3 -> 2 -> 1 on the ring: one escape hop then two minimal.
        assert_eq!(f.hops_traversed(), 3);
        assert_eq!(f.fault_stats().escape_hops.get(), 1);
        assert_eq!(f.fault_stats().dead_link_stalls.get(), 0);
    }

    /// Dead nodes drop traffic in every role: sourced by, addressed to, or
    /// relayed through them.
    #[test]
    fn dead_nodes_drop_sourced_addressed_and_relayed_traffic() {
        // 4x1x1 ring, node 2 dead from cycle 0.
        let plan = FaultPlan::new().node_down(2, 0);
        let mut f = faulted(4, 1, 1, RoutingKind::DimensionOrder, plan);
        // Addressed to the dead node: dropped at first forward.
        f.inject(Cycle(0), 1, req(1, 2));
        // Sourced by the dead node: dropped at injection.
        f.inject(Cycle(0), 2, req(2, 0));
        assert_eq!(f.fault_stats().packets_dropped.get(), 2);
        // Routed *through* it by a health-blind policy (1 -> 3: DOR picks
        // +x from 1, i.e. the dead node 2): the incident link reads as
        // down, so the packet parks at node 1 exactly like a dead-link
        // stall — the requester's ITT timeout is the recovery path.
        f.inject(Cycle(0), 1, req(3, 3));
        for c in 0..500u64 {
            f.tick(Cycle(c));
        }
        assert_eq!(f.fault_stats().packets_dropped.get(), 2);
        assert!(f.fault_stats().dead_link_stalls.get() > 400);
        assert!(!f.is_idle(), "the stalled packet stays in flight");
        // A packet already in flight toward the dead node when it died is
        // dropped on arrival.
        let plan = FaultPlan::new().node_down(1, 10);
        let mut f = faulted(4, 1, 1, RoutingKind::DimensionOrder, plan);
        f.inject(Cycle(0), 0, req(7, 1)); // arrives at cycle 72 > 10
        for c in 0..200u64 {
            f.tick(Cycle(c));
        }
        assert_eq!(f.fault_stats().packets_dropped.get(), 1);
        assert!(f.is_idle());
    }

    /// Repairing a dead node restores delivery.
    #[test]
    fn node_repair_restores_delivery() {
        let plan = FaultPlan::new().node_down(1, 0).node_up(1, 1_000);
        let mut f = faulted(2, 2, 1, RoutingKind::FaultAdaptive, plan);
        f.inject(Cycle(0), 0, req(5, 1));
        f.tick(Cycle(0));
        assert_eq!(f.fault_stats().packets_dropped.get(), 1);
        f.inject(Cycle(1_000), 0, req(6, 1));
        let end = run_until_idle(&mut f, Cycle(1_000), 100_000);
        assert_eq!(f.pop_incoming(end, 1).expect("delivered").tid, 6);
    }

    /// A fault plan naming a non-neighbor pair must fail loudly at
    /// construction, not corrupt link state at runtime.
    #[test]
    #[should_panic(expected = "non-neighbors")]
    fn fault_plans_between_non_neighbors_are_rejected() {
        faulted(
            4,
            4,
            1,
            RoutingKind::DimensionOrder,
            FaultPlan::new().link_down(0, 5, 10),
        );
    }
}
