//! Model-based property tests for the queue-pair protocol.
//!
//! A `QueuePair` is driven with arbitrary interleavings of the four
//! protocol actions (application enqueue, NI take, NI complete, application
//! reap) and checked against a flat reference model.

use ni_mem::Addr;
use ni_qp::{QpConfig, QueuePair, RemoteOp};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Action {
    Enqueue { len: u64, write: bool },
    NiTake,
    NiComplete,
    AppReap,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u64..20_000, any::<bool>()).prop_map(|(len, write)| Action::Enqueue { len, write }),
        Just(Action::NiTake),
        Just(Action::NiComplete),
        Just(Action::AppReap),
    ]
}

/// Flat reference model of the QP state machine.
#[derive(Default)]
struct Model {
    next_id: u64,
    pending: Vec<u64>,
    taken: Vec<u64>,
    completed: Vec<u64>,
    reaped: Vec<u64>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn qp_matches_reference_model(actions in prop::collection::vec(action_strategy(), 1..200)) {
        let cfg = QpConfig::default();
        let mut qp = QueuePair::new(0, cfg, Addr(0x1000), Addr(0x20000));
        let mut m = Model::default();

        for a in actions {
            match a {
                Action::Enqueue { len, write } => {
                    let op = if write { RemoteOp::Write } else { RemoteOp::Read };
                    // A WQ slot is held from enqueue until the NI records
                    // the completion; unreaped CQ entries do not occupy WQ
                    // space.
                    let full = m.pending.len() + m.taken.len() >= cfg.wq_entries;
                    let r = qp.enqueue(op, 1, Addr(0x9000), Addr(0x5000), len);
                    prop_assert_eq!(r.is_err(), full, "fullness mismatch");
                    if let Ok(id) = r {
                        m.next_id += 1;
                        prop_assert_eq!(id, m.next_id, "ids are dense and monotonic");
                        m.pending.push(id);
                    }
                }
                Action::NiTake => {
                    let e = qp.ni_take();
                    prop_assert_eq!(e.is_some(), !m.pending.is_empty());
                    if let Some(e) = e {
                        let id = m.pending.remove(0);
                        prop_assert_eq!(e.id, id, "NI takes in FIFO order");
                        prop_assert_eq!(e.blocks(), e.length.div_ceil(64).max(1));
                        m.taken.push(id);
                    }
                }
                Action::NiComplete => {
                    if m.taken.is_empty() {
                        continue; // completing nothing is a protocol error
                    }
                    let id = m.taken.remove(0);
                    qp.ni_complete(id);
                    m.completed.push(id);
                }
                Action::AppReap => {
                    let c = qp.app_reap();
                    prop_assert_eq!(c.is_some(), !m.completed.is_empty());
                    if let Some(c) = c {
                        let id = m.completed.remove(0);
                        prop_assert_eq!(c.wq_id, id, "completions reaped in order");
                        prop_assert!(c.ok);
                        m.reaped.push(id);
                    }
                }
            }
            // Structural invariants, checked after every step.
            prop_assert_eq!(qp.inflight(), m.taken.len());
            prop_assert_eq!(qp.completions_ready(), m.completed.len());
            prop_assert_eq!(
                qp.wq_free(),
                cfg.wq_entries - m.pending.len() - m.taken.len()
            );
            prop_assert_eq!(qp.newest_written_id(), m.next_id);
            prop_assert_eq!(
                qp.completions_written(),
                (m.completed.len() + m.reaped.len()) as u64
            );
        }
    }

    #[test]
    fn wq_slots_wrap_within_the_ring(count in 1u64..600) {
        let cfg = QpConfig::default();
        let mut qp = QueuePair::new(0, cfg, Addr(0x4000), Addr(0x8000));
        let ring_bytes = cfg.wq_entries as u64 * cfg.wq_entry_bytes;
        for _ in 0..count {
            // Keep the queue from filling: take+complete+reap immediately.
            let id = qp
                .enqueue(RemoteOp::Read, 0, Addr(0), Addr(0), 64)
                .expect("never full");
            let block = qp.slot_block_of(id);
            let base = block.base().0;
            prop_assert!(base >= 0x4000, "slot below the WQ region");
            prop_assert!(base < 0x4000 + ring_bytes, "slot beyond the ring");
            let e = qp.ni_take().expect("just enqueued");
            qp.ni_complete(e.id);
            qp.app_reap().expect("just completed");
        }
    }

    #[test]
    fn blocks_calculation_never_zero(len in 0u64..1_000_000) {
        let mut qp = QueuePair::new(0, QpConfig::default(), Addr(0), Addr(0x10000));
        qp.enqueue(RemoteOp::Read, 0, Addr(0), Addr(0), len).expect("empty queue");
        let e = qp.ni_take().expect("present");
        prop_assert!(e.blocks() >= 1);
        prop_assert!(e.blocks() * 64 >= len);
        prop_assert!(e.blocks() * 64 < len + 64 + 1);
    }

    #[test]
    fn cq_blocks_advance_every_eight_completions(batches in 1usize..40) {
        let cfg = QpConfig::default();
        let mut qp = QueuePair::new(0, cfg, Addr(0), Addr(0x10000));
        let per_block = 64 / cfg.cq_entry_bytes;
        let mut seen = vec![qp.cq_tail_block()];
        for _ in 0..batches {
            for _ in 0..per_block {
                let id = qp.enqueue(RemoteOp::Read, 0, Addr(0), Addr(0), 64).expect("never full");
                let e = qp.ni_take().expect("present");
                qp.ni_complete(e.id);
                qp.app_reap().expect("completed");
                let _ = id;
            }
            let b = qp.cq_tail_block();
            prop_assert_ne!(b, *seen.last().expect("non-empty"), "CQ tail must advance per batch");
            seen.push(b);
        }
    }
}
