//! # ni-qp — queue-pair substrate (soNUMA's memory-mapped WQ/CQ protocol)
//!
//! §2.2 of the paper: cores schedule one-sided remote operations by writing
//! Work Queue (WQ) entries into cacheable memory and learn about completions
//! by polling a Completion Queue (CQ); the NI polls the WQ and writes the
//! CQ. This crate provides the queue bookkeeping and address layout; the
//! actual cache-block traffic (the part the paper's Table 3 dissects) is
//! driven by the SoC layer through the coherence crate.
//!
//! Layout follows the paper's cost model: a WQ entry is 32 bytes (two
//! stores to the same cache block create one), so one 64-byte block holds
//! two entries; CQ entries are 8 bytes (a single polling load covers one).

#![warn(missing_docs)]

pub mod queue;

pub use queue::{CqEntry, QpConfig, QueuePair, RemoteOp, WqEntry};
