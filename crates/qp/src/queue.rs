//! Work/Completion queue bookkeeping.

use std::collections::VecDeque;

use ni_mem::{Addr, BlockAddr, BLOCK_BYTES};

/// One-sided remote operation kinds (soNUMA supports reads and writes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RemoteOp {
    /// Fetch remote memory into a local buffer.
    Read,
    /// Push local memory into remote memory.
    Write,
}

/// A Work Queue entry: one application-issued remote operation of up to
/// tens of kilobytes, unrolled by the RGP into cache-block-sized transfers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WqEntry {
    /// Monotonic id; doubles as the cache-block token the issuing store
    /// writes, so the NI's poll observes entry visibility exactly.
    pub id: u64,
    /// Operation kind.
    pub op: RemoteOp,
    /// Destination node in the rack.
    pub remote_node: u16,
    /// Remote virtual address (block-aligned in the microbenchmarks).
    pub remote_addr: Addr,
    /// Local buffer address data is delivered to / read from.
    pub local_addr: Addr,
    /// Transfer length in bytes.
    pub length: u64,
    /// Remote compute cycles the serving RRPP spends on each block of this
    /// operation before replying — the two-sided request–response shape.
    /// Zero (the default for one-sided ops) reproduces the paper's pure
    /// remote-memory semantics.
    pub service: u64,
}

impl WqEntry {
    /// Number of cache-block transfers this entry unrolls into.
    pub fn blocks(&self) -> u64 {
        self.length.div_ceil(BLOCK_BYTES).max(1)
    }
}

/// A Completion Queue entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CqEntry {
    /// The WQ entry that completed.
    pub wq_id: u64,
    /// Success flag. False when the NI gave up on the transfer — an ITT
    /// timeout whose retry budget ran out because a link or node died under
    /// it — so the application observes the failure instead of hanging.
    pub ok: bool,
    /// Degraded-path flag: the operation completed, but only through a
    /// recovery mechanism — a WQ replay to an alternate replica, or a write
    /// quorum met despite a dead fan-out leg. Latency accounting keeps
    /// degraded completions out of the healthy distributions.
    pub degraded: bool,
}

/// Queue-pair geometry and software cost model.
#[derive(Clone, Copy, Debug)]
pub struct QpConfig {
    /// WQ capacity in entries (§5: 128-entry WQ).
    pub wq_entries: usize,
    /// WQ entry size in bytes (32: two stores to one block per entry).
    pub wq_entry_bytes: u64,
    /// CQ entry size in bytes (8: one polling load per entry).
    pub cq_entry_bytes: u64,
    /// Arithmetic cycles the core spends composing a WQ entry before its two
    /// stores ("roughly a dozen arithmetic instructions", §3.1).
    pub wq_write_compute: u64,
    /// Arithmetic cycles around the CQ polling load ("four instructions
    /// including a load").
    pub cq_read_compute: u64,
}

impl Default for QpConfig {
    fn default() -> Self {
        QpConfig {
            wq_entries: 128,
            wq_entry_bytes: 32,
            cq_entry_bytes: 8,
            wq_write_compute: 7,
            cq_read_compute: 3,
        }
    }
}

/// A queue pair: the logical contents of one WQ/CQ plus their address
/// layout in (simulated) memory.
///
/// ```
/// use ni_mem::Addr;
/// use ni_qp::{QpConfig, QueuePair, RemoteOp};
///
/// let mut qp = QueuePair::new(0, QpConfig::default(), Addr(0x10000), Addr(0x20000));
/// let id = qp.enqueue(RemoteOp::Read, 3, Addr(0x9000), Addr(0x5000), 128).unwrap();
/// assert_eq!(id, 1);
/// let e = qp.ni_take().unwrap();
/// assert_eq!(e.blocks(), 2);
/// qp.ni_complete(e.id);
/// assert_eq!(qp.app_reap().unwrap().wq_id, id);
/// ```
#[derive(Debug)]
pub struct QueuePair {
    /// Identifier (index within the registered QP table).
    pub qp_id: u32,
    cfg: QpConfig,
    wq_base: Addr,
    cq_base: Addr,
    next_id: u64,
    /// Entries written by the app, not yet taken by the NI.
    pending: VecDeque<WqEntry>,
    /// In-flight entries taken by the NI, not yet completed.
    inflight: usize,
    /// Completions written by the NI, not yet reaped by the app.
    completions: VecDeque<CqEntry>,
    /// Tail index used for WQ slot addressing.
    wq_tail: u64,
    /// NI's WQ read index.
    wq_head: u64,
    /// CQ write index.
    cq_tail: u64,
    /// App's CQ read index.
    cq_head: u64,
}

impl QueuePair {
    /// Create a queue pair with WQ at `wq_base` and CQ at `cq_base`.
    pub fn new(qp_id: u32, cfg: QpConfig, wq_base: Addr, cq_base: Addr) -> QueuePair {
        QueuePair {
            qp_id,
            cfg,
            wq_base,
            cq_base,
            next_id: 0,
            pending: VecDeque::new(),
            inflight: 0,
            completions: VecDeque::new(),
            wq_tail: 0,
            wq_head: 0,
            cq_tail: 0,
            cq_head: 0,
        }
    }

    /// Configuration.
    pub fn config(&self) -> &QpConfig {
        &self.cfg
    }

    /// Free WQ slots from the application's point of view.
    pub fn wq_free(&self) -> usize {
        self.cfg.wq_entries - (self.pending.len() + self.inflight)
    }

    /// True when the application cannot enqueue (must spin on the CQ, §5).
    pub fn wq_full(&self) -> bool {
        self.wq_free() == 0
    }

    /// Application enqueues a remote operation; returns its id.
    ///
    /// # Errors
    /// Returns `Err(())` when the WQ is full. (The unit error is
    /// deliberate: fullness carries no information beyond "retry".)
    #[allow(clippy::result_unit_err)]
    pub fn enqueue(
        &mut self,
        op: RemoteOp,
        remote_node: u16,
        remote_addr: Addr,
        local_addr: Addr,
        length: u64,
    ) -> Result<u64, ()> {
        self.enqueue_with_service(op, remote_node, remote_addr, local_addr, length, 0)
    }

    /// As [`enqueue`](QueuePair::enqueue), with a per-op remote service
    /// time: the serving RRPP "computes" for `service` cycles per block
    /// before replying (see [`WqEntry::service`]).
    ///
    /// # Errors
    /// Returns `Err(())` when the WQ is full.
    #[allow(clippy::result_unit_err)]
    pub fn enqueue_with_service(
        &mut self,
        op: RemoteOp,
        remote_node: u16,
        remote_addr: Addr,
        local_addr: Addr,
        length: u64,
        service: u64,
    ) -> Result<u64, ()> {
        if self.wq_full() {
            return Err(());
        }
        self.next_id += 1;
        let e = WqEntry {
            id: self.next_id,
            op,
            remote_node,
            remote_addr,
            local_addr,
            length,
            service,
        };
        self.pending.push_back(e);
        self.wq_tail += 1;
        Ok(e.id)
    }

    /// Block the application's next WQ store lands in (wraparound layout).
    pub fn wq_tail_block(&self) -> BlockAddr {
        let slot = self.wq_tail % self.cfg.wq_entries as u64;
        self.wq_base.offset(slot * self.cfg.wq_entry_bytes).block()
    }

    /// Block the NI polls for new WQ entries.
    pub fn wq_head_block(&self) -> BlockAddr {
        let slot = self.wq_head % self.cfg.wq_entries as u64;
        self.wq_base.offset(slot * self.cfg.wq_entry_bytes).block()
    }

    /// Block the NI's next CQ entry lands in.
    pub fn cq_tail_block(&self) -> BlockAddr {
        let slot = self.cq_tail % self.cfg.wq_entries as u64;
        self.cq_base.offset(slot * self.cfg.cq_entry_bytes).block()
    }

    /// Block the application polls for completions.
    pub fn cq_head_block(&self) -> BlockAddr {
        let slot = self.cq_head % self.cfg.wq_entries as u64;
        self.cq_base.offset(slot * self.cfg.cq_entry_bytes).block()
    }

    /// Id of the newest entry written so far (the token the polling NI will
    /// observe in the WQ block).
    pub fn newest_written_id(&self) -> u64 {
        self.next_id
    }

    /// Entry the NI would take next, without consuming it.
    pub fn ni_peek(&self) -> Option<&WqEntry> {
        self.pending.front()
    }

    /// Entries written by the app but not yet taken by the NI, oldest first.
    pub fn pending_entries(&self) -> impl Iterator<Item = &WqEntry> {
        self.pending.iter()
    }

    /// Total CQ entries the NI has written (the token its CQ stores carry).
    pub fn completions_written(&self) -> u64 {
        self.cq_tail
    }

    /// Block holding the WQ slot of entry `id` (ids start at 1).
    pub fn slot_block_of(&self, id: u64) -> BlockAddr {
        let slot = (id - 1) % self.cfg.wq_entries as u64;
        self.wq_base.offset(slot * self.cfg.wq_entry_bytes).block()
    }

    /// NI consumes the next pending entry (after its poll observed it).
    pub fn ni_take(&mut self) -> Option<WqEntry> {
        let e = self.pending.pop_front()?;
        self.inflight += 1;
        self.wq_head += 1;
        Some(e)
    }

    /// NI records a successful completion for `wq_id` (writes the CQ
    /// entry).
    pub fn ni_complete(&mut self, wq_id: u64) {
        self.ni_complete_with(wq_id, true, false);
    }

    /// NI records a completion for `wq_id` with an explicit status: `ok ==
    /// false` marks a failed transfer (ITT timeout after the retry budget,
    /// see [`CqEntry::ok`]), `degraded == true` one that needed a recovery
    /// path (replay/failover or a quorum carrying a dead leg, see
    /// [`CqEntry::degraded`]). Failed entries free their WQ slot like
    /// successful ones — the NI owns the entry either way.
    pub fn ni_complete_with(&mut self, wq_id: u64, ok: bool, degraded: bool) {
        debug_assert!(self.inflight > 0, "completion without in-flight entry");
        self.inflight -= 1;
        self.completions.push_back(CqEntry {
            wq_id,
            ok,
            degraded,
        });
        self.cq_tail += 1;
    }

    /// Number of completions the app has not reaped yet.
    pub fn completions_ready(&self) -> usize {
        self.completions.len()
    }

    /// Application reaps the oldest completion.
    pub fn app_reap(&mut self) -> Option<CqEntry> {
        let c = self.completions.pop_front()?;
        self.cq_head += 1;
        Some(c)
    }

    /// Entries currently owned by the NI (taken, not completed).
    pub fn inflight(&self) -> usize {
        self.inflight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp() -> QueuePair {
        QueuePair::new(0, QpConfig::default(), Addr(0x1000), Addr(0x8000))
    }

    #[test]
    fn enqueue_take_complete_reap_cycle() {
        let mut q = qp();
        let id = q
            .enqueue(RemoteOp::Read, 1, Addr(0), Addr(0x100), 64)
            .unwrap();
        assert_eq!(q.wq_free(), 127);
        let e = q.ni_take().unwrap();
        assert_eq!(e.id, id);
        assert_eq!(q.inflight(), 1);
        assert_eq!(q.wq_free(), 127, "in-flight entries still occupy slots");
        q.ni_complete(e.id);
        assert_eq!(q.wq_free(), 128, "slot freed on completion");
        let c = q.app_reap().unwrap();
        assert_eq!(c.wq_id, id);
        assert!(c.ok);
    }

    #[test]
    fn failed_completions_free_the_slot_and_carry_the_status() {
        let mut q = qp();
        let id = q
            .enqueue(RemoteOp::Read, 1, Addr(0), Addr(0x100), 64)
            .unwrap();
        let e = q.ni_take().unwrap();
        q.ni_complete_with(e.id, false, false);
        assert_eq!(q.wq_free(), 128, "failed entries still free their slot");
        let c = q.app_reap().unwrap();
        assert_eq!(c.wq_id, id);
        assert!(!c.ok, "the error status must reach the application");
    }

    #[test]
    fn degraded_completions_carry_the_flag_to_the_application() {
        let mut q = qp();
        let id = q
            .enqueue(RemoteOp::Read, 1, Addr(0), Addr(0x100), 64)
            .unwrap();
        let e = q.ni_take().unwrap();
        q.ni_complete_with(e.id, true, true);
        let c = q.app_reap().unwrap();
        assert_eq!(c.wq_id, id);
        assert!(
            c.ok && c.degraded,
            "a replayed-but-successful op is ok+degraded"
        );
        // The plain success path never sets it.
        q.enqueue(RemoteOp::Read, 1, Addr(0), Addr(0x100), 64)
            .unwrap();
        let e = q.ni_take().unwrap();
        q.ni_complete(e.id);
        assert!(!q.app_reap().unwrap().degraded);
    }

    #[test]
    fn wq_fills_at_128_entries() {
        let mut q = qp();
        for i in 0..128 {
            assert!(
                q.enqueue(RemoteOp::Read, 0, Addr(i * 64), Addr(0), 64)
                    .is_ok(),
                "entry {i}"
            );
        }
        assert!(q.wq_full());
        assert!(q.enqueue(RemoteOp::Read, 0, Addr(0), Addr(0), 64).is_err());
    }

    #[test]
    fn two_wq_entries_share_a_block() {
        let mut q = qp();
        let b0 = q.wq_tail_block();
        q.enqueue(RemoteOp::Read, 0, Addr(0), Addr(0), 64).unwrap();
        let b1 = q.wq_tail_block();
        assert_eq!(b0, b1, "32B entries: two per 64B block");
        q.enqueue(RemoteOp::Read, 0, Addr(0), Addr(0), 64).unwrap();
        let b2 = q.wq_tail_block();
        assert_ne!(b1, b2, "third entry starts the next block");
    }

    #[test]
    fn eight_cq_entries_share_a_block() {
        let mut q = qp();
        let base = q.cq_tail_block();
        for _ in 0..8 {
            q.enqueue(RemoteOp::Read, 0, Addr(0), Addr(0), 64).unwrap();
            let e = q.ni_take().unwrap();
            q.ni_complete(e.id);
        }
        // After eight 8-byte completions the CQ tail moves to a new block.
        assert_ne!(q.cq_tail_block(), base);
    }

    #[test]
    fn unroll_counts_match_transfer_size() {
        let mut q = qp();
        q.enqueue(RemoteOp::Read, 0, Addr(0), Addr(0), 16384)
            .unwrap();
        assert_eq!(q.ni_peek().unwrap().blocks(), 256);
        q.enqueue(RemoteOp::Write, 0, Addr(0), Addr(0), 1).unwrap();
        q.ni_take();
        assert_eq!(q.ni_peek().unwrap().blocks(), 1);
    }

    #[test]
    fn ids_increase_monotonically() {
        let mut q = qp();
        let a = q.enqueue(RemoteOp::Read, 0, Addr(0), Addr(0), 64).unwrap();
        let b = q.enqueue(RemoteOp::Read, 0, Addr(0), Addr(0), 64).unwrap();
        assert!(b > a);
        assert_eq!(q.newest_written_id(), b);
    }
}
