//! One entry point per table/figure of the paper's evaluation.
//!
//! Every function returns structured data and can render a paper-style
//! table; the `ni-bench` harness prints paper-vs-measured side by side.
//! Experiment scale (operations per point, window sizes) accepts a
//! [`Scale`] so CI runs stay fast while full runs match the paper's
//! methodology.

use ni_engine::Frequency;
use ni_fabric::{Dir, FaultPlan, ReplicaCfg, RoutingKind, Torus3D};
use ni_metrics::{interference_index, SloSummary};
use ni_noc::RoutingPolicy;
use ni_rmc::NiPlacement;
use ni_soc::bench::{run_bandwidth, run_sync_latency, stage_breakdown, StageBreakdown};
use ni_soc::{
    builtin_scenarios, Bursty, Capped, ChipConfig, ClosedLoop, GraphShard, KvStore, Rack,
    RackSimConfig, Scenario, Synthetic, TenantMix, TickMode, Topology, TrafficPattern, Workload,
    ZipfHotspot,
};

use crate::paper;
use crate::parallel::par_map;
use crate::report::{f1, pct, Table};

/// Experiment scale: trade fidelity for wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A few operations / short windows (tests, smoke runs).
    Quick,
    /// The paper's methodology (§5): more samples, windowed convergence.
    Full,
}

impl Scale {
    /// Read `RACKNI_SCALE=full|quick` from the environment (default quick).
    pub fn from_env() -> Scale {
        match std::env::var("RACKNI_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    fn latency_ops(self) -> u64 {
        match self {
            Scale::Quick => 8,
            Scale::Full => 100,
        }
    }

    fn bw_window(self) -> u64 {
        match self {
            Scale::Quick => 50_000,
            Scale::Full => 200_000,
        }
    }

    fn bw_max_windows(self) -> u32 {
        match self {
            Scale::Quick => 6,
            Scale::Full => 12,
        }
    }

    /// Simulation horizon for one multi-node rack run at this scale.
    pub fn rack_cycles(self) -> u64 {
        match self {
            Scale::Quick => 15_000,
            Scale::Full => 60_000,
        }
    }
}

fn cfg_for(placement: NiPlacement, topology: Topology) -> ChipConfig {
    ChipConfig {
        placement,
        topology,
        ..ChipConfig::default()
    }
}

/// Measured end-to-end single-block latency for one design.
#[derive(Clone, Copy, Debug)]
pub struct DesignLatency {
    /// NI design.
    pub placement: NiPlacement,
    /// Measured mean end-to-end cycles.
    pub cycles: f64,
    /// Paper's Table 3 total for the same design.
    pub paper_cycles: u64,
}

/// Table 1: QP-based model (NIedge) vs the NUMA load/store baseline for a
/// single-block remote read at one network hop.
pub fn table1(scale: Scale) -> (DesignLatency, DesignLatency) {
    let ops = scale.latency_ops();
    let mut runs = par_map(vec![NiPlacement::Edge, NiPlacement::Numa], |p| {
        run_sync_latency(cfg_for(p, Topology::Mesh), 64, ops)
    });
    let numa = runs.pop().expect("two runs");
    let edge = runs.pop().expect("two runs");
    (
        DesignLatency {
            placement: NiPlacement::Edge,
            cycles: edge.mean_cycles,
            paper_cycles: paper::table3_edge::TOTAL,
        },
        DesignLatency {
            placement: NiPlacement::Numa,
            cycles: numa.mean_cycles,
            paper_cycles: paper::table3_numa::TOTAL,
        },
    )
}

/// Render Table 1.
pub fn table1_render(scale: Scale) -> String {
    let (edge, numa) = table1(scale);
    let mut t = Table::new(&[
        "model",
        "measured (cycles)",
        "paper (cycles)",
        "measured overhead",
        "paper overhead",
    ]);
    let oh = (edge.cycles / numa.cycles - 1.0) * 100.0;
    t.row_owned(vec![
        "QP-based (NI_edge)".into(),
        f1(edge.cycles),
        edge.paper_cycles.to_string(),
        pct(oh),
        pct(paper::overheads::EDGE_1HOP_PCT),
    ]);
    t.row_owned(vec![
        "NUMA (load/store)".into(),
        f1(numa.cycles),
        numa.paper_cycles.to_string(),
        "-".into(),
        "-".into(),
    ]);
    t.render()
}

/// Table 3: zero-load latency breakdown for all three NI designs plus the
/// measured NUMA baseline.
pub struct Table3 {
    /// Per-design stage tomography.
    pub breakdowns: Vec<(NiPlacement, StageBreakdown)>,
    /// Measured NUMA end-to-end cycles.
    pub numa_cycles: f64,
}

/// Run Table 3.
pub fn table3(scale: Scale) -> Table3 {
    let ops = scale.latency_ops();
    let breakdowns = par_map(NiPlacement::QP_DESIGNS.to_vec(), |p| {
        (p, stage_breakdown(cfg_for(p, Topology::Mesh), ops))
    });
    let numa = run_sync_latency(cfg_for(NiPlacement::Numa, Topology::Mesh), 64, ops);
    Table3 {
        breakdowns,
        numa_cycles: numa.mean_cycles,
    }
}

/// Render Table 3 with the paper's totals alongside.
pub fn table3_render(scale: Scale) -> String {
    let t3 = table3(scale);
    let mut t = Table::new(&[
        "design",
        "WQ write",
        "WQ read+RGP",
        "to edge",
        "net+remote",
        "RCP+CQ write",
        "CQ read",
        "total",
        "paper total",
        "overhead/NUMA",
        "paper overhead",
    ]);
    for (p, b) in &t3.breakdowns {
        let paper_total = match p {
            NiPlacement::Edge => paper::table3_edge::TOTAL,
            NiPlacement::PerTile => paper::table3_per_tile::TOTAL,
            NiPlacement::Split => paper::table3_split::TOTAL,
            NiPlacement::Numa => paper::table3_numa::TOTAL,
        };
        let paper_oh = match p {
            NiPlacement::Edge => paper::overheads::EDGE_1HOP_PCT,
            NiPlacement::PerTile => paper::overheads::PER_TILE_1HOP_PCT,
            _ => paper::overheads::SPLIT_1HOP_PCT,
        };
        t.row_owned(vec![
            p.name().into(),
            f1(b.wq_write),
            f1(b.wq_read_and_rgp),
            f1(b.fe_to_net),
            f1(b.net_round_trip),
            f1(b.rcp_and_cq_write),
            f1(b.cq_read),
            f1(b.total),
            paper_total.to_string(),
            pct((b.total / t3.numa_cycles - 1.0) * 100.0),
            pct(paper_oh),
        ]);
    }
    t.row_owned(vec![
        "NUMA".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        f1(t3.numa_cycles),
        paper::table3_numa::TOTAL.to_string(),
        "-".into(),
        "-".into(),
    ]);
    t.render()
}

/// One point of the Fig. 5 hop-count projection.
#[derive(Clone, Copy, Debug)]
pub struct HopPoint {
    /// Network hops each way.
    pub hops: u32,
    /// NUMA end-to-end nanoseconds.
    pub numa_ns: f64,
    /// NIsplit end-to-end nanoseconds.
    pub split_ns: f64,
    /// NIedge end-to-end nanoseconds.
    pub edge_ns: f64,
    /// NIsplit overhead over NUMA.
    pub split_pct: f64,
    /// NIedge overhead over NUMA.
    pub edge_pct: f64,
}

/// Fig. 5: project the measured 1-hop breakdowns across 0..=12 hops, the
/// paper's §6.1.2 methodology (add 70 cycles per hop per direction).
pub fn fig5(scale: Scale) -> Vec<HopPoint> {
    let ops = scale.latency_ops();
    let mut runs = par_map(
        vec![NiPlacement::Edge, NiPlacement::Split, NiPlacement::Numa],
        |p| run_sync_latency(cfg_for(p, Topology::Mesh), 64, ops),
    );
    let numa = runs.pop().expect("three runs");
    let split = runs.pop().expect("three runs");
    let edge = runs.pop().expect("three runs");
    let hop_cycles = 70.0;
    let base = 2.0 * hop_cycles; // measured runs used one hop each way
    let to_ns = 0.5;
    (0..=12)
        .map(|h| {
            let extra = 2.0 * hop_cycles * h as f64 - base;
            let e = edge.mean_cycles + extra;
            let s = split.mean_cycles + extra;
            let n = numa.mean_cycles + extra;
            HopPoint {
                hops: h,
                numa_ns: n * to_ns,
                split_ns: s * to_ns,
                edge_ns: e * to_ns,
                split_pct: (s / n - 1.0) * 100.0,
                edge_pct: (e / n - 1.0) * 100.0,
            }
        })
        .collect()
}

/// Render Fig. 5 as a table, with the paper's quoted overheads at 6/12 hops.
pub fn fig5_render(scale: Scale) -> String {
    let pts = fig5(scale);
    let mut t = Table::new(&[
        "hops",
        "NUMA (ns)",
        "NI_split (ns)",
        "NI_edge (ns)",
        "split oh",
        "edge oh",
        "paper split oh",
        "paper edge oh",
    ]);
    for p in &pts {
        let (ps, pe) = match p.hops {
            1 => (
                pct(paper::overheads::SPLIT_1HOP_PCT),
                pct(paper::overheads::EDGE_1HOP_PCT),
            ),
            6 => (
                pct(paper::overheads::SPLIT_6HOP_PCT),
                pct(paper::overheads::EDGE_6HOP_PCT),
            ),
            12 => (
                pct(paper::overheads::SPLIT_12HOP_PCT),
                pct(paper::overheads::EDGE_12HOP_PCT),
            ),
            _ => ("-".into(), "-".into()),
        };
        t.row_owned(vec![
            p.hops.to_string(),
            f1(p.numa_ns),
            f1(p.split_ns),
            f1(p.edge_ns),
            pct(p.split_pct),
            pct(p.edge_pct),
            ps,
            pe,
        ]);
    }
    t.render()
}

/// One latency-vs-size series point (Figs. 6 and 9).
#[derive(Clone, Copy, Debug)]
pub struct SizeLatency {
    /// Transfer size in bytes.
    pub size: u64,
    /// Mean latency (ns) per design, ordered as [edge, split, per-tile].
    pub ns: [f64; 3],
    /// NUMA projection (ns): NIsplit minus the measured QP overhead.
    pub numa_proj_ns: f64,
}

/// Figs. 6/9: synchronous remote-read latency across transfer sizes.
pub fn latency_vs_size(scale: Scale, topology: Topology, sizes: &[u64]) -> Vec<SizeLatency> {
    let ops = scale.latency_ops().min(20);
    let numa64 = run_sync_latency(cfg_for(NiPlacement::Numa, topology), 64, ops);
    // NUMA projection baseline (§6.1.3's method): the QP-interaction
    // overhead is the gap between NIsplit and NUMA on a single-block read;
    // an ideal NUMA machine at any size is NIsplit minus that constant.
    let split64 = run_sync_latency(cfg_for(NiPlacement::Split, topology), 64, ops);
    let qp_overhead64 = (split64.mean_cycles - numa64.mean_cycles).max(0.0);
    let designs = [NiPlacement::Edge, NiPlacement::Split, NiPlacement::PerTile];
    let grid: Vec<(u64, NiPlacement)> = sizes
        .iter()
        .flat_map(|&s| designs.iter().map(move |&p| (s, p)))
        .collect();
    let runs = par_map(grid, |(size, p)| {
        run_sync_latency(cfg_for(p, topology), size, ops)
    });
    let mut out = Vec::new();
    for (si, &size) in sizes.iter().enumerate() {
        let mut ns = [0.0; 3];
        let mut split_cycles = 0.0;
        for (di, _) in designs.iter().enumerate() {
            let r = &runs[si * designs.len() + di];
            ns[di] = r.mean_ns;
            if designs[di] == NiPlacement::Split {
                split_cycles = r.mean_cycles;
            }
        }
        let numa_proj = (split_cycles - qp_overhead64).max(numa64.mean_cycles);
        out.push(SizeLatency {
            size,
            ns,
            numa_proj_ns: numa_proj * 0.5,
        });
    }
    out
}

/// Render Fig. 6 (mesh) or Fig. 9 (NOC-Out).
pub fn latency_vs_size_render(scale: Scale, topology: Topology, sizes: &[u64]) -> String {
    let pts = latency_vs_size(scale, topology, sizes);
    let mut t = Table::new(&[
        "size (B)",
        "NI_edge (ns)",
        "NI_split (ns)",
        "NI_per-tile (ns)",
        "NUMA proj (ns)",
    ]);
    for p in &pts {
        t.row_owned(vec![
            p.size.to_string(),
            f1(p.ns[0]),
            f1(p.ns[1]),
            f1(p.ns[2]),
            f1(p.numa_proj_ns),
        ]);
    }
    t.render()
}

/// One bandwidth-vs-size series point (Figs. 7 and 10).
#[derive(Clone, Copy, Debug)]
pub struct SizeBandwidth {
    /// Transfer size in bytes.
    pub size: u64,
    /// Aggregate application GBps per design [edge, split, per-tile].
    pub gbps: [f64; 3],
    /// Aggregate NOC GBps of the NIsplit run.
    pub split_noc_gbps: f64,
}

/// Figs. 7/10: aggregate application bandwidth, all 64 cores asynchronous.
pub fn bandwidth_vs_size(scale: Scale, topology: Topology, sizes: &[u64]) -> Vec<SizeBandwidth> {
    bandwidth_vs_size_with(scale, topology, RoutingPolicy::CdrNi, sizes)
}

/// As [`bandwidth_vs_size`] with an explicit routing policy (ablation A1).
pub fn bandwidth_vs_size_with(
    scale: Scale,
    topology: Topology,
    routing: RoutingPolicy,
    sizes: &[u64],
) -> Vec<SizeBandwidth> {
    let designs = [NiPlacement::Edge, NiPlacement::Split, NiPlacement::PerTile];
    let grid: Vec<(u64, NiPlacement)> = sizes
        .iter()
        .flat_map(|&s| designs.iter().map(move |&p| (s, p)))
        .collect();
    let runs = par_map(grid, |(size, p)| {
        let mut c = cfg_for(p, topology);
        c.routing = routing;
        run_bandwidth(c, size, scale.bw_window(), scale.bw_max_windows())
    });
    sizes
        .iter()
        .enumerate()
        .map(|(si, &size)| {
            let at = |di: usize| &runs[si * designs.len() + di];
            SizeBandwidth {
                size,
                gbps: [at(0).app_gbps, at(1).app_gbps, at(2).app_gbps],
                split_noc_gbps: at(1).noc_gbps,
            }
        })
        .collect()
}

/// Render Fig. 7 (mesh) or Fig. 10 (NOC-Out).
pub fn bandwidth_vs_size_render(scale: Scale, topology: Topology, sizes: &[u64]) -> String {
    let pts = bandwidth_vs_size(scale, topology, sizes);
    let mut t = Table::new(&[
        "size (B)",
        "NI_edge (GBps)",
        "NI_split (GBps)",
        "NI_per-tile (GBps)",
        "split NOC traffic (GBps)",
    ]);
    for p in &pts {
        t.row_owned(vec![
            p.size.to_string(),
            f1(p.gbps[0]),
            f1(p.gbps[1]),
            f1(p.gbps[2]),
            f1(p.split_noc_gbps),
        ]);
    }
    t.render()
}

/// Routing-policy ablation (§6.2: without CDR, peak bandwidth halves).
pub fn routing_ablation(scale: Scale, size: u64) -> Vec<(RoutingPolicy, f64)> {
    par_map(RoutingPolicy::ALL.to_vec(), |r| {
        let mut c = cfg_for(NiPlacement::Split, Topology::Mesh);
        c.routing = r;
        let b = run_bandwidth(c, size, scale.bw_window(), scale.bw_max_windows());
        (r, b.app_gbps)
    })
}

/// NI-cache Owned-state ablation (§3.4): with the optimization off, every
/// core poll of a dirty CQ block costs a writeback round trip.
pub fn nicache_ablation(scale: Scale) -> (f64, f64) {
    let ops = scale.latency_ops();
    let mut runs = par_map(vec![true, false], |owned| {
        let mut c = cfg_for(NiPlacement::Split, Topology::Mesh);
        c.coherence.ni_owned_state = owned;
        run_sync_latency(c, 64, ops)
    });
    let off = runs.pop().expect("two runs");
    let on = runs.pop().expect("two runs");
    (on.mean_cycles, off.mean_cycles)
}

/// One point of the multi-node rack-scale sweep.
#[derive(Clone, Copy, Debug)]
pub struct RackScalePoint {
    /// Torus dimensions.
    pub dims: (u16, u16, u16),
    /// Node count.
    pub nodes: u32,
    /// Operations completed rack-wide.
    pub completed_ops: u64,
    /// Aggregate NI bandwidth rack-wide, GB/s: each node's RCP deliveries
    /// plus RRPP services (§6.2's per-node definition), summed over nodes.
    /// Note a cross-node transfer is counted at *both* endpoints (the
    /// requester's RCP and the servicer's RRPP), so this reads ~2x a
    /// wire-level payload rate — the per-NI view, comparable across rack
    /// sizes but not directly to a single link's bandwidth.
    pub agg_ni_gbps: f64,
    /// Busiest directed link's peak bandwidth, GB/s.
    pub peak_link_gbps: f64,
    /// Total torus link traversals.
    pub hops: u64,
    /// Mean hops per fabric packet (requests + responses).
    pub mean_hops: f64,
    /// Cycles simulated.
    pub cycles: u64,
    /// Wall-clock milliseconds `Rack::run` took for this point (excluding
    /// rack construction).
    pub wall_ms: f64,
    /// Simulated cycles per wall-clock second — the simulator-throughput
    /// number the perf trajectory tracks.
    pub cycles_per_sec: f64,
    /// Compute-phase worker threads the run used.
    pub threads: usize,
}

fn rack_dims(scale: Scale) -> Vec<(u16, u16, u16)> {
    match scale {
        Scale::Quick => vec![(2, 1, 1), (2, 2, 1), (2, 2, 2)],
        // The paper's rack is the 8x8x8 512-node torus (§1); the full sweep
        // walks up to it.
        Scale::Full => vec![(2, 2, 2), (3, 3, 3), (4, 4, 4), (8, 8, 8)],
    }
}

/// Simulation horizon for one sweep point: the scale's rack horizon, except
/// the 512-node full-scale point which is pinned to a 50k-cycle horizon
/// (long enough for thousands of completed round trips, short enough to
/// finish in minutes at interactive throughput).
fn rack_point_cycles(scale: Scale, dims: (u16, u16, u16)) -> u64 {
    let nodes = u64::from(dims.0) * u64::from(dims.1) * u64::from(dims.2);
    if scale == Scale::Full && nodes >= 512 {
        50_000
    } else {
        scale.rack_cycles()
    }
}

/// The sweep's canonical rack for one dims point, run for `cycles`. Both
/// the summary rows and the per-link detail table come through here, so
/// they always describe the same experiment.
///
/// Chips use the paper's NIedge placement: it is the design the paper
/// scales to the full rack, and its edge-resident frontends make a 512-node
/// fully simulated sweep tractable (per-tile frontends cost ~4x the
/// per-chip tick time for identical fabric behavior).
/// Build (without running) the sweep's canonical rack for one dims point:
/// NIedge chips, four requesting cores per node, 512B async reads. This is
/// the single source of truth for the rack-throughput baseline — the
/// `rack_scale` sweep, its render, and the `rack_bench` example (the
/// `BENCH_rack.json` trajectory) all construct their racks here, so they
/// always measure the same experiment. `threads` is the compute-phase
/// worker count (0 = auto, 1 = serial).
pub fn build_rack_point(dims: (u16, u16, u16), traffic: TrafficPattern, threads: usize) -> Rack {
    let cfg = RackSimConfig {
        torus: Torus3D::new(dims.0, dims.1, dims.2),
        chip: ChipConfig {
            // Four requesting cores per node keeps multi-rack sweeps
            // tractable while still loading every link class.
            active_cores: 4,
            placement: NiPlacement::Edge,
            ..ChipConfig::default()
        },
        traffic,
        threads,
        ..RackSimConfig::default()
    };
    Rack::new(
        cfg,
        Workload::AsyncRead {
            size: 512,
            poll_every: 4,
        },
    )
}

/// Build the *idle-heavy* variant of a rack point: NIedge chips where one
/// core per node runs a stencil-like nearest-neighbour exchange — 2-op
/// bursts of 64B async reads against the [`TrafficPattern::Neighbor`]
/// node, separated by 10,000 declared idle cycles of "compute"
/// ([`Bursty`]) — with the RMC frontends backing their WQ poll loop off to
/// a 512-cycle cadence instead of spinning.
///
/// The shape is deliberate on two counts. Neighbour traffic keeps the
/// arrival spread at one hop, so a node's serving role finishes quickly
/// and the declared idle window is *actually* idle at every rack size
/// (uniform traffic at 512+ nodes smears arrivals across a multi-thousand
/// cycle hop spread, leaving no per-node quiet time at all). And the
/// 10k-cycle think window dwarfs the ~1.5k-cycle burst-plus-drain tail
/// (small 64B payloads keep the landing to one cache block), so most
/// simulated cycles touch no component — the regime the event-driven chip
/// tick's dormant fast path and the rack's merge/collect skips are built
/// for. `tick_mode` selects the chip ticking strategy so benchmarks can
/// measure poll and event head-to-head on a bit-identical workload.
pub fn build_idle_rack_point(dims: (u16, u16, u16), threads: usize, tick_mode: TickMode) -> Rack {
    let mut chip = ChipConfig {
        active_cores: 1,
        placement: NiPlacement::Edge,
        tick_mode,
        ..ChipConfig::default()
    };
    // A zero backoff keeps the frontends' WQ poll loop hot every cycle —
    // and every WQ poll is a real cache/NOC transaction in this simulator —
    // which would pin `dormant_until` to `now` and erase the idle windows
    // the scenario declares. A 512-cycle cadence makes the think windows
    // genuinely quiet (edge placement assigns every row's QPs to its
    // frontend, so all four edge frontends poll regardless of how many
    // cores issue work). The cadence is part of the workload, so it is
    // identical under both tick modes.
    chip.rmc.poll_backoff = 512;
    let cfg = RackSimConfig {
        torus: Torus3D::new(dims.0, dims.1, dims.2),
        chip,
        traffic: TrafficPattern::Neighbor,
        threads,
        ..RackSimConfig::default()
    };
    let scenario = Bursty::new(
        Box::new(
            Synthetic::from_workload(Workload::AsyncRead {
                size: 64,
                poll_every: 2,
            })
            .with_pattern(TrafficPattern::Neighbor),
        ),
        2,
        10_000,
    );
    Rack::with_scenario(cfg, &scenario)
}

fn run_rack_point(dims: (u16, u16, u16), traffic: TrafficPattern, cycles: u64) -> Rack {
    let mut rack = build_rack_point(dims, traffic, 0);
    rack.run(cycles);
    rack
}

fn measure_rack_point(
    dims: (u16, u16, u16),
    traffic: TrafficPattern,
    cycles: u64,
) -> RackScalePoint {
    let torus = Torus3D::new(dims.0, dims.1, dims.2);
    let mut rack = build_rack_point(dims, traffic, 0);
    // Time only the run: cycles/sec is the simulator-throughput trajectory
    // number and must not drift with construction cost.
    let started = crate::report::Stopwatch::start();
    rack.run(cycles);
    let wall_secs = started.secs();
    let freq = Frequency::GHZ2;
    let fs = rack.fabric_stats();
    // Packets that finished their journey (in-flight ones still hold
    // un-attributed hops; negligible over a full run).
    let packets = fs.incoming_generated.get() + fs.responded.get();
    RackScalePoint {
        dims,
        nodes: torus.nodes(),
        completed_ops: rack.completed_ops(),
        agg_ni_gbps: freq
            .gbps_from_bytes_per_cycle(rack.app_payload_bytes() as f64 / cycles as f64),
        peak_link_gbps: rack.peak_link_gbps(),
        hops: rack.hops_traversed(),
        mean_hops: if packets == 0 {
            0.0
        } else {
            rack.hops_traversed() as f64 / packets as f64
        },
        cycles,
        wall_ms: wall_secs * 1e3,
        cycles_per_sec: cycles as f64 / wall_secs,
        threads: rack.worker_count(),
    }
}

/// Multi-node rack-scale sweep: racks of growing torus dimensions — up to
/// the paper's 512-node 8x8x8 at [`Scale::Full`] — every node a fully
/// simulated chip, traffic crossing the fabric hop-by-hop. This is the
/// experiment the paper's single-node methodology (§5) cannot express —
/// cross-node flows, per-link load, and scaling with rack size.
///
/// Points run *sequentially* (each rack parallelizes internally across the
/// compute-phase worker threads), so the per-point wall-clock and
/// cycles/sec numbers are honest single-experiment measurements rather
/// than contended co-runs.
pub fn rack_scale(scale: Scale, traffic: TrafficPattern) -> Vec<RackScalePoint> {
    rack_dims(scale)
        .into_iter()
        .map(|dims| measure_rack_point(dims, traffic, rack_point_cycles(scale, dims)))
        .collect()
}

/// Render the rack-scale sweep, plus a per-directed-link detail table for
/// a canonical 2x2x2 rack (the link-level rerun is capped there so
/// rendering stays cheap even when the sweep itself went to 512 nodes).
pub fn rack_scale_render(scale: Scale) -> String {
    let pts = rack_scale(scale, TrafficPattern::Uniform);
    let mut t = Table::new(&[
        "torus",
        "nodes",
        "ops",
        "agg NI GBps (per-node sum)",
        "peak link (GBps)",
        "hops",
        "mean hops/pkt",
        "sim cycles/s",
        "threads",
    ]);
    for p in &pts {
        t.row_owned(vec![
            format!("{}x{}x{}", p.dims.0, p.dims.1, p.dims.2),
            p.nodes.to_string(),
            p.completed_ops.to_string(),
            f1(p.agg_ni_gbps),
            f1(p.peak_link_gbps),
            p.hops.to_string(),
            f1(p.mean_hops),
            f1(p.cycles_per_sec),
            p.threads.to_string(),
        ]);
    }
    let mut out = t.render();

    // Per-directed-link detail for the largest *quick-sized* rack — the
    // congestion-study raw material. Rerun through the same
    // `run_rack_point` config as the summary rows (determinism makes the
    // rerun bit-identical); capped at 2x2x2 so rendering stays cheap even
    // at full scale.
    let (x, y, z) = (2, 2, 2);
    let rack = run_rack_point(
        (x, y, z),
        TrafficPattern::Uniform,
        rack_point_cycles(scale, (x, y, z)),
    );
    let mut links = rack.link_report();
    links.sort_by(|a, b| b.peak_gbps.total_cmp(&a.peak_gbps));
    let mut lt = Table::new(&["link", "packets", "bytes", "busy cycles", "peak GBps"]);
    for l in links.iter().take(8) {
        lt.row_owned(vec![
            format!("n{} {}", l.node, l.dir),
            l.packets.to_string(),
            l.bytes.to_string(),
            l.busy_cycles.to_string(),
            f1(l.peak_gbps),
        ]);
    }
    out.push_str(&format!("\nbusiest directed links, {x}x{y}x{z} rack:\n"));
    out.push_str(&lt.render());
    out
}

/// One row of the scenario sweep: a built-in [`Scenario`] run on a full
/// multi-node rack.
#[derive(Clone, Debug)]
pub struct ScenarioPoint {
    /// Scenario name.
    pub name: String,
    /// Operations completed rack-wide.
    pub completed_ops: u64,
    /// Aggregate NI bandwidth rack-wide, GB/s (per-node sum, §6.2).
    pub agg_ni_gbps: f64,
    /// Busiest directed link's peak bandwidth, GB/s.
    pub peak_link_gbps: f64,
    /// Per-link load imbalance: busiest link's total bytes over the mean of
    /// all loaded links (1.0 = perfectly balanced; hotspot scenarios are
    /// far above the uniform baseline).
    pub link_skew: f64,
    /// RRPP queueing imbalance: hottest node's mean RRPP service latency
    /// over the rack-wide mean (1.0 = balanced).
    pub rrpp_skew: f64,
    /// Total torus link traversals.
    pub hops: u64,
    /// Cycles simulated.
    pub cycles: u64,
}

/// Busiest-link bytes over the mean bytes of all loaded links (delegates to
/// the fabric's allocation-free accumulator scan).
pub fn link_byte_skew(rack: &Rack) -> f64 {
    rack.link_byte_skew()
}

fn rrpp_latency_skew(rack: &Rack) -> f64 {
    let lats: Vec<f64> = rack
        .rrpp_mean_latencies()
        .into_iter()
        .filter(|&l| l > 0.0)
        .collect();
    if lats.is_empty() {
        return 1.0;
    }
    let max = lats.iter().fold(0.0f64, |a, &b| a.max(b));
    let mean = lats.iter().sum::<f64>() / lats.len() as f64;
    max / mean.max(1.0)
}

/// Run one scenario on the sweep's canonical 8-node rack and measure it.
pub fn run_scenario_point(scenario: &dyn Scenario, cycles: u64) -> ScenarioPoint {
    let cfg = RackSimConfig {
        torus: Torus3D::new(2, 2, 2),
        chip: ChipConfig {
            active_cores: 4,
            ..ChipConfig::default()
        },
        // The scenario sweep already saturates the host via `par_map` over
        // points; nesting the rack's own worker pool inside it would
        // oversubscribe every core and add barrier churn for nothing.
        threads: 1,
        ..RackSimConfig::default()
    };
    let mut rack = Rack::with_scenario(cfg, scenario);
    rack.run(cycles);
    ScenarioPoint {
        name: rack.scenario_name().to_string(),
        completed_ops: rack.completed_ops(),
        agg_ni_gbps: Frequency::GHZ2
            .gbps_from_bytes_per_cycle(rack.app_payload_bytes() as f64 / cycles.max(1) as f64),
        peak_link_gbps: rack.peak_link_gbps(),
        link_skew: link_byte_skew(&rack),
        rrpp_skew: rrpp_latency_skew(&rack),
        hops: rack.hops_traversed(),
        cycles,
    }
}

/// Scenario sweep: every built-in [`Scenario`] on an 8-node (2x2x2) rack of
/// fully simulated chips. The experiment the closed `Workload` enum could
/// not express: application traffic — synthetic streams, Zipf hotspots,
/// key-value GET/PUT mixes, bulk graph fetches — through one trait, with
/// per-link and per-RRPP skew measured against the paper's balanced
/// assumption.
pub fn scenario_sweep(scale: Scale) -> Vec<ScenarioPoint> {
    let cycles = scale.rack_cycles();
    let scenarios = builtin_scenarios();
    par_map(scenarios, move |s| run_scenario_point(s.as_ref(), cycles))
}

/// Render the scenario sweep.
pub fn scenario_sweep_render(scale: Scale) -> String {
    let pts = scenario_sweep(scale);
    let mut t = Table::new(&[
        "scenario",
        "ops",
        "agg NI GBps (per-node sum)",
        "peak link (GBps)",
        "link skew",
        "RRPP skew",
        "hops",
    ]);
    for p in &pts {
        t.row_owned(vec![
            p.name.clone(),
            p.completed_ops.to_string(),
            f1(p.agg_ni_gbps),
            f1(p.peak_link_gbps),
            format!("{:.2}x", p.link_skew),
            format!("{:.2}x", p.rrpp_skew),
            p.hops.to_string(),
        ]);
    }
    t.render()
}

/// One cell of the torus routing-policy sweep: a traffic scenario run to
/// completion on one rack under one [`RoutingKind`].
#[derive(Clone, Debug)]
pub struct RoutingPoint {
    /// Traffic scenario label (`"uniform"`, `"opposite"`, `"zipf"`).
    pub scenario: &'static str,
    /// Torus routing policy.
    pub routing: RoutingKind,
    /// Torus dimensions.
    pub dims: (u16, u16, u16),
    /// Operations the capped job was expected to complete.
    pub expected_ops: u64,
    /// Operations actually completed (can fall short if the horizon hit).
    pub completed_ops: u64,
    /// Cycles until every capped op completed — the job-completion-time
    /// metric (= the horizon when the run timed out).
    pub completion_cycles: u64,
    /// Median end-to-end remote-read latency in cycles (sync + async).
    pub p50_read_cycles: u64,
    /// 99th-percentile end-to-end remote-read latency in cycles.
    pub p99_read_cycles: u64,
    /// Busiest link's total bytes over the mean of all loaded links.
    pub link_skew: f64,
    /// Total torus link traversals.
    pub hops: u64,
}

/// A labeled scenario constructor: grid cells build their own prototypes
/// because scenarios are not `Clone`.
type ScenarioFactory = fn() -> Box<dyn Scenario>;

/// The sweep's traffic axis: uniformly spread asynchronous reads, the
/// antipodal bisection stressor, and the Zipf hotspot — the three points
/// span balanced, adversarial-but-symmetric, and skewed load.
fn routing_scenarios() -> Vec<(&'static str, ScenarioFactory)> {
    fn reads() -> Workload {
        Workload::AsyncRead {
            size: 512,
            poll_every: 4,
        }
    }
    vec![
        ("uniform", || {
            Box::new(Synthetic::from_workload(reads()).with_pattern(TrafficPattern::Uniform))
        }),
        ("opposite", || {
            Box::new(Synthetic::from_workload(reads()).with_pattern(TrafficPattern::Opposite))
        }),
        ("zipf", || Box::<ZipfHotspot>::default()),
    ]
}

/// Per-core op budget of one routing point at this scale.
fn routing_ops_per_core(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 8,
        Scale::Full => 40,
    }
}

/// Run one cell of the routing grid: `scenario` capped at `ops_per_core`
/// ops per core on a `dims` rack routed by `routing`, until the job
/// completes (or `horizon` cycles pass).
pub fn run_routing_point(
    dims: (u16, u16, u16),
    scenario_label: &'static str,
    scenario: Box<dyn Scenario>,
    routing: RoutingKind,
    ops_per_core: u64,
    horizon: u64,
) -> RoutingPoint {
    let active_cores = 2;
    let cfg = RackSimConfig {
        torus: Torus3D::new(dims.0, dims.1, dims.2),
        chip: ChipConfig {
            active_cores,
            ..ChipConfig::default()
        },
        routing,
        // Grid points already saturate the host via `par_map`; nesting the
        // rack's worker pool inside would oversubscribe it.
        threads: 1,
        ..RackSimConfig::default()
    };
    let expected_ops = u64::from(cfg.torus.nodes()) * active_cores as u64 * ops_per_core;
    let capped = Capped::new(scenario, ops_per_core);
    let mut rack = Rack::with_scenario(cfg, &capped);
    // Step in 200-cycle slices so the completion cycle is tight without
    // checking every cycle.
    const SLICE: u64 = 200;
    while rack.completed_ops() < expected_ops && rack.now().0 < horizon {
        rack.run(SLICE.min(horizon - rack.now().0));
    }
    let hist = rack.read_latency_histogram();
    RoutingPoint {
        scenario: scenario_label,
        routing,
        dims,
        expected_ops,
        completed_ops: rack.completed_ops(),
        completion_cycles: rack.now().0,
        p50_read_cycles: hist.percentile(0.50),
        p99_read_cycles: hist.percentile(0.99),
        link_skew: rack.link_byte_skew(),
        hops: rack.hops_traversed(),
    }
}

/// The routing-policy grid at arbitrary torus dimensions:
/// `{uniform, opposite, zipf}` x [`RoutingKind::ALL`], each cell a capped
/// job run to completion. Exposed separately from [`routing_sweep`] so
/// tests can use small racks.
pub fn routing_sweep_at(scale: Scale, dims: (u16, u16, u16)) -> Vec<RoutingPoint> {
    let ops = routing_ops_per_core(scale);
    let horizon = scale.rack_cycles() * 4;
    let grid: Vec<(&'static str, ScenarioFactory, RoutingKind)> = routing_scenarios()
        .into_iter()
        .flat_map(|(label, make)| RoutingKind::ALL.into_iter().map(move |r| (label, make, r)))
        .collect();
    par_map(grid, move |(label, make, routing)| {
        run_routing_point(dims, label, make(), routing, ops, horizon)
    })
}

/// The paper-facing routing sweep (ROADMAP's "adaptive routing under
/// congestion"): dimension-order vs minimal-adaptive vs random-minimal
/// torus routing on a 4x4x4 64-node rack, across balanced, antipodal, and
/// Zipf-skewed traffic. Reports job completion time, the remote-read tail,
/// and per-link byte skew — the axis where congestion-aware routing should
/// buy tail latency and balance without costing the deterministic
/// baseline anything at zero load.
pub fn routing_sweep(scale: Scale) -> Vec<RoutingPoint> {
    routing_sweep_at(scale, (4, 4, 4))
}

/// Render the routing sweep, grouped by scenario, with the DOR-relative
/// skew and p99 deltas that make the comparison legible.
pub fn routing_sweep_render(scale: Scale) -> String {
    routing_points_render(&routing_sweep(scale))
}

/// Render any routing-sweep grid (see [`routing_sweep_render`]).
pub fn routing_points_render(pts: &[RoutingPoint]) -> String {
    let mut t = Table::new(&[
        "scenario",
        "routing",
        "ops",
        "completion (cycles)",
        "p50 read",
        "p99 read",
        "link skew",
        "vs DOR skew",
        "hops",
    ]);
    for p in pts {
        let dor_skew = pts
            .iter()
            .find(|q| q.scenario == p.scenario && q.routing == RoutingKind::DimensionOrder)
            .map(|q| q.link_skew);
        let rel = match dor_skew {
            Some(d) if d > 0.0 && p.routing != RoutingKind::DimensionOrder => {
                format!("{:+.1}%", (p.link_skew / d - 1.0) * 100.0)
            }
            _ => "-".into(),
        };
        t.row_owned(vec![
            p.scenario.into(),
            p.routing.name().into(),
            format!("{}/{}", p.completed_ops, p.expected_ops),
            p.completion_cycles.to_string(),
            p.p50_read_cycles.to_string(),
            p.p99_read_cycles.to_string(),
            format!("{:.2}x", p.link_skew),
            rel,
            p.hops.to_string(),
        ]);
    }
    t.render()
}

/// Which element of the torus one failure-sweep cell kills mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultCase {
    /// Healthy fabric — the baseline every degraded cell is read against.
    None,
    /// Kill the undirected link between the Zipf hot node (node 0) and its
    /// `+x` neighbor: the busiest kill a single link can be under hotspot
    /// traffic, and a routable-around fault (the torus stays connected).
    LinkKill,
    /// Kill node 0 (the Zipf hot node) outright: its traffic — sourced,
    /// relayed, and addressed — is erased, so every op targeting it can
    /// only finish through the ITT's error completion.
    NodeKill,
}

impl FaultCase {
    /// The three cases in sweep order.
    pub const ALL: [FaultCase; 3] = [FaultCase::None, FaultCase::LinkKill, FaultCase::NodeKill];

    /// Stable label for tables and JSON (`"none"`, `"link-kill"`,
    /// `"node-kill"`).
    pub fn label(self) -> &'static str {
        match self {
            FaultCase::None => "none",
            FaultCase::LinkKill => "link-kill",
            FaultCase::NodeKill => "node-kill",
        }
    }

    /// The canonical [`FaultPlan`] of this case on `torus`, firing at
    /// `at_cycle`. The link kill targets node 0's first real neighbor in
    /// dimension order (`+x` on any torus wider than one in x; degenerate
    /// 1-wide dimensions are skipped rather than producing a self-link).
    /// On a 1×1×1 "torus" — a single node with no links — a
    /// [`FaultCase::LinkKill`] degrades to the empty plan (there is
    /// nothing to kill, and a healthy run is the honest result) instead of
    /// panicking.
    pub fn plan(self, torus: Torus3D, at_cycle: u64) -> FaultPlan {
        match self {
            FaultCase::None => FaultPlan::new(),
            FaultCase::LinkKill => {
                match Dir::ALL
                    .iter()
                    .map(|&d| torus.neighbor(0, d))
                    .find(|&n| n != 0)
                {
                    Some(neighbor) => FaultPlan::new().link_down(0, neighbor, at_cycle),
                    None => FaultPlan::new(),
                }
            }
            FaultCase::NodeKill => FaultPlan::new().node_down(0, at_cycle),
        }
    }
}

/// One cell of the failure sweep: a capped job on one rack under one
/// routing policy with one mid-run fault.
#[derive(Clone, Debug)]
pub struct FailurePoint {
    /// Traffic scenario label (`"uniform"`, `"zipf"`).
    pub scenario: &'static str,
    /// Injected fault.
    pub fault: FaultCase,
    /// Torus routing policy.
    pub routing: RoutingKind,
    /// Torus dimensions.
    pub dims: (u16, u16, u16),
    /// Cycle the fault fired at (meaningless for [`FaultCase::None`]).
    pub kill_at: u64,
    /// Operations the capped job was expected to complete.
    pub expected_ops: u64,
    /// Operations that completed — successfully *or* with an error CQ
    /// status. `< expected_ops` means the run hit the horizon with work
    /// still wedged (the DOR-under-link-kill signature when the ITT
    /// watchdog is generous).
    pub completed_ops: u64,
    /// Operations that completed with an error CQ status — the op-level
    /// blast radius.
    pub failed_ops: u64,
    /// Cycles until every capped op completed (= the horizon on timeout).
    pub completion_cycles: u64,
    /// True when every expected op completed within the horizon.
    pub completed_all: bool,
    /// Median end-to-end latency of *successful* remote reads, cycles.
    pub p50_read_cycles: u64,
    /// 99th-percentile latency of successful remote reads, cycles.
    pub p99_read_cycles: u64,
    /// Busiest link's total bytes over the mean of all loaded links.
    pub link_skew: f64,
    /// ITT watchdog expiries rack-wide.
    pub itt_timeouts: u64,
    /// ITT re-sends rack-wide.
    pub itt_retries: u64,
    /// Packets erased by the dead node (fabric-level blast radius).
    pub packets_dropped: u64,
    /// Forward attempts parked at a dead link (stall pressure).
    pub dead_link_stalls: u64,
    /// Non-minimal escape hops `fault-adaptive` actually spent.
    pub escape_hops: u64,
}

/// Failure-sweep knobs at one [`Scale`]: per-core op budget, fault firing
/// cycle, ITT watchdog, and run horizon.
#[derive(Clone, Copy, Debug)]
pub struct FailureParams {
    /// Ops per active core of the capped job.
    pub ops_per_core: u64,
    /// Cycle the fault fires (mid-run: after warmup, before the healthy
    /// job would complete).
    pub kill_at: u64,
    /// [`RmcConfig::itt_timeout`](ni_rmc::RmcConfig::itt_timeout) for
    /// every node — comfortably above the worst healthy round trip so
    /// only genuinely erased traffic trips it.
    pub itt_timeout: u64,
    /// Retry budget per transfer before the error completion.
    pub itt_retries: u32,
    /// Hard cycle cap per cell.
    pub horizon: u64,
}

impl FailureParams {
    /// The sweep's canonical parameters at `scale`.
    pub fn at(scale: Scale) -> FailureParams {
        match scale {
            Scale::Quick => FailureParams {
                ops_per_core: 8,
                kill_at: 800,
                itt_timeout: 4_000,
                itt_retries: 1,
                horizon: 60_000,
            },
            Scale::Full => FailureParams {
                ops_per_core: 24,
                kill_at: 2_500,
                itt_timeout: 8_000,
                itt_retries: 1,
                horizon: 240_000,
            },
        }
    }
}

/// The failure sweep's traffic axis: balanced asynchronous reads and the
/// Zipf hotspot (whose hot node is exactly what the canonical faults hit).
fn failure_scenarios() -> Vec<(&'static str, ScenarioFactory)> {
    vec![
        ("uniform", || {
            Box::new(
                Synthetic::from_workload(Workload::AsyncRead {
                    size: 512,
                    poll_every: 4,
                })
                .with_pattern(TrafficPattern::Uniform),
            )
        }),
        ("zipf", || Box::<ZipfHotspot>::default()),
    ]
}

/// Run one cell of the failure grid: `scenario` capped at
/// `params.ops_per_core` ops per core on a `dims` rack routed by
/// `routing`, with `fault`'s canonical kill firing at `params.kill_at`,
/// until the job completes or `params.horizon` passes.
pub fn run_failure_point(
    dims: (u16, u16, u16),
    scenario_label: &'static str,
    scenario: Box<dyn Scenario>,
    routing: RoutingKind,
    fault: FaultCase,
    params: FailureParams,
) -> FailurePoint {
    let active_cores = 2;
    let torus = Torus3D::new(dims.0, dims.1, dims.2);
    let mut chip = ChipConfig {
        active_cores,
        ..ChipConfig::default()
    };
    // The ITT watchdog is the recovery story for erased traffic; without
    // it a node kill would wedge every op targeting the corpse.
    chip.rmc.itt_timeout = params.itt_timeout;
    chip.rmc.itt_retries = params.itt_retries;
    let cfg = RackSimConfig {
        torus,
        chip,
        routing,
        faults: fault.plan(torus, params.kill_at),
        // Grid cells already saturate the host via `par_map`; nesting the
        // rack's worker pool inside would oversubscribe it.
        threads: 1,
        ..RackSimConfig::default()
    };
    let expected_ops = u64::from(torus.nodes()) * active_cores as u64 * params.ops_per_core;
    let capped = Capped::new(scenario, params.ops_per_core);
    let mut rack = Rack::with_scenario(cfg, &capped);
    const SLICE: u64 = 200;
    while rack.completed_ops() < expected_ops && rack.now().0 < params.horizon {
        rack.run(SLICE.min(params.horizon - rack.now().0));
    }
    let hist = rack.read_latency_histogram();
    let be = rack.backend_stats();
    let fs = rack.fault_stats();
    FailurePoint {
        scenario: scenario_label,
        fault,
        routing,
        dims,
        kill_at: params.kill_at,
        expected_ops,
        completed_ops: rack.completed_ops(),
        failed_ops: rack.failed_ops(),
        completion_cycles: rack.now().0,
        completed_all: rack.completed_ops() >= expected_ops,
        p50_read_cycles: hist.percentile(0.50),
        p99_read_cycles: hist.percentile(0.99),
        link_skew: rack.link_byte_skew(),
        itt_timeouts: be.itt_timeouts.get(),
        itt_retries: be.itt_retries.get(),
        packets_dropped: fs.packets_dropped.get(),
        dead_link_stalls: fs.dead_link_stalls.get(),
        escape_hops: fs.escape_hops.get(),
    }
}

/// The failure grid at arbitrary torus dimensions:
/// `{uniform, zipf}` × `{none, link-kill, node-kill}` ×
/// `{dor, fault-adaptive}`, each cell a capped job run to completion (or
/// the horizon). Exposed separately from [`failure_sweep`] so tests can
/// use small racks.
pub fn failure_sweep_at(scale: Scale, dims: (u16, u16, u16)) -> Vec<FailurePoint> {
    let params = FailureParams::at(scale);
    let routings = [RoutingKind::DimensionOrder, RoutingKind::FaultAdaptive];
    let grid: Vec<(&'static str, ScenarioFactory, FaultCase, RoutingKind)> = failure_scenarios()
        .into_iter()
        .flat_map(|(label, make)| {
            FaultCase::ALL
                .into_iter()
                .flat_map(move |f| routings.into_iter().map(move |r| (label, make, f, r)))
        })
        .collect();
    par_map(grid, move |(label, make, fault, routing)| {
        run_failure_point(dims, label, make(), routing, fault, params)
    })
}

/// The paper-facing failure sweep (ROADMAP's "failure injection"): kill a
/// link or a node of a 4x4x4 64-node rack mid-run and measure the blast
/// radius — job completion, failed-op count, the surviving reads' tail,
/// and link skew — under health-blind dimension-order routing versus
/// [`FaultAdaptive`](ni_fabric::FaultAdaptive). The claims the CI-run
/// `examples/failure_study.rs` asserts come from exactly this grid.
pub fn failure_sweep(scale: Scale) -> Vec<FailurePoint> {
    failure_sweep_at(scale, (4, 4, 4))
}

/// Render the failure sweep grouped by scenario and fault.
pub fn failure_points_render(pts: &[FailurePoint]) -> String {
    let mut t = Table::new(&[
        "scenario",
        "fault",
        "routing",
        "ops",
        "failed",
        "completion (cycles)",
        "p50 ok-read",
        "p99 ok-read",
        "timeouts",
        "retries",
        "dropped",
        "stalls",
        "escapes",
    ]);
    for p in pts {
        t.row_owned(vec![
            p.scenario.into(),
            p.fault.label().into(),
            p.routing.name().into(),
            format!("{}/{}", p.completed_ops, p.expected_ops),
            p.failed_ops.to_string(),
            if p.completed_all {
                p.completion_cycles.to_string()
            } else {
                format!(">{} (horizon)", p.completion_cycles)
            },
            p.p50_read_cycles.to_string(),
            p.p99_read_cycles.to_string(),
            p.itt_timeouts.to_string(),
            p.itt_retries.to_string(),
            p.packets_dropped.to_string(),
            p.dead_link_stalls.to_string(),
            p.escape_hops.to_string(),
        ]);
    }
    t.render()
}

// ---- availability sweep ------------------------------------------------------

/// Placement seed every availability cell derives its [`ReplicaCfg`] from.
const REPLICA_SEED: u64 = 0x5eed_ab1e;

/// Which failure schedule one availability-sweep cell injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AvailFault {
    /// Healthy rack — the baseline throughput/latency reference.
    None,
    /// Kill node 0 outright at `kill_at` and never repair it: the
    /// single-permanent-failure case the zero-lost-reads claim is made on.
    NodeKill,
    /// A rolling fault storm: two waves of one random node kill each,
    /// every kill repaired before the run ends — the churn case where
    /// repair-aware re-balancing (new ops always restart at the primary)
    /// matters.
    Storm,
}

impl AvailFault {
    /// The three cases in sweep order.
    pub const ALL: [AvailFault; 3] = [AvailFault::None, AvailFault::NodeKill, AvailFault::Storm];

    /// Stable label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            AvailFault::None => "none",
            AvailFault::NodeKill => "node-kill",
            AvailFault::Storm => "storm",
        }
    }

    /// This case's canonical [`FaultPlan`] on `torus` under `params`.
    pub fn plan(self, torus: Torus3D, params: FailureParams) -> FaultPlan {
        match self {
            AvailFault::None => FaultPlan::new(),
            AvailFault::NodeKill => FaultPlan::new().node_down(0, params.kill_at),
            AvailFault::Storm => FaultPlan::fault_storm(
                torus,
                REPLICA_SEED,
                2,
                1,
                params.kill_at,
                params.itt_timeout * 4,
                params.itt_timeout * 2,
            ),
        }
    }
}

/// One cell of the availability sweep: a capped job under one replication
/// config (`k`, `w`) and one fault schedule, with WQ replay armed
/// (`replay_budget == k - 1`) and fault-adaptive routing.
#[derive(Clone, Debug)]
pub struct AvailabilityPoint {
    /// Traffic scenario label (`"reads"`, `"writes"`).
    pub scenario: &'static str,
    /// Injected fault schedule.
    pub fault: AvailFault,
    /// Replication degree.
    pub k: u8,
    /// Write quorum.
    pub w: u8,
    /// Torus dimensions.
    pub dims: (u16, u16, u16),
    /// Cycle the first fault fired at.
    pub kill_at: u64,
    /// Operations the capped job was expected to complete.
    pub expected_ops: u64,
    /// Operations that completed (ok or error).
    pub completed_ops: u64,
    /// Operations rack-wide that completed with an error CQ status.
    pub failed_ops: u64,
    /// Remote reads *lost* — error-completed on nodes the fault plan never
    /// killed. Corpse-issued work is excluded on purpose: a dead server's
    /// own in-flight client activity is not user traffic, while a
    /// survivor's failed read is exactly the request loss replication
    /// exists to prevent. The headline claim: `k >= 2` with replay keeps
    /// this at zero under a node kill.
    pub lost_reads: u64,
    /// Error-completed reads on killed nodes (reported for transparency,
    /// not counted as losses).
    pub corpse_failed_reads: u64,
    /// Operations that completed ok through a recovery path (replay or a
    /// quorum that absorbed a dead leg) — the degraded-mode work.
    pub degraded_ops: u64,
    /// WQ replays rack-wide.
    pub replays: u64,
    /// Writes fanned out to a quorum rack-wide.
    pub quorum_writes: u64,
    /// Quorum fan-out legs lost to the watchdog rack-wide.
    pub quorum_leg_failures: u64,
    /// Cycles until every capped op completed (= the horizon on timeout).
    pub completion_cycles: u64,
    /// True when every expected op completed within the horizon.
    pub completed_all: bool,
    /// Recovery time: cycles from the first kill to the last observed
    /// failed/degraded completion — how long the rack stayed visibly
    /// degraded. Zero for the healthy baseline.
    pub recovery_cycles: u64,
    /// Degraded-mode throughput: completed ops per kilocycle.
    pub ops_per_kcycle: f64,
    /// Median latency of healthy (first-try) remote reads, cycles.
    pub p50_read_cycles: u64,
    /// 99th percentile of healthy remote reads, cycles.
    pub p99_read_cycles: u64,
    /// 99th percentile of *degraded* (replayed) remote reads, cycles — the
    /// price of transparent failover, reported apart from the healthy tail.
    pub p99_degraded_read_cycles: u64,
}

/// The availability sweep's traffic axis: a read-only and a write-only
/// uniform job, so read failover and write quorums are each exercised in
/// isolation and attribution stays unambiguous.
fn availability_scenarios() -> Vec<(&'static str, ScenarioFactory)> {
    vec![
        ("reads", || {
            Box::new(
                Synthetic::from_workload(Workload::AsyncRead {
                    size: 512,
                    poll_every: 4,
                })
                .with_pattern(TrafficPattern::Uniform),
            )
        }),
        ("writes", || {
            Box::new(
                Synthetic::from_workload(Workload::AsyncWrite {
                    size: 512,
                    poll_every: 4,
                })
                .with_pattern(TrafficPattern::Uniform),
            )
        }),
    ]
}

/// The sweep's replication axis: no replication (the blast-radius
/// baseline), mirrored pairs completing on one ack, and 3-way replication
/// with a majority write quorum.
pub const AVAIL_KW: [(u8, u8); 3] = [(1, 1), (2, 1), (3, 2)];

/// Run one cell of the availability grid: `scenario` capped at
/// `params.ops_per_core` ops per core on a `dims` rack with `k`-way
/// replication (write quorum `w`, replay budget `k - 1`), under `fault`'s
/// schedule and fault-adaptive routing, until the job completes or the
/// horizon passes.
pub fn run_availability_point(
    dims: (u16, u16, u16),
    scenario_label: &'static str,
    scenario: Box<dyn Scenario>,
    fault: AvailFault,
    k: u8,
    w: u8,
    params: FailureParams,
) -> AvailabilityPoint {
    let active_cores = 2;
    let torus = Torus3D::new(dims.0, dims.1, dims.2);
    let mut chip = ChipConfig {
        active_cores,
        ..ChipConfig::default()
    };
    chip.rmc.itt_timeout = params.itt_timeout;
    chip.rmc.itt_retries = params.itt_retries;
    chip.rmc.replication = ReplicaCfg {
        k,
        w,
        seed: REPLICA_SEED,
    };
    chip.rmc.replay_budget = u32::from(k.saturating_sub(1));
    let plan = fault.plan(torus, params);
    let killed = plan.killed_nodes();
    let cfg = RackSimConfig {
        torus,
        chip,
        routing: RoutingKind::FaultAdaptive,
        faults: plan,
        // Grid cells already saturate the host via `par_map`.
        threads: 1,
        ..RackSimConfig::default()
    };
    let expected_ops = u64::from(torus.nodes()) * active_cores as u64 * params.ops_per_core;
    let capped = Capped::new(scenario, params.ops_per_core);
    let mut rack = Rack::with_scenario(cfg, &capped);
    const SLICE: u64 = 200;
    // Track when the rack last *looked* degraded: the last slice boundary
    // at which a failed or degraded completion landed.
    let mut last_degraded_activity = 0u64;
    let mut seen = (0u64, 0u64);
    while rack.completed_ops() < expected_ops && rack.now().0 < params.horizon {
        rack.run(SLICE.min(params.horizon - rack.now().0));
        let cur = (rack.failed_ops(), rack.degraded_ops());
        if cur != seen {
            seen = cur;
            last_degraded_activity = rack.now().0;
        }
    }
    let (mut lost_reads, mut corpse_failed_reads) = (0u64, 0u64);
    for (node, c) in rack.chips().iter().enumerate() {
        if killed.contains(&(node as u32)) {
            corpse_failed_reads += c.failed_reads();
        } else {
            lost_reads += c.failed_reads();
        }
    }
    let hist = rack.read_latency_histogram();
    let dhist = rack.degraded_read_latency_histogram();
    let be = rack.backend_stats();
    let completion_cycles = rack.now().0;
    AvailabilityPoint {
        scenario: scenario_label,
        fault,
        k,
        w,
        dims,
        kill_at: params.kill_at,
        expected_ops,
        completed_ops: rack.completed_ops(),
        failed_ops: rack.failed_ops(),
        lost_reads,
        corpse_failed_reads,
        degraded_ops: rack.degraded_ops(),
        replays: be.replays.get(),
        quorum_writes: be.quorum_writes.get(),
        quorum_leg_failures: be.quorum_leg_failures.get(),
        completion_cycles,
        completed_all: rack.completed_ops() >= expected_ops,
        recovery_cycles: last_degraded_activity.saturating_sub(params.kill_at),
        ops_per_kcycle: if completion_cycles == 0 {
            0.0
        } else {
            rack.completed_ops() as f64 * 1000.0 / completion_cycles as f64
        },
        p50_read_cycles: hist.percentile(0.50),
        p99_read_cycles: hist.percentile(0.99),
        p99_degraded_read_cycles: dhist.percentile(0.99),
    }
}

/// The availability grid at arbitrary torus dimensions:
/// `{reads, writes}` × `{(k,w)}` × `{none, node-kill, storm}`, every cell
/// under fault-adaptive routing with replay armed. Exposed separately from
/// [`availability_sweep`] so tests can use small racks.
pub fn availability_sweep_at(scale: Scale, dims: (u16, u16, u16)) -> Vec<AvailabilityPoint> {
    let params = FailureParams::at(scale);
    let grid: Vec<(&'static str, ScenarioFactory, (u8, u8), AvailFault)> = availability_scenarios()
        .into_iter()
        .flat_map(|(label, make)| {
            AVAIL_KW.into_iter().flat_map(move |kw| {
                AvailFault::ALL
                    .into_iter()
                    .map(move |f| (label, make, kw, f))
            })
        })
        .collect();
    par_map(grid, move |(label, make, (k, w), fault)| {
        run_availability_point(dims, label, make(), fault, k, w, params)
    })
}

/// The paper-facing availability study (ROADMAP's "transparent recovery"):
/// on a 4×4×4 64-node rack, sweep replication degree and write quorum
/// against mid-run node kills and fault storms, and report requests lost,
/// degraded-mode throughput, replay counts, and recovery time. The claims
/// the CI-run `examples/availability_study.rs` asserts — above all "a node
/// kill at `k >= 2` loses zero reads" — come from exactly this grid.
pub fn availability_sweep(scale: Scale) -> Vec<AvailabilityPoint> {
    availability_sweep_at(scale, (4, 4, 4))
}

/// Render the availability sweep grouped by scenario, replication, fault.
pub fn availability_points_render(pts: &[AvailabilityPoint]) -> String {
    let mut t = Table::new(&[
        "scenario",
        "k/w",
        "fault",
        "ops",
        "lost reads",
        "degraded",
        "replays",
        "quorum legs lost",
        "recovery (cycles)",
        "ops/kcycle",
        "p99 ok-read",
        "p99 degraded",
    ]);
    for p in pts {
        t.row_owned(vec![
            p.scenario.into(),
            format!("{}/{}", p.k, p.w),
            p.fault.label().into(),
            format!("{}/{}", p.completed_ops, p.expected_ops),
            p.lost_reads.to_string(),
            p.degraded_ops.to_string(),
            p.replays.to_string(),
            p.quorum_leg_failures.to_string(),
            p.recovery_cycles.to_string(),
            f1(p.ops_per_kcycle),
            p.p99_read_cycles.to_string(),
            p.p99_degraded_read_cycles.to_string(),
        ]);
    }
    t.render()
}

/// Tenant tag of the latency-sensitive closed-loop KV tenant in the
/// serving sweep (tag 0 is reserved for idle filler cores).
pub const TENANT_KV: u8 = 1;

/// Tenant tag of the throughput-oriented bulk graph tenant.
pub const TENANT_BULK: u8 = 2;

/// Closed-loop window of the KV tenant: outstanding requests per core.
pub const SERVING_WINDOW: u64 = 4;

/// Mean think-time parameter of the KV tenant at peak load; think times
/// are drawn uniformly from `[1, 2·think]` per op.
pub const SERVING_THINK: u64 = 64;

/// Remote service time the serving RRPP "computes" per KV GET block
/// before replying — what makes the GETs two-sided request–response ops.
pub const SERVING_KV_SERVICE: u64 = 150;

/// Human label for a serving-sweep tenant tag.
pub fn tenant_label(tag: u8) -> &'static str {
    match tag {
        TENANT_KV => "kv",
        TENANT_BULK => "bulk",
        _ => "other",
    }
}

/// The latency-sensitive tenant: a closed-loop Zipf KV front end whose
/// GETs are two-sided RPCs ([`SERVING_KV_SERVICE`] cycles of remote
/// compute per block), [`SERVING_WINDOW`] outstanding per core, seeded
/// think times around `think`.
fn serving_kv(think: u64) -> Box<dyn Scenario> {
    Box::new(ClosedLoop::new(
        Box::new(KvStore::default().with_service(SERVING_KV_SERVICE)),
        SERVING_WINDOW,
        think,
    ))
}

/// The bulk tenant: open-loop graph-shard adjacency fetches — large
/// payloads that keep the shared NI and fabric busy.
fn serving_bulk() -> Box<dyn Scenario> {
    Box::new(GraphShard::default())
}

/// Idle filler occupying a tenant slot so solo runs place the live
/// tenant on exactly the cores it owns in the shared run.
fn serving_idle() -> Box<dyn Scenario> {
    Box::new(Synthetic::from_workload(Workload::Idle))
}

/// Solo KV baseline: KV on the even cores (as in the shared mix), the
/// bulk tenant's cores idle.
fn serving_mix_solo_kv(think: u64) -> Box<dyn Scenario> {
    Box::new(
        TenantMix::new()
            .with_tenant(TENANT_KV, serving_kv(think), 1)
            .with_tenant(0, serving_idle(), 1),
    )
}

/// Solo bulk baseline: the KV cores idle, bulk on the odd cores.
fn serving_mix_solo_bulk() -> Box<dyn Scenario> {
    Box::new(
        TenantMix::new()
            .with_tenant(0, serving_idle(), 1)
            .with_tenant(TENANT_BULK, serving_bulk(), 1),
    )
}

/// The shared mix: both tenants live, on the same disjoint core sets
/// the solo baselines used, contending for NI pipelines and fabric.
fn serving_mix_shared(think: u64) -> Box<dyn Scenario> {
    Box::new(
        TenantMix::new()
            .with_tenant(TENANT_KV, serving_kv(think), 1)
            .with_tenant(TENANT_BULK, serving_bulk(), 1),
    )
}

/// One tenant's row of a serving point.
#[derive(Clone, Copy, Debug)]
pub struct ServingTenant {
    /// Tenant tag (see [`TENANT_KV`] / [`TENANT_BULK`]).
    pub tag: u8,
    /// Human label for the tag.
    pub label: &'static str,
    /// The tenant's SLO summary over the measured window.
    pub slo: SloSummary,
}

/// One cell of the serving sweep: a tenant mix run on a full rack, with
/// per-tenant SLO observables.
#[derive(Clone, Debug)]
pub struct ServingPoint {
    /// Case label (`"solo-kv"`, `"solo-bulk"`, `"shared"`, `"diurnal"`).
    pub case: &'static str,
    /// Torus dimensions.
    pub dims: (u16, u16, u16),
    /// Cycles simulated.
    pub cycles: u64,
    /// Live tenants (idle filler excluded), in tag order.
    pub tenants: Vec<ServingTenant>,
}

impl ServingPoint {
    /// This point's SLO summary for `tag`, if that tenant was live.
    pub fn tenant(&self, tag: u8) -> Option<&SloSummary> {
        self.tenants.iter().find(|t| t.tag == tag).map(|t| &t.slo)
    }
}

/// Run one serving case: `scenario` on a `dims` rack for `cycles` cycles.
/// With `phase2`, the run is diurnal: the rack starts under `scenario`
/// (off-peak), then [`Rack::reset_scenario`] swaps every core to
/// `phase2`'s generators at half-time (peak) — in-flight ops drain
/// normally across the phase change.
pub fn run_serving_point(
    dims: (u16, u16, u16),
    case: &'static str,
    scenario: &dyn Scenario,
    phase2: Option<&dyn Scenario>,
    cycles: u64,
) -> ServingPoint {
    let cfg = RackSimConfig {
        torus: Torus3D::new(dims.0, dims.1, dims.2),
        chip: ChipConfig {
            // One KV core and one bulk core per chip: every chip hosts
            // both tenants, so they share its NI pipelines, not just links.
            active_cores: 2,
            ..ChipConfig::default()
        },
        // Grid cells already saturate the host via `par_map`.
        threads: 1,
        ..RackSimConfig::default()
    };
    let mut rack = Rack::with_scenario(cfg, scenario);
    match phase2 {
        Some(peak) => {
            rack.run(cycles / 2);
            rack.reset_scenario(peak);
            rack.run(cycles - cycles / 2);
        }
        None => rack.run(cycles),
    }
    let tenants = rack
        .tenant_stats()
        .iter()
        // Idle filler cores report tag 0 with nothing issued; drop them.
        .filter(|(_, a)| a.issued > 0)
        .map(|(tag, a)| ServingTenant {
            tag: *tag,
            label: tenant_label(*tag),
            slo: SloSummary::over(a, cycles),
        })
        .collect();
    ServingPoint {
        case,
        dims,
        cycles,
        tenants,
    }
}

/// The serving grid at arbitrary torus dimensions: solo baselines for
/// each tenant, the shared mix, and a diurnal run that phase-changes
/// from off-peak (8× think time, no bulk) to the peak shared mix at
/// half-time. Exposed separately from [`serving_sweep`] so tests can use
/// small racks.
pub fn serving_sweep_at(scale: Scale, dims: (u16, u16, u16)) -> Vec<ServingPoint> {
    let cycles = scale.rack_cycles();
    type Mk = fn() -> Box<dyn Scenario>;
    let grid: Vec<(&'static str, Mk, Option<Mk>)> = vec![
        ("solo-kv", || serving_mix_solo_kv(SERVING_THINK), None),
        ("solo-bulk", serving_mix_solo_bulk, None),
        ("shared", || serving_mix_shared(SERVING_THINK), None),
        (
            "diurnal",
            || serving_mix_solo_kv(8 * SERVING_THINK),
            Some(|| serving_mix_shared(SERVING_THINK)),
        ),
    ];
    par_map(grid, move |(case, mk, mk2)| {
        let phase2 = mk2.map(|f| f());
        run_serving_point(dims, case, mk().as_ref(), phase2.as_deref(), cycles)
    })
}

/// The paper-facing multi-tenant serving study: on a 4×4×4 64-node rack,
/// a closed-loop KV tenant and a bulk graph tenant on disjoint cores of
/// every chip, measured solo and shared. The claims the CI-run
/// `examples/serving_study.rs` gates on — the KV tenant's p99 SLO under
/// the shared mix, its goodput floor, and measurable cross-tenant
/// interference — come from exactly this grid.
pub fn serving_sweep(scale: Scale) -> Vec<ServingPoint> {
    serving_sweep_at(scale, (4, 4, 4))
}

/// The KV tenant's interference index across a serving sweep: its p99
/// under the `"shared"` mix over its p99 running `"solo-kv"` (NaN when
/// either case is missing or the solo tail is empty).
pub fn serving_interference(pts: &[ServingPoint]) -> f64 {
    let p99 = |case: &str| {
        pts.iter()
            .find(|p| p.case == case)
            .and_then(|p| p.tenant(TENANT_KV))
            .map_or(0, |s| s.p99)
    };
    interference_index(p99("shared"), p99("solo-kv"))
}

/// Render the serving sweep: one row per (case, tenant), plus the KV
/// interference index.
pub fn serving_points_render(pts: &[ServingPoint]) -> String {
    let mut t = Table::new(&[
        "case",
        "tenant",
        "offered/kcyc",
        "achieved/kcyc",
        "goodput B/kcyc",
        "p50",
        "p99",
        "p999",
        "fail",
    ]);
    for p in pts {
        for ten in &p.tenants {
            t.row_owned(vec![
                p.case.into(),
                ten.label.into(),
                f1(ten.slo.offered_per_kcycle),
                f1(ten.slo.achieved_per_kcycle),
                f1(ten.slo.goodput_bytes_per_kcycle),
                ten.slo.p50.to_string(),
                ten.slo.p99.to_string(),
                ten.slo.p999.to_string(),
                pct(100.0 * ten.slo.failure_rate),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nkv interference index (shared p99 / solo p99): {:.2}x\n",
        serving_interference(pts)
    ));
    out
}

/// The default size sweep of the paper's latency figures (64B to 16KB).
pub const LATENCY_SIZES: [u64; 9] = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];

/// The default size sweep of the paper's bandwidth figures (64B to 8KB).
pub const BANDWIDTH_SIZES: [u64; 8] = [64, 128, 256, 512, 1024, 2048, 4096, 8192];
