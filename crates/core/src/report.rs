//! Plain-text table formatting for the benchmark harness.

use std::fmt::Write as _;

/// A simple fixed-width table printer.
///
/// ```
/// use rackni::report::Table;
/// let mut t = Table::new(&["design", "cycles"]);
/// t.row(&["NI_split", "447"]);
/// let s = t.render();
/// assert!(s.contains("NI_split"));
/// ```
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    ///
    /// # Panics
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Append a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}  ", c, width = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(&mut out, "{}  ", "-".repeat(*w));
            let _ = i;
        }
        out.push('\n');
        for r in &self.rows {
            fmt_row(&mut out, r);
        }
        out
    }
}

/// Format a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Wall-clock stopwatch for *reporting* simulator throughput.
///
/// This is the single sanctioned wall-clock reading point in the
/// experiment harness. Simulation results must never depend on host time
/// (the determinism linter's `wall-clock` rule enforces that), but the
/// bench reports publish wall-ms and cycles/sec trajectory numbers, which
/// do. Keeping the `Instant` behind this type makes the boundary a single
/// greppable site instead of ad-hoc `Instant::now()` calls.
// lint: file-allow(wall-clock) — Stopwatch is the sanctioned reporting
// boundary; measured time feeds reports only, never simulation state.
#[derive(Debug)]
pub struct Stopwatch {
    started: std::time::Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: std::time::Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`], clamped away from zero
    /// so callers may divide by it.
    pub fn secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64().max(1e-9)
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    pub fn millis(&self) -> f64 {
        self.secs() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(&["xxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     bbbb"));
        assert!(lines[2].starts_with("xxxx  y"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a"]);
        t.row(&["1", "2"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(pct(79.66), "79.7%");
    }
}
