//! The paper's published numbers, kept here so every benchmark can print
//! paper-vs-measured side by side (EXPERIMENTS.md records the comparison).

/// Table 1 / Table 3, NIedge (QP-based model), 2 GHz cycles.
pub mod table3_edge {
    /// WQ write software overhead (A1).
    pub const WQ_WRITE: u64 = 104;
    /// WQ read and RGP processing (A2).
    pub const WQ_READ_RGP: u64 = 95;
    /// One intra-rack network hop (A3/A5).
    pub const NET_HOP: u64 = 70;
    /// RRPP servicing (A4).
    pub const RRPP: u64 = 208;
    /// RCP processing and CQ entry write (A6).
    pub const RCP_CQ_WRITE: u64 = 79;
    /// CQ read software overhead (A7).
    pub const CQ_READ: u64 = 84;
    /// End-to-end total.
    pub const TOTAL: u64 = 710;
}

/// Table 3, NIper-tile, 2 GHz cycles.
pub mod table3_per_tile {
    /// WQ write software overhead.
    pub const WQ_WRITE: u64 = 13;
    /// WQ entry transfer (L1 back side to NI cache).
    pub const WQ_TRANSFER: u64 = 5;
    /// RGP processing.
    pub const RGP: u64 = 7;
    /// Transfer request to chip edge.
    pub const TO_EDGE: u64 = 23;
    /// RRPP servicing.
    pub const RRPP: u64 = 208;
    /// Transfer reply to RCP.
    pub const FROM_EDGE: u64 = 23;
    /// RCP processing.
    pub const RCP: u64 = 11;
    /// CQ entry transfer.
    pub const CQ_TRANSFER: u64 = 5;
    /// CQ read software overhead.
    pub const CQ_READ: u64 = 10;
    /// End-to-end total.
    pub const TOTAL: u64 = 445;
}

/// Table 3, NIsplit, 2 GHz cycles.
pub mod table3_split {
    /// WQ write software overhead.
    pub const WQ_WRITE: u64 = 13;
    /// WQ entry transfer.
    pub const WQ_TRANSFER: u64 = 5;
    /// RGP frontend processing.
    pub const RGP_FE: u64 = 4;
    /// Transfer request to RGP backend.
    pub const FE_TO_BE: u64 = 23;
    /// RGP backend processing.
    pub const RGP_BE: u64 = 4;
    /// RRPP servicing.
    pub const RRPP: u64 = 208;
    /// RCP backend processing.
    pub const RCP_BE: u64 = 4;
    /// Transfer reply to RCP frontend.
    pub const BE_TO_FE: u64 = 23;
    /// RCP frontend processing.
    pub const RCP_FE: u64 = 8;
    /// CQ entry transfer.
    pub const CQ_TRANSFER: u64 = 5;
    /// CQ read software overhead.
    pub const CQ_READ: u64 = 10;
    /// End-to-end total.
    pub const TOTAL: u64 = 447;
}

/// Table 3, idealized NUMA projection, 2 GHz cycles.
pub mod table3_numa {
    /// Remote read issuing (single load).
    pub const ISSUE: u64 = 1;
    /// Transfer request to chip edge.
    pub const TO_EDGE: u64 = 23;
    /// RRPP-equivalent remote memory read.
    pub const SERVICE: u64 = 208;
    /// Transfer reply to the requesting core.
    pub const FROM_EDGE: u64 = 23;
    /// End-to-end total (1 network hop each way at 70 cycles).
    pub const TOTAL: u64 = 395;
}

/// Headline latency overheads over NUMA (§1, §6.1).
pub mod overheads {
    /// NIedge over NUMA at one hop (Table 3).
    pub const EDGE_1HOP_PCT: f64 = 79.7;
    /// NIper-tile over NUMA at one hop.
    pub const PER_TILE_1HOP_PCT: f64 = 12.7;
    /// NIsplit over NUMA at one hop.
    pub const SPLIT_1HOP_PCT: f64 = 13.2;
    /// NIedge over NUMA at six hops (Fig. 5).
    pub const EDGE_6HOP_PCT: f64 = 28.6;
    /// NIsplit over NUMA at six hops (Fig. 5).
    pub const SPLIT_6HOP_PCT: f64 = 4.7;
    /// NIedge over NUMA at twelve hops.
    pub const EDGE_12HOP_PCT: f64 = 16.2;
    /// NIsplit over NUMA at twelve hops.
    pub const SPLIT_12HOP_PCT: f64 = 2.6;
}

/// Bandwidth results (§6.2, Fig. 7).
pub mod bandwidth {
    /// Peak aggregate application bandwidth of NIedge/NIsplit (GBps).
    pub const PEAK_APP_GBPS: f64 = 214.0;
    /// Peak per-direction application bandwidth (GBps).
    pub const PEAK_PER_DIR_GBPS: f64 = 107.0;
    /// Aggregate NOC traffic at peak (GBps).
    pub const NOC_AGGREGATE_GBPS: f64 = 594.0;
    /// Bidirectional mesh bisection bandwidth (GBps).
    pub const BISECTION_GBPS: f64 = 512.0;
    /// NIper-tile peak relative to NIedge at 8KB transfers.
    pub const PER_TILE_FRACTION_AT_8K: f64 = 0.25;
    /// Peak without CDR ("less than half, ~100GBps").
    pub const NO_CDR_PEAK_GBPS: f64 = 100.0;
    /// NOC traffic amplification over application bandwidth.
    pub const TRAFFIC_AMPLIFICATION: f64 = 2.7;
}

/// Rack-level parameters (§1, §5, §6.1.2).
pub mod rack {
    /// Nodes in the evaluated rack.
    pub const NODES: u32 = 512;
    /// Average hop count of the 8x8x8 torus.
    pub const AVG_HOPS: u32 = 6;
    /// Maximum hop count (diameter).
    pub const MAX_HOPS: u32 = 12;
    /// Per-hop latency in nanoseconds.
    pub const HOP_NS: f64 = 35.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_totals_are_internally_consistent() {
        assert_eq!(
            table3_edge::WQ_WRITE
                + table3_edge::WQ_READ_RGP
                + 2 * table3_edge::NET_HOP
                + table3_edge::RRPP
                + table3_edge::RCP_CQ_WRITE
                + table3_edge::CQ_READ,
            table3_edge::TOTAL
        );
        assert_eq!(
            table3_per_tile::WQ_WRITE
                + table3_per_tile::WQ_TRANSFER
                + table3_per_tile::RGP
                + table3_per_tile::TO_EDGE
                + 2 * 70
                + table3_per_tile::RRPP
                + table3_per_tile::FROM_EDGE
                + table3_per_tile::RCP
                + table3_per_tile::CQ_TRANSFER
                + table3_per_tile::CQ_READ,
            table3_per_tile::TOTAL
        );
        assert_eq!(
            table3_split::WQ_WRITE
                + table3_split::WQ_TRANSFER
                + table3_split::RGP_FE
                + table3_split::FE_TO_BE
                + table3_split::RGP_BE
                + 2 * 70
                + table3_split::RRPP
                + table3_split::RCP_BE
                + table3_split::BE_TO_FE
                + table3_split::RCP_FE
                + table3_split::CQ_TRANSFER
                + table3_split::CQ_READ,
            table3_split::TOTAL
        );
        assert_eq!(
            table3_numa::ISSUE
                + table3_numa::TO_EDGE
                + 2 * 70
                + table3_numa::SERVICE
                + table3_numa::FROM_EDGE,
            table3_numa::TOTAL
        );
    }

    #[test]
    fn overhead_percentages_match_totals() {
        let over = |t: u64| (t as f64 / table3_numa::TOTAL as f64 - 1.0) * 100.0;
        assert!((over(table3_edge::TOTAL) - overheads::EDGE_1HOP_PCT).abs() < 0.1);
        assert!((over(table3_per_tile::TOTAL) - overheads::PER_TILE_1HOP_PCT).abs() < 0.1);
        assert!((over(table3_split::TOTAL) - overheads::SPLIT_1HOP_PCT).abs() < 0.1);
    }
}
