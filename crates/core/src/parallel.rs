//! Bounded parallel execution of independent simulations.
//!
//! The implementation lives in [`ni_engine::parallel`] so lower layers (the
//! multi-node rack driver in `ni_soc`) can share it; this module re-exports
//! it under the crate's historical path.
//!
//! ```
//! let doubled = rackni::parallel::par_map(vec![1, 2, 3], |x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```

pub use ni_engine::parallel::{default_threads, par_map, par_map_threads};
