//! # rackni — manycore network interfaces for in-memory rack-scale computing
//!
//! A from-scratch, cycle-level reproduction of Daglis et al., *Manycore
//! Network Interfaces for In-Memory Rack-Scale Computing* (ISCA 2015): the
//! NIedge / NIper-tile / NIsplit design space for integrating soNUMA-style
//! Remote Memory Controllers into 64-core tiled SoCs.
//!
//! ## Quickstart
//!
//! ```
//! use rackni::prelude::*;
//!
//! // One synchronous 64B remote read on the NIsplit design, 1 network hop.
//! let cfg = ChipConfig::default();
//! let r = run_sync_latency(cfg, 64, 3);
//! assert!(r.mean_cycles > 0.0);
//! ```
//!
//! ## Layers
//!
//! * [`ni_engine`] — simulation kernel (cycles, queues, statistics).
//! * [`ni_noc`] — mesh and NOC-Out interconnects, CDR routing variants.
//! * [`ni_coherence`] — directory MESI with the paper's NI-cache integration.
//! * [`ni_mem`] — memory controllers and the physical address space.
//! * [`ni_qp`] — soNUMA queue pairs.
//! * [`ni_rmc`] — RGP/RCP/RRPP pipelines and the frontend/backend split.
//! * [`ni_fabric`] — 3D-torus rack and the rate-matching remote emulator.
//! * [`ni_soc`] — the assembled node and microbenchmark drivers.
//! * [`experiments`] — one entry point per table/figure of the paper.
//! * [`paper`] — the published numbers, for side-by-side comparison.

pub mod experiments;
pub mod paper;
pub mod parallel;
pub mod report;

pub use ni_coherence;
pub use ni_engine;
pub use ni_fabric;
pub use ni_mem;
pub use ni_metrics;
pub use ni_noc;
pub use ni_qp;
pub use ni_rmc;
pub use ni_soc;

/// Convenience re-exports for typical use.
pub mod prelude {
    pub use ni_engine::{Cycle, Frequency};
    pub use ni_fabric::{
        Fabric, FaultPlan, ReplicaCfg, RoutingKind, Torus3D, TorusFabric, TorusFabricConfig,
    };
    // `RoutingPolicy` here is the *on-chip* CDR routing enum; the rack-level
    // torus routing trait is `ni_fabric::RoutingPolicy` (named by
    // `RoutingKind` in configs).
    pub use ni_metrics::{interference_index, SloSummary, TenantAccum, TenantStats};
    pub use ni_noc::RoutingPolicy;
    pub use ni_rmc::NiPlacement;
    pub use ni_soc::{
        builtin_scenarios, run_bandwidth, run_chip_scenario, run_sync_latency, BandwidthResult,
        Chip, ChipConfig, ClosedLoop, GraphShard, KvStore, LatencyResult, LinkReportFormat, Op,
        OpCtx, Rack, RackSimConfig, Scenario, ScenarioRunResult, Synthetic, TenantMix, TenantSpec,
        Topology, TrafficPattern, Workload, Zipf, ZipfHotspot,
    };
}
