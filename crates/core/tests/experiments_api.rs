//! Tests of the experiment layer itself: each table/figure function must
//! produce structurally valid, paper-shaped output at quick scale.

use rackni::experiments::{self, fig5, latency_vs_size, nicache_ablation, table1, table3, Scale};
use rackni::ni_rmc::NiPlacement;
use rackni::ni_soc::Topology;

#[test]
fn table1_shows_the_qp_tax() {
    let (edge, numa) = table1(Scale::Quick);
    assert_eq!(edge.placement, NiPlacement::Edge);
    assert_eq!(numa.placement, NiPlacement::Numa);
    assert!(
        edge.cycles > numa.cycles * 1.4,
        "{} vs {}",
        edge.cycles,
        numa.cycles
    );
    assert_eq!(edge.paper_cycles, 710);
    assert_eq!(numa.paper_cycles, 395);
    let render = experiments::table1_render(Scale::Quick);
    assert!(render.contains("QP-based (NI_edge)"));
    assert!(render.contains("710"));
}

#[test]
fn table3_breakdowns_sum_to_totals() {
    let t3 = table3(Scale::Quick);
    assert_eq!(t3.breakdowns.len(), 3);
    for (p, b) in &t3.breakdowns {
        let sum = b.wq_write
            + b.wq_read_and_rgp
            + b.fe_to_net
            + b.net_round_trip
            + b.rcp_and_cq_write
            + b.cq_read;
        assert!(
            (sum - b.total).abs() < 2.0,
            "{p:?}: stages {sum} vs total {}",
            b.total
        );
        assert!(b.total > t3.numa_cycles, "{p:?} cannot beat the NUMA floor");
    }
    // The paper's key structural finding: NIedge's WQ-interaction stages
    // dominate its gap over the split design.
    let edge = &t3
        .breakdowns
        .iter()
        .find(|(p, _)| *p == NiPlacement::Edge)
        .expect("edge")
        .1;
    let split = &t3
        .breakdowns
        .iter()
        .find(|(p, _)| *p == NiPlacement::Split)
        .expect("split")
        .1;
    assert!(
        edge.wq_write + edge.wq_read_and_rgp > split.wq_write + split.wq_read_and_rgp + 100.0,
        "edge QP interaction must dominate"
    );
}

#[test]
fn fig5_overheads_shrink_with_hop_count() {
    let pts = fig5(Scale::Quick);
    assert_eq!(pts.len(), 13, "0..=12 hops");
    for w in pts.windows(2) {
        assert!(w[1].numa_ns > w[0].numa_ns, "latency grows with hops");
        assert!(
            w[1].edge_pct <= w[0].edge_pct + 1e-9,
            "edge overhead must shrink as hops amortize it"
        );
        assert!(w[1].split_pct <= w[0].split_pct + 1e-9);
    }
    // Paper (§6.1.2): at 6 hops edge ~28.6%, split ~4.7%; shapes must hold
    // loosely — edge well above split, both far below their 1-hop values.
    let p6 = &pts[6];
    assert!(
        p6.edge_pct > 2.0 * p6.split_pct,
        "{} vs {}",
        p6.edge_pct,
        p6.split_pct
    );
    let p1 = &pts[1];
    assert!(p1.edge_pct > p6.edge_pct);
}

#[test]
fn fig6_pertile_loses_at_large_transfers() {
    let pts = latency_vs_size(Scale::Quick, Topology::Mesh, &[64, 16384]);
    let small = &pts[0];
    let big = &pts[1];
    // [edge, split, per-tile]
    assert!(
        small.ns[2] <= small.ns[1] * 1.05,
        "per-tile wins small transfers"
    );
    assert!(small.ns[0] > small.ns[1], "edge loses small transfers");
    assert!(
        big.ns[2] > big.ns[1],
        "per-tile unroll queueing must show at 16KB: {} vs {}",
        big.ns[2],
        big.ns[1]
    );
    assert!(
        big.numa_proj_ns < big.ns[1],
        "projection subtracts QP overhead"
    );
    assert!(
        big.numa_proj_ns > small.numa_proj_ns,
        "projection grows with size"
    );
}

#[test]
fn nicache_owned_state_saves_cycles() {
    let (on, off) = nicache_ablation(Scale::Quick);
    assert!(
        off > on,
        "disabling the Owned state must cost latency: on {on}, off {off}"
    );
}

#[test]
fn scenario_sweep_covers_every_builtin() {
    let pts = experiments::scenario_sweep(Scale::Quick);
    let names: Vec<&str> = pts.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        ["synthetic", "zipf-hotspot", "kv-store", "graph-shard"],
        "stable scenario order"
    );
    for p in &pts {
        assert!(p.completed_ops > 0, "{}: rack idle", p.name);
        assert!(p.agg_ni_gbps > 0.0, "{}: no NI traffic", p.name);
        assert!(p.hops > 0, "{}: nothing crossed the fabric", p.name);
        assert!(
            p.link_skew >= 1.0 && p.rrpp_skew >= 1.0,
            "{}: skews are ratios",
            p.name
        );
    }
    // The hotspot scenario must stand out from the synthetic baseline.
    let synth = &pts[0];
    let zipf = &pts[1];
    assert!(
        zipf.link_skew > synth.link_skew,
        "zipf {} vs synthetic {}",
        zipf.link_skew,
        synth.link_skew
    );
    let render = experiments::scenario_sweep_render(Scale::Quick);
    assert!(render.contains("zipf-hotspot") && render.contains("link skew"));
}

#[test]
fn scale_from_env_defaults_to_quick() {
    if std::env::var("RACKNI_SCALE").is_err() {
        assert_eq!(Scale::from_env(), Scale::Quick);
    }
}
