//! Known-bad fixture: the escape hatch misused. Expected findings
//! (Role::SimState): allow-missing-reason on lines 6 and 8 (a reason
//! shorter than the minimum counts as missing), allow-unknown-rule on
//! line 10, and hash-order on line 6 (a rejected allow suppresses nothing).

use std::collections::HashMap; // lint: allow(hash-order)

const T: u64 = 1; // lint: allow(wall-clock) — ok

const U: u64 = 2; // lint: allow(no-such-rule) — a long enough justification
