//! Known-good fixture: real hazards, each carrying a justified allow.
//! Must report ZERO findings at Role::SimState.

// lint: file-allow(ambient-nondeterminism) — fixture demonstrating the
// file-scope hatch; this file's RNG feeds nothing.

use std::collections::HashMap; // lint: allow(hash-order) — keyed access only, never iterated

fn timing() -> u64 {
    // lint: allow(wall-clock) — a standalone annotation covers the next
    // code line; this read feeds a report, not simulation state.
    let t = std::time::Instant::now();
    let _rng = rand::thread_rng();
    t.elapsed().as_secs()
}
