//! Known-good fixture: every line here pattern-matches a rule somewhere a
//! naive grep would fire, but the comment- and string-aware scanner must
//! report ZERO findings at Role::SimState.
//!
//! Comment channel: HashMap, HashSet, Instant, SystemTime, thread_rng,
//! RandomState, rand::random, unsafe, debug_assert!(v.push(1)).

/// Doc comments are comments too: prefer `BTreeMap` over `HashMap`.
fn strings() {
    let s = "Instant::now() and SystemTime inside a plain string";
    let t = "a HashMap<u64, u64> and a HashSet drawn as text";
    let r = r#"thread_rng and RandomState in a raw string"#;
    let f = r##"fenced raw: rand::random() and unsafe { *p } "# inner"##;
    let multi = "a string spanning
        two lines with debug_assert!(v.push(1)) inside";
    let _ = (s, t, r, f, multi);
}

fn char_vs_lifetime<'a>(x: &'a u64) -> &'a u64 {
    // The 'a above must parse as lifetimes, not open char literals that
    // would swallow the rest of the file into a string channel.
    let _quote = '"';
    let _escaped = '\'';
    let _plain = 'h';
    x
}

fn guarded(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees `p` points at a live u64.
    unsafe { *p }
}

fn pure_asserts(a: u64, b: u64) {
    debug_assert!(a <= b, "message text mentioning .push( stays a string");
    debug_assert!(
        a == b || a < b,
        "multi-line invocation with a pure body and a .drain( in the text"
    );
    my_debug_assert_helper(a);
}

/// Identifier-boundary check: contains the substring but is not the macro.
fn my_debug_assert_helper(_: u64) {}
