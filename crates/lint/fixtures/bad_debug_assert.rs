//! Known-bad fixture: mutating calls inside `debug_assert!`.
//! Expected findings (every role): debug-assert-side-effect on lines 6
//! and 7 (the multi-line invocation is reported at its opening line).

fn check(q: &mut Queue, n: &mut u64) {
    debug_assert!(q.pop().is_some(), "queue must not be empty");
    debug_assert!(
        q.inner.remove(&0).is_none() && {
            *n += 1;
            true
        },
        "multi-line body with a mutator two lines down"
    );
}
