//! Known-bad fixture: `unsafe` without a `// SAFETY:` comment.
//! Expected findings (every role): unguarded-unsafe on line 5.

fn read(p: *const u64) -> u64 {
    unsafe { *p }
}
