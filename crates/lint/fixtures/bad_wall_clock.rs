//! Known-bad fixture: wall-clock reads in simulation state.
//! Expected findings (Role::SimState): wall-clock on lines 5 and 7.

fn measure() -> f64 {
    let started = std::time::Instant::now();
    simulate();
    let _stamp = std::time::SystemTime::now();
    started.elapsed().as_secs_f64()
}
