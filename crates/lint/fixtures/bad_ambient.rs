//! Known-bad fixture: ambient (OS-entropy) nondeterminism.
//! Expected findings (every role): ambient-nondeterminism on lines 5, 6, 8.

fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let x: u64 = rand::random();
    // A hasher seeded from OS entropy, not from the run seed:
    let s = std::collections::hash_map::RandomState::new();
    x
}
