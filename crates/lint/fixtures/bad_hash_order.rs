//! Known-bad fixture: hash-order hazards in simulation state.
//! Expected findings (Role::SimState): hash-order on lines 4, 5, 10.

use std::collections::HashMap;
use std::collections::HashSet;

struct State {
    /// Word-boundary check: this name must NOT fire.
    kind: HashMapLike,
    seen: HashMap<u64, u64>,
}
