//! Deliberately bad: a metrics-style per-tenant aggregation over a
//! HashMap. Tenant maps feed bench JSON and gate assertions, so their
//! iteration order must be deterministic — sim-state rules apply to
//! `crates/metrics` exactly as to the simulation crates.
use std::collections::HashMap;

pub fn render(per_tenant: &HashMap<u8, u64>) -> String {
    let mut out = String::new();
    for (tag, ops) in per_tenant {
        out.push_str(&format!("tenant {tag}: {ops}\n"));
    }
    out
}
