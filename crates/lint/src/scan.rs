//! Line scanner: splits Rust source into per-line *code* and *comment*
//! channels.
//!
//! The rules engine must never fire on a rule name that appears inside a
//! string literal or a comment ("the old HashMap retry order" in a doc
//! comment is history, not a hazard), and the `lint: allow` escape hatch
//! lives *in* comments — so every line is split into the code that remains
//! after comments and literal contents are blanked out, and the comment
//! text collected from it.
//!
//! This is a character scanner, not a parser. It understands exactly the
//! lexical forms that can hide text from (or leak text into) a substring
//! match: line comments, nested block comments, string literals with
//! escapes (including multi-line strings), raw strings with arbitrary `#`
//! fencing, byte strings, and char literals (distinguished from lifetimes
//! by lookahead). Everything else passes through untouched.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScannedLine {
    /// The line with comments removed and string/char-literal *contents*
    /// blanked (delimiters are kept so tokens stay separated).
    pub code: String,
    /// Concatenated text of every comment on the line (line comments,
    /// doc comments, and the in-line slice of block comments).
    pub comment: String,
}

/// Scanner state that survives across newlines.
enum Mode {
    /// Plain code.
    Code,
    /// Inside a (possibly nested) block comment; payload is the depth.
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string; payload is the number of `#` fence characters.
    RawStr(u32),
}

/// Split `src` into per-line code/comment channels.
pub fn scan(src: &str) -> Vec<ScannedLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut mode = Mode::Code;
    let mut i = 0;

    macro_rules! flush_line {
        () => {
            lines.push(ScannedLine {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            flush_line!();
            // A line comment ends at the newline; everything else persists.
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // Line comment: consume to end of line into the
                    // comment channel (the newline itself is handled
                    // above on the next iteration).
                    i += 2;
                    while i < chars.len() && chars[i] != '\n' {
                        comment.push(chars[i]);
                        i += 1;
                    }
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    // Plain (or byte) string start: a `b` prefix needs no
                    // special handling because the quote is what switches
                    // modes, and raw strings were caught one char earlier
                    // at their `r`.
                    mode = Mode::Str;
                    code.push('"');
                    i += 1;
                    continue;
                }
                if (c == 'r' || c == 'b') && !prev_is_ident(&chars, i) {
                    if let Some(adv) = raw_string_open(&chars, i) {
                        mode = Mode::RawStr(adv.hashes);
                        code.push('"');
                        i += adv.len;
                        continue;
                    }
                }
                if c == '\'' {
                    if let Some(adv) = char_literal_len(&chars, i) {
                        // Blank the whole literal, keeping delimiters so
                        // `'a'` can never glue neighboring tokens.
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        i += adv;
                        continue;
                    }
                    // A lifetime or loop label: ordinary code.
                }
                code.push(c);
                i += 1;
            }
            Mode::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                    continue;
                }
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    i += 2;
                    continue;
                }
                comment.push(c);
                i += 1;
            }
            Mode::Str => {
                if c == '\\' {
                    // Skip the escaped character (covers \" and \\; a
                    // multi-char escape like \x41 is fine to step through
                    // one char at a time — none of its tail is a quote).
                    i += 2;
                    continue;
                }
                if c == '"' {
                    mode = Mode::Code;
                    code.push('"');
                    i += 1;
                    continue;
                }
                i += 1;
            }
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    mode = Mode::Code;
                    code.push('"');
                    i += 1 + hashes as usize;
                    continue;
                }
                i += 1;
            }
        }
    }
    flush_line!();
    lines
}

/// True when the char before `i` could continue an identifier — meaning a
/// `r`/`b` at `i` is the tail of a name, not a literal prefix.
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

struct RawOpen {
    /// Characters consumed by the opener (prefix + hashes + quote).
    len: usize,
    /// Number of `#` fence characters.
    hashes: u32,
}

/// Parse a raw-string opener (`r"`, `r#"`, `br##"` …) at `i`; `None` when
/// the chars at `i` are not one.
fn raw_string_open(chars: &[char], i: usize) -> Option<RawOpen> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(RawOpen {
            len: j + 1 - i,
            hashes,
        })
    } else {
        None
    }
}

/// True when the `"` at `i` is followed by `hashes` `#` characters,
/// closing the current raw string.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Length of the char literal starting at the `'` at `i`, or `None` when
/// the quote starts a lifetime/label instead.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        // Escaped char: consume to the next unescaped closing quote.
        Some('\\') => {
            let mut j = i + 2;
            while j < chars.len() {
                match chars[j] {
                    '\\' => j += 2,
                    '\'' => return Some(j + 1 - i),
                    _ => j += 1,
                }
            }
            None
        }
        // Exactly one char then a quote: 'x' (incl. multi-byte chars).
        Some(_) if chars.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_move_to_comment_channel() {
        let l = &scan("let x = 1; // HashMap here\n")[0];
        assert!(!l.code.contains("HashMap"));
        assert!(l.comment.contains("HashMap"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let ls = scan("a /* one /* two */ still */ b\nc /* open\nHashMap\n*/ d\n");
        assert_eq!(
            ls[0].code.split_whitespace().collect::<Vec<_>>(),
            ["a", "b"]
        );
        assert!(ls[2].code.is_empty());
        assert!(ls[2].comment.contains("HashMap"));
        assert!(ls[3].code.contains('d'));
    }

    #[test]
    fn string_contents_are_blanked() {
        let c = code_of("let s = \"HashMap::new()\";\n");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("\"\""));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let c = code_of("let s = \"a\\\"HashMap\"; let t = 1;\n");
        assert!(!c[0].contains("HashMap"));
        assert!(c[0].contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let c = code_of("let s = r#\"Instant \" still in\"#; let u = 2;\n");
        assert!(!c[0].contains("Instant"));
        assert!(c[0].contains("let u = 2;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let c = code_of("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }\n");
        assert!(c[0].contains("<'a>"));
        assert!(c[0].contains("&'a str"));
        // The quote char literal must not have opened a string.
        assert!(c[0].contains("let n ="));
    }

    #[test]
    fn comment_containing_quote_then_code() {
        let ls = scan("x // say \"HashMap\"\nSystemTime y\n");
        assert!(!ls[0].code.contains("HashMap"));
        assert!(ls[1].code.contains("SystemTime"));
    }
}
