//! # ni_lint — workspace determinism linter
//!
//! Every correctness claim this repository makes is a determinism claim:
//! bit-identical fingerprints at any thread count, poll↔event tick
//! equivalence, seed-reproducible fault schedules. This crate enforces the
//! hazard discipline those claims rest on **statically**: a std-only,
//! comment- and string-aware line scanner walks the workspace and flags
//! the nondeterminism classes that have bitten (or could bite) simulation
//! state — hash-order iteration, wall clocks, ambient RNGs, debug-only
//! side effects — plus the hygiene rules that keep the rest auditable.
//!
//! It runs two ways, both gating CI:
//!
//! - as a binary: `cargo run -p ni_lint -- --deny` (add `--format json`
//!   for machine-readable output);
//! - as a test: `crates/lint/tests/workspace.rs` walks the workspace, so
//!   plain `cargo test` fails on any finding.
//!
//! Known-safe sites are justified inline:
//!
//! ```text
//! // lint: allow(hash-order) — keyed access only, never iterated
//! // lint: file-allow(wall-clock) — reporting boundary, cannot reach sim state
//! ```
//!
//! A written reason is mandatory; an allow without one is itself a
//! finding. See `docs/ARCHITECTURE.md` ("Determinism rules") for the rule
//! table and crate-role scoping.

#![warn(missing_docs)]

mod rules;
mod scan;

pub use rules::{lint_source, Finding, Role, Rule, ALLOWABLE};
pub use scan::{scan, ScannedLine};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Result of a workspace lint pass.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, ordered by file path then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Simulation-state crates: their contents can reach a run fingerprint.
/// `metrics` qualifies because per-tenant aggregation output lands in
/// bench JSON and gate assertions — hash-order iteration there would make
/// reports seed-unstable.
const SIM_STATE_CRATES: [&str; 9] = [
    "engine",
    "noc",
    "coherence",
    "mem",
    "metrics",
    "qp",
    "rmc",
    "fabric",
    "soc",
];

/// Directory names never scanned, wherever they appear: build output,
/// the linter's own deliberately-bad fixture corpus, and the vendored
/// offline shims standing in for external crates (external code is not
/// ours to lint).
const SKIP_DIRS: [&str; 3] = ["target", "fixtures", "compat"];

/// Role of a workspace-relative path, or `None` when the file is excluded
/// from scanning.
pub fn role_of(rel: &Path) -> Option<Role> {
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    if comps.iter().any(|c| SKIP_DIRS.contains(c)) {
        return None;
    }
    match comps.as_slice() {
        ["examples", ..] | ["tests", ..] => Some(Role::Harness),
        ["crates", krate, rest @ ..] => {
            // A crate's own tests/ and benches/ are harness code even
            // inside simulation-state crates.
            if rest.iter().any(|c| *c == "tests" || *c == "benches") {
                return Some(Role::Harness);
            }
            if SIM_STATE_CRATES.contains(krate) {
                Some(Role::SimState)
            } else if *krate == "core" {
                Some(Role::Experiments)
            } else {
                Some(Role::Harness)
            }
        }
        _ => Some(Role::Harness),
    }
}

/// True when `rel` is the `lib.rs` of a simulation-state crate (the only
/// files the `missing-docs-header` rule inspects).
pub fn is_sim_lib(rel: &Path) -> bool {
    let comps: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    matches!(
        comps.as_slice(),
        ["crates", krate, "src", "lib.rs"] if SIM_STATE_CRATES.contains(krate)
    )
}

/// Walk up from `start` to the first directory whose `Cargo.toml` declares
/// a `[workspace]`.
pub fn workspace_root_from(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Recursively collect `.rs` files under `dir`, skipping [`SKIP_DIRS`].
/// Paths are sorted so reports (and CI diffs) are deterministic — the
/// linter holds itself to its own rule: `read_dir` order is
/// OS-dependent.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) && !name.starts_with('.') {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`.
///
/// Scans `crates/`, `examples/`, and `tests/`; role scoping and
/// exclusions are decided by [`role_of`].
///
/// # Errors
/// Returns any I/O error encountered while walking or reading files.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    for top in ["crates", "examples", "tests"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    let mut report = LintReport::default();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let Some(role) = role_of(rel) else { continue };
        let src = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        report.findings.extend(lint_source(
            &rel.display().to_string(),
            &src,
            role,
            is_sim_lib(rel),
        ));
    }
    Ok(report)
}

/// Render findings as `file:line: [rule] message` lines.
pub fn render_text(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.file,
            f.line,
            f.rule.name(),
            f.message
        ));
    }
    out.push_str(&format!(
        "ni_lint: {} finding(s) across {} file(s) scanned\n",
        report.findings.len(),
        report.files_scanned
    ));
    out
}

/// Render findings as a machine-readable JSON document (schema
/// `ni-lint/1`).
pub fn render_json(report: &LintReport) -> String {
    fn esc(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                '\n' => "\\n".chars().collect(),
                '\t' => "\\t".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }
    let mut out = String::from("{\n  \"schema\": \"ni-lint/1\",\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&f.file),
            f.line,
            f.rule.name(),
            esc(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"count\": {},\n  \"files_scanned\": {}\n}}\n",
        report.findings.len(),
        report.files_scanned
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_follow_the_documented_table() {
        assert_eq!(
            role_of(Path::new("crates/rmc/src/backend.rs")),
            Some(Role::SimState)
        );
        assert_eq!(
            role_of(Path::new("crates/metrics/src/lib.rs")),
            Some(Role::SimState)
        );
        assert_eq!(
            role_of(Path::new("crates/core/src/experiments.rs")),
            Some(Role::Experiments)
        );
        assert_eq!(
            role_of(Path::new("crates/bench/benches/simperf.rs")),
            Some(Role::Harness)
        );
        assert_eq!(
            role_of(Path::new("crates/rmc/tests/pipelines.rs")),
            Some(Role::Harness)
        );
        assert_eq!(
            role_of(Path::new("tests/rack_scale.rs")),
            Some(Role::Harness)
        );
        assert_eq!(
            role_of(Path::new("examples/rack_bench.rs")),
            Some(Role::Harness)
        );
        assert_eq!(role_of(Path::new("crates/compat/rand/src/lib.rs")), None);
        assert_eq!(
            role_of(Path::new("crates/lint/fixtures/bad_hash_order.rs")),
            None
        );
        assert_eq!(
            role_of(Path::new("crates/lint/src/lib.rs")),
            Some(Role::Harness)
        );
    }

    #[test]
    fn sim_lib_detection() {
        assert!(is_sim_lib(Path::new("crates/soc/src/lib.rs")));
        assert!(is_sim_lib(Path::new("crates/metrics/src/lib.rs")));
        assert!(!is_sim_lib(Path::new("crates/soc/src/chip.rs")));
        assert!(!is_sim_lib(Path::new("crates/core/src/lib.rs")));
        assert!(!is_sim_lib(Path::new("crates/lint/src/lib.rs")));
    }

    #[test]
    fn json_escapes_and_counts() {
        let report = LintReport {
            findings: vec![Finding {
                file: "a\"b.rs".into(),
                line: 3,
                rule: Rule::HashOrder,
                message: "x\ny".into(),
            }],
            files_scanned: 1,
        };
        let j = render_json(&report);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("x\\ny"));
        assert!(j.contains("\"count\": 1"));
    }
}
