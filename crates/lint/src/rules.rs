//! Rule definitions, crate-role scoping, and the per-file check pass.
//!
//! Every rule guards the same invariant from a different angle: **two runs
//! of the same seed must be bit-identical**. Hash-order iteration, wall
//! clocks, ambient RNGs, and debug-only side effects are the ways that
//! invariant has been (or could be) silently broken; `unsafe` and missing
//! `missing_docs` headers are the hygiene rules that keep the rest
//! auditable.

use crate::scan::{scan, ScannedLine};

/// What part of the workspace a file belongs to, deciding which rules
/// apply. See `docs/ARCHITECTURE.md` ("Determinism rules") for the table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Simulation-state crates (`engine`, `noc`, `coherence`, `mem`, `qp`,
    /// `rmc`, `fabric`, `soc`): everything here can reach a fingerprint,
    /// so the full rule set applies.
    SimState,
    /// The experiments layer (`core`): drives simulations and must stay
    /// seed-reproducible, but may *hold* results in any container — only
    /// wall-clock and ambient-RNG hazards apply on top of the common
    /// hygiene rules.
    Experiments,
    /// Harness code (`bench`, `lint`, top-level `examples/` and `tests/`,
    /// and any crate's `tests/`/`benches/` dirs): timing and hash maps are
    /// its job; only the common hygiene rules apply.
    Harness,
}

/// A lint rule. The `allow-*` variants are meta-findings produced by the
/// escape hatch itself and can never be suppressed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rule {
    /// `HashMap`/`HashSet` in simulation state: iteration order varies per
    /// process (each map draws a fresh `RandomState` seed), so any path
    /// from iteration to sim state diverges between same-seed runs.
    HashOrder,
    /// `std::time::{Instant, SystemTime}` outside bench/report timing:
    /// wall-clock readings differ on every run by definition.
    WallClock,
    /// `thread_rng`/`rand::random`/`RandomState`: OS-entropy-seeded
    /// randomness that no simulation seed controls.
    AmbientNondeterminism,
    /// A mutating call inside `debug_assert!`: the mutation happens in the
    /// debug CI leg and not in release, so the two legs simulate
    /// different machines.
    DebugAssertSideEffect,
    /// An `unsafe` keyword with no `// SAFETY:` comment on or directly
    /// above its line.
    UnguardedUnsafe,
    /// A simulation-state crate's `lib.rs` without
    /// `#![warn(missing_docs)]`.
    MissingDocsHeader,
    /// An allow annotation with no written justification.
    AllowMissingReason,
    /// An allow annotation naming a rule that does not exist.
    AllowUnknownRule,
}

/// Rules an allow annotation may name.
pub const ALLOWABLE: [Rule; 6] = [
    Rule::HashOrder,
    Rule::WallClock,
    Rule::AmbientNondeterminism,
    Rule::DebugAssertSideEffect,
    Rule::UnguardedUnsafe,
    Rule::MissingDocsHeader,
];

impl Rule {
    /// The rule's kebab-case name (used in reports and `allow(...)`).
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashOrder => "hash-order",
            Rule::WallClock => "wall-clock",
            Rule::AmbientNondeterminism => "ambient-nondeterminism",
            Rule::DebugAssertSideEffect => "debug-assert-side-effect",
            Rule::UnguardedUnsafe => "unguarded-unsafe",
            Rule::MissingDocsHeader => "missing-docs-header",
            Rule::AllowMissingReason => "allow-missing-reason",
            Rule::AllowUnknownRule => "allow-unknown-rule",
        }
    }

    /// Parse an allowable rule name.
    pub fn from_name(s: &str) -> Option<Rule> {
        ALLOWABLE.into_iter().find(|r| r.name() == s)
    }

    /// Whether the rule applies to files of `role`.
    pub fn applies(self, role: Role) -> bool {
        match self {
            Rule::HashOrder | Rule::MissingDocsHeader => role == Role::SimState,
            Rule::WallClock => matches!(role, Role::SimState | Role::Experiments),
            Rule::AmbientNondeterminism
            | Rule::DebugAssertSideEffect
            | Rule::UnguardedUnsafe
            | Rule::AllowMissingReason
            | Rule::AllowUnknownRule => true,
        }
    }
}

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in (workspace-relative when produced by the
    /// workspace walk).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

/// A parsed line- or file-scope allow annotation.
#[derive(Debug)]
struct Allow {
    /// 0-based line the annotation sits on.
    line: usize,
    rule: Option<Rule>,
    rule_name: String,
    file_scope: bool,
    reason: String,
}

/// Minimum justification length: long enough that `— ok` cannot pass for
/// a reason.
const MIN_REASON: usize = 8;

/// Identifier-boundary substring search: `word` must not be preceded or
/// followed by an identifier character.
fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre = start
            .checked_sub(1)
            .map(|p| bytes[p] as char)
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let post = bytes
            .get(end)
            .map(|&b| b as char)
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !pre && !post {
            return true;
        }
        from = end;
    }
    false
}

/// Calls and operators that mutate state, searched for inside
/// `debug_assert!` bodies. A heuristic list, not an analysis — anything it
/// wrongly flags can carry a justified `lint: allow`.
const MUTATORS: [&str; 20] = [
    ".push(",
    ".push_back(",
    ".push_front(",
    ".push_after(",
    ".push_at(",
    ".pop(",
    ".pop_front(",
    ".pop_back(",
    ".pop_ready(",
    ".insert(",
    ".remove(",
    ".take(",
    ".drain(",
    ".clear(",
    ".incr(",
    ".decr(",
    "+=",
    "-=",
    "*=",
    "/=",
];

/// Parse the allow annotations out of a file's comment channels.
fn parse_allows(lines: &[ScannedLine]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (idx, l) in lines.iter().enumerate() {
        let mut rest = l.comment.as_str();
        while let Some(pos) = rest.find("lint:") {
            rest = rest[pos + "lint:".len()..].trim_start();
            let file_scope = if let Some(r) = rest.strip_prefix("file-allow(") {
                rest = r;
                true
            } else if let Some(r) = rest.strip_prefix("allow(") {
                rest = r;
                false
            } else {
                continue;
            };
            let Some(close) = rest.find(')') else { break };
            let rule_name = rest[..close].trim().to_string();
            rest = &rest[close + 1..];
            // The reason is everything after the closing paren, minus
            // leading separator punctuation (`—`, `–`, `-`, `:`).
            let upto = rest.find("lint:").unwrap_or(rest.len());
            let reason = rest[..upto]
                .trim_start_matches(|c: char| c.is_whitespace() || "—–-:".contains(c))
                .trim()
                .to_string();
            out.push(Allow {
                line: idx,
                rule: Rule::from_name(&rule_name),
                rule_name,
                file_scope,
                reason,
            });
        }
    }
    out
}

/// The line a non-file-scope allow suppresses: its own line when it has
/// code, otherwise the next line that does (a standalone `// lint:
/// allow(...)` comment annotates the statement below it, skipping any
/// further comment-only lines).
fn allow_target(lines: &[ScannedLine], at: usize) -> usize {
    if !lines[at].code.trim().is_empty() {
        return at;
    }
    let mut j = at + 1;
    while j < lines.len() && lines[j].code.trim().is_empty() {
        j += 1;
    }
    j.min(lines.len().saturating_sub(1))
}

/// Lint one file's source text.
///
/// `file` is the name used in findings; `role` decides which rules apply;
/// `is_sim_lib` marks the `lib.rs` of a simulation-state crate (the only
/// place `missing-docs-header` is checked).
pub fn lint_source(file: &str, src: &str, role: Role, is_sim_lib: bool) -> Vec<Finding> {
    let lines = scan(src);
    let allows = parse_allows(&lines);

    let mut findings = Vec::new();
    let mut file_allowed: Vec<Rule> = Vec::new();
    // (line, rule) pairs suppressed by a line-scope allow.
    let mut line_allowed: Vec<(usize, Rule)> = Vec::new();

    for a in &allows {
        let Some(rule) = a.rule else {
            findings.push(Finding {
                file: file.to_string(),
                line: a.line + 1,
                rule: Rule::AllowUnknownRule,
                message: format!(
                    "`lint: allow({})` names no known rule (allowable: {})",
                    a.rule_name,
                    ALLOWABLE.map(Rule::name).join(", ")
                ),
            });
            continue;
        };
        if a.reason.len() < MIN_REASON {
            findings.push(Finding {
                file: file.to_string(),
                line: a.line + 1,
                rule: Rule::AllowMissingReason,
                message: format!(
                    "`lint: allow({})` carries no justification — write why the rule \
                     provably cannot bite here",
                    rule.name()
                ),
            });
            continue;
        }
        if a.file_scope {
            file_allowed.push(rule);
        } else {
            line_allowed.push((allow_target(&lines, a.line), rule));
        }
    }

    let mut push = |line: usize, rule: Rule, message: String| {
        if !rule.applies(role)
            || file_allowed.contains(&rule)
            || line_allowed.contains(&(line, rule))
        {
            return;
        }
        findings.push(Finding {
            file: file.to_string(),
            line: line + 1,
            rule,
            message,
        });
    };

    for (idx, l) in lines.iter().enumerate() {
        let code = l.code.as_str();
        for word in ["HashMap", "HashSet"] {
            if has_word(code, word) {
                push(
                    idx,
                    Rule::HashOrder,
                    format!(
                        "`{word}` in simulation state: iteration order differs per process; \
                         use `BTree{}` or justify with `lint: allow(hash-order)`",
                        &word[4..]
                    ),
                );
            }
        }
        for word in ["Instant", "SystemTime"] {
            if has_word(code, word) {
                push(
                    idx,
                    Rule::WallClock,
                    format!("`{word}` outside bench/report timing: wall clocks cannot reach sim results"),
                );
            }
        }
        for pat in ["thread_rng", "RandomState"] {
            if has_word(code, pat) {
                push(
                    idx,
                    Rule::AmbientNondeterminism,
                    format!(
                        "`{pat}` is OS-entropy-seeded; derive all randomness from the run seed"
                    ),
                );
            }
        }
        if code.contains("rand::random") {
            push(
                idx,
                Rule::AmbientNondeterminism,
                "`rand::random` is thread-RNG-backed; derive all randomness from the run seed"
                    .to_string(),
            );
        }
        if has_word(code, "unsafe") {
            let guarded =
                (idx.saturating_sub(3)..=idx).any(|j| lines[j].comment.contains("SAFETY:"));
            if !guarded {
                push(
                    idx,
                    Rule::UnguardedUnsafe,
                    "`unsafe` without a `// SAFETY:` comment on or directly above this line"
                        .to_string(),
                );
            }
        }
    }

    // debug_assert! bodies may span lines; balance parens over the code
    // channel from each macro invocation.
    for (idx, l) in lines.iter().enumerate() {
        let code = l.code.as_str();
        let mut from = 0;
        while let Some(pos) = code[from..].find("debug_assert") {
            let start = from + pos;
            // Identifier boundary on the left (e.g. not `my_debug_assert`).
            let pre_ident = start
                .checked_sub(1)
                .map(|p| code.as_bytes()[p] as char)
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
            from = start + "debug_assert".len();
            if pre_ident {
                continue;
            }
            if let Some(mutator) = debug_assert_mutator(&lines, idx, start) {
                push(
                    idx,
                    Rule::DebugAssertSideEffect,
                    format!(
                        "`{mutator}` inside `debug_assert!`: the mutation runs in debug \
                         builds only, so debug and release CI legs simulate different machines"
                    ),
                );
            }
        }
    }

    if is_sim_lib
        && !src.contains("#![warn(missing_docs)]")
        && !src.contains("#![deny(missing_docs)]")
    {
        push(
            0,
            Rule::MissingDocsHeader,
            "simulation-state crates must carry `#![warn(missing_docs)]` so every public \
             knob that can change a fingerprint is documented"
                .to_string(),
        );
    }

    findings
}

/// Collect the parenthesized body of a `debug_assert*!` starting on line
/// `line` at column `col` and return the first mutator pattern found in
/// it, if any.
fn debug_assert_mutator(lines: &[ScannedLine], line: usize, col: usize) -> Option<&'static str> {
    let mut body = String::new();
    let mut depth = 0usize;
    let mut opened = false;
    'outer: for (i, l) in lines.iter().enumerate().skip(line) {
        let code = if i == line {
            &l.code[col..]
        } else {
            &l.code[..]
        };
        for c in code.chars() {
            match c {
                '(' => {
                    depth += 1;
                    opened = true;
                }
                ')' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        break 'outer;
                    }
                }
                _ => {}
            }
            if opened {
                body.push(c);
            }
        }
        body.push('\n');
        // Unterminated macro body (mid-file scan artifacts): bail after a
        // generous window rather than swallowing the rest of the file.
        if i > line + 40 {
            break;
        }
    }
    MUTATORS.into_iter().find(|m| body.contains(m))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hash_order_fires_in_sim_state_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            rules_of(&lint_source("x.rs", src, Role::SimState, false)),
            [Rule::HashOrder]
        );
        assert!(lint_source("x.rs", src, Role::Harness, false).is_empty());
        assert!(lint_source("x.rs", src, Role::Experiments, false).is_empty());
    }

    #[test]
    fn words_in_comments_and_strings_do_not_fire() {
        let src = "// the old HashMap order\nlet s = \"Instant\";\n";
        assert!(lint_source("x.rs", src, Role::SimState, false).is_empty());
    }

    #[test]
    fn line_allow_with_reason_suppresses() {
        let src = "// lint: allow(hash-order) — keyed access only, never iterated\n\
                   let m: HashMap<u32, u32> = HashMap::new();\n";
        assert!(lint_source("x.rs", src, Role::SimState, false).is_empty());
    }

    #[test]
    fn allow_without_reason_is_its_own_finding() {
        let src = "let m: HashMap<u32, u32> = HashMap::new(); // lint: allow(hash-order)\n";
        let f = lint_source("x.rs", src, Role::SimState, false);
        assert_eq!(rules_of(&f), [Rule::AllowMissingReason, Rule::HashOrder]);
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// lint: allow(no-such-rule) — because reasons\nlet x = 1;\n";
        let f = lint_source("x.rs", src, Role::SimState, false);
        assert_eq!(rules_of(&f), [Rule::AllowUnknownRule]);
    }

    #[test]
    fn file_allow_covers_every_occurrence() {
        let src = "// lint: file-allow(hash-order) — lookup-only store, never iterated\n\
                   use std::collections::HashMap;\nlet m = HashMap::<u8, u8>::new();\n";
        assert!(lint_source("x.rs", src, Role::SimState, false).is_empty());
    }

    #[test]
    fn debug_assert_mutation_flagged_across_lines() {
        let src = "debug_assert!(\n    q.pop_front()\n        .is_some()\n);\n";
        let f = lint_source("x.rs", src, Role::Harness, false);
        assert_eq!(rules_of(&f), [Rule::DebugAssertSideEffect]);
    }

    #[test]
    fn debug_assert_pure_comparison_clean() {
        let src = "debug_assert!(self.len >= rhs.len, \"msg .push( inside string\");\n";
        assert!(lint_source("x.rs", src, Role::SimState, false).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "let p = unsafe { *ptr };\n";
        let good = "// SAFETY: ptr outlives the call by construction\nlet p = unsafe { *ptr };\n";
        assert_eq!(
            rules_of(&lint_source("x.rs", bad, Role::Harness, false)),
            [Rule::UnguardedUnsafe]
        );
        assert!(lint_source("x.rs", good, Role::Harness, false).is_empty());
    }

    #[test]
    fn missing_docs_header_on_sim_lib_only() {
        let src = "//! A crate.\npub fn f() {}\n";
        assert_eq!(
            rules_of(&lint_source("lib.rs", src, Role::SimState, true)),
            [Rule::MissingDocsHeader]
        );
        assert!(lint_source("lib.rs", src, Role::SimState, false).is_empty());
        let with = "//! A crate.\n#![warn(missing_docs)]\npub fn f() {}\n";
        assert!(lint_source("lib.rs", with, Role::SimState, true).is_empty());
    }
}
