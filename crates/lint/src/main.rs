//! `ni_lint` CLI: lint the workspace for determinism hazards.
//!
//! ```text
//! cargo run -p ni_lint -- [--deny] [--format text|json] [ROOT]
//! ```
//!
//! Without `ROOT`, the workspace root is found by walking up from the
//! current directory. `--deny` exits non-zero when findings exist (the CI
//! mode); without it the findings are reported and the exit code stays 0.

use std::path::PathBuf;
use std::process::ExitCode;

use ni_lint::{lint_workspace, render_json, render_text, workspace_root_from};

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("ni_lint: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: ni_lint [--deny] [--format text|json] [ROOT]");
                return ExitCode::SUCCESS;
            }
            _ if root.is_none() && !a.starts_with('-') => root = Some(PathBuf::from(a)),
            _ => {
                eprintln!("ni_lint: unknown argument {a:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("current dir");
            match workspace_root_from(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("ni_lint: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ni_lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_text(&report));
    }
    if deny && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
