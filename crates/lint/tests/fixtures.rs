//! Fixture-corpus tests: known-bad files must produce exactly the expected
//! findings, known-good files (including the tricky pattern-in-string
//! cases) must produce none. The corpus lives in `fixtures/`, which the
//! workspace walk skips — see `tests/workspace.rs` for the exclusion
//! self-check.

use std::path::Path;

use ni_lint::{lint_source, role_of, Role, Rule};

const BAD_HASH_ORDER: &str = include_str!("../fixtures/bad_hash_order.rs");
const BAD_METRICS_HASH: &str = include_str!("../fixtures/bad_metrics_hash.rs");
const BAD_WALL_CLOCK: &str = include_str!("../fixtures/bad_wall_clock.rs");
const BAD_AMBIENT: &str = include_str!("../fixtures/bad_ambient.rs");
const BAD_DEBUG_ASSERT: &str = include_str!("../fixtures/bad_debug_assert.rs");
const BAD_UNSAFE: &str = include_str!("../fixtures/bad_unsafe.rs");
const BAD_ALLOW: &str = include_str!("../fixtures/bad_allow.rs");
const GOOD_TRICKY: &str = include_str!("../fixtures/good_tricky.rs");
const GOOD_ALLOWED: &str = include_str!("../fixtures/good_allowed.rs");

/// `(line, rule)` pairs of a source linted at `role`.
fn findings(src: &str, role: Role) -> Vec<(usize, Rule)> {
    lint_source("fixture.rs", src, role, false)
        .into_iter()
        .map(|f| (f.line, f.rule))
        .collect()
}

#[test]
fn hash_order_fixture_fires_per_site_not_per_identifier() {
    assert_eq!(
        findings(BAD_HASH_ORDER, Role::SimState),
        vec![
            (4, Rule::HashOrder),
            (5, Rule::HashOrder),
            (10, Rule::HashOrder),
        ],
        "two use lines and one field; `HashMapLike` must not fire"
    );
}

#[test]
fn wall_clock_fixture_fires_on_both_clock_types() {
    assert_eq!(
        findings(BAD_WALL_CLOCK, Role::SimState),
        vec![(5, Rule::WallClock), (7, Rule::WallClock)],
    );
}

#[test]
fn ambient_fixture_fires_on_all_three_entropy_sources() {
    assert_eq!(
        findings(BAD_AMBIENT, Role::SimState),
        vec![
            (5, Rule::AmbientNondeterminism),
            (6, Rule::AmbientNondeterminism),
            (8, Rule::AmbientNondeterminism),
        ],
    );
}

#[test]
fn debug_assert_fixture_fires_including_multiline_bodies() {
    assert_eq!(
        findings(BAD_DEBUG_ASSERT, Role::SimState),
        vec![
            (6, Rule::DebugAssertSideEffect),
            (7, Rule::DebugAssertSideEffect),
        ],
        "the multi-line invocation reports at its opening line"
    );
}

#[test]
fn unsafe_fixture_fires_without_a_safety_comment() {
    assert_eq!(
        findings(BAD_UNSAFE, Role::SimState),
        vec![(5, Rule::UnguardedUnsafe)]
    );
}

#[test]
fn allow_fixture_misuse_is_unsuppressible() {
    let got = findings(BAD_ALLOW, Role::SimState);
    assert!(
        got.contains(&(6, Rule::AllowMissingReason)),
        "reasonless allow must be flagged: {got:?}"
    );
    assert!(
        got.contains(&(6, Rule::HashOrder)),
        "a rejected allow suppresses nothing: {got:?}"
    );
    assert!(
        got.contains(&(8, Rule::AllowMissingReason)),
        "a too-short reason counts as missing: {got:?}"
    );
    assert!(
        got.contains(&(10, Rule::AllowUnknownRule)),
        "unknown rule names must be flagged: {got:?}"
    );
    assert_eq!(got.len(), 4, "{got:?}");
}

#[test]
fn tricky_good_fixture_is_clean() {
    assert_eq!(
        findings(GOOD_TRICKY, Role::SimState),
        vec![],
        "rule names inside strings, comments, raw strings, char literals \
         and multi-line macro bodies must not fire"
    );
}

#[test]
fn justified_allows_suppress_cleanly() {
    assert_eq!(findings(GOOD_ALLOWED, Role::SimState), vec![]);
}

#[test]
fn metrics_crate_lints_under_sim_state_rules() {
    // The role the walk assigns to ni_metrics sources is SimState...
    let role = role_of(Path::new("crates/metrics/src/lib.rs")).expect("metrics is scanned");
    assert_eq!(role, Role::SimState);
    // ...so a HashMap-iterating tenant aggregation is a finding there,
    // while the same source passes as harness code.
    assert_eq!(
        findings(BAD_METRICS_HASH, role),
        vec![(5, Rule::HashOrder), (7, Rule::HashOrder)],
        "the use line and the parameter type must both fire"
    );
    assert_eq!(findings(BAD_METRICS_HASH, Role::Harness), vec![]);
}

#[test]
fn role_scoping_relaxes_rules_outside_sim_state() {
    // Hash maps are the harness's business...
    assert_eq!(findings(BAD_HASH_ORDER, Role::Harness), vec![]);
    assert_eq!(findings(BAD_HASH_ORDER, Role::Experiments), vec![]);
    // ...and the experiments layer may not read clocks, but the harness may.
    assert_eq!(
        findings(BAD_WALL_CLOCK, Role::Experiments),
        vec![(5, Rule::WallClock), (7, Rule::WallClock)],
    );
    assert_eq!(findings(BAD_WALL_CLOCK, Role::Harness), vec![]);
    // Ambient entropy is banned everywhere.
    assert_eq!(findings(BAD_AMBIENT, Role::Harness).len(), 3);
}

#[test]
fn missing_docs_header_fires_only_for_sim_lib_roots() {
    let src = "//! A sim-state crate root without the header.\npub fn f() {}\n";
    let as_lib = lint_source("lib.rs", src, Role::SimState, true);
    assert_eq!(as_lib.len(), 1);
    assert_eq!(as_lib[0].rule, Rule::MissingDocsHeader);
    assert!(lint_source("other.rs", src, Role::SimState, false).is_empty());
}
