//! The workspace gate: plain `cargo test` runs the linter over the whole
//! repository, so reintroducing a hazard (or stripping a justification off
//! an allow) fails CI in both the debug and release legs — the binary form
//! of the same pass gates the lint job.

use std::path::Path;

use ni_lint::{lint_source, lint_workspace, render_text, workspace_root_from, Role};

fn root() -> std::path::PathBuf {
    workspace_root_from(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint")
}

#[test]
fn workspace_has_no_findings() {
    let report = lint_workspace(&root()).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "determinism lint failed:\n{}",
        render_text(&report)
    );
    // Guard against the walk silently scanning nothing (a path bug would
    // make the assertion above pass vacuously).
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

/// Self-check, part 1: the fixture corpus is deliberately dirty when
/// scanned directly...
#[test]
fn fixture_corpus_is_dirty_when_scanned_directly() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut bad_files = 0;
    let mut findings = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().unwrap().to_str().unwrap();
        if !name.starts_with("bad_") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("fixture source");
        bad_files += 1;
        findings += lint_source(name, &src, Role::SimState, false).len();
    }
    assert!(
        bad_files >= 6,
        "fixture corpus shrank: {bad_files} bad files"
    );
    assert!(findings > bad_files, "bad fixtures must actually fire");
}

/// ...part 2: and the workspace walk excludes it, so the corpus can never
/// fail the workspace pass.
#[test]
fn fixture_corpus_is_excluded_from_the_workspace_walk() {
    let report = lint_workspace(&root()).expect("workspace scan");
    assert!(
        !report.findings.iter().any(|f| f.file.contains("fixtures")),
        "fixtures leaked into the workspace pass:\n{}",
        render_text(&report)
    );
}

/// Self-check, part 3: the linter's own sources pass their role's rules —
/// `ni_lint` eats its own dog food through the workspace gate above, and
/// this pins the role its files are judged under.
#[test]
fn linter_lints_itself_clean() {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut entries: Vec<_> = std::fs::read_dir(&src_dir)
        .expect("lint src dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    let mut checked = 0;
    for path in entries {
        let name = path.file_name().unwrap().to_str().unwrap().to_string();
        if !name.ends_with(".rs") {
            continue;
        }
        let rel = Path::new("crates/lint/src").join(&name);
        assert_eq!(
            ni_lint::role_of(&rel),
            Some(Role::Harness),
            "lint sources are harness code"
        );
        let found = lint_source(
            &name,
            &std::fs::read_to_string(&path).unwrap(),
            Role::Harness,
            false,
        );
        assert!(found.is_empty(), "{name} has findings: {found:?}");
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the four lint modules, saw {checked}"
    );
}
