//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace vendors the *small, deterministic* subset of the rand 0.8 API
//! its simulator code actually uses: [`rngs::SmallRng`], [`SeedableRng`]'s
//! `seed_from_u64`, and [`Rng::gen_range`] over primitive-integer and float
//! ranges. The generator is xoshiro256++, seeded through splitmix64 —
//! high-quality, fast, and stable across platforms, which is all a
//! deterministic cycle-level simulator needs. It is NOT a cryptographic
//! RNG and the streams differ from the real crate's.

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from `rng` uniformly over the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Multiply-shift bounded sampling: uniform in `[0, span)` without modulo
/// bias beyond 2^-64 (Lemire's method, sans rejection — negligible for
/// simulation workloads, and value-stable which is what we require).
#[inline]
fn bounded(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as u64).wrapping_sub(s as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                s + bounded(rng, span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool_uniform(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's small, fast, seedable generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&u));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
